//! The transactional template replayer.
//!
//! Loading a driverlet compiles every vetted template into a flat
//! [`ReplayProgram`] (`dlt_template::program`): parameter/capture names are
//! interned to register-file slots, expression and constraint trees are
//! flattened to postfix ops, interfaces are pre-resolved and register
//! windows are checked once. Invocation then runs a branch-on-opcode loop
//! against a reusable scratch arena — no template clone, no argument-map
//! clone, no per-event allocation on the divergence-free path (payload
//! copies land directly in the trustlet buffer and random bytes fill a
//! pre-sized scratch buffer).
//!
//! The pre-compilation tree-walking interpreter survives as
//! [`ReplayMode::Interpreted`] (the private `interp` module); both paths
//! charge identical virtual-time costs, so the `replay_throughput` bench
//! isolates the host-CPU cost of the execution strategy.

use std::collections::HashMap;

use dlt_hw::DmaRegion;
use dlt_obs::trace::{EventKind, TraceHandle};
use dlt_tee::{SecureIo, TeeError};
use dlt_template::program::{CIface, CSink, EvalScratch, Op, ReplayProgram, NO_SLOT};
use dlt_template::{compile, Driverlet, SignError, SourceSite};

use crate::inject::{MutationCtx, ResponseMutator};

/// Replay errors surfaced to the trustlet.
#[derive(Debug, Clone)]
pub enum ReplayError {
    /// The trustlet's arguments fall outside the recorded input-space
    /// coverage (no template matches).
    OutOfCoverage {
        /// The replay entry invoked.
        entry: String,
    },
    /// The driverlet bundle failed signature verification; the wrapped
    /// [`SignError`] is preserved as the [`std::error::Error::source`].
    Signature(SignError),
    /// A template failed static vetting, hardening checks or compilation at
    /// load time.
    InvalidTemplate(String),
    /// No driverlet is loaded for the requested entry.
    UnknownEntry(String),
    /// Replay kept diverging despite resets; the report pinpoints the
    /// failing event and its gold-driver recording site.
    Diverged(Box<DivergenceReport>),
    /// A TEE service failed (secure memory exhausted, bus fault, ...); the
    /// wrapped [`TeeError`] is preserved as the
    /// [`std::error::Error::source`].
    Tee(TeeError),
    /// Malformed trustlet request (bad buffer size etc.).
    Invalid(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::OutOfCoverage { entry } => {
                write!(f, "request to {entry} is outside the recorded input coverage")
            }
            ReplayError::Signature(s) => write!(f, "driverlet signature: {s}"),
            ReplayError::InvalidTemplate(s) => write!(f, "invalid template: {s}"),
            ReplayError::UnknownEntry(e) => write!(f, "no driverlet loaded for entry {e}"),
            ReplayError::Diverged(r) => write!(
                f,
                "replay of {} diverged after {} attempts at event {} ({} @ {}:{}): {}",
                r.template,
                r.attempts,
                r.failure.event_index,
                r.failure.event,
                r.failure.site.file,
                r.failure.site.line,
                r.failure.reason
            ),
            ReplayError::Tee(e) => write!(f, "TEE service failure: {e}"),
            ReplayError::Invalid(s) => write!(f, "invalid request: {s}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Tee(e) => Some(e),
            ReplayError::Signature(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TeeError> for ReplayError {
    fn from(e: TeeError) -> Self {
        ReplayError::Tee(e)
    }
}

/// Description of one divergence occurrence.
#[derive(Debug, Clone)]
pub struct DivergenceEvent {
    /// Index of the failing event within the template.
    pub event_index: usize,
    /// Gold-driver recording site of the failing event.
    pub site: SourceSite,
    /// Rendered event.
    pub event: String,
    /// Observed value (if the failure was a constraint violation).
    pub observed: Option<u64>,
    /// Human-readable reason.
    pub reason: String,
}

/// Report returned when replay fails persistently.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Template that failed.
    pub template: String,
    /// Number of execution attempts (including re-executions after reset).
    pub attempts: u32,
    /// Number of events that executed successfully in the last attempt.
    pub executed_before_failure: usize,
    /// The failing event of the last attempt.
    pub failure: DivergenceEvent,
}

/// Which execution engine serves invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// The flat compiled replay program (production path).
    #[default]
    Compiled,
    /// The reference tree-walking interpreter (baseline for the
    /// `replay_throughput` bench and differential tests).
    Interpreted,
}

/// Replayer configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Maximum template executions per invocation (first try + re-executions
    /// after soft reset).
    pub max_attempts: u32,
    /// Whether to verify driverlet signatures at load time (always on in
    /// production; switchable for the ablation benchmarks).
    pub verify_signature: bool,
    /// Execution engine.
    pub mode: ReplayMode,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { max_attempts: 3, verify_signature: true, mode: ReplayMode::Compiled }
    }
}

impl ReplayConfig {
    /// The default configuration running the interpreted baseline.
    pub fn interpreted() -> Self {
        ReplayConfig { mode: ReplayMode::Interpreted, ..ReplayConfig::default() }
    }
}

/// Cumulative replayer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Trustlet invocations served.
    pub invocations: u64,
    /// Template executions (including retries).
    pub executions: u64,
    /// Device soft resets issued.
    pub resets: u64,
    /// Divergences observed (including recovered ones).
    pub divergences: u64,
    /// Events executed.
    pub events_executed: u64,
    /// Interrupt waits performed (interrupt-context switches).
    pub irq_waits: u64,
    /// Payload bytes moved to/from trustlet buffers.
    pub payload_bytes: u64,
}

/// Outcome of a successful invocation.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Payload bytes copied into or out of the trustlet buffer.
    pub payload_bytes: u64,
    /// Values captured from the device during the replay (e.g. the image
    /// size the camera assigned).
    pub captured: HashMap<String, u64>,
    /// Number of events executed.
    pub events: usize,
    /// Whether a divergence was recovered by reset + re-execution.
    pub recovered_divergence: bool,
}

/// A loaded bundle: the signed artefact plus its compiled programs (one per
/// template, in template order).
struct LoadedDriverlet {
    bundle: Driverlet,
    programs: Vec<ReplayProgram>,
}

/// Reusable execution scratch. Sized at load time for the largest loaded
/// program so the hot path never grows it.
#[derive(Default)]
struct Scratch {
    /// Register file: `[params.. | captures.. | dma bases..]`.
    regs: Vec<u64>,
    /// Bound flags, parallel to `regs`.
    bound: Vec<bool>,
    /// Expression/constraint evaluation stacks.
    eval: EvalScratch,
    /// DMA allocations of the running attempt.
    dma: Vec<DmaRegion>,
    /// Random-byte fill buffer.
    rand: Vec<u8>,
}

impl Scratch {
    fn reserve_for(&mut self, prog: &ReplayProgram) {
        if self.regs.len() < prog.num_slots() {
            self.regs.resize(prog.num_slots(), 0);
            self.bound.resize(prog.num_slots(), false);
        }
        self.eval.reserve_for(prog);
        // `reserve` is relative to the length and the table is cleared
        // between attempts, so reserving the full count is exact.
        if self.dma.capacity() < prog.num_dma as usize {
            self.dma.reserve(prog.num_dma as usize);
        }
        if self.rand.len() < prog.max_rand_len {
            self.rand.resize(prog.max_rand_len, 0);
        }
    }
}

/// The driverlet replayer.
pub struct Replayer {
    io: SecureIo,
    driverlets: HashMap<String, LoadedDriverlet>,
    config: ReplayConfig,
    stats: ReplayStats,
    scratch: Scratch,
    /// Optional device-response fault injector (test harnesses only); the
    /// compiled engine consults it on every constrained observation.
    mutator: Option<Box<dyn ResponseMutator>>,
    /// Optional flight-recorder handle; emits `ReplayStart`/`ReplayEnd`
    /// around every compiled invocation when the serving layer runs with
    /// tracing enabled.
    tracer: Option<TraceHandle>,
}

pub(crate) enum ExecFailure {
    Divergence(DivergenceEvent, usize),
    Tee(TeeError),
}

/// Borrowed argument source for the compiled engine.
#[derive(Clone, Copy)]
enum ArgSource<'a> {
    /// Name-keyed map (the general `invoke` entry point).
    Map(&'a HashMap<String, u64>),
    /// Borrowed pairs (the `invoke_args` trustlet fast path).
    Slice(&'a [(&'a str, u64)]),
}

impl ArgSource<'_> {
    fn bind(&self, prog: &ReplayProgram, regs: &mut [u64], bound: &mut [bool]) {
        match self {
            ArgSource::Map(m) => prog.bind_args(m, regs, bound),
            ArgSource::Slice(s) => prog.bind_arg_slice(s, regs, bound),
        }
    }
}

impl Replayer {
    /// Create a replayer over the TEE's secure services.
    pub fn new(io: SecureIo) -> Self {
        Self::with_config(io, ReplayConfig::default())
    }

    /// Create a replayer with an explicit configuration.
    pub fn with_config(io: SecureIo, config: ReplayConfig) -> Self {
        Replayer {
            io,
            driverlets: HashMap::new(),
            config,
            stats: ReplayStats::default(),
            scratch: Scratch::default(),
            mutator: None,
            tracer: None,
        }
    }

    /// Install a device-response mutator. Every subsequent compiled
    /// invocation offers the mutator its constrained observations (`Read`
    /// ops and poll iterations); the interpreted baseline never consults
    /// it. Used by the divergence-robustness harnesses (`dlt-explore`).
    pub fn set_response_mutator(&mut self, mutator: Box<dyn ResponseMutator>) {
        self.mutator = Some(mutator);
    }

    /// Remove any installed response mutator, restoring faithful replay.
    pub fn clear_response_mutator(&mut self) {
        self.mutator = None;
    }

    /// Install a flight-recorder handle. Every subsequent compiled
    /// invocation brackets its replay with `ReplayStart`/`ReplayEnd`
    /// events stamped in this replayer's virtual time.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = Some(tracer);
    }

    /// Remove any installed flight-recorder handle.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Direct access to the TEE services (trustlets share them).
    pub fn io_mut(&mut self) -> &mut SecureIo {
        &mut self.io
    }

    /// Current virtual time of the core this replayer executes on. Every
    /// replayer charges all of its work to its own platform's clock, so in
    /// a multi-core deployment this is the *lane-local* timeline (the
    /// serve layer reads lane time through this).
    pub fn now_ns(&self) -> u64 {
        self.io.now_ns()
    }

    /// Entries currently served.
    pub fn entries(&self) -> Vec<String> {
        self.driverlets.keys().cloned().collect()
    }

    /// The compiled programs serving `entry` (loaded-template names), mostly
    /// for diagnostics and tests.
    pub fn program_names(&self, entry: &str) -> Vec<String> {
        self.driverlets
            .get(entry)
            .map(|ld| ld.programs.iter().map(|p| p.name.clone()).collect())
            .unwrap_or_default()
    }

    /// Load a driverlet bundle: verify the developer signature, statically
    /// vet every template, harden against templates that reference registers
    /// outside secure device windows, and lower each template into its flat
    /// replay program.
    pub fn load_driverlet(&mut self, bundle: Driverlet, key: &[u8]) -> Result<(), ReplayError> {
        if self.config.verify_signature {
            bundle.verify(key).map_err(ReplayError::Signature)?;
        }
        bundle.validate().map_err(ReplayError::InvalidTemplate)?;
        let mut programs = Vec::with_capacity(bundle.templates.len());
        for t in &bundle.templates {
            let window = self
                .io
                .device_window(&t.device)
                .map_err(|e| ReplayError::InvalidTemplate(format!("{}: {e}", t.name)))?;
            if !self.io.is_device_secure(&t.device) {
                return Err(ReplayError::InvalidTemplate(format!(
                    "{}: device {} is not assigned to the TEE",
                    t.name, t.device
                )));
            }
            for addr in t.registers_touched() {
                if !window.contains(addr, 4) {
                    // Templates may legitimately touch a second secure device
                    // (the MMC templates drive the system DMA engine); accept
                    // registers that fall inside *any* secure device window.
                    if self.io.secure_device_containing(addr, 4).is_none() {
                        return Err(ReplayError::InvalidTemplate(format!(
                            "{}: register {addr:#x} is outside every secure device window",
                            t.name
                        )));
                    }
                }
            }
            let prog =
                compile(t).map_err(|e| ReplayError::InvalidTemplate(format!("{}: {e}", t.name)))?;
            self.scratch.reserve_for(&prog);
            programs.push(prog);
        }
        self.driverlets.insert(bundle.entry.clone(), LoadedDriverlet { bundle, programs });
        Ok(())
    }

    /// Invoke a replay entry with the given arguments and payload buffer.
    pub fn invoke(
        &mut self,
        entry: &str,
        args: &HashMap<String, u64>,
        buf: &mut [u8],
    ) -> Result<ReplayOutcome, ReplayError> {
        self.stats.invocations += 1;
        match self.config.mode {
            ReplayMode::Compiled => self.invoke_compiled(entry, ArgSource::Map(args), buf),
            ReplayMode::Interpreted => self.invoke_interpreted(entry, args, buf),
        }
    }

    /// Invoke a replay entry with borrowed argument pairs — the
    /// zero-allocation trustlet entry path (`replay_mmc(..)` and friends).
    /// The compiled engine binds the pairs straight into its register file;
    /// the interpreted baseline builds the name-keyed map it always needed.
    pub fn invoke_args(
        &mut self,
        entry: &str,
        args: &[(&str, u64)],
        buf: &mut [u8],
    ) -> Result<ReplayOutcome, ReplayError> {
        self.stats.invocations += 1;
        match self.config.mode {
            ReplayMode::Compiled => self.invoke_compiled(entry, ArgSource::Slice(args), buf),
            ReplayMode::Interpreted => {
                let map: HashMap<String, u64> =
                    args.iter().map(|(k, v)| (k.to_string(), *v)).collect();
                self.invoke_interpreted(entry, &map, buf)
            }
        }
    }

    fn invoke_compiled(
        &mut self,
        entry: &str,
        args: ArgSource<'_>,
        buf: &mut [u8],
    ) -> Result<ReplayOutcome, ReplayError> {
        let this = &mut *self;
        let ld = this
            .driverlets
            .get(entry)
            .ok_or_else(|| ReplayError::UnknownEntry(entry.to_string()))?;
        // Template selection on the compiled parameter checks: bind the
        // arguments into the scratch register file and test each program.
        let mut selected = None;
        for prog in &ld.programs {
            args.bind(prog, &mut this.scratch.regs, &mut this.scratch.bound);
            if prog.matches_regs(&this.scratch.regs, &this.scratch.bound, &mut this.scratch.eval) {
                selected = Some(prog);
                break;
            }
        }
        let prog =
            selected.ok_or_else(|| ReplayError::OutOfCoverage { entry: entry.to_string() })?;
        if let Some(t) = this.tracer.as_mut() {
            t.emit(EventKind::ReplayStart, this.io.now_ns(), 0, 0, prog.ops.len() as u64);
        }

        // A mutator engages once per invocation and is then consulted on
        // every attempt — a persisting fault exhausts the retry budget and
        // surfaces as a typed `Diverged`, exactly like a broken device.
        let engaged = match this.mutator.as_mut() {
            Some(m) => m.begin_invocation(prog),
            None => false,
        };

        let mut last_failure: Option<(DivergenceEvent, usize)> = None;
        let mut attempts = 0u32;
        while attempts < this.config.max_attempts {
            attempts += 1;
            this.stats.executions += 1;
            // Soft reset before every execution and between retries (§5).
            this.io.soft_reset_device(&prog.device)?;
            this.io.dma_release_all();
            this.stats.resets += 1;
            // Re-bind: clears capture and DMA slots from the prior attempt.
            args.bind(prog, &mut this.scratch.regs, &mut this.scratch.bound);
            this.scratch.dma.clear();
            let mutator = if engaged {
                this.mutator.as_mut().map(|m| &mut **m as &mut dyn ResponseMutator)
            } else {
                None
            };
            match exec_program(&mut this.io, &mut this.stats, &mut this.scratch, prog, buf, mutator)
            {
                Ok(payload_bytes) => {
                    let mut captured = HashMap::new();
                    for (i, name) in prog.capture_names.iter().enumerate() {
                        let slot = prog.param_names.len() + i;
                        if this.scratch.bound[slot] {
                            captured.insert(name.clone(), this.scratch.regs[slot]);
                        }
                    }
                    this.stats.payload_bytes += payload_bytes;
                    if let Some(t) = this.tracer.as_mut() {
                        t.emit(EventKind::ReplayEnd, this.io.now_ns(), 0, 0, u64::from(attempts));
                    }
                    return Ok(ReplayOutcome {
                        payload_bytes,
                        captured,
                        events: prog.ops.len(),
                        recovered_divergence: last_failure.is_some(),
                    });
                }
                Err(ExecFailure::Divergence(event, executed)) => {
                    this.stats.divergences += 1;
                    last_failure = Some((event, executed));
                }
                Err(ExecFailure::Tee(e)) => return Err(ReplayError::Tee(e)),
            }
        }
        let (failure, executed) = last_failure.expect("at least one attempt must have run");
        if let Some(t) = this.tracer.as_mut() {
            t.emit(EventKind::ReplayEnd, this.io.now_ns(), 0, 0, u64::from(attempts));
        }
        Err(ReplayError::Diverged(Box::new(DivergenceReport {
            template: prog.name.clone(),
            attempts,
            executed_before_failure: executed,
            failure,
        })))
    }

    fn invoke_interpreted(
        &mut self,
        entry: &str,
        args: &HashMap<String, u64>,
        buf: &mut [u8],
    ) -> Result<ReplayOutcome, ReplayError> {
        let bundle = &self
            .driverlets
            .get(entry)
            .ok_or_else(|| ReplayError::UnknownEntry(entry.to_string()))?
            .bundle;
        let template = bundle
            .select(args)
            .ok_or_else(|| ReplayError::OutOfCoverage { entry: entry.to_string() })?
            .clone();
        let device = template.device.clone();

        let mut last_failure: Option<(DivergenceEvent, usize)> = None;
        let mut attempts = 0u32;
        while attempts < self.config.max_attempts {
            attempts += 1;
            self.stats.executions += 1;
            self.io.soft_reset_device(&device)?;
            self.io.dma_release_all();
            self.stats.resets += 1;
            match crate::interp::execute_once(&mut self.io, &mut self.stats, &template, args, buf) {
                Ok(mut outcome) => {
                    outcome.recovered_divergence = last_failure.is_some();
                    self.stats.payload_bytes += outcome.payload_bytes;
                    return Ok(outcome);
                }
                Err(ExecFailure::Divergence(event, executed)) => {
                    self.stats.divergences += 1;
                    last_failure = Some((event, executed));
                }
                Err(ExecFailure::Tee(e)) => return Err(ReplayError::Tee(e)),
            }
        }
        let (failure, executed) = last_failure.expect("at least one attempt must have run");
        Err(ReplayError::Diverged(Box::new(DivergenceReport {
            template: template.name.clone(),
            attempts,
            executed_before_failure: executed,
            failure,
        })))
    }
}

/// Build a divergence failure from precompiled op metadata (cold path: the
/// only formatting the compiled engine ever does).
#[cold]
fn diverge(
    prog: &ReplayProgram,
    op_idx: usize,
    observed: Option<u64>,
    reason: String,
) -> ExecFailure {
    let m = &prog.meta[op_idx];
    ExecFailure::Divergence(
        DivergenceEvent {
            event_index: m.src_index as usize,
            site: m.site.clone(),
            event: m.desc.clone(),
            observed,
            reason,
        },
        m.src_index as usize,
    )
}

#[cold]
fn unbound(prog: &ReplayProgram, op_idx: usize, what: &str) -> ExecFailure {
    diverge(prog, op_idx, None, format!("{what} references an unbound symbol"))
}

#[cold]
fn missing_dma(alloc: u32) -> ExecFailure {
    ExecFailure::Tee(TeeError::Hw(dlt_hw::HwError::DeviceError {
        device: "dma".into(),
        reason: format!("dma[{alloc}] not allocated"),
    }))
}

fn read_ciface(io: &mut SecureIo, iface: CIface, dma: &[DmaRegion]) -> Result<u32, ExecFailure> {
    match iface {
        CIface::Reg(addr) => io.readl(addr).map_err(ExecFailure::Tee),
        CIface::Shm { alloc, offset } => {
            let region = *dma.get(alloc as usize).ok_or_else(|| missing_dma(alloc))?;
            io.shm_read32(region, offset).map_err(ExecFailure::Tee)
        }
    }
}

/// Execute one attempt of a compiled program. The divergence-free path
/// performs no heap allocation: all dynamic state lives in `scratch`.
fn exec_program(
    io: &mut SecureIo,
    stats: &mut ReplayStats,
    scratch: &mut Scratch,
    prog: &ReplayProgram,
    buf: &mut [u8],
    mut mutator: Option<&mut dyn ResponseMutator>,
) -> Result<u64, ExecFailure> {
    let dispatch_ns = io.replay_dispatch_cost_ns();
    let mut payload_bytes = 0u64;

    for (op_idx, op) in prog.ops.iter().enumerate() {
        stats.events_executed += 1;
        // Polls charge per iteration below; everything else is one dispatch.
        if !matches!(op, Op::Poll { .. }) {
            io.charge_ns(dispatch_ns);
        }
        match *op {
            Op::Read { iface, cons, sink } => {
                let mut value = read_ciface(io, iface, &scratch.dma)? as u64;
                if let Some(m) = mutator.as_deref_mut() {
                    let ctx = MutationCtx {
                        program: prog,
                        op_index: op_idx,
                        cons,
                        observed: value,
                        regs: &scratch.regs,
                        bound: &scratch.bound,
                        poll_iteration: None,
                    };
                    if let Some(v) = m.mutate(&ctx) {
                        value = v;
                    }
                }
                if !prog.check_cons(cons, value, &scratch.regs, &scratch.bound, &mut scratch.eval) {
                    return Err(diverge(
                        prog,
                        op_idx,
                        Some(value),
                        format!("constraint \"{}\" violated", prog.meta[op_idx].cons_desc),
                    ));
                }
                match sink {
                    CSink::Discard => {}
                    CSink::Capture(slot) => {
                        scratch.regs[slot as usize] = value;
                        scratch.bound[slot as usize] = true;
                    }
                    CSink::UserData(offset) => {
                        let off = offset as usize;
                        if off + 4 > buf.len() {
                            return Err(diverge(
                                prog,
                                op_idx,
                                Some(value),
                                "user-data sink outside the trustlet buffer".into(),
                            ));
                        }
                        buf[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes());
                        payload_bytes += 4;
                    }
                }
            }
            Op::Write { iface, value } => {
                let v = prog
                    .eval_expr(value, &scratch.regs, &scratch.bound, &mut scratch.eval)
                    .ok_or_else(|| unbound(prog, op_idx, "output expression"))?;
                match iface {
                    CIface::Reg(addr) => {
                        io.writel(addr, v as u32).map_err(ExecFailure::Tee)?;
                    }
                    CIface::Shm { alloc, offset } => {
                        let region =
                            *scratch.dma.get(alloc as usize).ok_or_else(|| missing_dma(alloc))?;
                        io.shm_write32(region, offset, v as u32).map_err(ExecFailure::Tee)?;
                    }
                }
            }
            Op::DmaAlloc { len, slot } => {
                let n = prog
                    .eval_expr(len, &scratch.regs, &scratch.bound, &mut scratch.eval)
                    .ok_or_else(|| unbound(prog, op_idx, "allocation size"))?
                    as usize;
                let region = io.dma_alloc(n).map_err(ExecFailure::Tee)?;
                scratch.regs[slot as usize] = region.base;
                scratch.bound[slot as usize] = true;
                scratch.dma.push(region);
            }
            Op::GetRandBytes { len } => {
                // Propagate RNG failures instead of discarding them: an
                // entropy shortfall is a TEE service failure, not a
                // divergence.
                io.fill_rand_bytes(&mut scratch.rand[..len as usize]).map_err(ExecFailure::Tee)?;
            }
            Op::GetTs { slot } => {
                let v = io.get_ts_rpc();
                if slot != NO_SLOT {
                    scratch.regs[slot as usize] = v;
                    scratch.bound[slot as usize] = true;
                }
            }
            Op::WaitForIrq { line, timeout_us } => {
                stats.irq_waits += 1;
                // Templates wait for every individual interrupt; the gold
                // driver would have coalesced them (§8.3.2). Charge the
                // per-IRQ handling overhead the native path avoids.
                let irq_overhead = io.irq_wait_overhead_ns();
                io.charge_ns(irq_overhead);
                if io.wait_for_irq(line, timeout_us).is_err() {
                    return Err(diverge(
                        prog,
                        op_idx,
                        None,
                        format!("interrupt {line} did not arrive within {timeout_us} us"),
                    ));
                }
            }
            Op::Delay { us } => io.delay_us(us),
            Op::Poll { iface, cons, iter_delay_us, max_iters } => {
                // Each iteration is one register read from the TEE and pays
                // one dispatch (constraint check + binding). The dispatch
                // cost is accumulated and charged when the poll concludes so
                // the reads keep the recorded delay cadence the device
                // timing was calibrated against.
                let mut reads = 0u64;
                let mut iters = 0u64;
                loop {
                    reads += 1;
                    let mut value = read_ciface(io, iface, &scratch.dma)? as u64;
                    if let Some(m) = mutator.as_deref_mut() {
                        let ctx = MutationCtx {
                            program: prog,
                            op_index: op_idx,
                            cons,
                            observed: value,
                            regs: &scratch.regs,
                            bound: &scratch.bound,
                            poll_iteration: Some(iters),
                        };
                        if let Some(v) = m.mutate(&ctx) {
                            value = v;
                        }
                    }
                    if prog.check_cons(
                        cons,
                        value,
                        &scratch.regs,
                        &scratch.bound,
                        &mut scratch.eval,
                    ) {
                        break;
                    }
                    iters += 1;
                    if iters > max_iters {
                        io.charge_ns(dispatch_ns * reads);
                        return Err(diverge(
                            prog,
                            op_idx,
                            Some(value),
                            format!(
                                "poll condition \"{}\" not met after {max_iters} iterations",
                                prog.meta[op_idx].cons_desc
                            ),
                        ));
                    }
                    io.delay_us(iter_delay_us);
                }
                io.charge_ns(dispatch_ns * reads);
            }
            Op::CopyUserToDma { alloc, offset, user_offset, len } => {
                let n = prog
                    .eval_expr(len, &scratch.regs, &scratch.bound, &mut scratch.eval)
                    .ok_or_else(|| unbound(prog, op_idx, "copy length"))?
                    as usize;
                let uo = user_offset as usize;
                if uo + n > buf.len() {
                    return Err(diverge(
                        prog,
                        op_idx,
                        None,
                        "copy source outside the trustlet buffer".into(),
                    ));
                }
                let region = *scratch.dma.get(alloc as usize).ok_or_else(|| missing_dma(alloc))?;
                io.copy_to_dma(region, offset, &buf[uo..uo + n]).map_err(ExecFailure::Tee)?;
                payload_bytes += n as u64;
            }
            Op::CopyDmaToUser { alloc, offset, user_offset, len } => {
                let n = prog
                    .eval_expr(len, &scratch.regs, &scratch.bound, &mut scratch.eval)
                    .ok_or_else(|| unbound(prog, op_idx, "copy length"))?
                    as usize;
                let uo = user_offset as usize;
                if uo + n > buf.len() {
                    return Err(diverge(
                        prog,
                        op_idx,
                        None,
                        "copy target outside the trustlet buffer".into(),
                    ));
                }
                let region = *scratch.dma.get(alloc as usize).ok_or_else(|| missing_dma(alloc))?;
                // Zero-copy: DMA contents land directly in the trustlet
                // buffer slice, no intermediate heap buffer.
                io.copy_from_dma(region, offset, &mut buf[uo..uo + n]).map_err(ExecFailure::Tee)?;
                payload_bytes += n as u64;
            }
        }
    }

    Ok(payload_bytes)
}

/// Render a constraint violation in the human-readable style the paper's
/// failure reports use.
pub fn describe_divergence(report: &DivergenceReport) -> String {
    format!(
        "template {} aborted after {} attempts; {} events replayed; failing event #{} {} recorded at {}:{} ({})",
        report.template,
        report.attempts,
        report.executed_before_failure,
        report.failure.event_index,
        report.failure.event,
        report.failure.site.file,
        report.failure.site.line,
        report.failure.reason,
    )
}

// The serve layer moves whole lane replayers onto per-lane OS threads
// (`dlt-serve`'s `ExecMode::Threaded`); losing `Send` here — e.g. by
// adding an `Rc` or a raw pointer to the replayer state — would silently
// break that, so pin it at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Replayer>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_hw::device::MmioDevice;
    use dlt_hw::{shared, IrqController, Platform, Shared};
    use dlt_template::{
        Constraint, DataDirection, DmaRole, Event, Iface, ParamSpec, ReadSink, RecordedEvent,
        SymExpr, Template, TemplateMeta,
    };

    /// Constraint helpers for the synthetic template used below.
    fn synthetic_driverlet() -> Driverlet {
        // A template against a nonexistent device: only used for load-time
        // hardening tests (it must be rejected because the device is absent).
        let t = Template {
            name: "ghost".into(),
            entry: "replay_ghost".into(),
            device: "ghost-dev".into(),
            params: vec![ParamSpec { name: "x".into(), constraint: Constraint::Any }],
            direction: DataDirection::None,
            data_len: SymExpr::Const(0),
            irq_line: None,
            events: vec![RecordedEvent::bare(Event::Write {
                iface: Iface::Reg { addr: 0x3f99_0000, name: "GHOST".into() },
                value: SymExpr::Const(1),
            })],
            meta: TemplateMeta::default(),
        };
        let mut d = Driverlet::new("ghost-dev", "replay_ghost", vec![t]);
        d.sign(b"k");
        d
    }

    #[test]
    fn unknown_devices_and_bad_signatures_are_rejected_at_load() {
        let platform = dlt_hw::Platform::new();
        let tee = dlt_tee::TeeKernel::install(&platform, &[]).unwrap();
        let io = SecureIo::new(platform.bus.clone());
        drop(tee);
        let mut r = Replayer::new(io);
        let d = synthetic_driverlet();
        assert!(matches!(r.load_driverlet(d.clone(), b"wrong"), Err(ReplayError::Signature(_))));
        assert!(
            matches!(r.load_driverlet(d, b"k"), Err(ReplayError::InvalidTemplate(_))),
            "a template for an unknown device must not load"
        );
        assert!(r.entries().is_empty());
    }

    #[test]
    fn invoking_an_unknown_entry_fails_cleanly() {
        let platform = dlt_hw::Platform::new();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let mut buf = [0u8; 4];
        let err = r.invoke("replay_nothing", &HashMap::new(), &mut buf).unwrap_err();
        assert!(matches!(err, ReplayError::UnknownEntry(_)));
        assert_eq!(r.stats().invocations, 1);
    }

    // -----------------------------------------------------------------------
    // A small synthetic rig: one secure device with a handful of registers,
    // enough to exercise every op kind on both engines.
    // -----------------------------------------------------------------------

    const RIG_BASE: u64 = 0x3f40_0000;
    const RIG_IRQ: u32 = 49;

    struct RigDev {
        irqs: Shared<IrqController>,
        status: u32,
        arg: u32,
        busy_until: u64,
    }

    impl MmioDevice for RigDev {
        fn name(&self) -> &'static str {
            "rig"
        }
        fn mmio_base(&self) -> u64 {
            RIG_BASE
        }
        fn mmio_len(&self) -> u64 {
            0x100
        }
        fn read32(&mut self, offset: u64, now: u64) -> u32 {
            match offset {
                0x0 => self.status,
                0x4 => self.arg,
                0x8 => u32::from(now < self.busy_until), // BUSY flag
                0xc => 0x2a,                             // constant ID register
                _ => 0,
            }
        }
        fn write32(&mut self, offset: u64, val: u32, now: u64) {
            match offset {
                0x0 => self.status = val,
                0x4 => {
                    self.arg = val;
                    // Kick: busy for 30 us, then raise the IRQ.
                    self.busy_until = now + 30_000;
                    self.irqs.lock().assert_at(RIG_IRQ, self.busy_until);
                }
                _ => {}
            }
        }
        fn tick(&mut self, _now: u64) {}
        fn soft_reset(&mut self, _now: u64) {
            self.status = 0;
            self.arg = 0;
            self.busy_until = 0;
        }
        fn irq_line(&self) -> Option<u32> {
            Some(RIG_IRQ)
        }
    }

    fn rig_platform() -> Platform {
        let p = Platform::new();
        let dev = shared(RigDev { irqs: p.irqs.clone(), status: 0, arg: 0, busy_until: 0 });
        p.bus.lock().attach(dlt_hw::device::SharedDevice::boxed(dev)).unwrap();
        p.bus.lock().set_device_secure("rig", true).unwrap();
        p
    }

    fn reg(name: &str, off: u64) -> Iface {
        Iface::Reg { addr: RIG_BASE + off, name: name.to_string() }
    }

    /// A template exercising writes, symbolic expressions, polls, IRQ waits,
    /// constrained reads, captures, DMA and payload copies.
    fn rig_template(rand_len: u32) -> Template {
        Template {
            name: "rig_io".into(),
            entry: "replay_rig".into(),
            device: "rig".into(),
            params: vec![
                ParamSpec {
                    name: "val".into(),
                    constraint: Constraint::InRange { min: 0, max: 0xffff },
                },
                ParamSpec { name: "flag".into(), constraint: Constraint::Any },
            ],
            direction: DataDirection::DeviceToUser,
            data_len: SymExpr::Const(8),
            irq_line: Some(RIG_IRQ),
            events: vec![
                RecordedEvent::bare(Event::DmaAlloc {
                    len: SymExpr::Const(64),
                    role: DmaRole::DataIn,
                }),
                RecordedEvent::bare(Event::GetRandBytes { len: rand_len, sink: ReadSink::Discard }),
                // Write the parameterised argument; the device goes busy and
                // later interrupts.
                RecordedEvent::bare(Event::Write {
                    iface: reg("ARG", 0x4),
                    value: SymExpr::Param("val".into()).or_const(0x1_0000),
                }),
                // Poll the BUSY flag down.
                RecordedEvent::bare(Event::Poll {
                    iface: reg("BUSY", 0x8),
                    body: vec![Event::Delay { us: 2 }],
                    cond: Constraint::eq_const(0),
                    delay_us: 5,
                    max_iters: 100,
                }),
                RecordedEvent::bare(Event::WaitForIrq { line: RIG_IRQ, timeout_us: 500_000 }),
                // Constrained read of the constant ID register, captured.
                RecordedEvent::bare(Event::Read {
                    iface: reg("ID", 0xc),
                    constraint: Constraint::eq_const(0x2a),
                    len: 4,
                    sink: ReadSink::Capture("id".into()),
                }),
                // Echo the captured value (symbolic over a capture).
                RecordedEvent::bare(Event::Write {
                    iface: reg("STATUS", 0x0),
                    value: SymExpr::Captured("id".into()).plus(1),
                }),
                // Read it back into the user buffer, constrained against the
                // capture-derived value.
                RecordedEvent::bare(Event::Read {
                    iface: reg("STATUS", 0x0),
                    constraint: Constraint::Eq(SymExpr::Captured("id".into()).plus(1)),
                    len: 4,
                    sink: ReadSink::UserData { offset: 0 },
                }),
                // Shared-memory round trip through the DMA allocation.
                RecordedEvent::bare(Event::Write {
                    iface: Iface::Shm { alloc: 0, offset: 0x10 },
                    value: SymExpr::Param("val".into()),
                }),
                RecordedEvent::bare(Event::Read {
                    iface: Iface::Shm { alloc: 0, offset: 0x10 },
                    constraint: Constraint::eq_param("val"),
                    len: 4,
                    sink: ReadSink::Discard,
                }),
                RecordedEvent::bare(Event::CopyDmaToUser {
                    alloc: 0,
                    offset: 0x10,
                    user_offset: 4,
                    len: SymExpr::Const(4),
                }),
                RecordedEvent::bare(Event::Delay { us: 3 }),
            ],
            meta: TemplateMeta::default(),
        }
    }

    fn rig_driverlet(rand_len: u32) -> Driverlet {
        let mut d = Driverlet::new("rig", "replay_rig", vec![rig_template(rand_len)]);
        d.sign(b"rigkey");
        d
    }

    fn rig_args(val: u64) -> HashMap<String, u64> {
        [("val".to_string(), val), ("flag".to_string(), 0)].into_iter().collect()
    }

    fn run_mode(mode: ReplayMode, val: u64, rand_len: u32) -> (ReplayOutcome, [u8; 8], u64, u64) {
        let platform = rig_platform();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::with_config(io, ReplayConfig { mode, ..ReplayConfig::default() });
        r.load_driverlet(rig_driverlet(rand_len), b"rigkey").unwrap();
        let t0 = platform.now_ns();
        let mut buf = [0u8; 8];
        let outcome = r.invoke("replay_rig", &rig_args(val), &mut buf).unwrap();
        let elapsed = platform.now_ns() - t0;
        (outcome, buf, elapsed, r.stats().events_executed)
    }

    #[test]
    fn compiled_executes_the_full_event_vocabulary() {
        let (outcome, buf, _, _) = run_mode(ReplayMode::Compiled, 0x1234, 16);
        assert_eq!(outcome.captured.get("id"), Some(&0x2a));
        assert_eq!(outcome.payload_bytes, 8);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 0x2b);
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 0x1234);
        assert!(!outcome.recovered_divergence);
    }

    #[test]
    fn compiled_and_interpreted_agree_exactly() {
        let (co, cbuf, ct, cev) = run_mode(ReplayMode::Compiled, 0x0beb, 8);
        let (io_, ibuf, it, iev) = run_mode(ReplayMode::Interpreted, 0x0beb, 8);
        assert_eq!(co.payload_bytes, io_.payload_bytes);
        assert_eq!(co.captured, io_.captured);
        assert_eq!(co.events, io_.events);
        assert_eq!(cbuf, ibuf, "payload buffers must match bit for bit");
        assert_eq!(ct, it, "virtual-time cost must be identical across engines");
        assert_eq!(cev, iev, "event accounting must be identical across engines");
    }

    #[test]
    fn out_of_coverage_and_divergence_reporting() {
        let platform = rig_platform();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        r.load_driverlet(rig_driverlet(8), b"rigkey").unwrap();
        let mut buf = [0u8; 8];
        // val outside the recorded range: no template matches.
        let err = r.invoke("replay_rig", &rig_args(0x10_0000), &mut buf).unwrap_err();
        assert!(matches!(err, ReplayError::OutOfCoverage { .. }));
        assert_eq!(r.program_names("replay_rig"), vec!["rig_io".to_string()]);
    }

    #[test]
    fn rng_failures_are_propagated_not_discarded() {
        // A template whose get_rand_bytes request exceeds the RNG FIFO must
        // fail with a TEE service error (regression: the old interpreter
        // silently discarded the error).
        let platform = rig_platform();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let oversized = (dlt_tee::RNG_MAX_REQUEST + 1) as u32;
        r.load_driverlet(rig_driverlet(oversized), b"rigkey").unwrap();
        let mut buf = [0u8; 8];
        let err = r.invoke("replay_rig", &rig_args(7), &mut buf).unwrap_err();
        match &err {
            ReplayError::Tee(e) => {
                assert!(e.to_string().contains("rng"), "unexpected tee error: {e}");
            }
            other => panic!("expected a TEE error, got {other:?}"),
        }
        // The full chain is preserved: ReplayError -> TeeError -> HwError.
        use std::error::Error;
        let tee = err.source().expect("TEE source");
        assert!(tee.source().is_some(), "TeeError::Hw must expose the HwError source");
        let platform2 = rig_platform();
        let io2 = SecureIo::new(platform2.bus.clone());
        let mut r2 = Replayer::with_config(io2, ReplayConfig::interpreted());
        r2.load_driverlet(rig_driverlet(oversized), b"rigkey").unwrap();
        assert!(matches!(
            r2.invoke("replay_rig", &rig_args(7), &mut buf),
            Err(ReplayError::Tee(_))
        ));
    }

    #[test]
    fn poll_charges_dispatch_per_iteration() {
        // Direct unit check on the accounting: a poll that performs k
        // register reads charges k * dispatch_ns (plus its delays), not the
        // single dispatch the old cost model charged per poll event.
        let platform = rig_platform();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let t = Template {
            name: "poll_only".into(),
            entry: "replay_poll".into(),
            device: "rig".into(),
            params: vec![],
            direction: DataDirection::None,
            data_len: SymExpr::Const(0),
            irq_line: None,
            events: vec![
                // Kick the device so BUSY rises for 30 us...
                RecordedEvent::bare(Event::Write {
                    iface: reg("ARG", 0x4),
                    value: SymExpr::Const(1),
                }),
                // ...then poll it down with a 5 us step: ~6+ iterations.
                RecordedEvent::bare(Event::Poll {
                    iface: reg("BUSY", 0x8),
                    body: vec![],
                    cond: Constraint::eq_const(0),
                    delay_us: 5,
                    max_iters: 1000,
                }),
            ],
            meta: TemplateMeta::default(),
        };
        let mut d = Driverlet::new("rig", "replay_poll", vec![t]);
        d.sign(b"rigkey");
        r.load_driverlet(d, b"rigkey").unwrap();
        let dispatch = r.io_mut().replay_dispatch_cost_ns();
        let cost = r.io_mut().cost_model();
        let t0 = platform.now_ns();
        let mut buf = [0u8; 4];
        r.invoke("replay_poll", &HashMap::new(), &mut buf).unwrap();
        let elapsed = platform.now_ns() - t0;
        // The device stays busy for 30 us and the poll steps every 5 us:
        // 7 reads (6 delay quanta) before BUSY clears. Per-read dispatch
        // accounting must therefore charge at least reset + delays + 8
        // dispatches (1 write + 7 polled reads); the old once-per-poll-event
        // model stops 6 dispatches short of this bound.
        let floor = cost.soft_reset_ns + 6 * 5_000 + 8 * dispatch;
        assert!(
            elapsed >= floor,
            "poll reads must each be charged a dispatch (elapsed {elapsed} ns < floor {floor} ns)"
        );
    }

    #[test]
    fn second_secure_window_generalises_beyond_dma() {
        // Two secure devices; the template's home device is `rig`, but it
        // also touches `aux` registers. Under the old hardcoded rule only a
        // device literally named "dma" qualified.
        struct AuxDev;
        impl MmioDevice for AuxDev {
            fn name(&self) -> &'static str {
                "aux-engine"
            }
            fn mmio_base(&self) -> u64 {
                0x3f50_0000
            }
            fn mmio_len(&self) -> u64 {
                0x100
            }
            fn read32(&mut self, _offset: u64, _now: u64) -> u32 {
                0
            }
            fn write32(&mut self, _offset: u64, _val: u32, _now: u64) {}
            fn tick(&mut self, _now: u64) {}
            fn soft_reset(&mut self, _now: u64) {}
            fn irq_line(&self) -> Option<u32> {
                None
            }
        }
        let platform = rig_platform();
        platform.bus.lock().attach(Box::new(AuxDev)).unwrap();
        let mut t = rig_template(8);
        t.events.push(RecordedEvent::bare(Event::Write {
            iface: Iface::Reg { addr: 0x3f50_0010, name: "AUXCTL".into() },
            value: SymExpr::Const(1),
        }));
        let mut d = Driverlet::new("rig", "replay_rig", vec![t]);
        d.sign(b"rigkey");

        // Not secure yet: the load must fail.
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        assert!(matches!(
            r.load_driverlet(d.clone(), b"rigkey"),
            Err(ReplayError::InvalidTemplate(_))
        ));

        // Assign the second device to the TEE: the same bundle now loads.
        platform.bus.lock().set_device_secure("aux-engine", true).unwrap();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        r.load_driverlet(d, b"rigkey").unwrap();
        assert_eq!(r.entries(), vec!["replay_rig".to_string()]);
    }

    #[test]
    fn divergence_reports_point_at_the_failing_event() {
        // Make the constrained ID read fail by poking a template expecting a
        // different constant.
        let platform = rig_platform();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let mut t = rig_template(8);
        // Event 5 is the constrained ID read; expect the wrong value.
        if let Event::Read { constraint, .. } = &mut t.events[5].event {
            *constraint = Constraint::eq_const(0x99);
        } else {
            panic!("event 5 should be the ID read");
        }
        let mut d = Driverlet::new("rig", "replay_rig", vec![t]);
        d.sign(b"rigkey");
        r.load_driverlet(d, b"rigkey").unwrap();
        let mut buf = [0u8; 8];
        let err = r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap_err();
        match err {
            ReplayError::Diverged(report) => {
                assert_eq!(report.failure.event_index, 5);
                assert_eq!(report.failure.observed, Some(0x2a));
                assert_eq!(report.attempts, 3);
                assert!(report.failure.event.contains("read"));
                assert!(describe_divergence(&report).contains("rig_io"));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        assert_eq!(r.stats().divergences, 3);
    }

    // -----------------------------------------------------------------------
    // Response-mutator fault injection (crate::inject).
    // -----------------------------------------------------------------------

    use crate::inject::{ConstraintFlipper, FaultPlan, MutationCtx, ResponseMutator};

    fn rig_replayer() -> (Platform, Replayer) {
        let platform = rig_platform();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        r.load_driverlet(rig_driverlet(8), b"rigkey").unwrap();
        (platform, r)
    }

    #[test]
    fn free_roaming_flipper_forces_a_typed_divergence() {
        let (_p, mut r) = rig_replayer();
        let (flipper, outcome) =
            ConstraintFlipper::new(FaultPlan { sticky: true, ..FaultPlan::default() });
        r.set_response_mutator(Box::new(flipper));
        let mut buf = [0u8; 8];
        let err = r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap_err();
        match err {
            ReplayError::Diverged(report) => {
                // The first falsifiable observation is the BUSY poll
                // (event 3, cond eq_const(0)): the flip keeps it nonzero
                // until max_iters overruns.
                assert_eq!(report.failure.event_index, 3);
                assert!(
                    report.failure.reason.contains("poll condition"),
                    "unexpected reason: {}",
                    report.failure.reason
                );
                assert_eq!(report.attempts, 3, "the fault must persist across resets");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        assert_eq!(r.stats().divergences, 3);
        let o = outcome.lock().unwrap();
        assert_eq!(o.engaged_invocations, 1);
        assert!(o.mutated_reads > 0);

        // Clearing the mutator restores faithful replay on the same lane.
        r.clear_response_mutator();
        let ok = r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap();
        assert!(!ok.recovered_divergence);
        assert_eq!(ok.captured.get("id"), Some(&0x2a));
    }

    #[test]
    fn targeted_leaf_flip_diverges_at_exactly_that_site() {
        // Target the constrained ID read (event 5, Eq(0x2a)) by its op and
        // cons indices, derived from the program's own introspection API.
        let prog = compile(&rig_template(8)).unwrap();
        let site = prog
            .constraint_sites()
            .into_iter()
            .find(|s| s.desc.contains("0x2a"))
            .expect("ID read site");
        let dlt_template::SiteKind::Read { op, .. } = site.kind else {
            panic!("expected a read site")
        };
        let (_p, mut r) = rig_replayer();
        let (flipper, outcome) = ConstraintFlipper::new(FaultPlan {
            op_index: Some(op),
            cons_index: Some((site.cons.start + site.cons.len - 1) as usize),
            sticky: true,
            ..FaultPlan::default()
        });
        r.set_response_mutator(Box::new(flipper));
        let mut buf = [0u8; 8];
        let err = r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap_err();
        match err {
            ReplayError::Diverged(report) => {
                assert_eq!(report.failure.event_index, 5, "must fail at the ID read");
                assert!(report.failure.reason.contains("constraint"));
                let injected = outcome.lock().unwrap().last_value;
                assert_eq!(report.failure.observed, injected, "report shows the mutated value");
                assert_ne!(injected, Some(0x2a));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn one_shot_mutation_is_recovered_by_reset_and_retry() {
        /// Mutates exactly one observation ever: the first constrained read
        /// of the first engaged invocation. Attempt 1 diverges; attempt 2
        /// replays cleanly, so the invocation *succeeds* with
        /// `recovered_divergence` set.
        struct OneShot {
            fired: bool,
        }
        impl ResponseMutator for OneShot {
            fn begin_invocation(&mut self, _program: &dlt_template::ReplayProgram) -> bool {
                true
            }
            fn mutate(&mut self, ctx: &MutationCtx<'_>) -> Option<u64> {
                if self.fired || ctx.poll_iteration.is_some() {
                    return None;
                }
                self.fired = true;
                Some(!ctx.observed)
            }
        }
        let (_p, mut r) = rig_replayer();
        r.set_response_mutator(Box::new(OneShot { fired: false }));
        let mut buf = [0u8; 8];
        let out = r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap();
        assert!(out.recovered_divergence, "the transient fault must be recovered");
        assert_eq!(r.stats().divergences, 1);
        assert_eq!(out.captured.get("id"), Some(&0x2a));
    }

    #[test]
    fn non_sticky_plans_engage_exactly_one_invocation() {
        let (_p, mut r) = rig_replayer();
        let (flipper, outcome) =
            ConstraintFlipper::new(FaultPlan { skip_invocations: 1, ..FaultPlan::default() });
        r.set_response_mutator(Box::new(flipper));
        let mut buf = [0u8; 8];
        // Invocation 1 is skipped, invocation 2 diverges, invocation 3 is
        // clean again without any clearing.
        r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap();
        assert!(matches!(
            r.invoke("replay_rig", &rig_args(3), &mut buf),
            Err(ReplayError::Diverged(_))
        ));
        r.invoke("replay_rig", &rig_args(3), &mut buf).unwrap();
        assert_eq!(outcome.lock().unwrap().engaged_invocations, 1);
    }
}
