//! Property tests of the compact binary bundle codec (§8.3.4).
//!
//! Randomised driverlets — random parameter constraints, expression trees,
//! event sequences and metadata — must round-trip `Driverlet` → binary →
//! `Driverlet` with full structural equality and a surviving signature; and
//! the decoder must be total: truncations and bit flips of valid bundles
//! yield `SignError::Malformed` (or a bundle that no longer verifies),
//! never a panic.

use proptest::prelude::*;
use proptest::TestRng;

use driverlets::template::{
    Constraint, DataDirection, DmaRole, Driverlet, Event, Iface, ParamSpec, ReadSink,
    RecordedEvent, SignError, SourceSite, SymExpr, Template, TemplateMeta,
};

/// Build a pseudo-random expression tree over the given parameter names.
fn gen_expr(rng: &mut TestRng, params: &[String], captures: &[String], depth: u32) -> SymExpr {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => SymExpr::Const(rng.next_u64()),
            1 if !params.is_empty() => {
                SymExpr::Param(params[rng.below(params.len() as u64) as usize].clone())
            }
            2 if !captures.is_empty() => {
                SymExpr::Captured(captures[rng.below(captures.len() as u64) as usize].clone())
            }
            _ => SymExpr::DmaBase(rng.below(2) as usize),
        };
    }
    let a = Box::new(gen_expr(rng, params, captures, depth - 1));
    let b = Box::new(gen_expr(rng, params, captures, depth - 1));
    match rng.below(9) {
        0 => SymExpr::And(a, b),
        1 => SymExpr::Or(a, b),
        2 => SymExpr::Xor(a, b),
        3 => SymExpr::Add(a, b),
        4 => SymExpr::Sub(a, b),
        5 => SymExpr::Mul(a, b),
        6 => SymExpr::Shl(a, rng.below(64) as u32),
        7 => SymExpr::Shr(a, rng.below(64) as u32),
        _ => SymExpr::Not(a),
    }
}

fn gen_constraint(rng: &mut TestRng, params: &[String], depth: u32) -> Constraint {
    match rng.below(if depth == 0 { 7 } else { 9 }) {
        0 => Constraint::Any,
        1 => Constraint::Eq(gen_expr(rng, params, &[], 2)),
        2 => Constraint::Ne(gen_expr(rng, params, &[], 1)),
        3 => {
            let min = rng.below(1 << 32);
            Constraint::InRange { min, max: min + rng.below(1 << 20) }
        }
        4 => Constraint::OneOf((0..1 + rng.below(6)).map(|_| rng.next_u64()).collect()),
        5 => Constraint::MaskEq { mask: rng.next_u64(), expected: rng.next_u64() },
        6 => Constraint::MaskClear { mask: rng.next_u64() },
        7 => Constraint::All(
            (0..1 + rng.below(3)).map(|_| gen_constraint(rng, params, depth - 1)).collect(),
        ),
        _ => Constraint::AnyOf(
            (0..1 + rng.below(3)).map(|_| gen_constraint(rng, params, depth - 1)).collect(),
        ),
    }
}

fn gen_event(rng: &mut TestRng, params: &[String], captures: &[String], depth: u32) -> Event {
    let iface = |rng: &mut TestRng| match rng.below(3) {
        0 => Iface::Reg {
            addr: 0x3f20_0000 + rng.below(0x1000) * 4,
            name: format!("R{}", rng.below(40)),
        },
        1 => Iface::Shm { alloc: rng.below(2) as usize, offset: rng.below(4096) },
        _ => Iface::Env(dlt_template::EnvApi::GetTs),
    };
    let sink = |rng: &mut TestRng| match rng.below(3) {
        0 => ReadSink::Discard,
        1 if !captures.is_empty() => {
            ReadSink::Capture(captures[rng.below(captures.len() as u64) as usize].clone())
        }
        _ => ReadSink::UserData { offset: rng.below(1 << 16) },
    };
    match rng.below(if depth == 0 { 9 } else { 10 }) {
        0 => Event::Read {
            iface: iface(rng),
            constraint: gen_constraint(rng, params, 2),
            len: 4,
            sink: sink(rng),
        },
        1 => Event::DmaAlloc {
            len: gen_expr(rng, params, captures, 2),
            role: [
                DmaRole::Descriptor,
                DmaRole::DataIn,
                DmaRole::DataOut,
                DmaRole::Queue,
                DmaRole::Other,
            ][rng.below(5) as usize],
        },
        2 => Event::GetRandBytes { len: rng.below(64) as u32, sink: sink(rng) },
        3 => Event::GetTs { len: 8, sink: sink(rng) },
        4 => Event::WaitForIrq { line: rng.below(64) as u32, timeout_us: rng.below(1 << 30) },
        5 => Event::Write { iface: iface(rng), value: gen_expr(rng, params, captures, 3) },
        6 => Event::CopyUserToDma {
            alloc: rng.below(2) as usize,
            offset: rng.below(4096),
            user_offset: rng.below(1 << 16),
            len: gen_expr(rng, params, captures, 1),
        },
        7 => Event::CopyDmaToUser {
            alloc: rng.below(2) as usize,
            offset: rng.below(4096),
            user_offset: rng.below(1 << 16),
            len: gen_expr(rng, params, captures, 1),
        },
        8 => Event::Delay { us: rng.below(10_000) },
        _ => Event::Poll {
            iface: iface(rng),
            body: (0..rng.below(3)).map(|_| gen_event(rng, params, captures, 0)).collect(),
            cond: gen_constraint(rng, params, 1),
            delay_us: rng.below(1000),
            max_iters: rng.below(1 << 20),
        },
    }
}

fn gen_driverlet(seed: u64) -> Driverlet {
    let mut rng = TestRng::deterministic(&format!("driverlet-{seed}"));
    let params: Vec<String> = (0..1 + rng.below(4)).map(|i| format!("p{i}")).collect();
    let captures: Vec<String> = (0..rng.below(3)).map(|i| format!("c{i}")).collect();
    let n_templates = 1 + rng.below(3);
    let templates: Vec<Template> = (0..n_templates)
        .map(|t| {
            let n_events = 1 + rng.below(20);
            Template {
                name: format!("t{t}"),
                entry: "replay_fuzz".into(),
                device: "fuzzdev".into(),
                params: params
                    .iter()
                    .map(|p| ParamSpec {
                        name: p.clone(),
                        constraint: gen_constraint(&mut rng, &params, 2),
                    })
                    .collect(),
                direction: [
                    DataDirection::DeviceToUser,
                    DataDirection::UserToDevice,
                    DataDirection::None,
                ][rng.below(3) as usize],
                data_len: gen_expr(&mut rng, &params, &captures, 2),
                irq_line: if rng.below(2) == 0 { Some(rng.below(64) as u32) } else { None },
                events: (0..n_events)
                    .map(|_| {
                        let e = gen_event(&mut rng, &params, &captures, 1);
                        if rng.below(2) == 0 {
                            RecordedEvent::new(
                                e,
                                SourceSite::new("gold-driver.c", rng.below(9000) as u32),
                            )
                        } else {
                            RecordedEvent::bare(e)
                        }
                    })
                    .collect(),
                meta: TemplateMeta {
                    recorded_with: params.iter().map(|p| (p.clone(), rng.next_u64())).collect(),
                    notes: format!("fuzz bundle seed {seed}"),
                },
            }
        })
        .collect();
    Driverlet::new("fuzzdev", "replay_fuzz", templates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Driverlet -> binary -> Driverlet preserves structural equality and the
    /// developer signature (which is computed over the binary payload).
    #[test]
    fn binary_round_trip_preserves_bundle_and_signature(seed in 0u64..1u64 << 48) {
        let mut d = gen_driverlet(seed);
        d.sign(b"fuzz-key");
        let bytes = d.to_binary();
        let back = Driverlet::from_binary(&bytes).unwrap();
        prop_assert_eq!(&back, &d);
        prop_assert!(back.verify(b"fuzz-key").is_ok());
        // The two serialisations agree on the same signature.
        let via_json = Driverlet::from_json(&d.to_json()).unwrap();
        prop_assert!(via_json.verify(b"fuzz-key").is_ok());
    }

    /// Truncating a valid bundle at any random point is Malformed, never a
    /// panic.
    #[test]
    fn truncated_bundles_are_malformed(seed in 0u64..1u64 << 48, cut in 0u64..1000) {
        let mut d = gen_driverlet(seed);
        d.sign(b"fuzz-key");
        let bytes = d.to_binary();
        let n = (bytes.len() - 1) * cut as usize / 1000;
        prop_assert!(matches!(
            Driverlet::from_binary(&bytes[..n]),
            Err(SignError::Malformed(_))
        ));
    }

    /// Corrupting bytes of a valid bundle never panics; when the result still
    /// parses, either the content visibly changed or the signature breaks.
    #[test]
    fn corrupted_bundles_never_panic(seed in 0u64..1u64 << 48, at in 0u64..1000, flip in 1u8..=255) {
        let mut d = gen_driverlet(seed);
        d.sign(b"fuzz-key");
        let mut bytes = d.to_binary();
        let i = (bytes.len() - 1) * at as usize / 1000;
        bytes[i] ^= flip;
        match Driverlet::from_binary(&bytes) {
            Err(SignError::Malformed(_)) => {}
            Err(_) => {}
            Ok(back) => {
                prop_assert!(
                    back != d || back.verify(b"fuzz-key").is_err(),
                    "corruption at byte {} produced an identical verifying bundle", i
                );
            }
        }
    }

    /// Random garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Driverlet::from_binary(&data);
    }
}

// ---------------------------------------------------------------------------
// Explore-style near-miss bundles: deterministic mutations that land one
// step outside the valid encoding — a string length claiming one byte more
// than the input holds, a string count that overruns the input, a string
// index one past the interned table (the codec's register references ride
// the same index machinery), op pools truncated mid-template, and
// magic/version bumps. Every case must yield a typed
// `SignError::Malformed`, never a panic or a silently partial bundle.
// ---------------------------------------------------------------------------

/// A minimal LEB128 reader mirroring the codec's (private) varint, so the
/// tests can walk `DLTB ‖ version ‖ n_strings ‖ strings… ‖ body ‖ sig`.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn write_varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return out;
        }
        out.push(b | 0x80);
    }
}

/// Walk the string table and return
/// `(n_strings, count_offset, first_length_offset, body_offset)`.
fn table_layout(bytes: &[u8]) -> (u64, usize, usize, usize) {
    assert_eq!(&bytes[..4], b"DLTB");
    let mut pos = 5; // magic + version byte
    let count_offset = pos;
    let n = read_varint(bytes, &mut pos);
    let first_length_offset = pos;
    for _ in 0..n {
        let len = read_varint(bytes, &mut pos) as usize;
        pos += len;
    }
    (n, count_offset, first_length_offset, pos)
}

/// Replace the varint starting at `at` with the encoding of `value`.
fn splice_varint(bytes: &[u8], at: usize, value: u64) -> Vec<u8> {
    let mut end = at;
    read_varint(bytes, &mut end);
    let mut out = bytes[..at].to_vec();
    out.extend_from_slice(&write_varint(value));
    out.extend_from_slice(&bytes[end..]);
    out
}

fn near_miss_bundle() -> Vec<u8> {
    let mut d = gen_driverlet(0xD17);
    d.sign(b"fuzz-key");
    d.to_binary()
}

fn assert_malformed(bytes: &[u8], what: &str) {
    match Driverlet::from_binary(bytes) {
        Err(SignError::Malformed(_)) => {}
        other => panic!("{what}: expected a typed Malformed error, got {other:?}"),
    }
}

#[test]
fn near_miss_bad_magic_is_a_typed_error() {
    let mut bytes = near_miss_bundle();
    bytes[3] ^= 0x01; // "DLTB" -> "DLTC"
    assert_malformed(&bytes, "bad magic");
}

#[test]
fn near_miss_future_version_is_a_typed_error() {
    let mut bytes = near_miss_bundle();
    bytes[4] += 1;
    assert_malformed(&bytes, "version bump");
}

#[test]
fn near_miss_string_count_overrunning_the_input_is_a_typed_error() {
    let bytes = near_miss_bundle();
    let (_, count_offset, _, _) = table_layout(&bytes);
    let inflated = splice_varint(&bytes, count_offset, bytes.len() as u64 + 1);
    assert_malformed(&inflated, "inflated string count");
}

#[test]
fn near_miss_string_length_one_past_the_end_is_a_typed_error() {
    let bytes = near_miss_bundle();
    let (_, _, first_length_offset, _) = table_layout(&bytes);
    let mut end = first_length_offset;
    read_varint(&bytes, &mut end);
    // The tightest off-by-one: claim exactly one byte more than follows
    // the length varint.
    let remaining = (bytes.len() - end) as u64;
    let off_by_one = splice_varint(&bytes, first_length_offset, remaining + 1);
    assert_malformed(&off_by_one, "string length one past the end");
}

#[test]
fn near_miss_string_index_past_the_table_is_a_typed_error() {
    let bytes = near_miss_bundle();
    let (n, _, _, body_offset) = table_layout(&bytes);
    // The first body varint is the device-name string index; point it one
    // past the interned table (indices 0..n are valid, n is not).
    let out_of_table = splice_varint(&bytes, body_offset, n);
    assert_malformed(&out_of_table, "string index out of table");
}

#[test]
fn near_miss_truncated_op_pool_is_a_typed_error() {
    let bytes = near_miss_bundle();
    let (_, _, _, body_offset) = table_layout(&bytes);
    // Cut just inside the body, mid op pool, and inside the trailing
    // signature record: each must be a typed end-of-input.
    for cut in [body_offset + 1, body_offset + (bytes.len() - body_offset) / 2, bytes.len() - 9] {
        assert_malformed(&bytes[..cut], "truncated body");
    }
}
