//! # dlt-dev-usb — DWC2-class USB host controller and mass-storage device
//!
//! Substrate for the paper's USB driverlet case study (§7.2). It models:
//!
//! * [`hostctrl::UsbHostController`] — a DWC2-style host controller: core
//!   registers (`GINTSTS`, `GAHBCFG`, `HPRT`, `HFNUM`, ...), one host
//!   transmission channel (the record campaign reserves the first channel),
//!   DMA-based IN/OUT transfers and interrupt generation.
//! * [`device::UsbMassStorage`] — a USB flash drive implementing the
//!   bulk-only transport (CBW/CSW descriptors) over a SCSI disk
//!   ([`scsi::ScsiDisk`]): INQUIRY, TEST UNIT READY, READ CAPACITY,
//!   READ(10)/WRITE(10), REQUEST SENSE and MODE SENSE.
//!
//! The paper's observations reproduced here: the driver/device conversation
//! is descriptor-centric (CBW/CSW live in DMA memory, not registers); the
//! `HFNUM` frame counter and the monotonically increasing CBW tag are
//! time-dependent inputs that are *not* state-changing; unplugging the stick
//! mid-transfer surfaces as an unexpected `GINTSTS` value (§8.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod hostctrl;
pub mod regs;
pub mod scsi;

pub use device::UsbMassStorage;
pub use hostctrl::UsbHostController;
pub use scsi::ScsiDisk;

/// Physical base address of the USB host controller register window.
pub const USB_BASE: u64 = 0x3f98_0000;
/// Size of the USB register window (the paper quotes a 64 KB range).
pub const USB_LEN: u64 = 0x1_0000;

/// Logical block size of the USB disk in bytes.
pub const USB_BLOCK_SIZE: usize = 512;
/// Number of logical blocks on the simulated stick (~8 GB, the paper's
/// templates cover "the whole 15M blocks of the USB storage").
pub const USB_DISK_BLOCKS: u64 = 15_728_640;
/// Flash-translation-layer page size: sub-page writes trigger the
/// read-modify-write behaviour the paper observed (§7.2.3).
pub const USB_FTL_PAGE: usize = 4096;

use dlt_hw::{shared, Platform, Shared};

/// The USB subsystem wired onto a platform.
pub struct UsbSubsystem {
    /// Typed handle to the host controller (the mass-storage device plugs
    /// into its root port).
    pub hostctrl: Shared<UsbHostController>,
}

impl UsbSubsystem {
    /// Build the host controller with an attached mass-storage device and
    /// attach it to the platform's bus.
    pub fn attach(platform: &Platform) -> dlt_hw::HwResult<Self> {
        let disk = ScsiDisk::new(USB_DISK_BLOCKS);
        let device = UsbMassStorage::new(disk);
        let hostctrl = shared(UsbHostController::new(
            device,
            platform.mem.clone(),
            platform.irqs.clone(),
            platform.cost(),
        ));
        platform.bus.lock().attach(dlt_hw::device::SharedDevice::boxed(hostctrl.clone()))?;
        Ok(UsbSubsystem { hostctrl })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_attaches() {
        let p = Platform::new();
        let sys = UsbSubsystem::attach(&p).unwrap();
        assert!(p.bus.lock().device_names().contains(&"dwc2"));
        assert!(sys.hostctrl.lock().device().disk().total_blocks() == USB_DISK_BLOCKS);
    }
}
