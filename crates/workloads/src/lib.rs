//! # dlt-workloads — benchmark workloads and measurement harnesses
//!
//! Everything the paper's evaluation (§8.3) runs on top of the drivers:
//!
//! * [`block`] — a block-device abstraction with three execution paths per
//!   storage device: **native** (full gold driver behind a write-back cache
//!   and the kernel block layer), **native-sync** (same, but every write
//!   waits for the medium), and **driverlet** (the in-TEE replayer, composing
//!   requests from the recorded granularities).
//! * [`microdb`] — a small page-based embedded database standing in for
//!   SQLite: keyed records in 4 KiB bucket pages over any [`block::BlockDev`].
//! * [`suite`] — the six SQLite-derived benchmarks of Table 9 (select3,
//!   delete, idxby, io, selectG, insert3) with the paper's read/write ratios,
//!   the Figure 5 IOPS harness and the Table 9 template-invocation breakdown.
//! * [`camera`] — the Figure 6 capture-latency workloads (OneShot /
//!   ShortBurst / LongBurst at 720p/1080p/1440p).
//! * [`micro`] — the Figure 7 single-request latency microbenchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod camera;
pub mod micro;
pub mod microdb;
pub mod suite;

pub use block::{BlockDev, DriverletDev, NativeDev, StorageKind, StoragePath};
pub use microdb::MicroDb;
pub use suite::{run_sqlite_suite, BenchmarkResult, SqliteBenchmark};
