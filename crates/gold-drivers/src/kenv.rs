//! The kernel-environment interface gold drivers are written against.
//!
//! Everything a driver does to the outside world goes through [`HwIo`]:
//! register reads/writes, shared-memory (descriptor) accesses, interrupt
//! waits, DMA allocation, random bytes, timestamps and delays. The concrete
//! implementation ([`BusIo`]) talks to the simulated SoC from the normal
//! world; the recorder in `dlt-recorder` wraps any [`HwIo`] and logs every
//! call — the equivalent of the paper's DBT-based tracing (§6.1).

use dlt_hw::bus::MmioAttr;
use dlt_hw::mem::BumpDmaAllocator;
use dlt_hw::{DmaRegion, HwError, Shared, SystemBus, World};

/// Read or write direction of a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rw {
    /// Read from the device.
    Read,
    /// Write to the device.
    Write,
}

impl Rw {
    /// Encode as the paper's `rw` parameter (0x1 = read, 0x10 = write,
    /// Table 4).
    pub fn encode(self) -> u64 {
        match self {
            Rw::Read => 0x1,
            Rw::Write => 0x10,
        }
    }

    /// Decode the paper's `rw` encoding.
    pub fn decode(v: u64) -> Option<Rw> {
        match v {
            0x1 => Some(Rw::Read),
            0x10 => Some(Rw::Write),
            _ => None,
        }
    }
}

/// Request flags understood by the block drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoFlags {
    /// Bypass the DMA engine and move data by PIO (`O_DIRECT` in §7.1.3).
    pub direct: bool,
    /// Wait for the medium to commit the data before returning (`O_SYNC`).
    pub sync: bool,
}

impl IoFlags {
    /// Plain asynchronous, DMA-capable request.
    pub fn none() -> Self {
        IoFlags::default()
    }

    /// `O_SYNC` request.
    pub fn sync() -> Self {
        IoFlags { direct: false, sync: true }
    }

    /// `O_DIRECT` request.
    pub fn direct() -> Self {
        IoFlags { direct: true, sync: true }
    }
}

/// Errors surfaced by gold drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// A register/IRQ wait timed out.
    Timeout(String),
    /// The device reported an error status.
    Device(String),
    /// The request was malformed (bad length, out of range).
    Invalid(String),
    /// The medium is gone.
    NoMedium,
    /// Ran out of DMA memory.
    NoMemory,
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Timeout(s) => write!(f, "timeout: {s}"),
            DriverError::Device(s) => write!(f, "device error: {s}"),
            DriverError::Invalid(s) => write!(f, "invalid request: {s}"),
            DriverError::NoMedium => write!(f, "no medium"),
            DriverError::NoMemory => write!(f, "out of DMA memory"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<HwError> for DriverError {
    fn from(e: HwError) -> Self {
        match e {
            HwError::Timeout { what, waited_us } => {
                DriverError::Timeout(format!("{what} after {waited_us} us"))
            }
            other => DriverError::Device(other.to_string()),
        }
    }
}

/// The kernel-environment interface.
///
/// Every method is `#[track_caller]`-annotated in the tracing implementation
/// so recorded events carry the gold-driver source location the paper's
/// failure reports print (§5, §8.2.1).
pub trait HwIo {
    /// Read a 32-bit device register.
    fn readl(&mut self, addr: u64) -> u32;

    /// Write a 32-bit device register.
    fn writel(&mut self, addr: u64, val: u32);

    /// Poll a register until `(value & mask) == expect`, waiting `delay_us`
    /// between reads, for at most `timeout_us`. The standard
    /// `readl_poll_timeout` helper of the Linux driver framework; recorded
    /// directly as a `poll` meta event.
    fn readl_poll(
        &mut self,
        addr: u64,
        mask: u32,
        expect: u32,
        delay_us: u64,
        timeout_us: u64,
    ) -> Result<u32, DriverError>;

    /// Block until interrupt `line` is pending (and acknowledge delivery).
    fn wait_for_irq(&mut self, line: u32, timeout_us: u64) -> Result<(), DriverError>;

    /// Read a 32-bit word from a DMA region (descriptors, message queues).
    fn shm_read32(&mut self, region: DmaRegion, offset: u64) -> u32;

    /// Write a 32-bit word to a DMA region.
    fn shm_write32(&mut self, region: DmaRegion, offset: u64, val: u32);

    /// Allocate physically contiguous DMA memory.
    fn dma_alloc(&mut self, len: usize) -> Result<DmaRegion, DriverError>;

    /// Release every DMA allocation made since the last release (gold drivers
    /// free per request; the replayer frees per template).
    fn dma_release_all(&mut self);

    /// Obtain `len` random bytes from the environment.
    fn get_rand_bytes(&mut self, len: usize) -> Vec<u8>;

    /// Obtain a timestamp (nanoseconds of the environment's clock).
    fn get_ts(&mut self) -> u64;

    /// Busy-wait for `us` microseconds.
    fn delay_us(&mut self, us: u64);

    /// Copy payload bytes into a DMA region (data movement, not an
    /// interaction event).
    fn copy_to_dma(&mut self, region: DmaRegion, offset: u64, data: &[u8]);

    /// Copy payload bytes out of a DMA region.
    fn copy_from_dma(&mut self, region: DmaRegion, offset: u64, out: &mut [u8]);
}

/// Concrete [`HwIo`] implementation used by the normal-world gold drivers.
pub struct BusIo {
    bus: Shared<SystemBus>,
    world: World,
    attr: MmioAttr,
    dma: BumpDmaAllocator,
    rng_state: u64,
}

impl BusIo {
    /// Normal-world IO over `bus`, allocating DMA memory from `dma_region`.
    pub fn normal_world(bus: Shared<SystemBus>, dma_region: DmaRegion) -> Self {
        BusIo {
            bus,
            world: World::NonSecure,
            attr: MmioAttr::Cached,
            dma: BumpDmaAllocator::new(dma_region),
            rng_state: 0x853c_49e6_748f_ea9b,
        }
    }

    /// Secure-world IO (used by the replayer's environment in `dlt-tee`).
    pub fn secure_world(bus: Shared<SystemBus>, dma_region: DmaRegion) -> Self {
        BusIo {
            bus,
            world: World::Secure,
            attr: MmioAttr::Uncached,
            dma: BumpDmaAllocator::new(dma_region),
            rng_state: 0xda3e_39cb_94b9_5bdb,
        }
    }

    /// Peak DMA usage (bytes) — used by memory-overhead reporting.
    pub fn dma_high_water(&self) -> u64 {
        self.dma.high_water()
    }

    /// The bus handle.
    pub fn bus(&self) -> Shared<SystemBus> {
        self.bus.clone()
    }
}

impl HwIo for BusIo {
    fn readl(&mut self, addr: u64) -> u32 {
        self.bus.lock().mmio_read32(addr, self.world, self.attr).unwrap_or(0xffff_ffff)
    }

    fn writel(&mut self, addr: u64, val: u32) {
        let _ = self.bus.lock().mmio_write32(addr, val, self.world, self.attr);
    }

    fn readl_poll(
        &mut self,
        addr: u64,
        mask: u32,
        expect: u32,
        delay_us: u64,
        timeout_us: u64,
    ) -> Result<u32, DriverError> {
        let mut waited = 0u64;
        loop {
            let v = self.readl(addr);
            if v & mask == expect {
                return Ok(v);
            }
            if waited >= timeout_us {
                return Err(DriverError::Timeout(format!(
                    "poll of {addr:#x} for mask {mask:#x} == {expect:#x}"
                )));
            }
            self.delay_us(delay_us.max(1));
            waited += delay_us.max(1);
        }
    }

    fn wait_for_irq(&mut self, line: u32, timeout_us: u64) -> Result<(), DriverError> {
        self.bus.lock().wait_for_irq(line, timeout_us, self.world)?;
        Ok(())
    }

    fn shm_read32(&mut self, region: DmaRegion, offset: u64) -> u32 {
        self.bus.lock().ram_read32(region.base + offset, self.world).unwrap_or(0xffff_ffff)
    }

    fn shm_write32(&mut self, region: DmaRegion, offset: u64, val: u32) {
        let _ = self.bus.lock().ram_write32(region.base + offset, val, self.world);
    }

    fn dma_alloc(&mut self, len: usize) -> Result<DmaRegion, DriverError> {
        self.dma.alloc(len).map_err(|_| DriverError::NoMemory)
    }

    fn dma_release_all(&mut self) {
        self.dma.release_all();
    }

    fn get_rand_bytes(&mut self, len: usize) -> Vec<u8> {
        // xorshift* is plenty for nonce-style driver uses; the TEE variant in
        // dlt-tee uses the platform RNG service instead.
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.rng_state ^= self.rng_state >> 12;
            self.rng_state ^= self.rng_state << 25;
            self.rng_state ^= self.rng_state >> 27;
            let word = self.rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    fn get_ts(&mut self) -> u64 {
        self.bus.lock().clock().lock().now_ns()
    }

    fn delay_us(&mut self, us: u64) {
        self.bus.lock().delay_us(us);
    }

    fn copy_to_dma(&mut self, region: DmaRegion, offset: u64, data: &[u8]) {
        let _ = self.bus.lock().ram_write(region.base + offset, data, self.world);
    }

    fn copy_from_dma(&mut self, region: DmaRegion, offset: u64, out: &mut [u8]) {
        let _ = self.bus.lock().ram_read(region.base + offset, out, self.world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_hw::Platform;

    fn rig() -> (Platform, BusIo) {
        let p = Platform::new();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x100_000, 0x100_000));
        (p, io)
    }

    #[test]
    fn rw_encoding_matches_table4() {
        assert_eq!(Rw::Read.encode(), 0x1);
        assert_eq!(Rw::Write.encode(), 0x10);
        assert_eq!(Rw::decode(0x1), Some(Rw::Read));
        assert_eq!(Rw::decode(0x10), Some(Rw::Write));
        assert_eq!(Rw::decode(0x3), None);
    }

    #[test]
    fn dma_alloc_and_shm_round_trip() {
        let (_p, mut io) = rig();
        let r = io.dma_alloc(4096).unwrap();
        io.shm_write32(r, 0x10, 0xfeed_beef);
        assert_eq!(io.shm_read32(r, 0x10), 0xfeed_beef);
        io.copy_to_dma(r, 0x100, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut out = [0u8; 8];
        io.copy_from_dma(r, 0x100, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        io.dma_release_all();
        let r2 = io.dma_alloc(64).unwrap();
        assert_eq!(r2.base, r.base, "allocator restarts after release_all");
    }

    #[test]
    fn unmapped_register_reads_all_ones() {
        let (_p, mut io) = rig();
        assert_eq!(io.readl(0x3fff_0000), 0xffff_ffff);
    }

    #[test]
    fn delays_and_timestamps_advance_virtual_time() {
        let (p, mut io) = rig();
        let t0 = io.get_ts();
        io.delay_us(100);
        let t1 = io.get_ts();
        assert!(t1 >= t0 + 100_000);
        assert_eq!(p.clock.lock().now_ns(), t1);
    }

    #[test]
    fn random_bytes_vary_and_fill_the_request() {
        let (_p, mut io) = rig();
        let a = io.get_rand_bytes(16);
        let b = io.get_rand_bytes(16);
        assert_eq!(a.len(), 16);
        assert_ne!(a, b);
        assert_eq!(io.get_rand_bytes(3).len(), 3);
    }

    #[test]
    fn readl_poll_times_out_on_unmapped_register() {
        let (_p, mut io) = rig();
        let err = io.readl_poll(0x3fff_0000, 0xffff_ffff, 0, 10, 100).unwrap_err();
        assert!(matches!(err, DriverError::Timeout(_)));
    }

    #[test]
    fn io_flags_constructors() {
        assert!(IoFlags::sync().sync);
        assert!(!IoFlags::sync().direct);
        assert!(IoFlags::direct().direct);
        assert!(!IoFlags::none().sync);
    }

    #[test]
    fn driver_error_from_hw_error() {
        let e: DriverError = HwError::Timeout { what: "irq 9".into(), waited_us: 55 }.into();
        assert!(matches!(e, DriverError::Timeout(_)));
        let e: DriverError = HwError::Unmapped { addr: 0x10 }.into();
        assert!(matches!(e, DriverError::Device(_)));
    }
}
