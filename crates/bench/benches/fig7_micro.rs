//! Criterion bench for the Figure 7 single-request latency paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlt_workloads::block::{BlockDev, DriverletDev, NativeDev, StorageKind, StoragePath};

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_micro_mmc_read");
    group.sample_size(10);
    // Build both rigs once; measure repeated requests.
    let mut native = NativeDev::new(StorageKind::Mmc, StoragePath::NativeSync);
    let mut driverlet = DriverletDev::new(StorageKind::Mmc);
    for blkcnt in [8u32, 256] {
        group.bench_with_input(BenchmarkId::new("native", blkcnt), &blkcnt, |b, &n| {
            let mut buf = vec![0u8; n as usize * 512];
            b.iter(|| native.read_blocks(0, n, &mut buf).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("driverlet", blkcnt), &blkcnt, |b, &n| {
            let mut buf = vec![0u8; n as usize * 512];
            b.iter(|| driverlet.read_blocks(0, n, &mut buf).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
