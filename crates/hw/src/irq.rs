//! Interrupt controller model.
//!
//! Devices assert numbered interrupt lines, optionally at a future virtual
//! time (modelling completion latency). The CPU side — a gold driver's IRQ
//! handler or the replayer's interrupt context — waits for a line, which
//! advances virtual time until the assertion deadline passes.

use std::collections::BTreeMap;

/// Well-known interrupt line numbers on the simulated SoC.
pub mod lines {
    /// SDHOST (MMC controller) interrupt.
    pub const MMC: u32 = 56;
    /// DWC2 USB host controller interrupt.
    pub const USB: u32 = 9;
    /// VCHIQ doorbell 0 (VC4 -> ARM).
    pub const VCHIQ: u32 = 66;
    /// System DMA engine channel used by the SDHOST driver.
    pub const DMA: u32 = 27;
}

/// State of one interrupt line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Not asserted.
    Idle,
    /// Will become pending once virtual time reaches the deadline.
    Scheduled { deadline_ns: u64 },
    /// Pending now.
    Pending,
}

/// A simple level-triggered interrupt controller with scheduled assertions.
#[derive(Debug, Clone, Default)]
pub struct IrqController {
    lines: BTreeMap<u32, LineState>,
    /// Total number of assertions observed (for statistics / Table 5-style
    /// event accounting).
    assert_count: u64,
    /// Total number of times software acknowledged (cleared) a line.
    ack_count: u64,
}

impl IrqController {
    /// Create an interrupt controller with no lines asserted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert `line` immediately.
    pub fn assert_now(&mut self, line: u32) {
        self.lines.insert(line, LineState::Pending);
        self.assert_count += 1;
    }

    /// Schedule `line` to become pending at `deadline_ns` virtual time.
    ///
    /// If the line already has an earlier deadline or is already pending the
    /// earlier state wins (a device cannot "unassert by rescheduling").
    pub fn assert_at(&mut self, line: u32, deadline_ns: u64) {
        let next = match self.lines.get(&line) {
            Some(LineState::Pending) => LineState::Pending,
            Some(LineState::Scheduled { deadline_ns: d }) => {
                LineState::Scheduled { deadline_ns: (*d).min(deadline_ns) }
            }
            _ => LineState::Scheduled { deadline_ns },
        };
        self.lines.insert(line, next);
        self.assert_count += 1;
    }

    /// Clear (acknowledge) `line`.
    pub fn clear(&mut self, line: u32) {
        self.lines.insert(line, LineState::Idle);
        self.ack_count += 1;
    }

    /// Promote any scheduled assertion whose deadline has passed.
    pub fn tick(&mut self, now_ns: u64) {
        for state in self.lines.values_mut() {
            if let LineState::Scheduled { deadline_ns } = state {
                if *deadline_ns <= now_ns {
                    *state = LineState::Pending;
                }
            }
        }
    }

    /// Whether `line` is pending at `now_ns` (scheduled deadlines that have
    /// passed count as pending even before a `tick`).
    pub fn is_pending(&self, line: u32, now_ns: u64) -> bool {
        match self.lines.get(&line) {
            Some(LineState::Pending) => true,
            Some(LineState::Scheduled { deadline_ns }) => *deadline_ns <= now_ns,
            _ => false,
        }
    }

    /// The earliest future deadline on `line`, if one is scheduled.
    pub fn next_deadline(&self, line: u32) -> Option<u64> {
        match self.lines.get(&line) {
            Some(LineState::Scheduled { deadline_ns }) => Some(*deadline_ns),
            _ => None,
        }
    }

    /// The earliest scheduled deadline across all lines.
    pub fn earliest_deadline(&self) -> Option<u64> {
        self.lines
            .values()
            .filter_map(|s| match s {
                LineState::Scheduled { deadline_ns } => Some(*deadline_ns),
                _ => None,
            })
            .min()
    }

    /// Total number of assertion requests observed.
    pub fn assert_count(&self) -> u64 {
        self.assert_count
    }

    /// Total number of acknowledgements observed.
    pub fn ack_count(&self) -> u64 {
        self.ack_count
    }

    /// Drop all pending/scheduled state (used by device soft reset).
    pub fn reset_line(&mut self, line: u32) {
        self.lines.insert(line, LineState::Idle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_and_clear() {
        let mut irq = IrqController::new();
        assert!(!irq.is_pending(lines::MMC, 0));
        irq.assert_now(lines::MMC);
        assert!(irq.is_pending(lines::MMC, 0));
        irq.clear(lines::MMC);
        assert!(!irq.is_pending(lines::MMC, 0));
        assert_eq!(irq.assert_count(), 1);
        assert_eq!(irq.ack_count(), 1);
    }

    #[test]
    fn scheduled_assertion_becomes_pending_at_deadline() {
        let mut irq = IrqController::new();
        irq.assert_at(lines::USB, 1_000);
        assert!(!irq.is_pending(lines::USB, 999));
        assert!(irq.is_pending(lines::USB, 1_000));
        // tick promotes it to a hard Pending state
        irq.tick(1_500);
        assert!(irq.is_pending(lines::USB, 0));
    }

    #[test]
    fn earlier_deadline_wins() {
        let mut irq = IrqController::new();
        irq.assert_at(lines::VCHIQ, 5_000);
        irq.assert_at(lines::VCHIQ, 2_000);
        assert_eq!(irq.next_deadline(lines::VCHIQ), Some(2_000));
        irq.assert_at(lines::VCHIQ, 9_000);
        assert_eq!(irq.next_deadline(lines::VCHIQ), Some(2_000));
    }

    #[test]
    fn pending_is_not_downgraded_by_reschedule() {
        let mut irq = IrqController::new();
        irq.assert_now(lines::MMC);
        irq.assert_at(lines::MMC, 10_000);
        assert!(irq.is_pending(lines::MMC, 0));
    }

    #[test]
    fn earliest_deadline_across_lines() {
        let mut irq = IrqController::new();
        assert_eq!(irq.earliest_deadline(), None);
        irq.assert_at(lines::MMC, 700);
        irq.assert_at(lines::USB, 300);
        assert_eq!(irq.earliest_deadline(), Some(300));
    }

    #[test]
    fn reset_line_discards_scheduled_state() {
        let mut irq = IrqController::new();
        irq.assert_at(lines::DMA, 100);
        irq.reset_line(lines::DMA);
        assert!(!irq.is_pending(lines::DMA, 1_000));
        assert_eq!(irq.next_deadline(lines::DMA), None);
    }
}
