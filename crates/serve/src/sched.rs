//! Per-device submission queues, scheduling policies and admission QoS.
//!
//! Each served device owns one [`Lane`]: a bounded queue of pending
//! requests plus the per-session bookkeeping the deficit-round-robin
//! policy needs. The lane never executes anything itself — the service
//! drains batches out of it and hands them to the coalescer.
//!
//! [`Admission`] sits *in front of* the lanes: per-tenant token buckets
//! (sustained rate + burst, refilled on the virtual clock) and weighted
//! max-min in-flight shares, both enforced before a request ever reserves
//! queue depth. A flooding tenant is throttled at its own budget while its
//! victims keep admitting into the capacity the flooder can no longer
//! monopolise.
//!
//! Since the multi-core refactor, batches are **arrival-gated**: a lane
//! executes on its own clock, and a batch dispatched at lane time `t` may
//! only contain requests whose (virtual) *admission* time
//! ([`Pending::arrived_ns`] — the per-call SMC's return, or the doorbell
//! that drained the submission ring) is `<= t` — a core cannot serve a
//! request the TEE has not seen yet. Queues are FIFO in admission time,
//! so gating is a prefix under FIFO and a per-session prefix under
//! deficit round-robin.

use std::collections::{HashMap, VecDeque};

use crate::coalesce::{direction, Arrival};
use crate::{Device, Request, RequestId, ServeError, SessionId};

/// Virtual nanoseconds per second (token-bucket rate conversions).
const NS_PER_SEC: u64 = 1_000_000_000;

/// Backoff hint carried in a weighted-share rejection when the tenant has
/// no token-bucket rate to derive one from: roughly one short replay's
/// virtual service time, so the tenant retries after one of its own
/// in-flight requests has had a chance to complete.
const SHARE_RETRY_HINT_NS: u64 = 10_000;

/// Per-tenant QoS parameters, set via
/// [`crate::DriverletService::set_session_qos`] (sessions without one use
/// [`QosConfig::default_qos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionQos {
    /// Sustained admission rate in requests per virtual second. `0` means
    /// no rate limit (the token bucket is bypassed).
    pub rate_rps: u64,
    /// Token-bucket depth in requests: how far above the sustained rate a
    /// burst may go before throttling starts.
    pub burst: u64,
    /// Weighted max-min share weight: the tenant's in-flight bound on a
    /// device is `fleet_capacity * weight / Σ active weights` (idle
    /// tenants' shares redistribute to backlogged ones).
    pub weight: u64,
}

impl Default for SessionQos {
    fn default() -> Self {
        SessionQos { rate_rps: 0, burst: 16, weight: 1 }
    }
}

/// Admission-QoS knobs ([`crate::ServeConfig::qos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QosConfig {
    /// Master switch. Off (the default) preserves the pre-QoS admission
    /// behaviour exactly: no token buckets, no share bounds.
    pub enabled: bool,
    /// QoS applied to sessions that never called
    /// [`crate::DriverletService::set_session_qos`].
    pub default_qos: SessionQos,
}

/// One tenant's token bucket, denominated in virtual nanoseconds of
/// credit: a request costs `NS_PER_SEC / rate_rps` credit, the bucket
/// caps at `burst` requests' worth, and credit accrues 1:1 with the
/// virtual clock — so refill is a subtraction, not a background task.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    credit_ns: u64,
    last_refill_ns: u64,
}

/// The admission-QoS gate the front-end consults before reserving queue
/// depth. Single-owner state (the service front-end), so plain maps — the
/// lanes never touch this.
#[derive(Debug, Default)]
pub struct Admission {
    config: QosConfig,
    qos: HashMap<SessionId, SessionQos>,
    buckets: HashMap<SessionId, Bucket>,
    inflight: HashMap<(SessionId, Device), u64>,
}

impl Admission {
    /// A gate under `config`.
    pub fn new(config: QosConfig) -> Admission {
        Admission { config, ..Admission::default() }
    }

    /// Whether the gate enforces anything at all.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Install `qos` for `session` (replacing the config default).
    pub fn set_session(&mut self, session: SessionId, qos: SessionQos) {
        self.qos.insert(session, qos);
    }

    /// Drop a closed session's QoS state.
    pub fn forget_session(&mut self, session: SessionId) {
        self.qos.remove(&session);
        self.buckets.remove(&session);
        self.inflight.retain(|(s, _), _| *s != session);
    }

    fn qos_of(&self, session: SessionId) -> SessionQos {
        self.qos.get(&session).copied().unwrap_or(self.config.default_qos)
    }

    /// Credit cost of one request under `qos` (`None` when unlimited).
    fn cost_ns(qos: SessionQos) -> Option<u64> {
        (qos.rate_rps > 0).then(|| NS_PER_SEC / qos.rate_rps)
    }

    /// The tenant's weighted max-min in-flight bound on a device fleet of
    /// `fleet_capacity` total queue slots: idle tenants drop out of the
    /// denominator, so a lone backlogged tenant may use the whole fleet
    /// and the bound only bites while competitors are actually in flight.
    fn share_of(&self, session: SessionId, device: Device, fleet_capacity: usize) -> u64 {
        let w = self.qos_of(session).weight.max(1);
        let mut active_weight = w;
        for (&(s, d), &inflight) in &self.inflight {
            if d == device && s != session && inflight > 0 {
                active_weight += self.qos_of(s).weight.max(1);
            }
        }
        ((fleet_capacity as u64).saturating_mul(w) / active_weight).max(1)
    }

    /// Gate one request from `session` to `device` at virtual time
    /// `now_ns`, against the device fleet's total queue capacity. `Ok`
    /// charges the token bucket and provisionally counts the request in
    /// flight — pair it with [`Admission::on_done`] when the request
    /// leaves the service, or [`Admission::rollback`] if the submit fails
    /// downstream (queue full, routing reject). `Err` carries the
    /// `retry_after_ns` backoff hint for [`ServeError::Throttled`].
    pub fn admit(
        &mut self,
        session: SessionId,
        device: Device,
        fleet_capacity: usize,
        now_ns: u64,
    ) -> Result<(), u64> {
        if !self.config.enabled {
            return Ok(());
        }
        let qos = self.qos_of(session);
        let cost = Admission::cost_ns(qos);
        if let Some(cost) = cost {
            let cap = cost.saturating_mul(qos.burst.max(1));
            let bucket = self
                .buckets
                .entry(session)
                .or_insert(Bucket { credit_ns: cap, last_refill_ns: now_ns });
            let elapsed = now_ns.saturating_sub(bucket.last_refill_ns);
            bucket.credit_ns = cap.min(bucket.credit_ns.saturating_add(elapsed));
            bucket.last_refill_ns = now_ns;
            if bucket.credit_ns < cost {
                return Err(cost - bucket.credit_ns);
            }
        }
        let mine = self.inflight.get(&(session, device)).copied().unwrap_or(0);
        if mine >= self.share_of(session, device, fleet_capacity) {
            return Err(cost.unwrap_or(SHARE_RETRY_HINT_NS));
        }
        if let Some(cost) = cost {
            let bucket = self.buckets.get_mut(&session).expect("bucket created above");
            bucket.credit_ns -= cost;
        }
        *self.inflight.entry((session, device)).or_insert(0) += 1;
        Ok(())
    }

    /// The admitted request left the service (its completion was posted).
    pub fn on_done(&mut self, session: SessionId, device: Device) {
        if let Some(n) = self.inflight.get_mut(&(session, device)) {
            *n = n.saturating_sub(1);
        }
    }

    /// The admitted request never made it into a queue (downstream
    /// rejection): refund the token and the in-flight slot, so QoS
    /// accounting stays exact and a `QueueFull` burst does not also eat
    /// the tenant's rate budget.
    pub fn rollback(&mut self, session: SessionId, device: Device) {
        let qos = self.qos_of(session);
        if let (Some(cost), Some(bucket)) =
            (Admission::cost_ns(qos), self.buckets.get_mut(&session))
        {
            let cap = cost.saturating_mul(qos.burst.max(1));
            bucket.credit_ns = cap.min(bucket.credit_ns.saturating_add(cost));
        }
        self.on_done(session, device);
    }
}

/// Scheduling policy for draining a device's submission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Serve strictly in arrival order across all sessions.
    #[default]
    Fifo,
    /// Deficit round-robin across sessions: each session's deficit grows
    /// by `quantum_blocks` per scheduling round and pays per request in
    /// block-equivalents ([`Request::cost_blocks`]), so a session issuing
    /// large requests cannot starve sessions issuing small ones.
    DeficitRoundRobin {
        /// Deficit added to each backlogged session per round.
        quantum_blocks: u64,
    },
}

/// One queued request.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Request id (unique per service).
    pub id: RequestId,
    /// Owning session.
    pub session: SessionId,
    /// The request itself.
    pub req: Request,
    /// Virtual (control-clock) time the client *initiated* the request —
    /// latency is measured from here, so it includes whatever the submit
    /// path itself cost (the per-call SMC, or the wait for a doorbell).
    pub submitted_ns: u64,
    /// Virtual (control-clock) time the TEE *admitted* the request — the
    /// per-call SMC's return, or the doorbell that drained it out of the
    /// submission ring. A lane may not serve the request before this
    /// instant (`arrived_ns >= submitted_ns` by construction).
    pub arrived_ns: u64,
}

/// A device's bounded submission queue.
pub struct Lane {
    queue: VecDeque<Pending>,
    capacity: usize,
    /// DRR state: deficit per backlogged session.
    deficits: HashMap<SessionId, u64>,
    /// Round-robin order: sessions in first-backlog order.
    rr_order: Vec<SessionId>,
    rr_cursor: usize,
    /// High-water mark of the queue depth (for stats/tests).
    high_water: usize,
}

impl Lane {
    /// An empty lane holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        Lane {
            queue: VecDeque::new(),
            capacity,
            deficits: HashMap::new(),
            rr_order: Vec::new(),
            rr_cursor: 0,
            high_water: 0,
        }
    }

    /// Queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the lane has no queued work.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Deepest the queue has been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Earliest (virtual) admission time among queued requests. The queue
    /// is FIFO in admission time, so this is the front request.
    pub fn earliest_arrival_ns(&self) -> Option<u64> {
        self.queue.front().map(|p| p.arrived_ns)
    }

    /// The queue as the plug planner sees it: (session, arrival,
    /// direction) in arrival order. Lazy — the planner runs on the event
    /// loop's hot path and only inspects the prefix up to its hold
    /// deadline, so nothing is materialised.
    pub fn arrivals(&self) -> impl Iterator<Item = Arrival> + '_ {
        self.queue.iter().map(|p| Arrival {
            session: p.session,
            arrival_ns: p.arrived_ns,
            direction: direction(&p.req),
        })
    }

    /// Drop a closed session's scheduling state (its already-queued
    /// requests still execute; only the DRR bookkeeping is purged, so a
    /// long-lived service does not accumulate dead sessions).
    pub fn forget_session(&mut self, session: SessionId) {
        self.deficits.remove(&session);
        if self.queue.iter().any(|p| p.session == session) {
            // Still backlogged: keep the rotation slot until it drains.
            return;
        }
        if let Some(pos) = self.rr_order.iter().position(|s| *s == session) {
            self.rr_order.remove(pos);
            if pos < self.rr_cursor {
                self.rr_cursor -= 1;
            }
        }
    }

    /// Enqueue, or reject with [`ServeError::QueueFull`] (backpressure).
    pub fn push(&mut self, p: Pending, device: crate::Device) -> Result<(), ServeError> {
        if self.queue.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                device,
                depth: self.queue.len(),
                capacity: self.capacity,
                high_water: self.high_water.max(self.queue.len()),
                fleet: Vec::new(),
            });
        }
        if !self.rr_order.contains(&p.session) {
            self.rr_order.push(p.session);
        }
        self.queue.push_back(p);
        self.high_water = self.high_water.max(self.queue.len());
        Ok(())
    }

    /// Take *every* queued request out of the lane and reset the DRR
    /// bookkeeping — the quarantine drain. The evicted requests keep
    /// their stamps; the supervisor re-routes them (clean reads to
    /// healthy siblings, the rest back here after the soft reset).
    pub fn evict_all(&mut self) -> Vec<Pending> {
        self.deficits.clear();
        self.rr_order.clear();
        self.rr_cursor = 0;
        self.queue.drain(..).collect()
    }

    /// Drain the next batch (at most `window` requests) under `policy`,
    /// taking only requests that have arrived by lane time `arrived_by`.
    pub fn next_batch(&mut self, policy: Policy, window: usize, arrived_by: u64) -> Vec<Pending> {
        match policy {
            Policy::Fifo => {
                // FIFO in admission time: the arrived set is a prefix.
                let n = self
                    .queue
                    .iter()
                    .take(window)
                    .take_while(|p| p.arrived_ns <= arrived_by)
                    .count();
                self.queue.drain(..n).collect()
            }
            Policy::DeficitRoundRobin { quantum_blocks } => {
                self.drr_batch(quantum_blocks.max(1), window, arrived_by)
            }
        }
    }

    fn pop_for_session(&mut self, session: SessionId) -> Option<Pending> {
        let idx = self.queue.iter().position(|p| p.session == session)?;
        self.queue.remove(idx)
    }

    fn session_has_work(&self, session: SessionId) -> bool {
        self.queue.iter().any(|p| p.session == session)
    }

    /// The cost of the session's *next* request, provided it has arrived.
    /// Per-session order is submission order, so an unarrived front
    /// request blocks the session's later requests too.
    fn arrived_front_cost(&self, session: SessionId, arrived_by: u64) -> Option<u64> {
        self.queue
            .iter()
            .find(|p| p.session == session)
            .filter(|p| p.arrived_ns <= arrived_by)
            .map(|p| p.req.cost_blocks())
    }

    fn drr_batch(&mut self, quantum: u64, window: usize, arrived_by: u64) -> Vec<Pending> {
        let mut batch = Vec::new();
        // Iterate sessions round-robin from the saved cursor; stop after a
        // full rotation that contributed nothing (deficits keep
        // accumulating across calls, so large requests are served
        // eventually) or when the batch window fills.
        let mut barren_rotations = 0usize;
        while batch.len() < window
            && self.queue.iter().any(|p| p.arrived_ns <= arrived_by)
            && !self.rr_order.is_empty()
        {
            self.rr_cursor %= self.rr_order.len();
            let session = self.rr_order[self.rr_cursor];
            if !self.session_has_work(session) {
                // Active-list DRR: an idle session forfeits its deficit and
                // leaves the rotation (it rejoins on its next submit) — so
                // a long-lived lane never accumulates dead sessions.
                self.deficits.remove(&session);
                self.rr_order.remove(self.rr_cursor);
                continue;
            }
            let mut took_any = false;
            if self.arrived_front_cost(session, arrived_by).is_some() {
                let deficit = self.deficits.entry(session).or_insert(0);
                *deficit += quantum;
                while batch.len() < window {
                    let Some(front_cost) = self.arrived_front_cost(session, arrived_by) else {
                        break;
                    };
                    let deficit = self.deficits.entry(session).or_insert(0);
                    if *deficit < front_cost {
                        break;
                    }
                    *deficit -= front_cost;
                    let p = self.pop_for_session(session).expect("front cost implies presence");
                    batch.push(p);
                    took_any = true;
                }
            }
            // A session whose work has not arrived yet keeps its rotation
            // slot (and deficit) but earns no quantum this round.
            self.rr_cursor += 1;
            barren_rotations = if took_any { 0 } else { barren_rotations + 1 };
            if barren_rotations >= self.rr_order.len() {
                break;
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn rd(session: SessionId, id: RequestId, blkid: u32, blkcnt: u32) -> Pending {
        Pending {
            id,
            session,
            req: Request::Read { device: Device::Mmc, blkid, blkcnt },
            submitted_ns: 0,
            arrived_ns: 0,
        }
    }

    #[test]
    fn fifo_preserves_arrival_order_and_bounds_the_queue() {
        let mut lane = Lane::new(3);
        for i in 0..3u64 {
            lane.push(rd(1, i, i as u32, 1), Device::Mmc).unwrap();
        }
        assert!(matches!(
            lane.push(rd(1, 9, 9, 1), Device::Mmc),
            Err(ServeError::QueueFull { depth: 3, capacity: 3, .. })
        ));
        let batch = lane.next_batch(Policy::Fifo, 10, u64::MAX);
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(lane.is_empty());
        assert_eq!(lane.high_water(), 3);
        assert_eq!(lane.capacity(), 3);
    }

    #[test]
    fn batches_are_arrival_gated_under_both_policies() {
        let mk = |session: SessionId, id: RequestId, submitted_ns: u64| Pending {
            id,
            session,
            req: Request::Read { device: Device::Mmc, blkid: id as u32, blkcnt: 1 },
            submitted_ns,
            arrived_ns: submitted_ns,
        };
        // FIFO: only the prefix that has arrived by lane time 150 drains.
        let mut lane = Lane::new(8);
        lane.push(mk(1, 0, 100), Device::Mmc).unwrap();
        lane.push(mk(1, 1, 150), Device::Mmc).unwrap();
        lane.push(mk(2, 2, 900), Device::Mmc).unwrap();
        let batch = lane.next_batch(Policy::Fifo, 8, 150);
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(lane.earliest_arrival_ns(), Some(900), "the future request stays queued");

        // DRR: a session whose work has not arrived earns no quantum and
        // blocks nothing; the arrived session's requests drain in order.
        let mut lane = Lane::new(8);
        lane.push(mk(1, 0, 100), Device::Mmc).unwrap();
        lane.push(mk(2, 1, 500), Device::Mmc).unwrap();
        lane.push(mk(1, 2, 120), Device::Mmc).unwrap();
        let batch = lane.next_batch(Policy::DeficitRoundRobin { quantum_blocks: 8 }, 8, 200);
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(lane.len(), 1);
    }

    #[test]
    fn drr_interleaves_sessions_fairly() {
        let mut lane = Lane::new(64);
        // Session 1 floods with large reads; session 2 issues small ones.
        let mut id = 0u64;
        for i in 0..4 {
            lane.push(rd(1, id, i * 256, 256), Device::Mmc).unwrap();
            id += 1;
        }
        for i in 0..4 {
            lane.push(rd(2, id, 10_000 + i, 1), Device::Mmc).unwrap();
            id += 1;
        }
        // A 256-block quantum lets each session take one large request (or
        // many small ones) per rotation.
        let batch = lane.next_batch(Policy::DeficitRoundRobin { quantum_blocks: 256 }, 4, u64::MAX);
        let sessions: Vec<SessionId> = batch.iter().map(|p| p.session).collect();
        assert!(
            sessions.contains(&1) && sessions.contains(&2),
            "both sessions must appear in the first batch, got {sessions:?}"
        );
        // Per-session order is preserved.
        let s2: Vec<RequestId> = batch.iter().filter(|p| p.session == 2).map(|p| p.id).collect();
        let mut sorted = s2.clone();
        sorted.sort_unstable();
        assert_eq!(s2, sorted);
    }

    #[test]
    fn evict_all_empties_the_queue_and_resets_drr_state() {
        let mut lane = Lane::new(8);
        for i in 0..3u64 {
            lane.push(rd(1, i, i as u32, 1), Device::Mmc).unwrap();
        }
        lane.push(rd(2, 9, 100, 1), Device::Mmc).unwrap();
        // Prime some DRR state before the drain.
        let _ = lane.next_batch(Policy::DeficitRoundRobin { quantum_blocks: 1 }, 1, u64::MAX);
        let evicted = lane.evict_all();
        assert_eq!(evicted.len(), 3, "everything still queued comes out");
        assert!(lane.is_empty());
        assert_eq!(lane.high_water(), 4, "high water survives the drain");
        // The lane is immediately usable again.
        lane.push(rd(3, 20, 0, 1), Device::Mmc).unwrap();
        let batch = lane.next_batch(Policy::DeficitRoundRobin { quantum_blocks: 8 }, 4, u64::MAX);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn disabled_admission_gates_nothing() {
        let mut gate = Admission::new(QosConfig::default());
        assert!(!gate.is_enabled());
        for _ in 0..10_000 {
            assert!(gate.admit(1, Device::Mmc, 1, 0).is_ok());
        }
    }

    #[test]
    fn token_bucket_caps_a_flooder_and_refills_on_the_virtual_clock() {
        let mut gate = Admission::new(QosConfig {
            enabled: true,
            default_qos: SessionQos { rate_rps: 1_000, burst: 4, weight: 1 },
        });
        // Burst of 4 admits from a full bucket; the 5th throttles with the
        // exact time-to-next-token hint (cost = 1e6 ns at 1000 rps).
        for _ in 0..4 {
            assert!(gate.admit(1, Device::Mmc, 1_000, 0).is_ok());
        }
        let retry = gate.admit(1, Device::Mmc, 1_000, 0).unwrap_err();
        assert_eq!(retry, 1_000_000);
        // Half a token's worth of virtual time later the hint shrinks …
        assert_eq!(gate.admit(1, Device::Mmc, 1_000, 500_000).unwrap_err(), 500_000);
        // … and one full token later the submit goes through.
        assert!(gate.admit(1, Device::Mmc, 1_000, 1_000_000).is_ok());
        // The bucket caps at `burst`: a long idle gap does not bank more.
        for _ in 0..5 {
            gate.on_done(1, Device::Mmc);
        }
        for _ in 0..4 {
            assert!(gate.admit(1, Device::Mmc, 1_000, NS_PER_SEC * 60).is_ok());
        }
        assert!(gate.admit(1, Device::Mmc, 1_000, NS_PER_SEC * 60).is_err());
    }

    #[test]
    fn weighted_shares_are_max_min_and_rollback_refunds() {
        let mut gate = Admission::new(QosConfig {
            enabled: true,
            default_qos: SessionQos { rate_rps: 0, burst: 16, weight: 1 },
        });
        gate.set_session(1, SessionQos { rate_rps: 0, burst: 16, weight: 3 });
        // Alone on the device, session 2 may fill the whole fleet
        // (max-min: idle tenants' shares redistribute).
        for _ in 0..8 {
            assert!(gate.admit(2, Device::Mmc, 8, 0).is_ok());
        }
        assert!(gate.admit(2, Device::Mmc, 8, 0).is_err(), "fleet capacity still bounds");
        // Session 1 (weight 3) now competes: its share is 8·3/4 = 6.
        for _ in 0..6 {
            assert!(gate.admit(1, Device::Mmc, 8, 0).is_ok());
        }
        let hint = gate.admit(1, Device::Mmc, 8, 0).unwrap_err();
        assert!(hint > 0, "share rejection carries a backoff hint");
        // Draining one of session 1's requests reopens its share;
        // a rollback (downstream QueueFull) does the same.
        gate.on_done(1, Device::Mmc);
        assert!(gate.admit(1, Device::Mmc, 8, 0).is_ok());
        gate.rollback(1, Device::Mmc);
        assert!(gate.admit(1, Device::Mmc, 8, 0).is_ok());
        // Shares are per device: the USB fleet is unaffected.
        assert!(gate.admit(1, Device::Usb, 8, 0).is_ok());
        // forget_session clears the tenant's footprint entirely.
        gate.forget_session(2);
        assert!(gate.admit(2, Device::Mmc, 8, 0).is_ok());
    }

    #[test]
    fn drr_small_quantum_still_serves_large_requests_eventually() {
        let mut lane = Lane::new(8);
        lane.push(rd(7, 1, 0, 256), Device::Mmc).unwrap();
        // Quantum far below the request cost: deficits must accumulate
        // across rounds rather than deadlock.
        let mut batches = Vec::new();
        for _ in 0..40 {
            let b = lane.next_batch(Policy::DeficitRoundRobin { quantum_blocks: 8 }, 4, u64::MAX);
            if !b.is_empty() {
                batches.push(b);
                break;
            }
        }
        assert_eq!(batches.len(), 1, "the large request must eventually be served");
    }
}
