//! Service-layer throughput: coalesced scheduler vs serial uncoalesced
//! issue, mixed MMC+USB+VCHIQ traffic racing a LongBurst capture,
//! 1→3-device weak scaling, the anticipatory-hold sweep, the
//! ring-vs-legacy submission comparison, the sequential-vs-threaded
//! wall-clock lane-parallelism curve, the routed replica-fleet
//! weak-scaling + spill experiments, and the adversarial-isolation
//! section (admission QoS, replica failover, lane quarantine, session
//! churn); persisted to `BENCH_serve.json`.
//! CI runs this with `--quick` and fails on any of the acceptance
//! assertions below.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p dlt-bench --bench serve_throughput            # full
//! cargo bench -p dlt-bench --bench serve_throughput -- --quick # CI smoke
//! ```
//!
//! The artifact path defaults to `BENCH_serve.json` in the working
//! directory and can be overridden with the `BENCH_SERVE_OUT` environment
//! variable. All reported numbers are deterministic virtual time.

use dlt_bench::serve_bench::{describe, emit_report, run_serve_bench, summary_line};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK").is_some();
    println!("== serve_throughput: multi-session service layer ==");
    println!(
        "recording driverlets and serving traffic ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = run_serve_bench(quick);
    print!("{}", describe(&report));
    println!("{}", summary_line(&report));
    assert!(
        report.coalescing.speedup >= 2.0,
        "acceptance: 8 coalesced sessions must reach >= 2x the serial request rate"
    );
    assert!(
        report.scaling.ratio_3v1 >= 1.8,
        "acceptance: 3 device lanes must scale mixed throughput >= 1.8x over 1 lane, got {:.2}x",
        report.scaling.ratio_3v1
    );
    // The third lane's evidence is makespan invariance: its ~2.3 s capture
    // must ride *inside* the block lanes' makespan. A regression that
    // re-serialised the camera lane against the block lanes would add the
    // capture to the elapsed time and trip this even though ratio_3v1
    // (dominated by the block lanes) would not move.
    let (two, three) = (&report.scaling.points[1], &report.scaling.points[2]);
    assert!(
        three.elapsed_ms <= two.elapsed_ms * 1.05,
        "acceptance: the camera capture must overlap the block lanes ({:.1} ms at 3 devices vs \
         {:.1} ms at 2)",
        three.elapsed_ms,
        two.elapsed_ms
    );
    assert!(
        report.mixed.block_p99_us < 1_000_000,
        "acceptance: block-read p99 must stay under 1 s beside a LongBurst capture, got {} us",
        report.mixed.block_p99_us
    );
    let baseline = report.hold_sweep.iter().find(|h| h.hold_budget_us == 0).expect("no-hold point");
    let default = report.hold_sweep.iter().find(|h| h.is_default).expect("default-budget point");
    assert!(
        default.latency.p50_us as f64 <= baseline.latency.p50_us as f64 * 1.10,
        "acceptance: default hold budget must keep p50 within 10% of no-hold ({} vs {} us)",
        default.latency.p50_us,
        baseline.latency.p50_us
    );
    // The ring-submission gates: one doorbell amortised over 16 staged
    // entries must cut world switches below 0.25 per request and lift the
    // mixed-workload request rate at least 1.5x over one-SMC-per-call,
    // without taxing the batch-1 closed-loop client.
    assert!(
        report.ring.ring.smcs_per_request <= 0.25,
        "acceptance: ring mode must spend <= 0.25 SMCs/request at doorbell batch {}, got {:.3}",
        report.ring.doorbell_batch,
        report.ring.ring.smcs_per_request
    );
    assert!(
        report.ring.speedup >= 1.5,
        "acceptance: ring mode must reach >= 1.5x the legacy request rate on the mixed \
         workload, got {:.2}x ({:.0} vs {:.0} req/s)",
        report.ring.speedup,
        report.ring.ring.rps,
        report.ring.legacy.rps
    );
    assert!(
        report.ring.batch1.ring_p50_us <= report.ring.batch1.legacy_p50_us,
        "acceptance: batch-1 ring p50 ({} us) must be no worse than per-call p50 ({} us)",
        report.ring.batch1.ring_p50_us,
        report.ring.batch1.legacy_p50_us
    );
    // The wall-clock lane-parallelism gate. Structure holds anywhere:
    // both arms finish every request at every lane count. The ≥ 2x
    // speedup bar is host time and needs real hardware parallelism, so it
    // only applies when the measuring host has at least 4 cores (CI
    // does; a 1-core dev container records the curve without gating it).
    let wc = &report.wall_clock;
    for p in &wc.points {
        assert!(
            p.requests > 0 && p.sequential_ms > 0.0 && p.threaded_ms > 0.0,
            "acceptance: wall-clock point at {} lane(s) must complete work on both arms",
            p.lanes
        );
    }
    let four = wc.points.iter().find(|p| p.lanes == 4).expect("4-lane wall-clock point");
    if wc.host_cores >= 4 {
        assert!(
            four.speedup >= 2.0,
            "acceptance: threaded lanes must cut 4-lane wall clock >= 2x over sequential on a \
             {}-core host, got {:.2}x ({:.1} ms vs {:.1} ms)",
            wc.host_cores,
            four.speedup,
            four.sequential_ms,
            four.threaded_ms
        );
    } else {
        println!(
            "(skipping the 4-lane >= 2x wall-clock gate: host exposes only {} core(s); \
             measured {:.2}x)",
            wc.host_cores, four.speedup
        );
    }

    // The routed replica-fleet gates. Determinism and structure hold
    // anywhere: every point completes its whole schedule through the
    // router, the skewed spill arm sheds load without rejections, and
    // spill keeps the hot shard's virtual-time p99 within 2x the balanced
    // baseline. The ≥ 1.7x weak-scaling bar at 8 vs 4 lanes is host time
    // and needs 8 hardware threads; smaller hosts record the curve
    // without gating it.
    let rt = &report.routed;
    for p in &rt.points {
        assert!(
            p.requests == 3 * u64::from(rt.requests_per_session) * p.lanes as u64,
            "acceptance: the {}-lane routed point must complete its whole schedule",
            p.lanes
        );
    }
    assert!(
        rt.spill.spills > 0,
        "acceptance: the skewed spill arm must shed clean reads to sibling replicas"
    );
    assert_eq!(
        rt.spill.rejections, 0,
        "acceptance: spill admission must absorb the skewed load without fleet-wide rejections"
    );
    assert!(
        rt.spill.p99_ratio <= 2.0,
        "acceptance: replica-aware spill must keep the saturated shard's p99 within 2x the \
         balanced baseline, got {:.2}x ({} us vs {} us)",
        rt.spill.p99_ratio,
        rt.spill.skewed_p99_us,
        rt.spill.balanced_p99_us
    );
    if wc.host_cores >= 8 {
        assert!(
            rt.ratio_8v4 >= 1.7,
            "acceptance: routed weak scaling must reach >= 1.7x rps at 8 vs 4 lanes on a \
             {}-core host, got {:.2}x",
            wc.host_cores,
            rt.ratio_8v4
        );
    } else {
        println!(
            "(skipping the 8-vs-4-lane >= 1.7x routed scaling gate: host exposes only {} \
             core(s); measured {:.2}x)",
            wc.host_cores, rt.ratio_8v4
        );
    }

    // The robustness-plane SLO gates. All four are deterministic virtual
    // time, so they hold on any host: admission QoS must keep the
    // flooder's blast radius off the victims' tail, failover must carry
    // clean reads past a faulted replica, the watchdog must quarantine
    // and restore the sick lane, and session churn must leak nothing.
    let iso = &report.isolation;
    assert_eq!(
        iso.victim_rejections, 0,
        "acceptance: admission QoS must never reject a victim while the flooder attacks"
    );
    assert!(
        iso.flooder_throttled > 0,
        "acceptance: the admission gate must visibly throttle the flooder"
    );
    assert!(
        iso.p99_ratio <= 2.0,
        "acceptance: victim p99 under attack must stay within 2x the flooder-free baseline, \
         got {:.2}x ({} us vs {} us)",
        iso.p99_ratio,
        iso.attack_p99_us,
        iso.baseline_p99_us
    );
    assert!(
        iso.failover.completion_rate >= 0.99,
        "acceptance: failover must complete >= 99% of clean reads past the sticky fault, \
         got {:.3} ({} of {})",
        iso.failover.completion_rate,
        iso.failover.completed_ok,
        iso.failover.clean_reads
    );
    assert_eq!(iso.failover.lost, 0, "acceptance: no read may be lost during the fault storm");
    assert!(
        iso.failover.failovers >= 1,
        "acceptance: reads homed on the faulted shard must retry on a sibling"
    );
    assert!(
        iso.failover.quarantines >= 1,
        "acceptance: the watchdog must quarantine the diverging lane"
    );
    assert!(
        iso.failover.lane_restored,
        "acceptance: the quarantined lane must serve its probation back to Healthy"
    );
    assert_eq!(
        iso.churn.leaked_series, 0,
        "acceptance: {} churn cycles must leak zero metrics series",
        iso.churn.cycles
    );

    let out = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    emit_report(&report, &out).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
