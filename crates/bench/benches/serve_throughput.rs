//! Service-layer throughput: coalesced scheduler vs serial uncoalesced
//! issue, plus a mixed MMC+USB+VCHIQ traffic run; persisted to
//! `BENCH_serve.json`.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p dlt-bench --bench serve_throughput            # full
//! cargo bench -p dlt-bench --bench serve_throughput -- --quick # CI smoke
//! ```
//!
//! The artifact path defaults to `BENCH_serve.json` in the working
//! directory and can be overridden with the `BENCH_SERVE_OUT` environment
//! variable. All reported numbers are deterministic virtual time.

use dlt_bench::serve_bench::{describe, emit_report, run_serve_bench, summary_line};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK").is_some();
    println!("== serve_throughput: multi-session service layer ==");
    println!(
        "recording driverlets and serving traffic ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = run_serve_bench(quick);
    print!("{}", describe(&report));
    println!("{}", summary_line(&report));
    assert!(
        report.coalescing.speedup >= 2.0,
        "acceptance: 8 coalesced sessions must reach >= 2x the serial request rate"
    );

    let out = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    emit_report(&report, &out).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
