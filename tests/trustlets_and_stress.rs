//! Trustlet end-to-end tests (Figure 8) and reduced-scale versions of the
//! §8.2.1 stress/vetting validation.

use dlt_core::{replay_mmc, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{
    pattern_buf, record_camera_driverlet_subset, record_mmc_driverlet_subset, DEV_KEY,
};
use dlt_tee::{SecureIo, TeeKernel};
use dlt_trustlets::{CredentialStore, SurveillanceTrustlet};

#[test]
fn surveillance_trustlet_stores_verifiable_frames() {
    let camera_driverlet = record_camera_driverlet_subset(&[1]).unwrap();
    let mmc_driverlet = record_mmc_driverlet_subset(&[256]).unwrap();

    let platform = Platform::new();
    let mmc = MmcSubsystem::attach(&platform).unwrap();
    VchiqSubsystem::attach(&platform).unwrap();
    TeeKernel::install(&platform, &["sdhost", "dma", "vchiq"]).unwrap();
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(camera_driverlet, DEV_KEY).unwrap();
    replayer.load_driverlet(mmc_driverlet, DEV_KEY).unwrap();

    let mut ta = SurveillanceTrustlet::new(720, 8192);
    let f0 = ta.capture_and_store(&mut replayer).unwrap();
    let f1 = ta.capture_and_store(&mut replayer).unwrap();
    assert_eq!(ta.frames_stored(), 2);
    assert_ne!(f0.first_block, f1.first_block);
    // The frames read back from the card are valid JPEGs.
    let jpeg0 = ta.verify_stored(&mut replayer, f0).unwrap();
    let jpeg1 = ta.verify_stored(&mut replayer, f1).unwrap();
    assert_eq!(jpeg0.len(), f0.img_size as usize);
    assert_eq!(jpeg1.len(), f1.img_size as usize);
    // The card actually holds the blocks (written by the driverlet, not the OS).
    assert!(mmc.sdhost.lock().card().blocks_written() >= u64::from(f0.blocks + f1.blocks));
}

#[test]
fn credential_store_round_trips_and_detects_corruption() {
    let driverlet = record_mmc_driverlet_subset(&[1]).unwrap();
    let platform = Platform::new();
    let mmc = MmcSubsystem::attach(&platform).unwrap();
    TeeKernel::install(&platform, &["sdhost", "dma"]).unwrap();
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(driverlet, DEV_KEY).unwrap();

    let store = CredentialStore::new(100, 8);
    store.store(&mut replayer, 3, b"totp-seed-123456").unwrap();
    assert_eq!(store.load(&mut replayer, 3).unwrap(), b"totp-seed-123456".to_vec());
    assert!(matches!(store.load(&mut replayer, 4), Err(dlt_trustlets::TrustletError::NotFound)));
    // Corrupt the stored block behind the trustlet's back: the checksum
    // catches it on the next load.
    let mut raw = mmc.sdhost.lock().card().peek_block(103);
    raw[20] ^= 0xff;
    mmc.sdhost.lock().card_mut().poke_block(103, &raw);
    assert!(matches!(store.load(&mut replayer, 3), Err(dlt_trustlets::TrustletError::Corrupt(_))));
}

#[test]
fn stress_many_replays_produce_no_divergences_and_full_integrity() {
    // Reduced-scale version of the paper's stress validation (the paper
    // enumerates templates over >31M blocks and 10K camera runs; the CI-sized
    // version covers dozens of scattered block ids across the whole card).
    let driverlet = record_mmc_driverlet_subset(&[1, 8]).unwrap();
    let platform = Platform::new();
    MmcSubsystem::attach(&platform).unwrap();
    TeeKernel::install(&platform, &["sdhost", "dma"]).unwrap();
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(driverlet, DEV_KEY).unwrap();

    let mut rounds = 0;
    for i in 0u64..40 {
        // Spread accesses across the whole 31M-block range.
        let blkid = ((i * 786_431) % (dlt_dev_mmc::CARD_BLOCKS - 8)) as u32;
        let blkcnt = if i % 2 == 0 { 1 } else { 8 };
        let payload = pattern_buf(blkcnt as usize * 512, i ^ 0xabcdef);
        let mut buf = payload.clone();
        replay_mmc(&mut replayer, 0x10, blkcnt, blkid, 0, &mut buf).unwrap();
        let mut back = vec![0u8; blkcnt as usize * 512];
        replay_mmc(&mut replayer, 0x1, blkcnt, blkid, 0, &mut back).unwrap();
        assert_eq!(back, payload, "round {i} at block {blkid}");
        rounds += 1;
    }
    assert_eq!(rounds, 40);
    assert_eq!(replayer.stats().divergences, 0);
    assert_eq!(replayer.stats().invocations, 80);
}

#[test]
fn static_vetting_passes_for_all_recorded_templates() {
    // §8.2.1 "statically vetting of templates": every bundled template passes
    // validation, declares the expected device, and contains the
    // state-changing events the record campaign requested.
    let driverlet = record_mmc_driverlet_subset(&[1, 8]).unwrap();
    assert!(driverlet.validate().is_ok());
    for t in &driverlet.templates {
        assert_eq!(t.device, "sdhost");
        assert!(t.state_changing_count() > 10, "{} has too few state-changing events", t.name);
        assert!(t.irq_line.is_some());
        // Each template's recorded sample input satisfies its own constraints.
        assert!(t.matches(&t.meta.recorded_with), "{} does not cover its own recording", t.name);
    }
}

#[test]
fn secure_memory_stays_within_the_reserved_pool_during_replay() {
    // The paper reserves 3 MB of TEE RAM; the largest recorded template
    // (256 blocks = 32 descriptor/page pairs) must fit comfortably.
    let driverlet = record_mmc_driverlet_subset(&[256]).unwrap();
    let platform = Platform::new();
    MmcSubsystem::attach(&platform).unwrap();
    TeeKernel::install(&platform, &["sdhost", "dma"]).unwrap();
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    let mut buf = vec![0u8; 256 * 512];
    replay_mmc(&mut replayer, 0x1, 256, 0, 0, &mut buf).unwrap();
    let high_water = replayer.io_mut().dma_high_water();
    assert!(high_water > 0);
    assert!(
        high_water <= dlt_tee::TEE_DMA_POOL_BYTES as u64,
        "replay used {high_water} bytes, more than the reserved pool"
    );
}
