//! VCHIQ/MMAL gold driver: queue management and the camera client.
//!
//! The full Linux stack runs three kernel threads (slot handler, sync,
//! recycle) and supports many concurrent services (§7.3.3); this driver keeps
//! the same message/queue mechanics but drives them synchronously, which is
//! also how the record campaign constrains the device state space (§3.2).

use dlt_dev_vchiq::msg::{CameraResolution, MmalMessage, MsgType};
use dlt_dev_vchiq::queue::{self, pagelist, QUEUE_BYTES, RX_AREA_OFF};
use dlt_dev_vchiq::{regs, VCHIQ_BASE};
use dlt_hw::irq::lines;
use dlt_hw::DmaRegion;

use crate::kenv::{DriverError, HwIo};

const fn reg(offset: u64) -> u64 {
    VCHIQ_BASE + offset
}

/// VCHIQ driver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VchiqStats {
    /// Messages sent to VC4.
    pub messages_sent: u64,
    /// Messages received from VC4.
    pub messages_received: u64,
    /// Frames captured.
    pub frames_captured: u64,
    /// Error replies received.
    pub errors: u64,
}

/// The VCHIQ driver with its MMAL camera client.
pub struct VchiqDriver<I: HwIo> {
    io: I,
    queue: Option<DmaRegion>,
    tx_pos: u32,
    rx_read_pos: u32,
    service: u32,
    connected: bool,
    camera_ready: bool,
    img_size: u32,
    record_mode: bool,
    stats: VchiqStats,
}

impl<I: HwIo> VchiqDriver<I> {
    /// Wrap an IO environment.
    pub fn new(io: I) -> Self {
        VchiqDriver {
            io,
            queue: None,
            tx_pos: 0,
            rx_read_pos: 0,
            service: 0,
            connected: false,
            camera_ready: false,
            img_size: 0,
            record_mode: false,
            stats: VchiqStats::default(),
        }
    }

    /// Access the underlying IO environment.
    pub fn io_mut(&mut self) -> &mut I {
        &mut self.io
    }

    /// Record-campaign mode: re-arm the capture port (disable, re-program
    /// the format, re-enable) before *every* frame of a burst, so each
    /// frame's device interaction starts from an identical port state and
    /// the trace stays input-deterministic (§3.2). Replayed burst templates
    /// consequently pay the per-frame re-initialisation the paper measures
    /// (11% over native for one frame, up to 2.7x for long bursts, §8.3.2);
    /// the native figure-6 path keeps the amortised single initialisation.
    pub fn set_record_mode(&mut self, record: bool) {
        self.record_mode = record;
    }

    /// Statistics.
    pub fn stats(&self) -> VchiqStats {
        self.stats
    }

    /// Frame size VC4 assigned for the current format (valid after
    /// [`Self::set_format`]).
    pub fn img_size(&self) -> u32 {
        self.img_size
    }

    /// Allocate the shared queue, publish it through the mailbox register and
    /// complete the VCHIQ connect handshake.
    pub fn connect(&mut self) -> Result<(), DriverError> {
        let queue = self.io.dma_alloc(QUEUE_BYTES)?;
        for (off, w) in queue::slot0_init_words() {
            self.io.shm_write32(queue, off, w);
        }
        // Table 6: MBOX_WRITE = queue & ~0x3fff.
        self.io.writel(reg(regs::MBOX_WRITE), (queue.base & !(queue::QUEUE_ALIGN - 1)) as u32);
        self.queue = Some(queue);
        self.tx_pos = 0;
        self.rx_read_pos = 0;

        let reply = self.transact(MmalMessage::new(MsgType::Connect, 0, vec![]))?;
        if reply.mtype != MsgType::ConnectAck {
            return Err(DriverError::Device(format!("unexpected reply {:?}", reply.mtype)));
        }
        self.connected = true;

        let reply = self.transact(MmalMessage::new(MsgType::OpenService, 0, vec![0x6d6d_616c]))?;
        if reply.mtype != MsgType::OpenServiceAck {
            return Err(DriverError::Device("service open failed".into()));
        }
        self.service = reply.service;
        Ok(())
    }

    /// Create the camera component (`ril.camera`).
    pub fn create_camera(&mut self) -> Result<(), DriverError> {
        let reply =
            self.transact(MmalMessage::new(MsgType::ComponentCreate, self.service, vec![]))?;
        if reply.mtype != MsgType::ComponentCreateAck {
            return Err(DriverError::Device("camera component create failed".into()));
        }
        self.camera_ready = true;
        Ok(())
    }

    /// Program the capture format; VC4 replies with the frame size it will
    /// produce (the `img_size` of Table 6).
    pub fn set_format(&mut self, resolution: CameraResolution) -> Result<u32, DriverError> {
        let reply = self.transact(MmalMessage::new(
            MsgType::PortSetFormat,
            self.service,
            vec![resolution.code()],
        ))?;
        if reply.mtype != MsgType::PortSetFormatAck || reply.payload.is_empty() {
            return Err(DriverError::Device("set format failed".into()));
        }
        self.img_size = reply.payload[0];
        Ok(self.img_size)
    }

    /// Enable the capture port.
    pub fn enable_port(&mut self) -> Result<(), DriverError> {
        let reply = self.transact(MmalMessage::new(MsgType::PortEnable, self.service, vec![]))?;
        if reply.mtype != MsgType::PortEnableAck {
            return Err(DriverError::Device("port enable failed".into()));
        }
        Ok(())
    }

    /// The record entry: capture `frames` frames at `resolution`; the last
    /// frame lands in `buf`. Returns the image size in bytes.
    ///
    /// This performs the full initialisation on every invocation (the paper
    /// records device initialisation as part of each template and notes that
    /// per-burst initialisation dominates single-frame latency, §8.3.2).
    pub fn capture(
        &mut self,
        frames: u32,
        resolution: CameraResolution,
        buf: &mut [u8],
    ) -> Result<u32, DriverError> {
        if frames == 0 {
            return Err(DriverError::Invalid("at least one frame".into()));
        }
        self.connect()?;
        self.create_camera()?;
        let img_size = self.set_format(resolution)?;
        if (buf.len() as u32) < img_size {
            return Err(DriverError::Invalid("buffer too small for a frame".into()));
        }
        self.enable_port()?;

        // One contiguous frame buffer plus its page list, reused per frame.
        let frame_buf = self.io.dma_alloc(buf.len())?;
        let pg_list = self.io.dma_alloc(64)?;
        self.io.shm_write32(pg_list, pagelist::TOTAL_LEN, buf.len() as u32);
        self.io.shm_write32(pg_list, pagelist::NUM_PAGES, 1);
        self.io.shm_write32(pg_list, pagelist::FIRST_PAGE, frame_buf.base as u32);

        for _frame in 0..frames {
            if self.record_mode {
                // Per-frame port re-arm (see [`Self::set_record_mode`]): the
                // recorded path tears the port down and brings it back up
                // immediately before every capture — the first included — so
                // every frame replays from the same just-armed device state.
                let reply =
                    self.transact(MmalMessage::new(MsgType::PortDisable, self.service, vec![]))?;
                if reply.mtype != MsgType::PortDisableAck {
                    return Err(DriverError::Device("per-frame port disable failed".into()));
                }
                let re_size = self.set_format(resolution)?;
                if re_size != img_size {
                    return Err(DriverError::Device("frame size changed across re-arm".into()));
                }
                self.enable_port()?;
            }
            let reply = self.transact(MmalMessage::new(
                MsgType::BufferFromHost,
                self.service,
                vec![pg_list.base as u32, buf.len() as u32, img_size],
            ))?;
            if reply.mtype != MsgType::BufferToHost {
                self.stats.errors += 1;
                return Err(DriverError::Device(format!("capture failed: {:?}", reply)));
            }
            self.stats.frames_captured += 1;
        }
        self.io.copy_from_dma(frame_buf, 0, &mut buf[..img_size as usize]);

        // Tear the port down so the next invocation starts clean.
        let _ = self.transact(MmalMessage::new(MsgType::PortDisable, self.service, vec![]))?;
        let _ = self.transact(MmalMessage::new(MsgType::ComponentDestroy, self.service, vec![]))?;
        self.io.dma_release_all();
        self.queue = None;
        self.camera_ready = false;
        self.connected = false;
        Ok(img_size)
    }

    /// Send one message and wait for the corresponding reply.
    fn transact(&mut self, msg: MmalMessage) -> Result<MmalMessage, DriverError> {
        self.send(msg)?;
        self.receive()
    }

    fn send(&mut self, msg: MmalMessage) -> Result<(), DriverError> {
        let queue = self.queue.ok_or_else(|| DriverError::Invalid("queue not set up".into()))?;
        let (words, new_pos) = queue::tx_message_words(self.tx_pos, &msg);
        for (off, w) in words {
            self.io.shm_write32(queue, off, w);
        }
        self.tx_pos = new_pos;
        self.io.writel(reg(regs::BELL2), 1);
        self.stats.messages_sent += 1;
        Ok(())
    }

    fn receive(&mut self) -> Result<MmalMessage, DriverError> {
        let queue = self.queue.ok_or_else(|| DriverError::Invalid("queue not set up".into()))?;
        // Wait for the VC4 -> CPU doorbell.
        self.io.wait_for_irq(lines::VCHIQ, 120_000_000)?;
        let bell = self.io.readl(reg(regs::BELL0));
        if bell & 1 == 0 {
            return Err(DriverError::Device("doorbell 0 not pending".into()));
        }
        // Parse the reply from the RX slot area: header then payload words.
        let rx_pos = self.io.shm_read32(queue, queue::slot0::RX_POS);
        if self.rx_read_pos >= rx_pos {
            return Err(DriverError::Device("no new message in RX area".into()));
        }
        let base = RX_AREA_OFF + u64::from(self.rx_read_pos);
        let mtype_word = self.io.shm_read32(queue, base);
        let service = self.io.shm_read32(queue, base + 4);
        let payload_len = self.io.shm_read32(queue, base + 8) as usize / 4;
        let mut payload = Vec::with_capacity(payload_len);
        for i in 0..payload_len.min(dlt_dev_vchiq::msg::MAX_PAYLOAD_WORDS) {
            payload.push(self.io.shm_read32(queue, base + 12 + (i as u64) * 4));
        }
        let mtype = MsgType::from_u32(mtype_word)
            .ok_or_else(|| DriverError::Device(format!("bad message type {mtype_word}")))?;
        let msg = MmalMessage::new(mtype, service, payload);
        self.rx_read_pos += msg.padded_len() as u32;
        // Acknowledge the doorbell.
        self.io.writel(reg(regs::BELL0), 1);
        self.stats.messages_received += 1;
        if mtype == MsgType::Error {
            self.stats.errors += 1;
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kenv::BusIo;
    use dlt_dev_vchiq::msg::is_valid_jpeg;
    use dlt_dev_vchiq::VchiqSubsystem;
    use dlt_hw::Platform;

    fn rig() -> (Platform, VchiqSubsystem, VchiqDriver<BusIo>) {
        let p = Platform::new();
        let sys = VchiqSubsystem::attach(&p).unwrap();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x200_0000, 0x200_0000));
        let drv = VchiqDriver::new(io);
        (p, sys, drv)
    }

    #[test]
    fn one_shot_capture_yields_a_valid_frame() {
        let (_p, sys, mut drv) = rig();
        let mut buf = vec![0u8; 2 << 20];
        let size = drv.capture(1, CameraResolution::R720p, &mut buf).unwrap();
        assert_eq!(size, CameraResolution::R720p.frame_bytes());
        assert!(is_valid_jpeg(&buf[..size as usize]));
        assert_eq!(sys.vc4.lock().frames_produced(), 1);
        assert_eq!(drv.stats().frames_captured, 1);
    }

    #[test]
    fn burst_capture_counts_frames_and_latency_grows() {
        let (p, sys, mut drv) = rig();
        let mut buf = vec![0u8; 2 << 20];
        let t0 = p.now_ns();
        drv.capture(1, CameraResolution::R1080p, &mut buf).unwrap();
        let one = p.now_ns() - t0;
        let t0 = p.now_ns();
        drv.capture(10, CameraResolution::R1080p, &mut buf).unwrap();
        let ten = p.now_ns() - t0;
        assert_eq!(sys.vc4.lock().frames_produced(), 11);
        assert!(ten > one, "ten frames must take longer than one");
        // Per-frame latency amortises the fixed init cost (§8.3.2).
        assert!(ten / 10 < one);
    }

    #[test]
    fn too_small_buffer_is_rejected_locally() {
        let (_p, _sys, mut drv) = rig();
        let mut buf = vec![0u8; 1024];
        assert!(matches!(
            drv.capture(1, CameraResolution::R1440p, &mut buf),
            Err(DriverError::Invalid(_))
        ));
    }

    #[test]
    fn sensor_loss_surfaces_as_a_device_error() {
        let (_p, sys, mut drv) = rig();
        sys.vc4.lock().disconnect_sensor();
        let mut buf = vec![0u8; 2 << 20];
        let err = drv.capture(1, CameraResolution::R720p, &mut buf).unwrap_err();
        assert!(matches!(err, DriverError::Device(_)));
        assert!(drv.stats().errors >= 1);
    }

    #[test]
    fn resolutions_produce_their_advertised_sizes() {
        let (_p, _sys, mut drv) = rig();
        let mut buf = vec![0u8; 2 << 20];
        for r in CameraResolution::all() {
            let size = drv.capture(1, r, &mut buf).unwrap();
            assert_eq!(size, r.frame_bytes());
        }
    }
}
