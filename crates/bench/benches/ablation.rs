//! Ablation bench: how the driverlet design choices affect replay cost.
//!
//! DESIGN.md calls out three driverlet-specific costs: per-template soft
//! reset, uncached MMIO in the TEE, and per-event dispatch. This bench
//! measures replay with the stock cost model and with each knob zeroed, so
//! the contribution of each choice is visible (virtual time per invocation is
//! printed; the Criterion numbers are the wall-clock cost of the simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlt_core::{replay_mmc, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_hw::{CostModel, Platform};
use dlt_recorder::campaign::{record_mmc_driverlet_subset, DEV_KEY};
use dlt_tee::{SecureIo, TeeKernel};

fn replayer_with(cost: CostModel) -> (Platform, Replayer) {
    let platform = Platform::with_cost(cost);
    MmcSubsystem::attach(&platform).unwrap();
    TeeKernel::install(&platform, &["sdhost", "dma"]).unwrap();
    let driverlet = record_mmc_driverlet_subset(&[8]).unwrap();
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    (platform, replayer)
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mmc_rd8");
    group.sample_size(10);

    let stock = CostModel::default();
    let mut no_reset = stock.clone();
    no_reset.soft_reset_ns = 0;
    let mut cached_mmio = stock.clone();
    cached_mmio.mmio_uncached_ns = cached_mmio.mmio_access_ns;
    let mut free_dispatch = stock.clone();
    free_dispatch.replay_event_dispatch_ns = 0;

    for (label, cost) in [
        ("stock", stock),
        ("no-soft-reset", no_reset),
        ("cached-mmio", cached_mmio),
        ("free-dispatch", free_dispatch),
    ] {
        let (platform, mut replayer) = replayer_with(cost);
        // Report the virtual-time cost once per configuration.
        let mut buf = vec![0u8; 8 * 512];
        let t0 = platform.now_ns();
        replay_mmc(&mut replayer, 0x1, 8, 0, 0, &mut buf).unwrap();
        println!(
            "ablation {label}: one 8-block read costs {} us of virtual time",
            (platform.now_ns() - t0) / 1_000
        );

        group.bench_with_input(BenchmarkId::new("replay_rd8", label), &(), |b, _| {
            let mut buf = vec![0u8; 8 * 512];
            b.iter(|| replay_mmc(&mut replayer, 0x1, 8, 16, 0, &mut buf).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
