//! Proof that the compiled replay path performs **no heap allocation** on
//! the divergence-free path once warm.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! invocation (which sizes the replayer's scratch arena and the device
//! model's reusable buffers), repeated invocations of a compiled template
//! covering the full event vocabulary must allocate exactly zero times.
//!
//! The template deliberately has no `Capture` sinks: captured values are
//! returned to the trustlet through `ReplayOutcome::captured`, a name-keyed
//! map whose construction necessarily allocates (documented in DESIGN.md);
//! every other event kind — register and shared-memory IO, constraints,
//! symbolic expressions, polls, IRQ waits, delays, DMA allocation, random
//! bytes and payload copies in both directions — is exercised here.
//!
//! This file holds a single `#[test]` so no sibling test thread can disturb
//! the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dlt_core::Replayer;
use dlt_hw::device::MmioDevice;
use dlt_hw::{shared, IrqController, Platform, Shared};
use dlt_tee::SecureIo;
use dlt_template::{
    Constraint, DataDirection, DmaRole, Driverlet, Event, Iface, ParamSpec, ReadSink,
    RecordedEvent, SymExpr, Template, TemplateMeta,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

const BASE: u64 = 0x3f42_0000;
const IRQ: u32 = 51;

/// A stub device that never allocates in its access/tick/reset paths.
struct NullDev {
    irqs: Shared<IrqController>,
    value: u32,
    busy_until: u64,
}

impl MmioDevice for NullDev {
    fn name(&self) -> &'static str {
        "null-dev"
    }
    fn mmio_base(&self) -> u64 {
        BASE
    }
    fn mmio_len(&self) -> u64 {
        0x100
    }
    fn read32(&mut self, offset: u64, now: u64) -> u32 {
        match offset {
            0x0 => self.value,
            0x4 => u32::from(now < self.busy_until),
            _ => 0,
        }
    }
    fn write32(&mut self, offset: u64, val: u32, now: u64) {
        match offset {
            0x0 => self.value = val,
            0x8 => {
                self.busy_until = now + 20_000;
                self.irqs.lock().assert_at(IRQ, self.busy_until);
            }
            _ => {}
        }
    }
    fn tick(&mut self, _now: u64) {}
    fn soft_reset(&mut self, _now: u64) {
        self.value = 0;
        self.busy_until = 0;
    }
    fn irq_line(&self) -> Option<u32> {
        Some(IRQ)
    }
    fn next_deadline_ns(&self) -> Option<u64> {
        (self.busy_until > 0).then_some(self.busy_until)
    }
}

fn reg(name: &str, off: u64) -> Iface {
    Iface::Reg { addr: BASE + off, name: name.to_string() }
}

fn full_vocabulary_template() -> Template {
    Template {
        name: "alloc_free".into(),
        entry: "replay_alloc_free".into(),
        device: "null-dev".into(),
        params: vec![
            ParamSpec {
                name: "val".into(),
                constraint: Constraint::InRange { min: 0, max: 1 << 20 },
            },
            ParamSpec { name: "flag".into(), constraint: Constraint::Any },
        ],
        direction: DataDirection::DeviceToUser,
        data_len: SymExpr::Const(8),
        irq_line: Some(IRQ),
        events: vec![
            RecordedEvent::bare(Event::DmaAlloc {
                len: SymExpr::Const(256),
                role: DmaRole::DataIn,
            }),
            RecordedEvent::bare(Event::GetRandBytes { len: 32, sink: ReadSink::Discard }),
            RecordedEvent::bare(Event::GetTs { len: 8, sink: ReadSink::Discard }),
            RecordedEvent::bare(Event::Write {
                iface: reg("VAL", 0x0),
                value: SymExpr::Param("val".into()).masked(0xffff).or_const(0x10_0000),
            }),
            RecordedEvent::bare(Event::Read {
                iface: reg("VAL", 0x0),
                constraint: Constraint::All(vec![
                    Constraint::MaskEq { mask: 0x10_0000, expected: 0x10_0000 },
                    Constraint::Eq(SymExpr::Param("val".into()).masked(0xffff).or_const(0x10_0000)),
                ]),
                len: 4,
                sink: ReadSink::UserData { offset: 0 },
            }),
            // Kick the device busy, poll it down, then take the interrupt.
            RecordedEvent::bare(Event::Write { iface: reg("KICK", 0x8), value: SymExpr::Const(1) }),
            RecordedEvent::bare(Event::Poll {
                iface: reg("BUSY", 0x4),
                body: vec![Event::Delay { us: 2 }],
                cond: Constraint::eq_const(0),
                delay_us: 5,
                max_iters: 100,
            }),
            RecordedEvent::bare(Event::WaitForIrq { line: IRQ, timeout_us: 200_000 }),
            RecordedEvent::bare(Event::Delay { us: 1 }),
            // Shared-memory traffic plus payload copies both ways.
            RecordedEvent::bare(Event::Write {
                iface: Iface::Shm { alloc: 0, offset: 0x20 },
                value: SymExpr::Param("val".into()),
            }),
            RecordedEvent::bare(Event::Read {
                iface: Iface::Shm { alloc: 0, offset: 0x20 },
                constraint: Constraint::eq_param("val"),
                len: 4,
                sink: ReadSink::Discard,
            }),
            RecordedEvent::bare(Event::CopyUserToDma {
                alloc: 0,
                offset: 0x40,
                user_offset: 0,
                len: SymExpr::Const(8),
            }),
            RecordedEvent::bare(Event::CopyDmaToUser {
                alloc: 0,
                offset: 0x40,
                user_offset: 0,
                len: SymExpr::Const(8),
            }),
        ],
        meta: TemplateMeta::default(),
    }
}

#[test]
fn compiled_replay_is_allocation_free_when_warm() {
    let platform = Platform::new();
    let dev = shared(NullDev { irqs: platform.irqs.clone(), value: 0, busy_until: 0 });
    platform.bus.lock().attach(dlt_hw::device::SharedDevice::boxed(dev)).unwrap();
    platform.bus.lock().set_device_secure("null-dev", true).unwrap();

    let mut d = Driverlet::new("null-dev", "replay_alloc_free", vec![full_vocabulary_template()]);
    d.sign(b"zero");
    let mut r = Replayer::new(SecureIo::new(platform.bus.clone()));
    r.load_driverlet(d, b"zero").unwrap();

    let mut buf = [0u8; 16];
    let args = [("val", 0x1234u64), ("flag", 0u64)];

    // Warm up: sizes the scratch arena, the IRQ controller's line table and
    // the device models' reusable buffers.
    for _ in 0..3 {
        let outcome = r.invoke_args("replay_alloc_free", &args, &mut buf).unwrap();
        // 4 B user-data read + 8 B copy-in + 8 B copy-out.
        assert_eq!(outcome.payload_bytes, 20);
        assert!(outcome.captured.is_empty());
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..50u64 {
        let args = [("val", 0x1000 + i), ("flag", 0u64)];
        r.invoke_args("replay_alloc_free", &args, &mut buf).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "the warm compiled replay path must not allocate (observed {} allocations \
         across 50 invocations)",
        after - before
    );

    // Sanity: the interpreted baseline *does* allocate on the same workload,
    // so the counter demonstrably observes this code path.
    let platform2 = Platform::new();
    let dev2 = shared(NullDev { irqs: platform2.irqs.clone(), value: 0, busy_until: 0 });
    platform2.bus.lock().attach(dlt_hw::device::SharedDevice::boxed(dev2)).unwrap();
    platform2.bus.lock().set_device_secure("null-dev", true).unwrap();
    let mut d2 = Driverlet::new("null-dev", "replay_alloc_free", vec![full_vocabulary_template()]);
    d2.sign(b"zero");
    let mut ri = Replayer::with_config(
        SecureIo::new(platform2.bus.clone()),
        dlt_core::ReplayConfig::interpreted(),
    );
    ri.load_driverlet(d2, b"zero").unwrap();
    let args_map: HashMap<String, u64> =
        [("val".to_string(), 7u64), ("flag".to_string(), 0)].into_iter().collect();
    for _ in 0..3 {
        ri.invoke("replay_alloc_free", &args_map, &mut buf).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    ri.invoke("replay_alloc_free", &args_map, &mut buf).unwrap();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        after - before > 10,
        "the interpreted baseline should allocate per invocation (observed {})",
        after - before
    );
}
