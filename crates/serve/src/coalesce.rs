//! Request coalescing: plan a drained batch into merged replays.
//!
//! The planner walks the batch **in queue order** and groups maximal runs
//! of same-direction block requests:
//!
//! * within a read run, adjacent or overlapping extents merge into maximal
//!   contiguous spans (reads commute with reads, so reordering inside one
//!   run cannot change any result);
//! * within a write run, only strictly adjacent, non-overlapping writes
//!   chain into one larger write (overlapping writes must keep their
//!   submission order, so an overlap breaks the chain);
//! * a direction change (or a camera request) closes the current group, so
//!   a read never moves across a write it raced with.
//!
//! Executing the resulting plans in order is therefore equivalent to
//! executing the batch serially in queue order — the invariant the
//! differential property test in `tests/serial_equivalence.rs` checks.

use crate::{Request, BLOCK};

/// One executable unit of a planned batch. Member indices point into the
/// batch the plan was computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecPlan {
    /// Execute the request at this batch index as-is.
    Single(usize),
    /// One read replay covering `blkid..blkid+blkcnt`, fanned out to every
    /// member afterwards.
    MergedRead {
        /// First block of the merged span.
        blkid: u32,
        /// Length of the merged span in blocks.
        blkcnt: u32,
        /// Batch indices served by this span.
        members: Vec<usize>,
    },
    /// One write replay of the concatenated member payloads (strictly
    /// adjacent extents, in order).
    BatchedWrite {
        /// First block of the batched write.
        blkid: u32,
        /// Batch indices folded into this write, in submission order.
        members: Vec<usize>,
    },
}

impl ExecPlan {
    /// Whether this plan actually merged more than one request.
    pub fn is_coalesced(&self) -> bool {
        match self {
            ExecPlan::Single(_) => false,
            ExecPlan::MergedRead { members, .. } | ExecPlan::BatchedWrite { members, .. } => {
                members.len() > 1
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    Other,
}

fn kind(req: &Request) -> Kind {
    match req {
        Request::Read { .. } => Kind::Read,
        Request::Write { .. } => Kind::Write,
        Request::Capture { .. } => Kind::Other,
    }
}

/// Merge a run of read requests (batch indices) into maximal contiguous
/// spans.
fn plan_read_run(batch: &[Request], run: &[usize], out: &mut Vec<ExecPlan>) {
    // Sort members by start block; sweep to build spans over the union.
    let mut members: Vec<usize> = run.to_vec();
    members.sort_by_key(|&i| match &batch[i] {
        Request::Read { blkid, .. } => *blkid,
        _ => unreachable!("read run holds only reads"),
    });
    let extent = |i: usize| match &batch[i] {
        Request::Read { blkid, blkcnt, .. } => (*blkid, *blkid + *blkcnt),
        _ => unreachable!("read run holds only reads"),
    };
    let mut span_members = vec![members[0]];
    let (mut lo, mut hi) = extent(members[0]);
    for &i in &members[1..] {
        let (s, e) = extent(i);
        if s <= hi && hi.max(e) - lo <= crate::MAX_REQUEST_BLOCKS {
            // Adjacent or overlapping (and still within the span bound):
            // extend the span.
            hi = hi.max(e);
            span_members.push(i);
        } else {
            out.push(ExecPlan::MergedRead {
                blkid: lo,
                blkcnt: hi - lo,
                members: std::mem::take(&mut span_members),
            });
            lo = s;
            hi = e;
            span_members.push(i);
        }
    }
    out.push(ExecPlan::MergedRead { blkid: lo, blkcnt: hi - lo, members: span_members });
}

/// Chain strictly adjacent writes of a run; overlaps break the chain.
fn plan_write_run(batch: &[Request], run: &[usize], out: &mut Vec<ExecPlan>) {
    let extent = |i: usize| match &batch[i] {
        Request::Write { blkid, data, .. } => (*blkid, *blkid + (data.len() / BLOCK) as u32),
        _ => unreachable!("write run holds only writes"),
    };
    let mut chain: Vec<usize> = vec![run[0]];
    let (mut lo, mut end) = extent(run[0]);
    for &i in &run[1..] {
        let (s, e) = extent(i);
        if s == end && e - lo <= crate::MAX_REQUEST_BLOCKS {
            end = e;
            chain.push(i);
        } else {
            out.push(ExecPlan::BatchedWrite { blkid: lo, members: std::mem::take(&mut chain) });
            lo = s;
            end = e;
            chain.push(i);
        }
    }
    out.push(ExecPlan::BatchedWrite { blkid: lo, members: chain });
}

/// Plan a drained batch. With `coalesce` off, every request is a
/// [`ExecPlan::Single`] in queue order (the uncoalesced baseline).
pub fn plan(batch: &[Request], coalesce: bool) -> Vec<ExecPlan> {
    if !coalesce {
        return (0..batch.len()).map(ExecPlan::Single).collect();
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < batch.len() {
        let k = kind(&batch[i]);
        let mut run = vec![i];
        let mut j = i + 1;
        while j < batch.len() && kind(&batch[j]) == k {
            run.push(j);
            j += 1;
        }
        match k {
            Kind::Read => plan_read_run(batch, &run, &mut out),
            Kind::Write => plan_write_run(batch, &run, &mut out),
            Kind::Other => out.extend(run.into_iter().map(ExecPlan::Single)),
        }
        i = j;
    }
    out
}

/// Decompose an arbitrary block count into the recorded granularities
/// (largest first) — the replayer "must access the data in ways specified
/// by the recorded paths" (§3.3). `granularities` must contain 1.
pub fn decompose(mut blkcnt: u32, granularities: &[u32]) -> Vec<u32> {
    let mut sorted = granularities.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut parts = Vec::new();
    while blkcnt > 0 {
        let g = sorted.iter().copied().find(|g| *g <= blkcnt).unwrap_or(1);
        parts.push(g);
        blkcnt -= g;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn rd(blkid: u32, blkcnt: u32) -> Request {
        Request::Read { device: Device::Mmc, blkid, blkcnt }
    }

    fn wr(blkid: u32, blocks: u32) -> Request {
        Request::Write { device: Device::Mmc, blkid, data: vec![0u8; blocks as usize * BLOCK] }
    }

    #[test]
    fn adjacent_reads_from_many_sessions_merge_into_one_span() {
        let batch: Vec<Request> = (0..8).map(|i| rd(100 + i, 1)).collect();
        let plans = plan(&batch, true);
        assert_eq!(
            plans,
            vec![ExecPlan::MergedRead {
                blkid: 100,
                blkcnt: 8,
                members: (0..8).collect::<Vec<_>>()
            }]
        );
        assert!(plans[0].is_coalesced());
    }

    #[test]
    fn overlapping_reads_merge_and_holes_split_spans() {
        let batch = vec![rd(10, 4), rd(12, 4), rd(30, 2)];
        let plans = plan(&batch, true);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0], ExecPlan::MergedRead { blkid: 10, blkcnt: 6, members: vec![0, 1] });
        assert_eq!(plans[1], ExecPlan::MergedRead { blkid: 30, blkcnt: 2, members: vec![2] });
        assert!(!plans[1].is_coalesced());
    }

    #[test]
    fn writes_chain_only_when_strictly_adjacent() {
        let batch = vec![wr(0, 8), wr(8, 8), wr(8, 8), wr(24, 8)];
        let plans = plan(&batch, true);
        // 0 and 1 chain; 2 overlaps 1 (same extent) so it breaks the chain;
        // 3 is not adjacent to 2's end (16) so it stands alone.
        assert_eq!(
            plans,
            vec![
                ExecPlan::BatchedWrite { blkid: 0, members: vec![0, 1] },
                ExecPlan::BatchedWrite { blkid: 8, members: vec![2] },
                ExecPlan::BatchedWrite { blkid: 24, members: vec![3] },
            ]
        );
    }

    #[test]
    fn direction_changes_fence_the_runs() {
        // The read of block 8 must not merge across the write to block 8.
        let batch = vec![rd(8, 1), wr(8, 1), rd(8, 1)];
        let plans = plan(&batch, true);
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|p| !p.is_coalesced()));
    }

    #[test]
    fn disabled_coalescing_is_all_singles() {
        let batch: Vec<Request> = (0..4).map(|i| rd(i, 1)).collect();
        let plans = plan(&batch, false);
        assert_eq!(plans, (0..4).map(ExecPlan::Single).collect::<Vec<_>>());
    }

    #[test]
    fn decompose_prefers_large_recorded_granularities() {
        let g = [1, 8, 32, 128, 256];
        assert_eq!(decompose(300, &g), vec![256, 32, 8, 1, 1, 1, 1]);
        assert_eq!(decompose(300, &g).iter().sum::<u32>(), 300);
        assert_eq!(decompose(40, &[1, 8]), vec![8, 8, 8, 8, 8]);
    }
}
