//! Block-device abstraction and the three execution paths of §8.3.1.

use std::collections::HashMap;

use dlt_core::{replay_mmc, replay_usb, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_gold_drivers::kenv::{BusIo, HwIo, IoFlags, Rw};
use dlt_gold_drivers::mmc::MmcHost;
use dlt_gold_drivers::usb::{UsbHcd, UsbStorageDriver};
use dlt_hw::{DmaRegion, Platform};
use dlt_recorder::campaign::{record_mmc_driverlet, record_usb_driverlet, DEV_KEY};
use dlt_tee::{SecureIo, TeeKernel};

/// Block size in bytes.
pub const BLOCK: usize = 512;
/// Block granularities the record campaigns cover (Table 3).
pub const GRANULARITIES: [u32; 5] = [256, 128, 32, 8, 1];

/// Which storage device a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// The MMC / SD card path.
    Mmc,
    /// The USB mass-storage path.
    Usb,
}

/// Which execution path serves the IO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePath {
    /// Full gold driver, asynchronous write-back behaviour ("native").
    Native,
    /// Full gold driver with O_SYNC semantics ("native-sync").
    NativeSync,
    /// The in-TEE driverlet replayer ("ours").
    Driverlet,
}

/// A block device a workload can talk to.
pub trait BlockDev {
    /// Read `blkcnt` blocks starting at `blkid`.
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String>;
    /// Write whole blocks starting at `blkid`.
    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String>;
    /// Flush any deferred writes.
    fn flush(&mut self) -> Result<(), String>;
    /// Current virtual time (for IOPS/latency measurement).
    fn now_ns(&self) -> u64;
    /// Device operations per recorded granularity (Table 9 breakdown); only
    /// meaningful for the driverlet path.
    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        HashMap::new()
    }
}

// ---------------------------------------------------------------------------
// Native paths
// ---------------------------------------------------------------------------

enum NativeInner {
    Mmc(MmcHost<BusIo>),
    Usb(UsbStorageDriver<BusIo>),
}

/// The native / native-sync path: the gold driver behind a (modelled) kernel
/// block layer, with an optional write-back cache.
pub struct NativeDev {
    platform: Platform,
    inner: NativeInner,
    sync: bool,
    /// Dirty write-back extents (blkid -> data), absent in sync mode.
    cache: Vec<(u32, Vec<u8>)>,
    max_extents: usize,
}

impl NativeDev {
    /// Build a native MMC or USB stack on a fresh platform.
    pub fn new(kind: StorageKind, path: StoragePath) -> Self {
        assert!(path != StoragePath::Driverlet, "use DriverletDev for the driverlet path");
        let platform = Platform::new();
        let io =
            BusIo::normal_world(platform.bus.clone(), DmaRegion::new(0x0200_0000, 0x0100_0000));
        let inner = match kind {
            StorageKind::Mmc => {
                MmcSubsystem::attach(&platform).expect("attach mmc");
                let mut host = MmcHost::new(io);
                host.probe().expect("probe mmc");
                NativeInner::Mmc(host)
            }
            StorageKind::Usb => {
                UsbSubsystem::attach(&platform).expect("attach usb");
                let mut drv = UsbStorageDriver::new(UsbHcd::new(io));
                drv.init().expect("init usb");
                NativeInner::Usb(drv)
            }
        };
        NativeDev {
            platform,
            inner,
            sync: path == StoragePath::NativeSync,
            cache: Vec::new(),
            max_extents: 16,
        }
    }

    fn charge_kernel_path(&mut self, blkcnt: u32) {
        // Kernel block layer + filesystem + per-page scheduling, which the
        // driverlet path does not pay (§8.3.2).
        let pages = u64::from(blkcnt.div_ceil(8));
        let sched = match self.inner {
            NativeInner::Mmc(_) => 18,
            // The USB stack runs transfer scheduling for every data page
            // (§8.3.3 explains the large-write gap with this cost).
            NativeInner::Usb(_) => 55,
        };
        let us = 220 + sched * pages;
        match &mut self.inner {
            NativeInner::Mmc(h) => h.io_mut().delay_us(us),
            NativeInner::Usb(d) => d.hcd_mut().io_mut().delay_us(us),
        }
    }

    fn device_write(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        let blkcnt = (data.len() / BLOCK) as u32;
        let mut copy = data.to_vec();
        match &mut self.inner {
            NativeInner::Mmc(h) => h
                .do_io(Rw::Write, blkcnt, blkid, IoFlags::none(), &mut copy)
                .map_err(|e| e.to_string()),
            NativeInner::Usb(d) => d
                .do_io(Rw::Write, blkcnt, blkid, IoFlags::none(), &mut copy)
                .map_err(|e| e.to_string()),
        }
    }

    fn device_read(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        match &mut self.inner {
            NativeInner::Mmc(h) => {
                h.do_io(Rw::Read, blkcnt, blkid, IoFlags::none(), buf).map_err(|e| e.to_string())
            }
            NativeInner::Usb(d) => {
                d.do_io(Rw::Read, blkcnt, blkid, IoFlags::none(), buf).map_err(|e| e.to_string())
            }
        }
    }
}

impl BlockDev for NativeDev {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        self.charge_kernel_path(blkcnt);
        // Serve fully-covering dirty extents from the cache.
        if let Some((id, data)) = self
            .cache
            .iter()
            .find(|(id, data)| *id <= blkid && blkid + blkcnt <= id + (data.len() / BLOCK) as u32)
        {
            let off = (blkid - id) as usize * BLOCK;
            buf[..blkcnt as usize * BLOCK]
                .copy_from_slice(&data[off..off + blkcnt as usize * BLOCK]);
            return Ok(());
        }
        // Flush overlapping dirty data first.
        let overlapping: Vec<usize> = self
            .cache
            .iter()
            .enumerate()
            .filter(|(_, (id, data))| {
                let end = id + (data.len() / BLOCK) as u32;
                blkid < end && *id < blkid + blkcnt
            })
            .map(|(i, _)| i)
            .collect();
        if !overlapping.is_empty() {
            self.flush()?;
        }
        self.device_read(blkid, blkcnt, buf)
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        let blkcnt = (data.len() / BLOCK) as u32;
        self.charge_kernel_path(blkcnt);
        if self.sync {
            return self.device_write(blkid, data);
        }
        // Merge with an adjacent extent when possible.
        if let Some((id, existing)) = self
            .cache
            .iter_mut()
            .find(|(id, existing)| *id + (existing.len() / BLOCK) as u32 == blkid)
        {
            let _ = id;
            existing.extend_from_slice(data);
        } else {
            self.cache.push((blkid, data.to_vec()));
        }
        if self.cache.len() > self.max_extents {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), String> {
        let extents = std::mem::take(&mut self.cache);
        for (blkid, data) in extents {
            // Split big merged extents into device-sized chunks.
            let mut off = 0usize;
            let mut id = blkid;
            while off < data.len() {
                let blocks = (((data.len() - off) / BLOCK) as u32).min(256);
                self.device_write(id, &data[off..off + blocks as usize * BLOCK])?;
                off += blocks as usize * BLOCK;
                id += blocks;
            }
        }
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.platform.now_ns()
    }
}

// ---------------------------------------------------------------------------
// Driverlet path
// ---------------------------------------------------------------------------

/// The driverlet path: a TEE-resident replayer serving block IO by composing
/// template invocations of the recorded granularities.
pub struct DriverletDev {
    platform: Platform,
    /// Typed handle kept for fault injection in tests.
    pub mmc: Option<dlt_hw::Shared<dlt_dev_mmc::SdHost>>,
    /// Typed handle for the USB stick.
    pub usb: Option<dlt_hw::Shared<dlt_dev_usb::UsbHostController>>,
    replayer: Replayer,
    kind: StorageKind,
    breakdown: HashMap<u32, u64>,
}

impl DriverletDev {
    /// Record the driverlet for `kind` and set up a TEE-owned device plus a
    /// replayer on a fresh platform.
    pub fn new(kind: StorageKind) -> Self {
        let platform = Platform::new();
        let (mmc, usb, driverlet, secure) = match kind {
            StorageKind::Mmc => {
                let sys = MmcSubsystem::attach(&platform).expect("attach mmc");
                (
                    Some(sys.sdhost),
                    None,
                    record_mmc_driverlet().expect("record mmc"),
                    vec!["sdhost", "dma"],
                )
            }
            StorageKind::Usb => {
                let sys = UsbSubsystem::attach(&platform).expect("attach usb");
                (
                    None,
                    Some(sys.hostctrl),
                    record_usb_driverlet().expect("record usb"),
                    vec!["dwc2"],
                )
            }
        };
        TeeKernel::install(&platform, &secure).expect("install tee");
        let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
        replayer.load_driverlet(driverlet, DEV_KEY).expect("load driverlet");
        DriverletDev { platform, mmc, usb, replayer, kind, breakdown: HashMap::new() }
    }

    /// Access the replayer (stats, additional driverlets).
    pub fn replayer_mut(&mut self) -> &mut Replayer {
        &mut self.replayer
    }

    /// Decompose an arbitrary request into recorded granularities (the
    /// driverlet "must access the data in ways specified by the recorded
    /// paths", §3.3).
    pub fn decompose(mut blkcnt: u32) -> Vec<u32> {
        let mut parts = Vec::new();
        while blkcnt > 0 {
            let g = GRANULARITIES.iter().copied().find(|g| *g <= blkcnt).unwrap_or(1);
            parts.push(g);
            blkcnt -= g;
        }
        parts
    }

    fn one(&mut self, rw: u64, blkcnt: u32, blkid: u32, buf: &mut [u8]) -> Result<(), String> {
        *self.breakdown.entry(blkcnt).or_insert(0) += 1;
        let r = match self.kind {
            StorageKind::Mmc => replay_mmc(&mut self.replayer, rw, blkcnt, blkid, 0, buf),
            StorageKind::Usb => replay_usb(&mut self.replayer, rw, blkcnt, blkid, 0, buf),
        };
        r.map(|_| ()).map_err(|e| e.to_string())
    }
}

impl BlockDev for DriverletDev {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        let mut done = 0u32;
        for part in Self::decompose(blkcnt) {
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            self.one(0x1, part, blkid + done, &mut buf[start..end])?;
            done += part;
        }
        Ok(())
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        let blkcnt = (data.len() / BLOCK) as u32;
        let mut done = 0u32;
        let mut scratch = data.to_vec();
        for part in Self::decompose(blkcnt) {
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            self.one(0x10, part, blkid + done, &mut scratch[start..end])?;
            done += part;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), String> {
        // Driverlet IO is always synchronous (§8.3.2): nothing to flush.
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.platform.now_ns()
    }

    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        self.breakdown.clone()
    }
}

impl BlockDev for Box<dyn BlockDev> {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        (**self).read_blocks(blkid, blkcnt, buf)
    }
    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        (**self).write_blocks(blkid, data)
    }
    fn flush(&mut self) -> Result<(), String> {
        (**self).flush()
    }
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        (**self).invocation_breakdown()
    }
}

/// Build a block device for the given kind and path.
pub fn make_storage(kind: StorageKind, path: StoragePath) -> Box<dyn BlockDev> {
    match path {
        StoragePath::Driverlet => Box::new(DriverletDev::new(kind)),
        _ => Box::new(NativeDev::new(kind, path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_prefers_large_recorded_granularities() {
        assert_eq!(DriverletDev::decompose(256), vec![256]);
        assert_eq!(DriverletDev::decompose(40), vec![32, 8]);
        assert_eq!(DriverletDev::decompose(3), vec![1, 1, 1]);
        assert_eq!(DriverletDev::decompose(300), vec![256, 32, 8, 1, 1, 1, 1]);
        assert_eq!(DriverletDev::decompose(300).iter().sum::<u32>(), 300);
    }

    #[test]
    fn native_mmc_round_trip_and_sync_is_slower() {
        let mut native = NativeDev::new(StorageKind::Mmc, StoragePath::Native);
        let data = vec![7u8; 8 * BLOCK];
        let t0 = native.now_ns();
        native.write_blocks(0, &data).unwrap();
        let native_write = native.now_ns() - t0;
        let mut out = vec![0u8; 8 * BLOCK];
        native.read_blocks(0, 8, &mut out).unwrap();
        assert_eq!(out, data);

        let mut sync = NativeDev::new(StorageKind::Mmc, StoragePath::NativeSync);
        let t0 = sync.now_ns();
        sync.write_blocks(0, &data).unwrap();
        let sync_write = sync.now_ns() - t0;
        assert!(sync_write > native_write * 2, "sync {sync_write} vs native {native_write}");
    }

    #[test]
    fn native_usb_round_trip() {
        let mut dev = NativeDev::new(StorageKind::Usb, StoragePath::NativeSync);
        let data: Vec<u8> = (0..8 * BLOCK).map(|i| (i % 200) as u8).collect();
        dev.write_blocks(100, &data).unwrap();
        let mut out = vec![0u8; 8 * BLOCK];
        dev.read_blocks(100, 8, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn driverlet_mmc_round_trip_with_breakdown() {
        let mut dev = DriverletDev::new(StorageKind::Mmc);
        let data: Vec<u8> = (0..40 * BLOCK).map(|i| (i % 251) as u8).collect();
        dev.write_blocks(64, &data).unwrap();
        let mut out = vec![0u8; 40 * BLOCK];
        dev.read_blocks(64, 40, &mut out).unwrap();
        assert_eq!(out, data);
        let bd = dev.invocation_breakdown();
        assert_eq!(bd.get(&32), Some(&2), "one 32-block read and one 32-block write");
        assert_eq!(bd.get(&8), Some(&2));
    }
}
