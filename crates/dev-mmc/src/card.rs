//! SD card model: command set, card-state machine and a sparse block store.
//!
//! The card is the FSM the paper's "design prerequisite" talks about: it
//! always walks the same state-transition path for a given request shape and
//! its transitions never depend on block contents. The model implements the
//! subset of the SD physical-layer command set that a Linux-class MMC stack
//! exercises during initialisation and block IO.

use std::collections::HashMap;

use crate::BLOCK_SIZE;

/// SD card states (SD physical layer spec, simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardState {
    /// Power-on idle (after CMD0).
    Idle,
    /// Ready (after ACMD41 completes).
    Ready,
    /// Identification (after CMD2).
    Ident,
    /// Standby (addressed, not selected).
    Standby,
    /// Transfer (selected, ready for data commands).
    Transfer,
    /// Sending data to the host.
    SendingData,
    /// Receiving data from the host.
    ReceiveData,
    /// Programming flash after a write.
    Programming,
    /// Card is disconnected / removed.
    Inactive,
}

/// Result of executing one command on the card.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmdResult {
    /// No response expected (e.g. CMD0).
    NoResponse,
    /// Short (32-bit) response.
    R1(u32),
    /// Short response with busy signalling (R1b).
    R1Busy(u32),
    /// 136-bit response (CID/CSD), as four 32-bit words, most significant first.
    R2([u32; 4]),
    /// OCR response (ACMD41).
    R3(u32),
    /// Published RCA response (CMD3).
    R6(u32),
    /// Interface condition response (CMD8).
    R7(u32),
    /// The card did not answer (wrong state, removed, unknown command).
    Timeout,
}

/// Card status register bits (subset of the SD status field).
pub mod status {
    /// The card is ready for new data.
    pub const READY_FOR_DATA: u32 = 1 << 8;
    /// Current state shift (bits 9..12).
    pub const CURRENT_STATE_SHIFT: u32 = 9;
    /// An illegal command was received.
    pub const ILLEGAL_COMMAND: u32 = 1 << 22;
    /// The card expects an application command next (after CMD55).
    pub const APP_CMD: u32 = 1 << 5;
    /// Address out of range.
    pub const OUT_OF_RANGE: u32 = 1 << 31;
}

fn state_code(state: CardState) -> u32 {
    match state {
        CardState::Idle => 0,
        CardState::Ready => 1,
        CardState::Ident => 2,
        CardState::Standby => 3,
        CardState::Transfer => 4,
        CardState::SendingData => 5,
        CardState::ReceiveData => 6,
        CardState::Programming => 7,
        CardState::Inactive => 8,
    }
}

/// The SD card.
#[derive(Debug, Clone)]
pub struct SdCard {
    state: CardState,
    rca: u32,
    app_cmd_armed: bool,
    block_len: usize,
    total_blocks: u64,
    /// Pre-set block count from CMD23 for the next multi-block command.
    preset_block_count: Option<u32>,
    /// Sparse block store: only blocks that were ever written occupy memory.
    blocks: HashMap<u64, Vec<u8>>,
    /// Physically removed (fault injection).
    removed: bool,
    /// Cumulative counters for validation and the Table 7 analysis.
    cmd_counts: HashMap<u8, u64>,
    blocks_read: u64,
    blocks_written: u64,
}

/// Commands the card understands (the Table 7 "CMDs" population plus the
/// initialisation set).
pub mod cmd {
    /// GO_IDLE_STATE.
    pub const GO_IDLE: u8 = 0;
    /// ALL_SEND_CID.
    pub const ALL_SEND_CID: u8 = 2;
    /// SEND_RELATIVE_ADDR.
    pub const SEND_RELATIVE_ADDR: u8 = 3;
    /// SELECT_CARD.
    pub const SELECT_CARD: u8 = 7;
    /// SEND_IF_COND.
    pub const SEND_IF_COND: u8 = 8;
    /// SEND_CSD.
    pub const SEND_CSD: u8 = 9;
    /// STOP_TRANSMISSION.
    pub const STOP_TRANSMISSION: u8 = 12;
    /// SEND_STATUS.
    pub const SEND_STATUS: u8 = 13;
    /// SET_BLOCKLEN.
    pub const SET_BLOCKLEN: u8 = 16;
    /// READ_SINGLE_BLOCK.
    pub const READ_SINGLE: u8 = 17;
    /// READ_MULTIPLE_BLOCK.
    pub const READ_MULTIPLE: u8 = 18;
    /// SET_BLOCK_COUNT.
    pub const SET_BLOCK_COUNT: u8 = 23;
    /// WRITE_BLOCK.
    pub const WRITE_SINGLE: u8 = 24;
    /// WRITE_MULTIPLE_BLOCK.
    pub const WRITE_MULTIPLE: u8 = 25;
    /// APP_CMD prefix.
    pub const APP_CMD: u8 = 55;
    /// ACMD41 — SD_SEND_OP_COND (only valid after CMD55).
    pub const ACMD_SEND_OP_COND: u8 = 41;
    /// ACMD6 — SET_BUS_WIDTH (only valid after CMD55).
    pub const ACMD_SET_BUS_WIDTH: u8 = 6;
    /// ACMD51 — SEND_SCR (only valid after CMD55).
    pub const ACMD_SEND_SCR: u8 = 51;
}

impl SdCard {
    /// A blank (all-zero) card with `total_blocks` addressable 512-byte blocks.
    pub fn formatted(total_blocks: u64) -> Self {
        SdCard {
            state: CardState::Idle,
            rca: 0,
            app_cmd_armed: false,
            block_len: BLOCK_SIZE,
            total_blocks,
            preset_block_count: None,
            blocks: HashMap::new(),
            removed: false,
            cmd_counts: HashMap::new(),
            blocks_read: 0,
            blocks_written: 0,
        }
    }

    /// Current card state.
    pub fn state(&self) -> CardState {
        self.state
    }

    /// Number of addressable blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Whether the medium has been removed (fault injection).
    pub fn is_removed(&self) -> bool {
        self.removed
    }

    /// Remove the medium mid-operation (the §8.2.1 fault-injection case).
    pub fn remove(&mut self) {
        self.removed = true;
        self.state = CardState::Inactive;
    }

    /// Re-insert the medium. The card returns to the idle state and must be
    /// re-initialised, as on real hardware.
    pub fn reinsert(&mut self) {
        self.removed = false;
        self.state = CardState::Idle;
        self.rca = 0;
        self.preset_block_count = None;
    }

    /// Total number of blocks read since creation.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Total number of blocks written since creation.
    pub fn blocks_written(&self) -> u64 {
        self.blocks_written
    }

    /// How many distinct command indices have been exercised (Table 7's
    /// "CMDs" column for the build-from-scratch analysis).
    pub fn distinct_commands_seen(&self) -> usize {
        self.cmd_counts.len()
    }

    /// Direct block access for validation scripts (bypasses the bus; not part
    /// of the device interface).
    pub fn peek_block(&self, lba: u64) -> Vec<u8> {
        self.blocks.get(&lba).cloned().unwrap_or_else(|| vec![0u8; BLOCK_SIZE])
    }

    /// Direct block write for test-fixture preparation.
    pub fn poke_block(&mut self, lba: u64, data: &[u8]) {
        let mut b = vec![0u8; BLOCK_SIZE];
        let n = data.len().min(BLOCK_SIZE);
        b[..n].copy_from_slice(&data[..n]);
        self.blocks.insert(lba, b);
    }

    fn card_status(&self) -> u32 {
        let mut s =
            status::READY_FOR_DATA | (state_code(self.state) << status::CURRENT_STATE_SHIFT);
        if self.app_cmd_armed {
            s |= status::APP_CMD;
        }
        s
    }

    /// Execute a command. Data movement for read/write commands is modelled
    /// separately by [`SdCard::read_blocks`] / [`SdCard::write_blocks`]; this
    /// method performs the state transition and produces the response.
    pub fn execute(&mut self, index: u8, arg: u32) -> CmdResult {
        if self.removed {
            return CmdResult::Timeout;
        }
        *self.cmd_counts.entry(index).or_insert(0) += 1;

        let app = std::mem::take(&mut self.app_cmd_armed);
        if app {
            return self.execute_app(index, arg);
        }

        match index {
            cmd::GO_IDLE => {
                self.state = CardState::Idle;
                self.rca = 0;
                self.preset_block_count = None;
                CmdResult::NoResponse
            }
            cmd::SEND_IF_COND => {
                // Echo the check pattern and voltage window (2.7-3.6 V).
                CmdResult::R7(arg & 0xfff)
            }
            cmd::ALL_SEND_CID => {
                if self.state == CardState::Ready {
                    self.state = CardState::Ident;
                    CmdResult::R2(self.cid())
                } else {
                    CmdResult::Timeout
                }
            }
            cmd::SEND_RELATIVE_ADDR => {
                if self.state == CardState::Ident || self.state == CardState::Standby {
                    self.rca = 0x4567;
                    self.state = CardState::Standby;
                    CmdResult::R6((self.rca << 16) | (self.card_status() & 0xffff))
                } else {
                    CmdResult::Timeout
                }
            }
            cmd::SEND_CSD => {
                if self.state == CardState::Standby && (arg >> 16) == self.rca {
                    CmdResult::R2(self.csd())
                } else {
                    CmdResult::Timeout
                }
            }
            cmd::SELECT_CARD => {
                if (arg >> 16) == self.rca && self.state == CardState::Standby {
                    self.state = CardState::Transfer;
                    CmdResult::R1Busy(self.card_status())
                } else {
                    CmdResult::Timeout
                }
            }
            cmd::SEND_STATUS => CmdResult::R1(self.card_status()),
            cmd::SET_BLOCKLEN => {
                self.block_len = (arg as usize).clamp(1, 2048);
                CmdResult::R1(self.card_status())
            }
            cmd::SET_BLOCK_COUNT => {
                self.preset_block_count = Some(arg & 0xffff);
                CmdResult::R1(self.card_status())
            }
            cmd::READ_SINGLE | cmd::READ_MULTIPLE => {
                if self.state != CardState::Transfer {
                    return CmdResult::Timeout;
                }
                if u64::from(arg) >= self.total_blocks {
                    return CmdResult::R1(self.card_status() | status::OUT_OF_RANGE);
                }
                self.state = CardState::SendingData;
                CmdResult::R1(self.card_status())
            }
            cmd::WRITE_SINGLE | cmd::WRITE_MULTIPLE => {
                if self.state != CardState::Transfer {
                    return CmdResult::Timeout;
                }
                if u64::from(arg) >= self.total_blocks {
                    return CmdResult::R1(self.card_status() | status::OUT_OF_RANGE);
                }
                self.state = CardState::ReceiveData;
                CmdResult::R1(self.card_status())
            }
            cmd::STOP_TRANSMISSION => {
                self.state = CardState::Transfer;
                self.preset_block_count = None;
                CmdResult::R1Busy(self.card_status())
            }
            cmd::APP_CMD => {
                self.app_cmd_armed = true;
                CmdResult::R1(self.card_status() | status::APP_CMD)
            }
            _ => CmdResult::R1(self.card_status() | status::ILLEGAL_COMMAND),
        }
    }

    fn execute_app(&mut self, index: u8, arg: u32) -> CmdResult {
        match index {
            cmd::ACMD_SEND_OP_COND => {
                // Report powered-up + SDHC (CCS) once the host asks with HCS.
                if arg & 0x4000_0000 != 0 {
                    self.state = CardState::Ready;
                    CmdResult::R3(0xc0ff_8000)
                } else {
                    CmdResult::R3(0x00ff_8000)
                }
            }
            cmd::ACMD_SET_BUS_WIDTH => CmdResult::R1(self.card_status()),
            cmd::ACMD_SEND_SCR => CmdResult::R1(self.card_status()),
            _ => CmdResult::R1(self.card_status() | status::ILLEGAL_COMMAND),
        }
    }

    /// Read `count` blocks starting at `lba`. Returns the raw bytes.
    ///
    /// The card must be in the sending-data state (a read command must have
    /// been accepted first).
    pub fn read_blocks(&mut self, lba: u64, count: u32) -> Option<Vec<u8>> {
        if self.removed || self.state != CardState::SendingData {
            return None;
        }
        let mut out = Vec::with_capacity(count as usize * BLOCK_SIZE);
        for i in 0..u64::from(count) {
            let blk = self.blocks.get(&(lba + i)).cloned().unwrap_or_else(|| vec![0u8; BLOCK_SIZE]);
            out.extend_from_slice(&blk);
        }
        self.blocks_read += u64::from(count);
        self.state = CardState::Transfer;
        Some(out)
    }

    /// Write blocks starting at `lba`. `data` must be a whole number of
    /// blocks. The card transitions through Programming back to Transfer.
    pub fn write_blocks(&mut self, lba: u64, data: &[u8]) -> bool {
        if self.removed || self.state != CardState::ReceiveData {
            return false;
        }
        if data.is_empty() || !data.len().is_multiple_of(BLOCK_SIZE) {
            return false;
        }
        let count = (data.len() / BLOCK_SIZE) as u64;
        if lba + count > self.total_blocks {
            return false;
        }
        for i in 0..count {
            let start = (i as usize) * BLOCK_SIZE;
            self.blocks.insert(lba + i, data[start..start + BLOCK_SIZE].to_vec());
        }
        self.blocks_written += count;
        self.state = CardState::Transfer;
        true
    }

    /// Bring an initialised card directly to the transfer state. Used by the
    /// controller's soft-reset path: the paper's soft reset returns the device
    /// to "a clean-slate state — as if the device just finishes initialization
    /// in the boot up process" (§5), which for the card means selected and
    /// ready for data commands.
    pub fn fast_init(&mut self) {
        if self.removed {
            return;
        }
        self.state = CardState::Transfer;
        self.rca = 0x4567;
        self.block_len = BLOCK_SIZE;
        self.preset_block_count = None;
        self.app_cmd_armed = false;
    }

    fn cid(&self) -> [u32; 4] {
        // Manufacturer 0x74 ("Transcend"-like), product "DLTSD", serial 42.
        [0x7445_4c54, 0x5344_0010, 0x0000_002a, 0x0000_d100]
    }

    fn csd(&self) -> [u32; 4] {
        // CSD v2 (SDHC); C_SIZE encodes (total_blocks / 1024 - 1).
        let c_size = (self.total_blocks / 1024).saturating_sub(1) as u32;
        [0x400e_0032, 0x5b59_0000 | (c_size >> 16), (c_size << 16) | 0x7f80, 0x0a40_0000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init_card() -> SdCard {
        let mut c = SdCard::formatted(1024);
        assert_eq!(c.execute(cmd::GO_IDLE, 0), CmdResult::NoResponse);
        assert!(matches!(c.execute(cmd::SEND_IF_COND, 0x1aa), CmdResult::R7(_)));
        assert!(matches!(c.execute(cmd::APP_CMD, 0), CmdResult::R1(_)));
        assert!(matches!(c.execute(cmd::ACMD_SEND_OP_COND, 0x4000_0000), CmdResult::R3(_)));
        assert!(matches!(c.execute(cmd::ALL_SEND_CID, 0), CmdResult::R2(_)));
        let rca = match c.execute(cmd::SEND_RELATIVE_ADDR, 0) {
            CmdResult::R6(r) => r >> 16,
            other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(c.execute(cmd::SEND_CSD, rca << 16), CmdResult::R2(_)));
        assert!(matches!(c.execute(cmd::SELECT_CARD, rca << 16), CmdResult::R1Busy(_)));
        assert_eq!(c.state(), CardState::Transfer);
        c
    }

    #[test]
    fn full_initialisation_sequence() {
        let c = init_card();
        assert_eq!(c.state(), CardState::Transfer);
        assert!(c.distinct_commands_seen() >= 7);
    }

    #[test]
    fn read_write_round_trip() {
        let mut c = init_card();
        let payload: Vec<u8> = (0..BLOCK_SIZE * 2).map(|i| (i % 251) as u8).collect();
        assert!(matches!(c.execute(cmd::WRITE_MULTIPLE, 7), CmdResult::R1(_)));
        assert!(c.write_blocks(7, &payload));
        assert_eq!(c.state(), CardState::Transfer);
        assert!(matches!(c.execute(cmd::READ_MULTIPLE, 7), CmdResult::R1(_)));
        let back = c.read_blocks(7, 2).unwrap();
        assert_eq!(back, payload);
        assert_eq!(c.blocks_written(), 2);
        assert_eq!(c.blocks_read(), 2);
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        let mut c = init_card();
        assert!(matches!(c.execute(cmd::READ_SINGLE, 900), CmdResult::R1(_)));
        let data = c.read_blocks(900, 1).unwrap();
        assert_eq!(data, vec![0u8; BLOCK_SIZE]);
    }

    #[test]
    fn data_commands_require_transfer_state() {
        let mut c = SdCard::formatted(64);
        // Card is still idle: a read command must time out.
        assert_eq!(c.execute(cmd::READ_SINGLE, 0), CmdResult::Timeout);
        assert!(c.read_blocks(0, 1).is_none());
    }

    #[test]
    fn out_of_range_is_flagged_in_status() {
        let mut c = init_card();
        match c.execute(cmd::READ_SINGLE, 5000) {
            CmdResult::R1(s) => assert!(s & status::OUT_OF_RANGE != 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn removal_makes_the_card_unresponsive() {
        let mut c = init_card();
        c.remove();
        assert_eq!(c.execute(cmd::SEND_STATUS, 0), CmdResult::Timeout);
        assert!(c.read_blocks(0, 1).is_none());
        c.reinsert();
        assert_eq!(c.state(), CardState::Idle);
        // Needs re-initialisation before data commands work again.
        assert_eq!(c.execute(cmd::READ_SINGLE, 0), CmdResult::Timeout);
    }

    #[test]
    fn app_cmd_gates_acmd_interpretation() {
        let mut c = init_card();
        // ACMD6 without a preceding CMD55 must be treated as illegal CMD6.
        match c.execute(cmd::ACMD_SET_BUS_WIDTH, 2) {
            CmdResult::R1(s) => assert!(s & status::ILLEGAL_COMMAND != 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(c.execute(cmd::APP_CMD, 0), CmdResult::R1(_)));
        match c.execute(cmd::ACMD_SET_BUS_WIDTH, 2) {
            CmdResult::R1(s) => assert_eq!(s & status::ILLEGAL_COMMAND, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_block_count_is_consumed_by_stop() {
        let mut c = init_card();
        assert!(matches!(c.execute(cmd::SET_BLOCK_COUNT, 8), CmdResult::R1(_)));
        assert!(matches!(c.execute(cmd::STOP_TRANSMISSION, 0), CmdResult::R1Busy(_)));
        assert_eq!(c.preset_block_count, None);
    }

    #[test]
    fn fast_init_restores_transfer_state() {
        let mut c = SdCard::formatted(64);
        c.fast_init();
        assert_eq!(c.state(), CardState::Transfer);
        assert!(matches!(c.execute(cmd::READ_SINGLE, 0), CmdResult::R1(_)));
    }

    #[test]
    fn poke_and_peek_bypass_the_bus_for_validation() {
        let mut c = SdCard::formatted(64);
        c.poke_block(3, &[9u8; 16]);
        let b = c.peek_block(3);
        assert_eq!(&b[..16], &[9u8; 16]);
        assert_eq!(b.len(), BLOCK_SIZE);
        assert_eq!(c.peek_block(4), vec![0u8; BLOCK_SIZE]);
    }

    #[test]
    fn csd_encodes_capacity() {
        let c = SdCard::formatted(2048 * 1024);
        let csd = c.csd();
        // C_SIZE low bits land in word 2; capacity 2M blocks -> c_size 2047.
        assert_eq!((csd[2] >> 16) & 0xffff, 2047);
    }

    #[test]
    fn write_rejects_partial_blocks_and_overflow() {
        let mut c = init_card();
        assert!(matches!(c.execute(cmd::WRITE_SINGLE, 0), CmdResult::R1(_)));
        assert!(!c.write_blocks(0, &[0u8; 100]));
        // State was consumed by the failed attempt? No: failure leaves state.
        assert_eq!(c.state(), CardState::ReceiveData);
        assert!(!c.write_blocks(1023, &vec![0u8; 2 * BLOCK_SIZE]));
        assert!(c.write_blocks(1022, &vec![1u8; 2 * BLOCK_SIZE]));
    }
}
