//! Secure-storage use case: a credential store and an embedded database
//! running entirely inside the TEE over the MMC driverlet (§2.1 "secure
//! storage", §8.3 SQLite workloads).
//!
//! Run with `cargo run --example secure_storage_db --release`.

use dlt_trustlets::CredentialStore;
use dlt_workloads::block::{BlockDev, DriverletDev, StorageKind};
use dlt_workloads::MicroDb;

fn main() {
    // One TEE-owned MMC stack with the full driverlet (records the campaign).
    println!("[setup] recording the MMC driverlet and installing the TEE...");
    let mut dev = DriverletDev::new(StorageKind::Mmc);

    // 1. Credential store: fixed slots near the start of the card.
    let store = CredentialStore::new(8, 16);
    store
        .store(dev.replayer_mut(), 0, b"wifi-psk: correct horse battery staple")
        .expect("store credential");
    store.store(dev.replayer_mut(), 1, b"fingerprint-template: 0xdeadbeef").expect("store");
    let cred = store.load(dev.replayer_mut(), 0).expect("load credential");
    println!("[creds] slot 0 round-tripped: {}", String::from_utf8_lossy(&cred));

    // 2. An embedded database over the same driverlet-backed block device.
    let mut db = MicroDb::format(dev, 4096, 64).expect("format microdb");
    println!("[db]    formatted a 64-bucket database on the secure card");
    for k in 0..200u64 {
        db.put(k, format!("user-email-{k}@example.com").as_bytes()).expect("put");
    }
    let mut hits = 0;
    for k in 0..200u64 {
        if db.get(k).expect("get").is_some() {
            hits += 1;
        }
    }
    let (reads, writes) = db.io_counts();
    println!("[db]    {hits}/200 records readable; {reads} page reads, {writes} page writes");
    let breakdown = db.dev().invocation_breakdown();
    println!("[db]    driverlet template invocations by granularity: {breakdown:?}");
    println!("secure storage example complete.");
}
