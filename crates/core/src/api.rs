//! The trustlet-facing driverlet interfaces (`driverlet.h` in Figure 8).

use std::collections::HashMap;

use crate::replayer::{ReplayError, ReplayOutcome, Replayer};

/// MMC block size in bytes.
pub const MMC_BLOCK_SIZE: usize = 512;

fn block_args(rw: u64, blkcnt: u32, blkid: u32, flag: u64) -> HashMap<String, u64> {
    [
        ("rw".to_string(), rw),
        ("blkcnt".to_string(), u64::from(blkcnt)),
        ("blkid".to_string(), u64::from(blkid)),
        ("flag".to_string(), flag),
    ]
    .into_iter()
    .collect()
}

/// `replay_mmc(rw, blkcnt, blkid, flag, buf)` — read or write `blkcnt`
/// 512-byte blocks starting at `blkid` on the secure SD card.
///
/// `rw` uses the paper's encoding: `0x1` = read, `0x10` = write.
pub fn replay_mmc(
    replayer: &mut Replayer,
    rw: u64,
    blkcnt: u32,
    blkid: u32,
    flag: u64,
    buf: &mut [u8],
) -> Result<ReplayOutcome, ReplayError> {
    if buf.len() < blkcnt as usize * MMC_BLOCK_SIZE {
        return Err(ReplayError::Invalid("buffer smaller than the requested blocks".into()));
    }
    replayer.invoke("replay_mmc", &block_args(rw, blkcnt, blkid, flag), buf)
}

/// `replay_usb(rw, blkcnt, blkid, flag, buf)` — read or write `blkcnt`
/// 512-byte blocks on the secure USB mass-storage stick.
pub fn replay_usb(
    replayer: &mut Replayer,
    rw: u64,
    blkcnt: u32,
    blkid: u32,
    flag: u64,
    buf: &mut [u8],
) -> Result<ReplayOutcome, ReplayError> {
    if buf.len() < blkcnt as usize * MMC_BLOCK_SIZE {
        return Err(ReplayError::Invalid("buffer smaller than the requested blocks".into()));
    }
    replayer.invoke("replay_usb", &block_args(rw, blkcnt, blkid, flag), buf)
}

/// `replay_cam(frames, resolution, buf, buf_size, &size)` — capture `frames`
/// images at `resolution` (720, 1080 or 1440); the last frame lands in `buf`.
///
/// Returns the image size in bytes (the paper's `size` out-parameter).
pub fn replay_cam(
    replayer: &mut Replayer,
    frames: u32,
    resolution: u32,
    buf: &mut [u8],
) -> Result<u32, ReplayError> {
    let args: HashMap<String, u64> = [
        ("frames".to_string(), u64::from(frames)),
        ("resolution".to_string(), u64::from(resolution)),
        ("buf_size".to_string(), buf.len() as u64),
    ]
    .into_iter()
    .collect();
    let outcome = replayer.invoke("replay_cam", &args, buf)?;
    // The image size is the device-assigned value the template captured; the
    // copy into the trustlet buffer is exactly that long.
    let img = outcome
        .captured
        .values()
        .copied()
        .filter(|v| *v > 0 && *v <= buf.len() as u64)
        .max()
        .unwrap_or(outcome.payload_bytes);
    Ok(img as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_tee::SecureIo;

    #[test]
    fn buffer_size_validation_happens_before_selection() {
        let platform = dlt_hw::Platform::new();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let mut tiny = [0u8; 16];
        assert!(matches!(
            replay_mmc(&mut r, 0x1, 8, 0, 0, &mut tiny),
            Err(ReplayError::Invalid(_))
        ));
        assert!(matches!(
            replay_usb(&mut r, 0x1, 8, 0, 0, &mut tiny),
            Err(ReplayError::Invalid(_))
        ));
    }
}
