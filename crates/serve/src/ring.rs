//! io_uring-style submission/completion rings in normal-world shared
//! memory.
//!
//! The ring submit path replaces "one SMC per operation" with two bounded
//! single-producer/single-consumer rings that both worlds can see:
//!
//! * a per-lane **submission ring** ([`SubmissionRing`]) the client fills
//!   without entering the TEE — only the **doorbell** SMC that follows a
//!   batch of enqueues crosses the world boundary, and it admits every
//!   staged entry at once;
//! * a per-session **completion ring** ([`CompletionRing`]) the service
//!   posts into and the client reaps without any SMC at all. When the ring
//!   is full the service never drops a completion: it spills to a
//!   kernel-side overflow list (io_uring's `CQ_OVERFLOW` behaviour), and
//!   flushing that list back costs the reader one world switch.
//!
//! Slots are tracked io_uring-style with monotonically increasing
//! head/tail indices (occupancy is `tail - head`); the simulation stores
//! the slot contents in a `VecDeque` rather than a mapped array, but the
//! protocol — bounded ring, producer bumps tail, consumer bumps head,
//! doorbell publishes the tail — is the one the normal world and the gate
//! trustlet would share.

use std::collections::VecDeque;

use crate::{Completion, Request, RequestId, SessionId};

/// One staged submission-ring slot: everything the gate trustlet needs to
/// admit the request at doorbell time.
#[derive(Debug, Clone)]
pub struct SqEntry {
    /// Request id assigned at enqueue (ids are handed out in enqueue
    /// order, exactly like the per-call path hands them out per SMC).
    pub id: RequestId,
    /// Session that staged the entry.
    pub session: SessionId,
    /// The request itself.
    pub req: Request,
    /// Normal-world (control-clock) time at which the client staged the
    /// entry — the stamp client-observed latency is measured from.
    pub enqueued_ns: u64,
}

/// A bounded submission ring (one per device lane).
#[derive(Debug)]
pub struct SubmissionRing {
    slots: VecDeque<SqEntry>,
    depth: usize,
    head: u64,
    tail: u64,
    high_water: usize,
}

impl SubmissionRing {
    /// An empty ring with `depth` slots.
    pub fn new(depth: usize) -> Self {
        SubmissionRing {
            slots: VecDeque::new(),
            depth: depth.max(1),
            head: 0,
            tail: 0,
            high_water: 0,
        }
    }

    /// Entries currently staged (tail - head).
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Whether every slot is in use (the producer must ring the doorbell
    /// — or back off — before staging more).
    pub fn is_full(&self) -> bool {
        self.len() >= self.depth
    }

    /// The ring bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Deepest the ring has been (occupancy high-water mark).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Stage one entry. Returns the entry back when the ring is full, so
    /// the caller can surface typed backpressure instead of dropping it.
    pub fn try_push(&mut self, entry: SqEntry) -> Result<(), SqEntry> {
        if self.is_full() {
            return Err(entry);
        }
        self.slots.push_back(entry);
        self.tail += 1;
        self.high_water = self.high_water.max(self.len());
        Ok(())
    }

    /// Consume every staged entry in enqueue order (the gate's drain at
    /// doorbell time): bumps the head past the published tail.
    pub fn drain_staged(&mut self) -> Vec<SqEntry> {
        self.head = self.tail;
        self.slots.drain(..).collect()
    }
}

/// A bounded completion ring (one per session) with a never-drop overflow
/// list.
#[derive(Debug)]
pub struct CompletionRing {
    slots: VecDeque<Completion>,
    depth: usize,
    head: u64,
    tail: u64,
    overflow: VecDeque<Completion>,
}

impl CompletionRing {
    /// An empty ring with `depth` reapable slots.
    pub fn new(depth: usize) -> Self {
        CompletionRing {
            slots: VecDeque::new(),
            depth: depth.max(1),
            head: 0,
            tail: 0,
            overflow: VecDeque::new(),
        }
    }

    /// Completions waiting to be reaped (ring plus overflow list).
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize + self.overflow.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post one completion. Returns `true` when the ring was full and the
    /// completion went to the overflow list instead (the reader's next
    /// reap must enter the kernel to flush it) — the service aggregates
    /// these into `ServeStats::cq_overflows`.
    pub fn post(&mut self, completion: Completion) -> bool {
        if (self.tail - self.head) as usize >= self.depth {
            self.overflow.push_back(completion);
            return true;
        }
        self.slots.push_back(completion);
        self.tail += 1;
        false
    }

    /// Reap everything in post order. The boolean is `true` when the
    /// overflow list had to be flushed (which costs the ring-mode reader a
    /// world switch; in-ring entries are free to read).
    pub fn take_all(&mut self) -> (Vec<Completion>, bool) {
        self.head = self.tail;
        let mut taken: Vec<Completion> = self.slots.drain(..).collect();
        let flushed = !self.overflow.is_empty();
        taken.extend(self.overflow.drain(..));
        (taken, flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, ServeError};

    fn entry(id: RequestId) -> SqEntry {
        SqEntry {
            id,
            session: 1,
            req: Request::Read { device: Device::Mmc, blkid: id as u32, blkcnt: 1 },
            enqueued_ns: id,
        }
    }

    fn completion(id: RequestId) -> Completion {
        Completion {
            id,
            session: 1,
            device: Device::Mmc,
            result: Err(ServeError::Invalid("test".into())),
            submitted_ns: 0,
            completed_ns: id,
            coalesced: false,
        }
    }

    #[test]
    fn sq_bounds_and_preserves_enqueue_order() {
        let mut sq = SubmissionRing::new(2);
        sq.try_push(entry(1)).unwrap();
        sq.try_push(entry(2)).unwrap();
        let rejected = sq.try_push(entry(3)).unwrap_err();
        assert_eq!(rejected.id, 3, "a full ring hands the entry back, never drops it");
        assert!(sq.is_full());
        assert_eq!(sq.high_water(), 2);
        let drained = sq.drain_staged();
        assert_eq!(drained.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 2]);
        assert!(sq.is_empty());
        // Indices keep rising across drain cycles (io_uring-style
        // monotone head/tail, never reset).
        sq.try_push(entry(4)).unwrap();
        assert_eq!(sq.len(), 1);
        assert_eq!(sq.drain_staged().len(), 1);
    }

    #[test]
    fn cq_overflow_spills_without_dropping_and_flags_the_flush() {
        let mut cq = CompletionRing::new(2);
        assert!(!cq.post(completion(1)));
        assert!(!cq.post(completion(2)));
        assert!(cq.post(completion(3)), "the third post overflows a depth-2 ring");
        assert_eq!(cq.len(), 3);
        let (taken, flushed) = cq.take_all();
        assert!(flushed, "reaping past an overflow costs the reader a kernel entry");
        assert_eq!(taken.iter().map(|c| c.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(cq.is_empty());
        // In-ring reaps after the flush are free again.
        assert!(!cq.post(completion(4)));
        let (taken, flushed) = cq.take_all();
        assert_eq!(taken.len(), 1);
        assert!(!flushed);
    }
}
