//! USB mass-storage class driver: bulk-only transport over the HCD.
//!
//! Reproduces the behaviours the paper observed in the full Linux stack
//! (§7.2.3): the CBW/CSW descriptors are the primary driver/device
//! conversation, the driver picks READ(10)/WRITE(10) among the five SCSI
//! read/write variants, the CBW tag is a monotonically increasing serial
//! number, and sub-FTL-page writes are turned into read-modify-write of the
//! containing 4 KiB.

use dlt_dev_usb::device::{
    BULK_IN_EP, BULK_OUT_EP, CBW_LEN, CBW_SIGNATURE, CSW_LEN, CSW_SIGNATURE,
};
use dlt_dev_usb::scsi::{opcode, Cdb};
use dlt_dev_usb::USB_BLOCK_SIZE;
use dlt_hw::DmaRegion;

use crate::kenv::{DriverError, HwIo, IoFlags, Rw};
use crate::usb::hcd::{EpType, UsbHcd};

/// Blocks per FTL page (4 KiB / 512 B).
pub const BLOCKS_PER_FTL_PAGE: u32 = 8;

/// Mass-storage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// SCSI commands issued.
    pub scsi_commands: u64,
    /// Read-modify-write expansions performed for sub-page writes.
    pub rmw_expansions: u64,
    /// CSW status failures observed.
    pub csw_failures: u64,
}

/// The mass-storage class driver.
pub struct UsbStorageDriver<I: HwIo> {
    hcd: UsbHcd<I>,
    tag: u32,
    capacity_blocks: u64,
    initialized: bool,
    stats: StorageStats,
}

impl<I: HwIo> UsbStorageDriver<I> {
    /// Wrap an HCD.
    pub fn new(hcd: UsbHcd<I>) -> Self {
        UsbStorageDriver {
            hcd,
            tag: 1,
            capacity_blocks: 0,
            initialized: false,
            stats: StorageStats::default(),
        }
    }

    /// Access the HCD (tests).
    pub fn hcd_mut(&mut self) -> &mut UsbHcd<I> {
        &mut self.hcd
    }

    /// Statistics.
    pub fn stats(&self) -> StorageStats {
        self.stats
    }

    /// Device capacity in 512-byte blocks (valid after [`Self::init`]).
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Whether initialisation completed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Bring up the controller, enumerate the device and read its capacity.
    pub fn init(&mut self) -> Result<(), DriverError> {
        self.hcd.core_init()?;
        self.hcd.port_init()?;
        self.hcd.enumerate()?;
        // Class request: Get Max LUN.
        let _ = self.hcd.control([0xa1, 0xfe, 0, 0, 0, 0, 1, 0], 1)?;
        // TEST UNIT READY.
        self.scsi_no_data(&[opcode::TEST_UNIT_READY, 0, 0, 0, 0, 0])?;
        // READ CAPACITY(10).
        let cap = self.scsi_data_in(&[opcode::READ_CAPACITY_10, 0, 0, 0, 0, 0, 0, 0, 0, 0], 8)?;
        let last = u32::from_be_bytes([cap[0], cap[1], cap[2], cap[3]]);
        self.capacity_blocks = u64::from(last) + 1;
        self.initialized = true;
        Ok(())
    }

    fn next_tag(&mut self) -> u32 {
        let t = self.tag;
        self.tag = self.tag.wrapping_add(1);
        t
    }

    /// Write the 31-byte CBW into a DMA region word by word (the recorded
    /// shared-memory output events of a USB template).
    fn build_cbw(&mut self, region: DmaRegion, tag: u32, data_len: u32, dir_in: bool, cdb: &[u8]) {
        self.hcd.io_mut().shm_write32(region, 0, CBW_SIGNATURE);
        self.hcd.io_mut().shm_write32(region, 4, tag);
        self.hcd.io_mut().shm_write32(region, 8, data_len);
        let flags_lun_len =
            u32::from(if dir_in { 0x80u8 } else { 0 }) | (u32::from(cdb.len() as u8) << 16);
        self.hcd.io_mut().shm_write32(region, 12, flags_lun_len);
        // CDB bytes, packed little-endian into words 4..8.
        let mut padded = [0u8; 16];
        padded[..cdb.len().min(16)].copy_from_slice(&cdb[..cdb.len().min(16)]);
        for w in 0..4 {
            let word = u32::from_le_bytes([
                padded[w * 4],
                padded[w * 4 + 1],
                padded[w * 4 + 2],
                padded[w * 4 + 3],
            ]);
            self.hcd.io_mut().shm_write32(region, 16 + (w as u64) * 4, word);
        }
    }

    /// Check the CSW: signature, echoed tag, status byte.
    fn check_csw(&mut self, region: DmaRegion, expected_tag: u32) -> Result<(), DriverError> {
        let sig = self.hcd.io_mut().shm_read32(region, 0);
        let tag = self.hcd.io_mut().shm_read32(region, 4);
        let _residue = self.hcd.io_mut().shm_read32(region, 8);
        let status = self.hcd.io_mut().shm_read32(region, 12) & 0xff;
        if sig != CSW_SIGNATURE || tag != expected_tag {
            self.stats.csw_failures += 1;
            return Err(DriverError::Device(format!("bad CSW (sig={sig:#x}, tag={tag})")));
        }
        if status != 0 {
            self.stats.csw_failures += 1;
            return Err(DriverError::Device(format!("CSW status {status}")));
        }
        Ok(())
    }

    fn scsi_transaction(
        &mut self,
        cdb: &[u8],
        dir_in: bool,
        data_len: usize,
        data_out: Option<&[u8]>,
    ) -> Result<Vec<u8>, DriverError> {
        self.stats.scsi_commands += 1;
        let tag = self.next_tag();
        let cbw_buf = self.hcd.io_mut().dma_alloc(CBW_LEN + 1)?;
        let csw_buf = self.hcd.io_mut().dma_alloc(CSW_LEN + 3)?;
        // Clear the status area so stale bytes from earlier transactions can
        // never be mistaken for a CSW (the device only writes 13 bytes).
        for off in [0u64, 4, 8, 12] {
            self.hcd.io_mut().shm_write32(csw_buf, off, 0);
        }
        self.build_cbw(cbw_buf, tag, data_len as u32, dir_in, cdb);
        self.hcd.submit(EpType::Bulk, BULK_OUT_EP, false, cbw_buf, CBW_LEN, false)?;

        let mut data = Vec::new();
        if data_len > 0 {
            let data_buf = self.hcd.io_mut().dma_alloc(data_len)?;
            if dir_in {
                self.hcd.submit(EpType::Bulk, BULK_IN_EP, true, data_buf, data_len, false)?;
                data = vec![0u8; data_len];
                self.hcd.io_mut().copy_from_dma(data_buf, 0, &mut data);
            } else {
                self.hcd.io_mut().copy_to_dma(data_buf, 0, data_out.unwrap_or(&[]));
                self.hcd.submit(EpType::Bulk, BULK_OUT_EP, false, data_buf, data_len, false)?;
            }
        }

        self.hcd.submit(EpType::Bulk, BULK_IN_EP, true, csw_buf, CSW_LEN, false)?;
        self.check_csw(csw_buf, tag)?;
        self.hcd.io_mut().dma_release_all();
        Ok(data)
    }

    fn scsi_no_data(&mut self, cdb: &[u8]) -> Result<(), DriverError> {
        self.scsi_transaction(cdb, false, 0, None).map(|_| ())
    }

    fn scsi_data_in(&mut self, cdb: &[u8], len: usize) -> Result<Vec<u8>, DriverError> {
        self.scsi_transaction(cdb, true, len, None)
    }

    /// The record entry: one block IO job, mirroring the MMC signature.
    pub fn do_io(
        &mut self,
        rw: Rw,
        blkcnt: u32,
        blkid: u32,
        _flags: IoFlags,
        buf: &mut [u8],
    ) -> Result<(), DriverError> {
        if !self.initialized {
            return Err(DriverError::Invalid("storage driver not initialised".into()));
        }
        if blkcnt == 0 || blkcnt > 1024 {
            return Err(DriverError::Invalid(format!("unsupported block count {blkcnt}")));
        }
        let total = blkcnt as usize * USB_BLOCK_SIZE;
        if buf.len() < total {
            return Err(DriverError::Invalid("buffer smaller than the request".into()));
        }
        self.hcd.prepare_request();
        // The driver selects READ(10)/WRITE(10): shortest variant that can
        // encode the LBA range of this stick (§7.2.3).
        let cdb = Cdb::encode_rw10(matches!(rw, Rw::Write), blkid, blkcnt as u16);
        match rw {
            Rw::Read => {
                let data = self.scsi_transaction(&cdb, true, total, None)?;
                buf[..total].copy_from_slice(&data);
            }
            Rw::Write => {
                self.scsi_transaction(&cdb, false, total, Some(&buf[..total]))?;
            }
        }
        Ok(())
    }

    /// Write fewer blocks than one FTL page by reading back the whole 4 KiB
    /// page, patching it, and writing the page back (the paper's observed
    /// sub-LBA write behaviour). Used by the native block path; the record
    /// campaign records the plain [`Self::do_io`] paths.
    pub fn write_subpage(&mut self, blkid: u32, data: &[u8]) -> Result<(), DriverError> {
        let blkcnt = (data.len() / USB_BLOCK_SIZE) as u32;
        if blkcnt >= BLOCKS_PER_FTL_PAGE {
            let mut copy = data.to_vec();
            return self.do_io(Rw::Write, blkcnt, blkid, IoFlags::none(), &mut copy);
        }
        self.stats.rmw_expansions += 1;
        let page_start = blkid & !(BLOCKS_PER_FTL_PAGE - 1);
        let mut page = vec![0u8; BLOCKS_PER_FTL_PAGE as usize * USB_BLOCK_SIZE];
        self.do_io(Rw::Read, BLOCKS_PER_FTL_PAGE, page_start, IoFlags::none(), &mut page)?;
        let off = ((blkid - page_start) as usize) * USB_BLOCK_SIZE;
        page[off..off + data.len()].copy_from_slice(data);
        self.do_io(Rw::Write, BLOCKS_PER_FTL_PAGE, page_start, IoFlags::none(), &mut page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kenv::BusIo;
    use dlt_dev_usb::UsbSubsystem;
    use dlt_hw::Platform;

    fn rig() -> (Platform, UsbSubsystem, UsbStorageDriver<BusIo>) {
        let p = Platform::new();
        let sys = UsbSubsystem::attach(&p).unwrap();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x200_0000, 0x100_0000));
        let mut drv = UsbStorageDriver::new(UsbHcd::new(io));
        drv.init().unwrap();
        (p, sys, drv)
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed)).collect()
    }

    #[test]
    fn init_reads_capacity() {
        let (_p, _sys, drv) = rig();
        assert!(drv.is_initialized());
        assert_eq!(drv.capacity_blocks(), dlt_dev_usb::USB_DISK_BLOCKS);
    }

    #[test]
    fn write_read_round_trip_various_sizes() {
        let (_p, sys, mut drv) = rig();
        for &blkcnt in &[1u32, 8, 32, 128] {
            let total = blkcnt as usize * USB_BLOCK_SIZE;
            let payload = pattern(total, blkcnt as u8);
            let mut buf = payload.clone();
            drv.do_io(Rw::Write, blkcnt, 64, IoFlags::none(), &mut buf).unwrap();
            let mut back = vec![0u8; total];
            drv.do_io(Rw::Read, blkcnt, 64, IoFlags::none(), &mut back).unwrap();
            assert_eq!(back, payload, "blkcnt={blkcnt}");
        }
        assert_eq!(sys.hostctrl.lock().device().disk().peek_block(64)[0], pattern(1, 128)[0]);
    }

    #[test]
    fn subpage_write_performs_rmw() {
        let (_p, sys, mut drv) = rig();
        // Pre-existing page contents.
        let base = pattern(8 * USB_BLOCK_SIZE, 0x40);
        let mut buf = base.clone();
        drv.do_io(Rw::Write, 8, 16, IoFlags::none(), &mut buf).unwrap();
        // Patch one block in the middle via the sub-page path.
        let patch = pattern(USB_BLOCK_SIZE, 0x90);
        drv.write_subpage(19, &patch).unwrap();
        assert_eq!(drv.stats().rmw_expansions, 1);
        // The rest of the page is preserved, the patched block changed.
        assert_eq!(
            sys.hostctrl.lock().device().disk().peek_block(16),
            base[..USB_BLOCK_SIZE].to_vec()
        );
        assert_eq!(sys.hostctrl.lock().device().disk().peek_block(19), patch);
    }

    #[test]
    fn tags_are_monotonic_serial_numbers() {
        let (_p, _sys, mut drv) = rig();
        let before = drv.tag;
        let mut buf = vec![0u8; USB_BLOCK_SIZE];
        drv.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut buf).unwrap();
        drv.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut buf).unwrap();
        assert_eq!(drv.tag, before + 2);
    }

    #[test]
    fn unplug_mid_io_fails_cleanly() {
        let (_p, sys, mut drv) = rig();
        sys.hostctrl.lock().unplug(0);
        let mut buf = vec![0u8; USB_BLOCK_SIZE];
        let err = drv.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut buf).unwrap_err();
        assert!(matches!(
            err,
            DriverError::NoMedium | DriverError::Device(_) | DriverError::Timeout(_)
        ));
    }
}
