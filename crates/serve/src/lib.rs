//! # dlt-serve — a multi-tenant service layer over the driverlet replayer
//!
//! The paper's replayer serves one trustlet invocation at a time: every
//! caller owns a [`dlt_core::Replayer`] exclusively. Production TrustZone
//! deployments instead multiplex many trusted applications over few secure
//! devices (OP-TEE's session/command model), which needs admission,
//! fairness, batching and backpressure. This crate adds that layer:
//!
//! * **Sessions** ([`DriverletService::open_session`]): N concurrent
//!   clients admitted through the `dlt-tee` trustlet/session framework.
//!   Each client holds a session id — a *handle* — rather than a replayer.
//! * **Two submission paths** ([`SubmitMode`]): per-call — every submit
//!   crosses the world boundary once (one SMC plus the GP invoke
//!   marshalling), exactly like an OP-TEE command invocation, and every
//!   completion reap is another SMC — or **shared-memory rings**
//!   ([`ring`]): submits stage entries in a per-lane submission ring
//!   without entering the TEE, one [`DriverletService::ring_doorbell`]
//!   SMC admits the whole staged batch under the same admission checks,
//!   and completions are reaped from per-session completion rings
//!   SMC-free. World switches are the dominant fixed cost of TEE I/O
//!   (Amacher & Schiavoni), so amortising one doorbell over N requests is
//!   the serve layer's biggest hot-path win; the legacy path stays
//!   available so the serial-equivalence differential can prove the ring
//!   path behaviour-identical.
//! * **One TEE core per device lane** ([`service`]): every served device
//!   owns a full simulated platform — devices, interrupt controller and,
//!   crucially, its **own virtual clock** — so device time overlaps across
//!   lanes the way it does across real TrustZone cores. A camera burst on
//!   the VCHIQ lane no longer stalls MMC/USB progress. The service merges
//!   lane timelines with a pointwise-max rule (see
//!   [`DriverletService::now_ns`]); completions carry lane-local times.
//! * **Event-driven scheduling** ([`sched`]): [`DriverletService::drain`]
//!   executes **one batch per call** on the lane with the smallest
//!   next-event time; each lane drains a bounded submission queue under a
//!   configurable policy — FIFO or deficit round-robin across sessions. A
//!   full queue rejects the submit with [`ServeError::QueueFull`] (which
//!   names the device and lane depth, so backpressure is per-device)
//!   instead of growing without bound.
//! * **Request coalescing** ([`coalesce`]): adjacent or overlapping block
//!   reads merge into one multi-block replay, and runs of strictly
//!   adjacent same-direction writes batch into a single larger replay —
//!   both decomposed over the *recorded* granularities, because the
//!   replayer can only execute recorded paths (§3.3). Completions fan back
//!   out per request with byte-identical payloads.
//! * **Anticipatory coalescing** ([`coalesce::plan_dispatch`]): under
//!   light load a lane *plugs* — holds its queue open for a configurable
//!   [`ServeConfig::hold_budget_ns`] latency budget after the first
//!   request arrives — so requests that used to straddle batch boundaries
//!   merge into one replay. The plug unplugs early on a direction change,
//!   on queue-full, or the moment a competing session's unmergeable
//!   request is waiting (kernel block-layer plug/unplug, bounded by the
//!   budget so p50 stays close to the no-hold baseline).
//!
//! The scheduler executes each lane's batches in queue order (reads within
//! one merge group commute), so any concurrent interleaving is equivalent
//! to *some* serial order of the submitted requests — property-tested
//! differentially against the tree-walking interpreter in
//! `tests/serial_equivalence.rs`, with per-lane clocks and anticipatory
//! hold enabled.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod coalesce;
pub(crate) mod lane;
pub mod ring;
pub mod route;
pub mod sched;
pub mod service;

/// The lock-free SPSC ring under the shared-memory rings and the per-lane
/// channels — now owned by `dlt-obs` (the flight recorder shares the same
/// core), re-exported here so `dlt_serve::spsc` paths keep working.
pub use dlt_obs::spsc;

/// Re-exported so service users can set [`ServeConfig::obs`] without
/// depending on `dlt-obs` directly.
pub use dlt_obs::ObsConfig;

pub use adapter::ServedBlockDev;
pub use route::{LaneId, ReplicaDepth, RouteConfig, RoutePolicy};
pub use sched::{Policy, QosConfig, SessionQos};
pub use service::{
    DriverletService, ExecMode, FailoverConfig, LaneSubmitter, ServeConfig, ServeStats,
    SessionBlockIo, SubmitMode, SuperviseConfig, HEALTH_PROBE_BLKID,
};

use dlt_core::ReplayError;
use dlt_tee::TeeError;

/// A secure device the service can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The secure SD card behind the SDHOST controller.
    Mmc,
    /// The secure USB mass-storage stick behind the DWC2 controller.
    Usb,
    /// The VC4 camera behind the VCHIQ transport.
    Vchiq,
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Mmc => write!(f, "mmc"),
            Device::Usb => write!(f, "usb"),
            Device::Vchiq => write!(f, "vchiq"),
        }
    }
}

/// A client session handle (the id handed out by the TEE session layer).
pub type SessionId = u32;

/// A per-service unique request id.
pub type RequestId = u64;

/// One request submitted into a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read `blkcnt` 512-byte blocks starting at `blkid`.
    Read {
        /// Target block device.
        device: Device,
        /// First block.
        blkid: u32,
        /// Number of blocks.
        blkcnt: u32,
    },
    /// Write whole blocks starting at `blkid`.
    Write {
        /// Target block device.
        device: Device,
        /// First block.
        blkid: u32,
        /// Data, a whole number of 512-byte blocks.
        data: Vec<u8>,
    },
    /// Capture `frames` camera frames at `resolution` (720/1080/1440).
    Capture {
        /// Burst length.
        frames: u32,
        /// Resolution code.
        resolution: u32,
    },
}

impl Request {
    /// The device this request targets.
    pub fn device(&self) -> Device {
        match self {
            Request::Read { device, .. } | Request::Write { device, .. } => *device,
            Request::Capture { .. } => Device::Vchiq,
        }
    }

    /// Scheduling cost in block-equivalents (the DRR quantum currency).
    pub fn cost_blocks(&self) -> u64 {
        match self {
            Request::Read { blkcnt, .. } => u64::from(*blkcnt).max(1),
            Request::Write { data, .. } => ((data.len() / BLOCK) as u64).max(1),
            // A frame is far heavier than a block; weigh it like a 32 KiB
            // transfer so camera sessions cannot starve block sessions.
            Request::Capture { frames, .. } => 64 * u64::from(*frames).max(1),
        }
    }
}

/// Block size in bytes (the service speaks the paper's 512-byte blocks).
pub const BLOCK: usize = dlt_core::MMC_BLOCK_SIZE;

/// Largest single block request (and largest coalesced span) the service
/// accepts, in blocks (2 MiB). Bounds the span buffer one tenant can
/// demand; the recorded-coverage check still applies at replay time.
pub const MAX_REQUEST_BLOCKS: u32 = 4096;

/// Successful result data of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Bytes read from the device.
    Read(Vec<u8>),
    /// Blocks written to the device.
    Written {
        /// Number of blocks written.
        blocks: u32,
    },
    /// A captured camera frame.
    Image {
        /// JPEG bytes (trimmed to the device-assigned size).
        data: Vec<u8>,
    },
}

/// Completion of one submitted request, fanned out of whatever (possibly
/// merged) replay served it.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request this completes.
    pub id: RequestId,
    /// Session the request belonged to.
    pub session: SessionId,
    /// Device that served it.
    pub device: Device,
    /// Result payload or error.
    pub result: Result<Payload, ServeError>,
    /// Virtual time at submission.
    pub submitted_ns: u64,
    /// Virtual time at completion.
    pub completed_ns: u64,
    /// Whether the request was served by a merged/batched replay.
    pub coalesced: bool,
}

impl Completion {
    /// Queueing + service latency in virtual nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.submitted_ns)
    }
}

/// A lane's supervision state, maintained by the front-end watchdog and
/// exported as the `dlt_lane_state` gauge.
///
/// The state machine: `Healthy → Quarantined` when the divergence-rate or
/// stall threshold trips; `Quarantined → Probation` when the soft reset's
/// health probe passes; `Probation → Healthy` after a probation window of
/// clean completions; `Probation → Quarantined` if the lane diverges again
/// while on probation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneState {
    /// Serving normally.
    #[default]
    Healthy,
    /// Tripped by the watchdog: clean queued work was drained back through
    /// the router and routed admission avoids the lane until a soft reset
    /// probe passes.
    Quarantined,
    /// Soft reset passed; serving again but still watched, restored to
    /// [`LaneState::Healthy`] after a clean probation window.
    Probation,
}

impl LaneState {
    /// The `dlt_lane_state` gauge encoding of this state.
    pub fn as_gauge(self) -> u64 {
        match self {
            LaneState::Healthy => dlt_obs::LANE_STATE_HEALTHY,
            LaneState::Quarantined => dlt_obs::LANE_STATE_QUARANTINED,
            LaneState::Probation => dlt_obs::LANE_STATE_PROBATION,
        }
    }

    /// Recover a state from its gauge encoding (unknown values read as
    /// [`LaneState::Healthy`], the zero state).
    pub fn from_gauge(gauge: u64) -> LaneState {
        match gauge {
            dlt_obs::LANE_STATE_QUARANTINED => LaneState::Quarantined,
            dlt_obs::LANE_STATE_PROBATION => LaneState::Probation,
            _ => LaneState::Healthy,
        }
    }
}

impl std::fmt::Display for LaneState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneState::Healthy => write!(f, "healthy"),
            LaneState::Quarantined => write!(f, "quarantined"),
            LaneState::Probation => write!(f, "probation"),
        }
    }
}

/// One failover attempt in a [`ServeError::Exhausted`] trail: which
/// replica was tried and the virtual time the retry was charged at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverAttempt {
    /// Replica index within the device's lane fleet.
    pub replica: usize,
    /// Virtual-clock stamp the attempt was dispatched at (includes the
    /// exponential backoff charged against the request's timeline).
    pub at_ns: u64,
}

/// A structured lane health report, returned by
/// [`DriverletService::lane_health_check`] alongside the active probe
/// (write/read-back on block lanes, a one-frame capture on the camera
/// lane). The counters come from the metrics plane's per-lane series, so
/// the report is exact even while other sessions keep the lane busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneHealth {
    /// The probed device.
    pub device: Device,
    /// The lane's supervision state at probe time.
    pub state: LaneState,
    /// Requests sitting in the lane's local queue at probe time.
    pub queued: u64,
    /// Requests admitted but not yet posted (reservation count).
    pub inflight: u64,
    /// Requests completed successfully over the lane's lifetime.
    pub completed: u64,
    /// Requests that ended in replay divergence.
    pub diverged: u64,
    /// Host-monotonic stamp (ns since service start) of the lane's most
    /// recent recorded event — a stalled lane stops advancing this.
    pub last_event_host_ns: u64,
}

/// Errors raised by the service layer.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The device's submission queue — or, in [`SubmitMode::Ring`], its
    /// submission *ring* — is full: backpressure, never a silent drop.
    /// The error carries the rejecting device and the saturated queue's
    /// depth/capacity (the lane queue on the per-call path, the SQ ring
    /// on the ring path) so callers can back off **per device** (e.g.
    /// [`DriverletService::drain_device`] on just the saturated lane,
    /// preceded by a [`DriverletService::ring_doorbell`] in ring mode)
    /// instead of stalling every lane globally.
    QueueFull {
        /// Device whose queue rejected the submit.
        device: Device,
        /// The backlog at rejection time. Under the current bound-only
        /// admission rule this always equals `capacity`; it is carried
        /// separately so admission policies that reject earlier
        /// (per-session quotas, load shedding) can report the true depth
        /// without an API break.
        depth: usize,
        /// The configured bound (queue capacity or SQ ring depth).
        capacity: usize,
        /// The deepest occupancy the queue has ever reached (the metrics
        /// plane's admission-time high-water mark) — tells a backed-off
        /// caller whether saturation is chronic (`high_water` pinned at
        /// `capacity` for the run) or a one-off burst.
        high_water: usize,
        /// Per-replica depth snapshot of the device's whole lane fleet at
        /// rejection time, so a routed caller can tell "one hot shard"
        /// (back off briefly — spill is already shedding clean reads)
        /// from "fleet saturated" (drain the device). Empty when the
        /// rejection came from a directly addressed lane rather than the
        /// router.
        fleet: Vec<ReplicaDepth>,
    },
    /// Admission QoS rejected the submit before it could reserve queue
    /// depth: the session's token bucket is empty or its weighted share of
    /// the lane fleet is already in flight. Like [`ServeError::QueueFull`]
    /// this is backpressure, never a silent drop — but it is *per tenant*,
    /// so a flooding session throttles while its victims keep admitting.
    Throttled {
        /// The throttled session.
        session: SessionId,
        /// Device the rejected request targeted.
        device: Device,
        /// Virtual nanoseconds until the token bucket refills enough to
        /// admit a request of this cost — the caller's backoff hint.
        retry_after_ns: u64,
    },
    /// A clean read's failover retry budget ran out: every attempt ended
    /// in a divergence (or found no healthy sibling with queue room). The
    /// trail names each replica tried and the virtual time the attempt was
    /// charged at, so callers can see the backoff schedule that failed.
    Exhausted {
        /// Device whose lane fleet exhausted the budget.
        device: Device,
        /// Every attempt, in dispatch order (the first entry is the
        /// original placement, later entries the failover retries).
        attempts: Vec<FailoverAttempt>,
    },
    /// The session-admission limit was reached.
    SessionLimit {
        /// The configured maximum number of sessions.
        max: usize,
    },
    /// No such session (never opened, or already closed).
    InvalidSession(SessionId),
    /// The service was not configured to serve this device.
    DeviceNotServed(Device),
    /// The replay itself failed; the wrapped [`ReplayError`] is the
    /// [`std::error::Error::source`].
    Replay(ReplayError),
    /// A TEE service failed; the wrapped [`TeeError`] is the
    /// [`std::error::Error::source`].
    Tee(TeeError),
    /// Malformed request (zero-length, ragged write buffer, ...).
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { device, depth, capacity, high_water, fleet } => {
                write!(
                    f,
                    "submission queue for {device} is full ({depth} of {capacity} entries, \
                     high water {high_water})"
                )?;
                if !fleet.is_empty() {
                    write!(f, "; fleet")?;
                    for r in fleet {
                        write!(f, " {}:{}/{}", r.replica, r.depth, r.capacity)?;
                    }
                }
                Ok(())
            }
            ServeError::Throttled { session, device, retry_after_ns } => {
                write!(
                    f,
                    "session {session} throttled at admission for {device}: QoS budget \
                     exhausted, retry after {retry_after_ns} ns"
                )
            }
            ServeError::Exhausted { device, attempts } => {
                write!(
                    f,
                    "failover retry budget for {device} exhausted after {} attempt{}",
                    attempts.len(),
                    if attempts.len() == 1 { "" } else { "s" }
                )?;
                if !attempts.is_empty() {
                    write!(f, "; trail")?;
                    for a in attempts {
                        write!(f, " {}@{}", a.replica, a.at_ns)?;
                    }
                }
                Ok(())
            }
            ServeError::SessionLimit { max } => {
                write!(f, "session limit reached ({max} concurrent sessions)")
            }
            ServeError::InvalidSession(s) => write!(f, "invalid session {s}"),
            ServeError::DeviceNotServed(d) => write!(f, "device {d} is not served"),
            ServeError::Replay(e) => write!(f, "replay failed: {e}"),
            ServeError::Tee(e) => write!(f, "TEE failure: {e}"),
            ServeError::Invalid(s) => write!(f, "invalid request: {s}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Replay(e) => Some(e),
            ServeError::Tee(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReplayError> for ServeError {
    fn from(e: ReplayError) -> Self {
        ServeError::Replay(e)
    }
}

impl From<TeeError> for ServeError {
    fn from(e: TeeError) -> Self {
        ServeError::Tee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_and_devices_are_sane() {
        let r = Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 8 };
        assert_eq!(r.device(), Device::Mmc);
        assert_eq!(r.cost_blocks(), 8);
        let c = Request::Capture { frames: 2, resolution: 720 };
        assert_eq!(c.device(), Device::Vchiq);
        assert!(c.cost_blocks() > r.cost_blocks());
    }

    #[test]
    fn error_sources_chain_across_crates() {
        use std::error::Error;
        let e = ServeError::Replay(ReplayError::UnknownEntry("replay_mmc".into()));
        assert!(e.source().is_some(), "ServeError must expose the ReplayError source");
        assert!(e.to_string().contains("replay_mmc"));
        let q = ServeError::QueueFull {
            device: Device::Usb,
            depth: 4,
            capacity: 4,
            high_water: 4,
            fleet: Vec::new(),
        };
        assert!(q.source().is_none(), "backpressure is a leaf error: nothing to chain");
        assert!(q.to_string().contains("usb"), "callers back off per device");
        assert!(q.to_string().contains('4'), "the lane depth is visible to callers");
        assert!(q.to_string().contains("high water 4"), "chronic saturation is distinguishable");
        assert!(!q.to_string().contains("fleet"), "a direct lane rejection has no fleet view");
        let routed = ServeError::QueueFull {
            device: Device::Mmc,
            depth: 8,
            capacity: 8,
            high_water: 8,
            fleet: vec![
                ReplicaDepth { replica: 0, depth: 8, capacity: 8 },
                ReplicaDepth { replica: 1, depth: 1, capacity: 8 },
            ],
        };
        let text = routed.to_string();
        assert!(
            text.contains("fleet 0:8/8 1:1/8"),
            "a routed rejection shows every replica's depth, got: {text}"
        );
    }

    #[test]
    fn throttled_and_exhausted_are_leaf_errors_in_queue_full_style() {
        use std::error::Error;
        let t = ServeError::Throttled { session: 7, device: Device::Mmc, retry_after_ns: 12_800 };
        assert!(t.source().is_none(), "throttling is backpressure: a leaf error");
        let text = t.to_string();
        assert!(text.contains("session 7"), "the throttled tenant is named");
        assert!(text.contains("mmc"), "callers back off per device");
        assert!(text.contains("12800 ns"), "the retry hint is visible, got: {text}");

        let e = ServeError::Exhausted {
            device: Device::Usb,
            attempts: vec![
                FailoverAttempt { replica: 0, at_ns: 1_000 },
                FailoverAttempt { replica: 2, at_ns: 3_000 },
                FailoverAttempt { replica: 1, at_ns: 7_000 },
            ],
        };
        assert!(e.source().is_none(), "budget exhaustion is a leaf error");
        let text = e.to_string();
        assert!(text.contains("usb"));
        assert!(text.contains("3 attempts"));
        assert!(
            text.contains("trail 0@1000 2@3000 1@7000"),
            "the whole attempt trail with backoff stamps is visible, got: {text}"
        );
    }

    #[test]
    fn lane_state_round_trips_through_the_gauge_encoding() {
        for state in [LaneState::Healthy, LaneState::Quarantined, LaneState::Probation] {
            assert_eq!(LaneState::from_gauge(state.as_gauge()), state);
        }
        assert_eq!(LaneState::from_gauge(99), LaneState::Healthy);
        assert_eq!(LaneState::Quarantined.to_string(), "quarantined");
    }
}
