//! `report` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dlt-bench --bin report --release            # everything
//! cargo run -p dlt-bench --bin report --release -- table3  # one artifact
//! ```
//!
//! Artifacts: table3 table4 table5 table6 table7 table8 table9 fig5 fig6 fig7
//! memory replay serve explore. Numbers are virtual-time measurements of the simulated
//! platform (`replay` additionally reports wall-clock engine throughput);
//! EXPERIMENTS.md records a reference run next to the paper's numbers.

use std::collections::HashMap;

use dlt_bench::{breakdown_table, constraints_table, figure5_panel, memory_report};
use dlt_gold_drivers::stats::{measured_table7, measured_table8, paper_table7, paper_table8};
use dlt_recorder::campaign::{record_camera_driverlet, record_mmc_driverlet, record_usb_driverlet};
use dlt_workloads::block::{StorageKind, StoragePath};
use dlt_workloads::camera::run_camera_sweep;
use dlt_workloads::micro::run_micro_sweep;
use dlt_workloads::suite::{run_benchmark, SqliteBenchmark};

fn want(selected: &str, name: &str) -> bool {
    selected == "all" || selected == name
}

fn main() {
    let selected = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let quick = std::env::args().any(|a| a == "--quick");
    let queries: u64 = if quick { 20 } else { 60 };

    println!("== driverlets reproduction report (virtual-time measurements) ==\n");

    if want(&selected, "table3") || want(&selected, "table4") || want(&selected, "memory") {
        println!("recording the MMC driverlet (10 templates)...");
        let mmc = record_mmc_driverlet().expect("record mmc");
        if want(&selected, "table3") {
            println!(
                "\n--- Table 3: MMC template event breakdown (paper: 24-150 events/template) ---"
            );
            println!("{}", breakdown_table(&mmc));
        }
        if want(&selected, "table4") {
            println!("\n--- Table 4: MMC constraints & taint sinks (RW_1 read template) ---");
            println!("{}", constraints_table(&mmc, "mmc_rd_1"));
            println!("paper: rw->SDCMD, blkcnt->SDHBLC, blkid->SDARG (&~0x7); blkid <= 0x1df77f8");
        }
        if want(&selected, "memory") {
            println!("recording the USB and camera driverlets for the memory report...");
            let usb = record_usb_driverlet().expect("record usb");
            let cam = record_camera_driverlet().expect("record camera");
            println!("\n--- Memory overhead (§8.3.4) ---");
            println!("{}", memory_report(&mmc, &usb, &cam));
        }
    }

    if want(&selected, "table5") || want(&selected, "table6") {
        println!("\nrecording the camera driverlet (OneShot/ShortBurst/LongBurst)...");
        let cam = record_camera_driverlet().expect("record camera");
        if want(&selected, "table5") {
            println!("\n--- Table 5: camera template event breakdown (paper: 75-680 events) ---");
            println!("{}", breakdown_table(&cam));
        }
        if want(&selected, "table6") {
            println!("\n--- Table 6: camera constraints & taint sinks (OneShot) ---");
            println!("{}", constraints_table(&cam, "camera_oneshot"));
            println!("paper: resolution/buf_size/img_size/pg_list/queue constraints; MBOX_WRITE = queue & ~0x3fff");
        }
    }

    if want(&selected, "table7") {
        println!("\n--- Table 7: build-from-scratch effort (paper vs this reproduction's device models) ---");
        println!(
            "{:<8} {:>6} {:>11} {:>10} {:>7} {:>12} {:>12}",
            "driver", "CMDs", "proto pages", "dev pages", "paths", "regs/fields", "desc/fields"
        );
        for (p, m) in paper_table7().iter().zip(measured_table7().iter()) {
            let fmt = |e: &dlt_gold_drivers::stats::ScratchEffort| {
                format!(
                    "{:<8} {:>6} {:>11} {:>10} {:>7} {:>12} {:>12}",
                    e.name,
                    e.commands,
                    e.protocol_spec_pages.map(|v| v.to_string()).unwrap_or_else(|| "n/a".into()),
                    e.device_spec_pages.map(|v| v.to_string()).unwrap_or_else(|| "n/a".into()),
                    e.transition_paths,
                    format!("{}/{}", e.registers.0, e.registers.1),
                    format!("{}/{}", e.descriptors.0, e.descriptors.1),
                )
            };
            println!("paper:    {}", fmt(p));
            println!("measured: {}", fmt(m));
        }
    }

    if want(&selected, "table8") {
        println!("\n--- Table 8: porting effort (paper Linux drivers vs this reproduction's gold drivers) ---");
        println!(
            "{:<8} {:>10} {:>10} {:>8} {:>10} {:>8}",
            "driver", "functions", "dev conf", "macros", "callbacks", "SLoC"
        );
        for (p, m) in paper_table8().iter().zip(measured_table8().iter()) {
            println!(
                "paper:    {:<8} {:>10} {:>10} {:>8} {:>10} {:>8}",
                p.name, p.functions, p.device_configs, p.macros, p.callbacks, p.sloc
            );
            println!(
                "measured: {:<8} {:>10} {:>10} {:>8} {:>10} {:>8}",
                m.name, m.functions, m.device_configs, m.macros, m.callbacks, m.sloc
            );
        }
    }

    if want(&selected, "table9") {
        println!("\n--- Table 9: SQLite benchmarks — template-invocation breakdown (driverlet path, MMC) ---");
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>8} {:>8} {:>6}",
            "benchmark", "RW_1", "RW_8", "RW_32", "RW_128", "RW_256", "R:W"
        );
        for bench in SqliteBenchmark::all() {
            let r = run_benchmark(bench, StorageKind::Mmc, StoragePath::Driverlet, queries)
                .expect("driverlet benchmark");
            let g = |n: u32| r.breakdown.get(&n).copied().unwrap_or(0);
            let (rd, wr) = bench.rw_ratio();
            println!(
                "{:<10} {:>6} {:>6} {:>6} {:>8} {:>8} {:>6}",
                bench.name(),
                g(1),
                g(8),
                g(32),
                g(128),
                g(256),
                format!("{rd}:{wr}")
            );
        }
    }

    if want(&selected, "fig5") {
        for (kind, label) in
            [(StorageKind::Mmc, "5a SQLite-MMC"), (StorageKind::Usb, "5b SQLite-USB")]
        {
            println!("\n--- Figure {label}: IOPS (native / native-sync / ours) ---");
            println!(
                "{:<10} {:>10} {:>12} {:>10} {:>18}",
                "benchmark", "native", "native-sync", "ours", "ours vs native"
            );
            let rows = figure5_panel(kind, queries);
            let mut native_sum = 0.0;
            let mut ours_sum = 0.0;
            for (name, row) in &rows {
                let native = row["native"];
                let sync = row["native-sync"];
                let ours = row["ours"];
                native_sum += native;
                ours_sum += ours;
                println!(
                    "{:<10} {:>10.0} {:>12.0} {:>10.0} {:>17.2}x",
                    name,
                    native,
                    sync,
                    ours,
                    native / ours
                );
            }
            println!(
                "average driverlet slowdown vs native: {:.2}x (paper: 1.8x for MMC, 1.5x for USB)",
                native_sum / ours_sum
            );
        }
    }

    if want(&selected, "fig6") {
        println!("\n--- Figure 6: camera capture latency (seconds, virtual time) ---");
        let bursts: &[u32] = if quick { &[1, 10] } else { &[1, 10, 100] };
        let results = run_camera_sweep(bursts);
        println!(
            "{:<12} {:>6} {:>12} {:>12} {:>10}",
            "burst", "res", "ours (s)", "native (s)", "ours/nat"
        );
        for burst in bursts {
            for res in [720u32, 1080, 1440] {
                let ours = results
                    .iter()
                    .find(|r| r.burst == *burst && r.resolution == res && r.driverlet)
                    .unwrap();
                let native = results
                    .iter()
                    .find(|r| r.burst == *burst && r.resolution == res && !r.driverlet)
                    .unwrap();
                println!(
                    "{:<12} {:>6} {:>12.2} {:>12.2} {:>9.2}x",
                    ours.burst_name(),
                    res,
                    ours.latency_ns as f64 / 1e9,
                    native.latency_ns as f64 / 1e9,
                    ours.latency_ns as f64 / native.latency_ns as f64
                );
            }
        }
        println!("paper: 11% slower for one frame, up to 2.7x for 100-frame bursts");
    }

    if want(&selected, "fig7") {
        println!("\n--- Figure 7: read/write latency per request (microseconds, virtual time) ---");
        let grans: &[u32] = if quick { &[1, 32, 256] } else { &[1, 8, 32, 128, 256] };
        for (kind, label) in [(StorageKind::Mmc, "MMC"), (StorageKind::Usb, "USB")] {
            println!("{label}:");
            println!(
                "{:<6} {:<6} {:>12} {:>12} {:>10}",
                "blocks", "op", "ours (us)", "native (us)", "ours/nat"
            );
            for r in run_micro_sweep(kind, grans) {
                println!(
                    "{:<6} {:<6} {:>12} {:>12} {:>9.2}x",
                    r.blkcnt,
                    if r.write { "write" } else { "read" },
                    r.driverlet_ns / 1_000,
                    r.native_ns / 1_000,
                    r.relative()
                );
            }
        }
        println!("paper: near-native latency; large USB writes up to 40% faster than native");
    }

    if want(&selected, "replay") {
        println!(
            "\n--- Replay-engine throughput (compiled program vs interpreter, wall clock) ---"
        );
        let invocations = if quick { 200 } else { 1_000 };
        let report = dlt_bench::replay_bench::run_throughput_only(8, invocations);
        print!("{}", dlt_bench::replay_bench::describe(&report));
        println!("(persisted trajectory numbers come from the replay_throughput bench)");
    }

    if want(&selected, "serve") {
        println!("\n--- Service-layer throughput (multi-core lanes, scheduling, coalescing) ---");
        // Prefer the persisted artifact (the serve_throughput bench writes
        // it with the package root as its working directory; `cargo run`
        // keeps the invocation directory, so try both); regenerate when it
        // is missing or from an older schema.
        let candidates = [
            std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into()),
            "crates/bench/BENCH_serve.json".into(),
        ];
        let report = candidates
            .iter()
            .find_map(|path| {
                let json = std::fs::read_to_string(path).ok()?;
                let r = dlt_bench::serve_bench::parse_report(&json).ok()?;
                println!("(loaded from {path})");
                Some(r)
            })
            .unwrap_or_else(|| {
                println!("(BENCH_serve.json missing or stale: rerunning the serve bench)");
                dlt_bench::serve_bench::run_serve_bench(quick)
            });
        print!("{}", dlt_bench::serve_bench::describe(&report));
        let ring = &report.ring;
        println!(
            "ring submission: {:.3} SMCs/request (vs {:.3} per-call), mean doorbell batch \
             {:.1}, SQ occupancy {:.2} -> {:.2}x request rate at batch {}",
            ring.ring.smcs_per_request,
            ring.legacy.smcs_per_request,
            ring.ring.mean_doorbell_batch,
            ring.ring.sq_occupancy,
            ring.speedup,
            ring.doorbell_batch
        );
        let wc = &report.wall_clock;
        println!(
            "wall-clock lane scaling (host time, recorded on a {}-core host, {} reads/lane):",
            wc.host_cores, wc.requests_per_lane
        );
        for p in &wc.points {
            // One bar character per 0.25x threaded-over-sequential speedup
            // so the curve's shape is visible at a glance.
            let bar = "#".repeat(((p.speedup * 4.0).round() as usize).clamp(1, 64));
            println!(
                "  {:>2} lane(s) {bar:<32} {:.2}x (seq {:.1} ms, thr {:.1} ms)",
                p.lanes, p.speedup, p.sequential_ms, p.threaded_ms
            );
        }
        let rt = &report.routed;
        println!(
            "routed replica-fleet scaling ({} placement, host time, {} requests/session):",
            rt.policy, rt.requests_per_session
        );
        let base_rps = rt.points.first().map(|p| p.rps).unwrap_or(0.0).max(1e-9);
        for p in &rt.points {
            // One bar character per 0.25x rps-over-one-lane so the weak
            // scaling curve's shape is visible at a glance.
            let ratio = p.rps / base_rps;
            let bar = "#".repeat(((ratio * 4.0).round() as usize).clamp(1, 64));
            println!(
                "  {:>2} lane(s) {bar:<64} {ratio:.2}x ({:.0} req/s, {} spills, {} fan-outs)",
                p.lanes, p.rps, p.spills, p.stripe_fanouts
            );
        }
        println!(
            "routed 8-vs-4-lane ratio {:.2}x; spill experiment: skewed p99 {:.2}x balanced \
             ({} spills, {} rejections over {} reads/arm on {} replicas)",
            rt.ratio_8v4,
            rt.spill.p99_ratio,
            rt.spill.spills,
            rt.spill.rejections,
            rt.spill.requests,
            rt.spill.replicas
        );
        let iso = &report.isolation;
        println!(
            "adversarial isolation (virtual time): victim p99 {} us baseline -> {} us under \
             attack ({:.2}x, gate <= 2.0x), {} victim rejections (gate 0), flooder throttled \
             {} / completed {}",
            iso.baseline_p99_us,
            iso.attack_p99_us,
            iso.p99_ratio,
            iso.victim_rejections,
            iso.flooder_throttled,
            iso.flooder_completed
        );
        println!(
            "failover storm: {}/{} clean reads completed ({:.1}%, gate >= 99%), {} lost, \
             {} failovers, {} quarantine(s), lane restored: {}; churn: {} cycles, {} leaked \
             series (gate 0)",
            iso.failover.completed_ok,
            iso.failover.clean_reads,
            iso.failover.completion_rate * 100.0,
            iso.failover.lost,
            iso.failover.failovers,
            iso.failover.quarantines,
            iso.failover.lane_restored,
            iso.churn.cycles,
            iso.churn.leaked_series
        );
        println!(
            "per-device p50/p99, the 1->3 device scaling ratio ({:.2}x), the ring-vs-legacy \
             table, the wall-clock curve, the routed fleet section and the isolation SLOs come \
             from BENCH_serve.json; refresh it with the serve_throughput bench",
            report.scaling.ratio_3v1
        );
    }

    if want(&selected, "explore") {
        println!("\n--- Divergence-robustness coverage (concolic constraint flipping) ---");
        // Prefer the persisted ledger (the dlt-explore binary writes it,
        // honouring BENCH_EXPLORE_OUT); regenerate with the quick campaign
        // when it is missing or from an older schema.
        let candidates = [
            std::env::var("BENCH_EXPLORE_OUT").unwrap_or_else(|_| "BENCH_explore.json".into()),
            "crates/bench/BENCH_explore.json".into(),
        ];
        let report = candidates
            .iter()
            .find_map(|path| {
                let json = std::fs::read_to_string(path).ok()?;
                let r = dlt_explore::parse_report(&json).ok()?;
                println!("(loaded from {path})");
                Some(r)
            })
            .unwrap_or_else(|| {
                println!("(BENCH_explore.json missing or stale: rerunning the quick campaign)");
                dlt_explore::run_explore(true)
            });
        print!("{}", dlt_explore::describe(&report));
        match report.gate() {
            Ok(()) => println!(
                "gate: every falsifiable constraint flipped and rejected with a typed error"
            ),
            Err(problems) => println!("gate FAILED:\n{problems}"),
        }
    }

    if want(&selected, "obs") {
        println!("\n--- Observability overhead (flight recorder + metrics plane, host time) ---");
        // Prefer the persisted artifact (the obs_overhead bench writes it,
        // honouring BENCH_OBS_OUT); regenerate a quick run when it is
        // missing or from an older schema.
        let candidates = [
            std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into()),
            "crates/bench/BENCH_obs.json".into(),
        ];
        let report = candidates
            .iter()
            .find_map(|path| {
                let json = std::fs::read_to_string(path).ok()?;
                let r = dlt_bench::obs_bench::parse_report(&json).ok()?;
                println!("(loaded from {path})");
                Some(r)
            })
            .unwrap_or_else(|| {
                println!("(BENCH_obs.json missing or stale: rerunning the quick obs bench)");
                dlt_bench::obs_bench::run_obs_bench(true).report
            });
        print!("{}", dlt_bench::obs_bench::describe(&report));
        println!(
            "per-lane latency histograms, SMC-by-kind and the overhead ratios come from \
             BENCH_obs.json; refresh it (and trace.json, the Perfetto timeline) with the \
             obs_overhead bench"
        );
    }

    // Always print a tiny summary of what was requested so log scrapers know
    // the run completed.
    let known = [
        "table3", "table4", "table5", "table6", "table7", "table8", "table9", "fig5", "fig6",
        "fig7", "memory", "replay", "serve", "explore", "obs", "all",
    ];
    if !known.contains(&selected.as_str()) {
        eprintln!("unknown artifact `{selected}`; known: {known:?}");
        std::process::exit(2);
    }
    let _unused: HashMap<(), ()> = HashMap::new();
    println!("\nreport complete ({selected}).");
}
