//! # dlt-dev-mmc — SDHOST-class MMC controller, SD card and DMA engine models
//!
//! This crate is the substrate for the paper's MMC driverlet case study
//! (§7.1). It models the three hardware blocks the Raspberry Pi 3 MMC path
//! involves:
//!
//! * [`card::SdCard`] — the SD card itself: command set, card state machine,
//!   CID/CSD/OCR registers and a sparse block store, plus a `removed` switch
//!   for the paper's fault-injection experiment (§8.2.1, unplugging the
//!   medium mid-transfer).
//! * [`sdhost::SdHost`] — a BCM2835-SDHOST-style controller: command issue
//!   registers, response registers, a data FIFO, status/EDM registers,
//!   interrupt generation, and the SoC quirk the paper calls out (the DMA
//!   engine cannot move the last three words of a read transfer; the driver
//!   must fetch them from the data register by PIO).
//! * [`dma::DmaEngine`] — a control-block-chained system DMA engine used by
//!   the full driver for multi-block transfers (Figure 4's descriptor
//!   topology: one 4 KiB page and one descriptor per eight 512-byte blocks).
//!
//! The device FSMs are strictly data-independent (the paper's design
//! prerequisite, §3.1): the state transition path depends only on the request
//! shape (read vs write, block count), never on block contents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod card;
pub mod dma;
pub mod fifo;
pub mod regs;
pub mod sdhost;

pub use card::SdCard;
pub use dma::DmaEngine;
pub use fifo::{FifoDir, FifoLink};
pub use sdhost::SdHost;

/// Physical base address of the SDHOST controller register window.
pub const SDHOST_BASE: u64 = 0x3f20_2000;
/// Size of the SDHOST register window.
pub const SDHOST_LEN: u64 = 0x100;
/// Physical base address of the system DMA engine (channel 15, the channel
/// the paper reserves for recording).
pub const DMA_BASE: u64 = 0x3f00_7f00;
/// Size of one DMA channel register window.
pub const DMA_LEN: u64 = 0x100;
/// Peripheral bus address of the SDHOST data FIFO as seen by the DMA engine.
pub const SDHOST_DATA_BUS_ADDR: u64 = SDHOST_BASE + regs::SDDATA;

/// Block size in bytes used throughout (standard SD block).
pub const BLOCK_SIZE: usize = 512;

/// Number of addressable blocks on the simulated card.
///
/// The paper's card exposes ~31 M blocks (a 16 GB class-10 card); the store
/// is sparse so the full range is addressable without allocating 16 GB.
pub const CARD_BLOCKS: u64 = 31_457_280;

use dlt_hw::{shared, Platform, Shared};

/// Everything the MMC path needs, constructed and wired onto a platform bus.
pub struct MmcSubsystem {
    /// Typed handle to the controller (the card lives inside it).
    pub sdhost: Shared<SdHost>,
    /// Typed handle to the DMA engine.
    pub dma: Shared<DmaEngine>,
    /// The FIFO link shared by the controller and the DMA engine.
    pub fifo: Shared<FifoLink>,
}

impl MmcSubsystem {
    /// Build the MMC controller, card and DMA engine and attach them to the
    /// platform's bus.
    pub fn attach(platform: &Platform) -> dlt_hw::HwResult<Self> {
        let fifo = shared(FifoLink::new());
        let card = SdCard::formatted(CARD_BLOCKS);
        let sdhost =
            shared(SdHost::new(card, fifo.clone(), platform.irqs.clone(), platform.cost()));
        let dma = shared(DmaEngine::new(
            fifo.clone(),
            platform.mem.clone(),
            platform.irqs.clone(),
            platform.cost(),
        ));
        {
            let mut bus = platform.bus.lock();
            bus.attach(dlt_hw::device::SharedDevice::boxed(sdhost.clone()))?;
            bus.attach(dlt_hw::device::SharedDevice::boxed(dma.clone()))?;
        }
        Ok(MmcSubsystem { sdhost, dma, fifo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_hw::MmioDevice;

    #[test]
    fn subsystem_attaches_both_devices() {
        let p = Platform::new();
        let sys = MmcSubsystem::attach(&p).unwrap();
        let names = p.bus.lock().device_names();
        assert!(names.contains(&"sdhost"));
        assert!(names.contains(&"dma"));
        assert!(sys.sdhost.lock().is_idle());
        assert!(sys.dma.lock().is_idle());
    }

    #[test]
    fn double_attach_fails_due_to_window_overlap() {
        let p = Platform::new();
        MmcSubsystem::attach(&p).unwrap();
        assert!(MmcSubsystem::attach(&p).is_err());
    }
}
