//! Compact binary bundle codec (the paper's §8.3.4 open item).
//!
//! JSON driverlet documents are the *interchange* format — human-readable,
//! diffable, exactly what the recorder emits for review. They are also
//! 10–30x larger than the paper's binary driverlet executables, which
//! matters for boot-time bundle loading and the TCB-size story. This module
//! provides the deployment encoding:
//!
//! * **varint scalars** — all integers are LEB128; small values (register
//!   offsets, event counts, line numbers) take one byte,
//! * **string-table deduplication** — every string (register names, source
//!   files, parameter names) is emitted once in a front table and referenced
//!   by varint index; templates repeat the same few dozen strings hundreds
//!   of times,
//! * **tagged unions** — enums are a one-byte tag plus their payload,
//! * **signed over the binary payload** — the developer signature is a keyed
//!   digest over `magic ‖ version ‖ body`; the signature itself trails the
//!   body so the signed bytes are exactly the decoder's input prefix.
//!
//! The decoder is **total**: truncated, corrupted or adversarial inputs
//! return [`SignError::Malformed`] and never panic. Collection sizes are
//! bounded by the remaining input length before any allocation, and the
//! recursive `SymExpr`/`Constraint` grammars carry an explicit depth limit.

use std::collections::HashMap;

use crate::constraint::Constraint;
use crate::event::{
    DataDirection, DmaRole, EnvApi, Event, Iface, ReadSink, RecordedEvent, SourceSite,
};
use crate::expr::SymExpr;
use crate::package::{CoverageEntry, CoverageReport, Driverlet, SignError, Signature};
use crate::template::{ParamSpec, Template, TemplateMeta};

/// Magic prefix of a binary driverlet bundle.
pub const MAGIC: &[u8; 4] = b"DLTB";
/// Current format version.
pub const VERSION: u8 = 1;
/// Maximum nesting depth accepted for `SymExpr`/`Constraint` trees.
const MAX_DEPTH: usize = 64;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// String interner: first occurrence assigns the index.
#[derive(Default)]
struct StringTable {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringTable {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(i) = self.index.get(s) {
            return *i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }
}

struct Encoder {
    strings: StringTable,
    body: Vec<u8>,
}

impl Encoder {
    fn new() -> Self {
        Encoder { strings: StringTable::default(), body: Vec::new() }
    }

    fn varint(&mut self, v: u64) {
        put_varint(&mut self.body, v);
    }

    fn string(&mut self, s: &str) {
        let i = self.strings.intern(s);
        self.varint(u64::from(i));
    }

    fn tag(&mut self, t: u8) {
        self.body.push(t);
    }

    fn expr(&mut self, e: &SymExpr) {
        match e {
            SymExpr::Const(c) => {
                self.tag(0);
                self.varint(*c);
            }
            SymExpr::Param(p) => {
                self.tag(1);
                self.string(p);
            }
            SymExpr::Captured(c) => {
                self.tag(2);
                self.string(c);
            }
            SymExpr::DmaBase(i) => {
                self.tag(3);
                self.varint(*i as u64);
            }
            SymExpr::And(a, b) => self.expr2(4, a, b),
            SymExpr::Or(a, b) => self.expr2(5, a, b),
            SymExpr::Xor(a, b) => self.expr2(6, a, b),
            SymExpr::Add(a, b) => self.expr2(7, a, b),
            SymExpr::Sub(a, b) => self.expr2(8, a, b),
            SymExpr::Mul(a, b) => self.expr2(9, a, b),
            SymExpr::Shl(a, n) => {
                self.tag(10);
                self.expr(a);
                self.varint(u64::from(*n));
            }
            SymExpr::Shr(a, n) => {
                self.tag(11);
                self.expr(a);
                self.varint(u64::from(*n));
            }
            SymExpr::Not(a) => {
                self.tag(12);
                self.expr(a);
            }
        }
    }

    fn expr2(&mut self, t: u8, a: &SymExpr, b: &SymExpr) {
        self.tag(t);
        self.expr(a);
        self.expr(b);
    }

    fn constraint(&mut self, c: &Constraint) {
        match c {
            Constraint::Any => self.tag(0),
            Constraint::Eq(e) => {
                self.tag(1);
                self.expr(e);
            }
            Constraint::Ne(e) => {
                self.tag(2);
                self.expr(e);
            }
            Constraint::InRange { min, max } => {
                self.tag(3);
                self.varint(*min);
                self.varint(*max);
            }
            Constraint::OneOf(vals) => {
                self.tag(4);
                self.varint(vals.len() as u64);
                for v in vals {
                    self.varint(*v);
                }
            }
            Constraint::MaskEq { mask, expected } => {
                self.tag(5);
                self.varint(*mask);
                self.varint(*expected);
            }
            Constraint::MaskClear { mask } => {
                self.tag(6);
                self.varint(*mask);
            }
            Constraint::All(cs) => {
                self.tag(7);
                self.varint(cs.len() as u64);
                for c in cs {
                    self.constraint(c);
                }
            }
            Constraint::AnyOf(cs) => {
                self.tag(8);
                self.varint(cs.len() as u64);
                for c in cs {
                    self.constraint(c);
                }
            }
        }
    }

    fn iface(&mut self, i: &Iface) {
        match i {
            Iface::Reg { addr, name } => {
                self.tag(0);
                self.varint(*addr);
                self.string(name);
            }
            Iface::Shm { alloc, offset } => {
                self.tag(1);
                self.varint(*alloc as u64);
                self.varint(*offset);
            }
            Iface::Env(api) => {
                self.tag(2);
                self.tag(match api {
                    EnvApi::DmaAlloc => 0,
                    EnvApi::GetRandBytes => 1,
                    EnvApi::GetTs => 2,
                });
            }
        }
    }

    fn sink(&mut self, s: &ReadSink) {
        match s {
            ReadSink::Discard => self.tag(0),
            ReadSink::Capture(name) => {
                self.tag(1);
                self.string(name);
            }
            ReadSink::UserData { offset } => {
                self.tag(2);
                self.varint(*offset);
            }
        }
    }

    fn event(&mut self, e: &Event) {
        match e {
            Event::Read { iface, constraint, len, sink } => {
                self.tag(0);
                self.iface(iface);
                self.constraint(constraint);
                self.varint(u64::from(*len));
                self.sink(sink);
            }
            Event::DmaAlloc { len, role } => {
                self.tag(1);
                self.expr(len);
                self.tag(match role {
                    DmaRole::Descriptor => 0,
                    DmaRole::DataIn => 1,
                    DmaRole::DataOut => 2,
                    DmaRole::Queue => 3,
                    DmaRole::Other => 4,
                });
            }
            Event::GetRandBytes { len, sink } => {
                self.tag(2);
                self.varint(u64::from(*len));
                self.sink(sink);
            }
            Event::GetTs { len, sink } => {
                self.tag(3);
                self.varint(u64::from(*len));
                self.sink(sink);
            }
            Event::WaitForIrq { line, timeout_us } => {
                self.tag(4);
                self.varint(u64::from(*line));
                self.varint(*timeout_us);
            }
            Event::Write { iface, value } => {
                self.tag(5);
                self.iface(iface);
                self.expr(value);
            }
            Event::CopyUserToDma { alloc, offset, user_offset, len } => {
                self.tag(6);
                self.varint(*alloc as u64);
                self.varint(*offset);
                self.varint(*user_offset);
                self.expr(len);
            }
            Event::CopyDmaToUser { alloc, offset, user_offset, len } => {
                self.tag(7);
                self.varint(*alloc as u64);
                self.varint(*offset);
                self.varint(*user_offset);
                self.expr(len);
            }
            Event::Delay { us } => {
                self.tag(8);
                self.varint(*us);
            }
            Event::Poll { iface, body, cond, delay_us, max_iters } => {
                self.tag(9);
                self.iface(iface);
                self.varint(body.len() as u64);
                for b in body {
                    self.event(b);
                }
                self.constraint(cond);
                self.varint(*delay_us);
                self.varint(*max_iters);
            }
        }
    }

    fn template(&mut self, t: &Template) {
        self.string(&t.name);
        self.string(&t.entry);
        self.string(&t.device);
        self.varint(t.params.len() as u64);
        for p in &t.params {
            self.string(&p.name);
            self.constraint(&p.constraint);
        }
        self.tag(match t.direction {
            DataDirection::DeviceToUser => 0,
            DataDirection::UserToDevice => 1,
            DataDirection::None => 2,
        });
        self.expr(&t.data_len);
        match t.irq_line {
            None => self.tag(0),
            Some(l) => {
                self.tag(1);
                self.varint(u64::from(l));
            }
        }
        self.varint(t.events.len() as u64);
        for re in &t.events {
            self.event(&re.event);
            self.string(&re.site.file);
            self.varint(u64::from(re.site.line));
        }
        // TemplateMeta: recorded_with sorted by key so the encoding (and the
        // signature over it) is canonical.
        let mut rec: Vec<(&String, &u64)> = t.meta.recorded_with.iter().collect();
        rec.sort_by(|a, b| a.0.cmp(b.0));
        self.varint(rec.len() as u64);
        for (k, v) in rec {
            self.string(k);
            self.varint(*v);
        }
        self.string(&t.meta.notes);
    }

    fn coverage(&mut self, c: &CoverageReport) {
        self.varint(c.entries.len() as u64);
        for e in &c.entries {
            self.string(&e.param);
            self.constraint(&e.covered);
        }
    }

    fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        put_varint(&mut out, self.strings.strings.len() as u64);
        for s in &self.strings.strings {
            put_varint(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.body);
        out
    }
}

/// Encode a bundle's signed portion: `magic ‖ version ‖ string table ‖ body`
/// with the signature field omitted. [`Driverlet::sign`]/[`Driverlet::verify`]
/// digest exactly these bytes.
pub fn signing_payload(d: &Driverlet) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.string(&d.device);
    enc.string(&d.entry);
    enc.varint(d.templates.len() as u64);
    for t in &d.templates {
        enc.template(t);
    }
    enc.coverage(&d.coverage);
    enc.finish()
}

/// Encode a bundle to the compact binary form (signed payload plus the
/// trailing signature record).
pub fn encode(d: &Driverlet) -> Vec<u8> {
    let mut out = signing_payload(d);
    match &d.signature {
        None => out.push(0),
        Some(sig) => {
            out.push(1);
            put_varint(&mut out, sig.algo.len() as u64);
            out.extend_from_slice(sig.algo.as_bytes());
            out.extend_from_slice(&sig.mac.to_le_bytes());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    strings: Vec<String>,
}

fn malformed(what: &str) -> SignError {
    SignError::Malformed(what.to_string())
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, SignError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| malformed("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SignError> {
        if self.remaining() < n {
            return Err(malformed("unexpected end of input"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, SignError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(malformed("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A claimed collection length, sanity-bounded by the bytes that are
    /// actually left (each element needs at least one byte).
    fn len(&mut self) -> Result<usize, SignError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(malformed("collection length exceeds input"));
        }
        Ok(n as usize)
    }

    fn usize_val(&mut self) -> Result<usize, SignError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| malformed("value exceeds usize"))
    }

    fn u32_val(&mut self) -> Result<u32, SignError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| malformed("value exceeds u32"))
    }

    fn string(&mut self) -> Result<String, SignError> {
        let i = self.varint()?;
        self.strings
            .get(usize::try_from(i).map_err(|_| malformed("string index"))?)
            .cloned()
            .ok_or_else(|| malformed("string index out of table"))
    }

    fn expr(&mut self, depth: usize) -> Result<SymExpr, SignError> {
        if depth > MAX_DEPTH {
            return Err(malformed("expression nesting too deep"));
        }
        Ok(match self.byte()? {
            0 => SymExpr::Const(self.varint()?),
            1 => SymExpr::Param(self.string()?),
            2 => SymExpr::Captured(self.string()?),
            3 => SymExpr::DmaBase(self.usize_val()?),
            t @ 4..=9 => {
                let a = Box::new(self.expr(depth + 1)?);
                let b = Box::new(self.expr(depth + 1)?);
                match t {
                    4 => SymExpr::And(a, b),
                    5 => SymExpr::Or(a, b),
                    6 => SymExpr::Xor(a, b),
                    7 => SymExpr::Add(a, b),
                    8 => SymExpr::Sub(a, b),
                    _ => SymExpr::Mul(a, b),
                }
            }
            10 => {
                let a = Box::new(self.expr(depth + 1)?);
                SymExpr::Shl(a, self.u32_val()?)
            }
            11 => {
                let a = Box::new(self.expr(depth + 1)?);
                SymExpr::Shr(a, self.u32_val()?)
            }
            12 => SymExpr::Not(Box::new(self.expr(depth + 1)?)),
            _ => return Err(malformed("unknown expression tag")),
        })
    }

    fn constraint(&mut self, depth: usize) -> Result<Constraint, SignError> {
        if depth > MAX_DEPTH {
            return Err(malformed("constraint nesting too deep"));
        }
        Ok(match self.byte()? {
            0 => Constraint::Any,
            1 => Constraint::Eq(self.expr(0)?),
            2 => Constraint::Ne(self.expr(0)?),
            3 => Constraint::InRange { min: self.varint()?, max: self.varint()? },
            4 => {
                let n = self.len()?;
                let mut vals = Vec::with_capacity(n);
                for _ in 0..n {
                    vals.push(self.varint()?);
                }
                Constraint::OneOf(vals)
            }
            5 => Constraint::MaskEq { mask: self.varint()?, expected: self.varint()? },
            6 => Constraint::MaskClear { mask: self.varint()? },
            t @ (7 | 8) => {
                let n = self.len()?;
                let mut cs = Vec::with_capacity(n);
                for _ in 0..n {
                    cs.push(self.constraint(depth + 1)?);
                }
                if t == 7 {
                    Constraint::All(cs)
                } else {
                    Constraint::AnyOf(cs)
                }
            }
            _ => return Err(malformed("unknown constraint tag")),
        })
    }

    fn iface(&mut self) -> Result<Iface, SignError> {
        Ok(match self.byte()? {
            0 => Iface::Reg { addr: self.varint()?, name: self.string()? },
            1 => Iface::Shm { alloc: self.usize_val()?, offset: self.varint()? },
            2 => Iface::Env(match self.byte()? {
                0 => EnvApi::DmaAlloc,
                1 => EnvApi::GetRandBytes,
                2 => EnvApi::GetTs,
                _ => return Err(malformed("unknown env api tag")),
            }),
            _ => return Err(malformed("unknown iface tag")),
        })
    }

    fn sink(&mut self) -> Result<ReadSink, SignError> {
        Ok(match self.byte()? {
            0 => ReadSink::Discard,
            1 => ReadSink::Capture(self.string()?),
            2 => ReadSink::UserData { offset: self.varint()? },
            _ => return Err(malformed("unknown sink tag")),
        })
    }

    fn event(&mut self, depth: usize) -> Result<Event, SignError> {
        if depth > MAX_DEPTH {
            return Err(malformed("event nesting too deep"));
        }
        Ok(match self.byte()? {
            0 => Event::Read {
                iface: self.iface()?,
                constraint: self.constraint(0)?,
                len: self.u32_val()?,
                sink: self.sink()?,
            },
            1 => Event::DmaAlloc {
                len: self.expr(0)?,
                role: match self.byte()? {
                    0 => DmaRole::Descriptor,
                    1 => DmaRole::DataIn,
                    2 => DmaRole::DataOut,
                    3 => DmaRole::Queue,
                    4 => DmaRole::Other,
                    _ => return Err(malformed("unknown dma role tag")),
                },
            },
            2 => Event::GetRandBytes { len: self.u32_val()?, sink: self.sink()? },
            3 => Event::GetTs { len: self.u32_val()?, sink: self.sink()? },
            4 => Event::WaitForIrq { line: self.u32_val()?, timeout_us: self.varint()? },
            5 => Event::Write { iface: self.iface()?, value: self.expr(0)? },
            6 => Event::CopyUserToDma {
                alloc: self.usize_val()?,
                offset: self.varint()?,
                user_offset: self.varint()?,
                len: self.expr(0)?,
            },
            7 => Event::CopyDmaToUser {
                alloc: self.usize_val()?,
                offset: self.varint()?,
                user_offset: self.varint()?,
                len: self.expr(0)?,
            },
            8 => Event::Delay { us: self.varint()? },
            9 => {
                let iface = self.iface()?;
                let n = self.len()?;
                let mut body = Vec::with_capacity(n);
                for _ in 0..n {
                    body.push(self.event(depth + 1)?);
                }
                Event::Poll {
                    iface,
                    body,
                    cond: self.constraint(0)?,
                    delay_us: self.varint()?,
                    max_iters: self.varint()?,
                }
            }
            _ => return Err(malformed("unknown event tag")),
        })
    }

    fn template(&mut self) -> Result<Template, SignError> {
        let name = self.string()?;
        let entry = self.string()?;
        let device = self.string()?;
        let n_params = self.len()?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(ParamSpec { name: self.string()?, constraint: self.constraint(0)? });
        }
        let direction = match self.byte()? {
            0 => DataDirection::DeviceToUser,
            1 => DataDirection::UserToDevice,
            2 => DataDirection::None,
            _ => return Err(malformed("unknown direction tag")),
        };
        let data_len = self.expr(0)?;
        let irq_line = match self.byte()? {
            0 => None,
            1 => Some(self.u32_val()?),
            _ => return Err(malformed("unknown irq option tag")),
        };
        let n_events = self.len()?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let event = self.event(0)?;
            let file = self.string()?;
            let line = self.u32_val()?;
            events.push(RecordedEvent { event, site: SourceSite { file, line } });
        }
        let n_rec = self.len()?;
        let mut recorded_with = HashMap::with_capacity(n_rec);
        for _ in 0..n_rec {
            let k = self.string()?;
            let v = self.varint()?;
            recorded_with.insert(k, v);
        }
        let notes = self.string()?;
        Ok(Template {
            name,
            entry,
            device,
            params,
            direction,
            data_len,
            irq_line,
            events,
            meta: TemplateMeta { recorded_with, notes },
        })
    }
}

/// Decode a compact binary bundle. Any structural problem — truncation, bad
/// tags, out-of-table string references, absurd lengths — yields
/// [`SignError::Malformed`]; the decoder never panics.
pub fn decode(bytes: &[u8]) -> Result<Driverlet, SignError> {
    let mut d = Decoder { bytes, pos: 0, strings: Vec::new() };
    if d.take(4)? != MAGIC {
        return Err(malformed("bad magic"));
    }
    if d.byte()? != VERSION {
        return Err(malformed("unsupported version"));
    }
    let n_strings = d.len()?;
    d.strings.reserve(n_strings);
    for _ in 0..n_strings {
        let n = d.len()?;
        let raw = d.take(n)?;
        let s = std::str::from_utf8(raw).map_err(|_| malformed("invalid utf-8 string"))?;
        d.strings.push(s.to_string());
    }
    let device = d.string()?;
    let entry = d.string()?;
    let n_templates = d.len()?;
    let mut templates = Vec::with_capacity(n_templates);
    for _ in 0..n_templates {
        templates.push(d.template()?);
    }
    let n_cov = d.len()?;
    let mut entries = Vec::with_capacity(n_cov);
    for _ in 0..n_cov {
        entries.push(CoverageEntry { param: d.string()?, covered: d.constraint(0)? });
    }
    let signature = match d.byte()? {
        0 => None,
        1 => {
            let n = d.len()?;
            let algo = std::str::from_utf8(d.take(n)?)
                .map_err(|_| malformed("invalid utf-8 algo"))?
                .to_string();
            let mac =
                u64::from_le_bytes(d.take(8)?.try_into().map_err(|_| malformed("short mac"))?);
            Some(Signature { algo, mac })
        }
        _ => return Err(malformed("unknown signature option tag")),
    };
    if d.remaining() != 0 {
        return Err(malformed("trailing bytes after bundle"));
    }
    Ok(Driverlet { device, entry, templates, coverage: CoverageReport { entries }, signature })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DataDirection, DmaRole};
    use crate::expr::SymExpr;
    use crate::template::ParamSpec;

    fn sample_driverlet() -> Driverlet {
        let t = Template {
            name: "mmc_rd_8".into(),
            entry: "replay_mmc".into(),
            device: "sdhost".into(),
            params: vec![
                ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(1) },
                ParamSpec {
                    name: "blkid".into(),
                    constraint: Constraint::InRange { min: 0, max: 0x1df_77f8 },
                },
            ],
            direction: DataDirection::DeviceToUser,
            data_len: SymExpr::Param("blkcnt".into()).shl(9),
            irq_line: Some(56),
            events: vec![
                RecordedEvent::new(
                    Event::DmaAlloc { len: SymExpr::Const(4096), role: DmaRole::DataIn },
                    SourceSite::new("bcm2835-sdhost.c", 500),
                ),
                RecordedEvent::bare(Event::Write {
                    iface: Iface::Reg { addr: 0x3f20_2004, name: "SDARG".into() },
                    value: SymExpr::Param("blkid".into()).masked(!0x7u64),
                }),
                RecordedEvent::bare(Event::Poll {
                    iface: Iface::Reg { addr: 0x3f20_2000, name: "SDCMD".into() },
                    body: vec![Event::Delay { us: 10 }],
                    cond: Constraint::MaskClear { mask: 0x8000 },
                    delay_us: 10,
                    max_iters: 1000,
                }),
                RecordedEvent::bare(Event::Read {
                    iface: Iface::Shm { alloc: 0, offset: 0x10 },
                    constraint: Constraint::OneOf(vec![1, 2, 3]),
                    len: 4,
                    sink: ReadSink::Capture("sts".into()),
                }),
                RecordedEvent::bare(Event::CopyDmaToUser {
                    alloc: 0,
                    offset: 0,
                    user_offset: 0,
                    len: SymExpr::Param("blkcnt".into()).shl(9),
                }),
            ],
            meta: TemplateMeta {
                recorded_with: [("blkid".to_string(), 1024u64), ("rw".to_string(), 1)]
                    .into_iter()
                    .collect(),
                notes: "merged from 3 runs".into(),
            },
        };
        let mut t = t;
        t.params.push(ParamSpec { name: "blkcnt".into(), constraint: Constraint::eq_const(8) });
        Driverlet::new("sdhost", "replay_mmc", vec![t])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut d = sample_driverlet();
        d.sign(b"devkey");
        let bytes = encode(&d);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, d);
        assert!(back.verify(b"devkey").is_ok(), "signature survives the binary round trip");
    }

    #[test]
    fn unsigned_round_trip() {
        let d = sample_driverlet();
        let bytes = encode(&d);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.signature, None);
        assert_eq!(back, d);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let mut d = sample_driverlet();
        d.sign(b"devkey");
        let bin = encode(&d).len();
        let compact = d.compact_size();
        assert!(
            compact >= 5 * bin,
            "binary ({bin} B) should be at least 5x smaller than compact JSON ({compact} B)"
        );
    }

    #[test]
    fn truncations_are_malformed_not_panics() {
        let mut d = sample_driverlet();
        d.sign(b"devkey");
        let bytes = encode(&d);
        for n in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..n]), Err(SignError::Malformed(_))),
                "truncation to {n} bytes must be malformed"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let mut d = sample_driverlet();
        d.sign(b"devkey");
        let bytes = encode(&d);
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= bit;
                // Either it fails to parse, or it parses to a *different*
                // bundle whose signature no longer verifies (flips inside the
                // 8-byte MAC itself change the signature instead).
                if let Ok(back) = decode(&corrupt) {
                    assert!(
                        back != d || back.verify(b"devkey").is_err() || corrupt == bytes,
                        "corrupted byte {i} produced an identical, verifying bundle"
                    );
                }
            }
        }
    }

    #[test]
    fn adversarial_lengths_are_rejected_before_allocation() {
        // A header claiming 2^60 strings must fail on the length sanity
        // check, not attempt the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        put_varint(&mut bytes, 1 << 60);
        assert!(matches!(decode(&bytes), Err(SignError::Malformed(_))));
    }

    #[test]
    fn varint_edge_cases() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut dec = Decoder { bytes: &out, pos: 0, strings: Vec::new() };
            assert_eq!(dec.varint().unwrap(), v);
        }
        // Overlong varint overflows.
        let bad = [0xffu8; 11];
        let mut dec = Decoder { bytes: &bad, pos: 0, strings: Vec::new() };
        assert!(dec.varint().is_err());
    }
}
