//! The multi-tenant driverlet service.
//!
//! One [`DriverletService`] owns a **control-plane platform** (the
//! normal-world CPU plus the [`dlt_tee::TeeKernel`] that admits sessions
//! and charges SMCs) and **one TEE core per served secure device**: each
//! device lane is a full simulated platform — its device, interrupt
//! controller and its *own virtual clock* — with a compiled-program
//! [`Replayer`] executing against that lane clock. Clients open sessions,
//! submit requests (one SMC each, like an OP-TEE command invocation), and
//! collect completions after draining.
//!
//! # The multi-core time model
//!
//! All clocks start at epoch zero. The control clock is the normal-world
//! CPU: it advances on SMCs (open/submit/close), on
//! [`DriverletService::client_think_ns`], and — the causal merge rule —
//! when a client **observes** completions via
//! [`DriverletService::take_completions`], which fast-forwards it to the
//! latest lane-local completion time taken. Submits are stamped with
//! control time, so arrival stamps are globally monotone (one serialised
//! normal-world CPU) yet never dragged forward by lane work nobody has
//! waited on: block tenants keep overlapping a camera burst they did not
//! submit. A lane may only execute requests that have *arrived* on its own
//! timeline (an idle core fast-forwards to the arrival, booking idle time;
//! a busy core batches whatever arrived while it worked), and every
//! completion carries its lane-local `completed_ns`, which is
//! `>= submitted_ns` by construction. [`DriverletService::now_ns`] — the
//! pointwise max across every clock — is the joined service timeline that
//! elapsed-time (makespan) measurements read. Device time therefore
//! overlaps across lanes: a multi-second camera burst on the VCHIQ core no
//! longer inflates MMC completion latency.
//!
//! [`DriverletService::drain`] is the event loop's step function: it picks
//! the lane with the smallest next-event time (its anticipatory-hold
//! deadline, or the instant it can start its earliest arrived request),
//! executes **one batch** there, and returns that batch's completions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dlt_core::{
    replay_cam, ConstraintFlipper, FaultPlan, FlipOutcome, ReplayConfig, ReplayMode, Replayer,
    SecureBlockIo,
};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{
    record_camera_driverlet_subset, record_mmc_driverlet_subset, record_usb_driverlet_subset,
    DEV_KEY,
};
use dlt_tee::{secure_core, SecureIo, TeeError, TeeKernel, Trustlet};

use crate::coalesce::{self, plan_dispatch, Dispatch, ExecPlan};
use crate::ring::{CompletionRing, SqEntry, SubmissionRing};
use crate::sched::{Lane, Pending, Policy};
use crate::{
    Completion, Device, Payload, Request, RequestId, ServeError, SessionId, BLOCK,
    MAX_REQUEST_BLOCKS,
};

/// How requests cross from the normal world into the TEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// One SMC per operation: every [`DriverletService::submit`] is a GP
    /// command invocation (world switch + invoke marshalling), and every
    /// completion reap is another SMC — the OP-TEE baseline.
    #[default]
    PerCall,
    /// Shared-memory rings: submits stage entries in a per-lane
    /// [`SubmissionRing`] without entering the TEE; one
    /// [`DriverletService::ring_doorbell`] SMC admits the whole staged
    /// batch, and [`DriverletService::take_completions`] reaps the
    /// per-session [`CompletionRing`] SMC-free (a world switch is charged
    /// only on the doorbell, on an empty-CQ blocking wait, and on a CQ
    /// overflow flush).
    Ring,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrent sessions admitted.
    pub max_sessions: usize,
    /// Per-device submission-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Submission path: per-operation SMCs or shared-memory rings.
    pub submit_mode: SubmitMode,
    /// Slots in each per-lane submission ring ([`SubmitMode::Ring`]): how
    /// many requests a client can stage between doorbells before the ring
    /// pushes back with [`ServeError::QueueFull`].
    pub sq_depth: usize,
    /// Reapable slots in each per-session completion ring. Posts beyond
    /// this spill to the never-drop overflow list; flushing it costs the
    /// ring-mode reader one world switch.
    pub cq_depth: usize,
    /// Scheduling policy for every device lane.
    pub policy: Policy,
    /// Whether to coalesce adjacent/overlapping requests.
    pub coalesce: bool,
    /// Largest batch drained per scheduling round.
    pub coalesce_window: usize,
    /// Anticipatory-coalescing latency budget: how long an idle lane holds
    /// its queue open (plugs) after a request arrives, hoping to merge the
    /// requests that follow. When the bet loses — nothing else arrives in
    /// the window — the request pays the full budget as added latency;
    /// that bounded lost-bet cost is inherent to anticipation and is what
    /// this knob caps (single-op closed-loop clients may prefer 0).
    /// 0 disables holding; holding is also disabled when
    /// [`ServeConfig::coalesce`] is off and on the camera lane.
    pub hold_budget_ns: u64,
    /// Block granularities to record for MMC/USB (Table 3's campaign).
    pub block_granularities: Vec<u32>,
    /// Camera burst lengths to record.
    pub camera_bursts: Vec<u32>,
    /// Replay engine the per-device replayers run.
    pub mode: ReplayMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            queue_capacity: 128,
            submit_mode: SubmitMode::PerCall,
            sq_depth: 64,
            cq_depth: 256,
            policy: Policy::Fifo,
            coalesce: true,
            coalesce_window: 32,
            hold_budget_ns: 100_000,
            block_granularities: vec![1, 8, 32, 128, 256],
            camera_bursts: vec![1],
            mode: ReplayMode::Compiled,
        }
    }
}

impl ServeConfig {
    /// A reduced configuration recording only small block granularities —
    /// fast to set up, used by tests.
    pub fn quick() -> Self {
        ServeConfig { block_granularities: vec![1, 8, 32], ..ServeConfig::default() }
    }
}

/// Cumulative service statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Completions produced (success or error).
    pub completed: u64,
    /// Submits rejected with queue-full backpressure.
    pub rejected: u64,
    /// Replay invocations issued to devices.
    pub replays: u64,
    /// Requests served by a merged or batched replay.
    pub coalesced_requests: u64,
    /// Blocks moved by block replays.
    pub blocks_moved: u64,
    /// Dispatches that anticipated: the lane held its queue open past the
    /// ready instant (plug engaged).
    pub holds: u64,
    /// Holds released before the budget expired (direction change,
    /// queue-full, or a competing session's unmergeable request).
    pub early_unplugs: u64,
    /// Doorbell SMCs rung on the ring submit path.
    pub doorbells: u64,
    /// Submission-ring entries admitted across all doorbells.
    pub doorbell_entries: u64,
    /// Completions that spilled to a session's CQ overflow list.
    pub cq_overflows: u64,
}

impl ServeStats {
    /// Mean requests folded into one replay — the coalescing ratio the
    /// bench reports (1.0 = no coalescing benefit).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.replays == 0 {
            return 1.0;
        }
        self.completed as f64 / self.replays as f64
    }

    /// Mean submission-ring entries admitted per doorbell SMC — the
    /// world-switch amortisation factor of the ring path (0.0 when no
    /// doorbell ever rang).
    pub fn mean_doorbell_batch(&self) -> f64 {
        if self.doorbells == 0 {
            return 0.0;
        }
        self.doorbell_entries as f64 / self.doorbells as f64
    }
}

/// Gate command: one per-call submit (legacy path).
const GATE_SUBMIT: u32 = 0;
/// Gate command: drain every rung submission ring (`params[0]` = staged
/// entry count, charged per entry inside the one doorbell switch).
const GATE_DOORBELL: u32 = 1;
/// Gate command: one per-call completion reap (legacy path) — a full GP
/// invoke, priced exactly like a per-call submit.
const GATE_REAP: u32 = 2;

/// The session-admission gate: a minimal trusted application registered
/// with the TEE kernel. Opening a service session opens a TEE session to
/// this gate. On the per-call path every submit invokes it (one SMC plus
/// the GP invoke marshalling overhead each); on the ring path one
/// batch-invoke per doorbell validates every staged entry — so both
/// admission paths are accounted by the same `dlt-tee` machinery every
/// other trustlet uses.
struct ServeGate;

impl Trustlet for ServeGate {
    fn name(&self) -> &'static str {
        "dlt-serve"
    }
    fn invoke(
        &mut self,
        command: u32,
        params: &[u64; 4],
        _buf: &mut [u8],
        tee: &mut SecureIo,
    ) -> Result<u64, TeeError> {
        // Admission only: the scheduler does the device work. What the
        // gate *does* charge is the admission software cost — per call on
        // the legacy path, per staged entry on the doorbell path.
        match command {
            GATE_DOORBELL => {
                let entries = params[0];
                tee.charge_ns(entries.saturating_mul(tee.ring_entry_validate_ns()));
                Ok(entries)
            }
            _ => {
                tee.charge_ns(tee.smc_invoke_overhead_ns());
                Ok(0)
            }
        }
    }
}

struct DeviceLane {
    device: Device,
    lane: Lane,
    /// The lane's normal-world submission ring ([`SubmitMode::Ring`]):
    /// entries staged here are invisible to the TEE until a doorbell
    /// drains them into `lane`.
    sq: SubmissionRing,
    /// The lane's own TEE core: a full platform whose clock is the lane
    /// timeline every replay charges into.
    platform: Platform,
    replayer: Replayer,
    entry: &'static str,
}

impl DeviceLane {
    /// Lane-local time, read through the replayer: the replayer executes
    /// against its own core's clock, so both views are the same timeline.
    fn now_ns(&self) -> u64 {
        self.replayer.now_ns()
    }
}

/// A snapshot of one lane's timeline and queue state (multi-core
/// observability: per-device utilisation and backlog).
#[derive(Debug, Clone, Copy)]
pub struct LaneStatus {
    /// The lane's device.
    pub device: Device,
    /// Lane-local virtual time.
    pub now_ns: u64,
    /// Nanoseconds the lane core actually spent executing.
    pub busy_ns: u64,
    /// Nanoseconds the lane core skipped as idle between batches.
    pub idle_ns: u64,
    /// Requests currently queued.
    pub queued: usize,
    /// Deepest the queue has been.
    pub high_water: usize,
    /// Entries currently staged in the lane's submission ring (not yet
    /// admitted by a doorbell).
    pub sq_staged: usize,
    /// Deepest the submission ring has been — `sq_high_water / sq_depth`
    /// is the ring-occupancy metric the serve bench reports.
    pub sq_high_water: usize,
    /// The submission ring's slot count.
    pub sq_depth: usize,
}

impl LaneStatus {
    /// Fraction of the lane's lifetime spent executing (0 when it never
    /// ran).
    pub fn utilization(&self) -> f64 {
        if self.now_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.now_ns as f64
    }
}

/// The multi-tenant driverlet service (see the crate docs).
///
/// # Example
///
/// Two clients share the secure SD card through one scheduler — their
/// requests queue, coalesce where adjacent, and complete independently:
///
/// ```
/// use dlt_serve::{Device, DriverletService, Payload, Request, ServeConfig};
///
/// let mut service = DriverletService::new(&[Device::Mmc], ServeConfig::quick())?;
/// let alice = service.open_session()?; // one SMC each, via the TEE session layer
/// let bob = service.open_session()?;
///
/// service.submit(
///     alice,
///     Request::Write { device: Device::Mmc, blkid: 64, data: vec![7u8; 512] },
/// )?;
/// service.submit(bob, Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 1 })?;
/// service.drain_all(); // event loop: holds, batches, coalesces, replays, fans out
///
/// let read = service.take_completions(bob).pop().unwrap();
/// assert!(matches!(read.result?, Payload::Read(bytes) if bytes[0] == 7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DriverletService {
    /// The control plane: the normal-world CPU and the TEE session layer.
    /// Its clock advances on SMCs and client think time, never on device
    /// work — device work belongs to the lane cores.
    control: Platform,
    tee: TeeKernel,
    lanes: Vec<DeviceLane>,
    config: ServeConfig,
    sessions: HashMap<SessionId, CompletionRing>,
    next_request: RequestId,
    stats: ServeStats,
    /// Ids in the order their replays executed (the serial-order witness
    /// for the differential property test).
    exec_log: Vec<RequestId>,
}

impl DriverletService {
    /// Record the driverlets for `devices`, then stand the service up via
    /// [`DriverletService::with_driverlets`].
    pub fn new(devices: &[Device], config: ServeConfig) -> Result<Self, ServeError> {
        let mut bundles = Vec::new();
        for device in devices {
            let bundle = match device {
                Device::Mmc => record_mmc_driverlet_subset(&config.block_granularities)
                    .map_err(|e| ServeError::Invalid(e.to_string()))?,
                Device::Usb => record_usb_driverlet_subset(&config.block_granularities)
                    .map_err(|e| ServeError::Invalid(e.to_string()))?,
                Device::Vchiq => record_camera_driverlet_subset(&config.camera_bursts)
                    .map_err(|e| ServeError::Invalid(e.to_string()))?,
            };
            bundles.push((*device, bundle));
        }
        Self::with_driverlets(&bundles, config)
    }

    /// Stand up the control-plane platform plus **one TEE core (platform +
    /// clock + replayer) per device** in `bundles`, each loaded with its
    /// (already recorded, signed) bundle. A production deployment records
    /// once and serves many service restarts from the same signed bundles.
    pub fn with_driverlets(
        bundles: &[(Device, dlt_template::Driverlet)],
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let control = Platform::new();
        let mut tee = TeeKernel::install(&control, &[])?;
        tee.load_trustlet(Box::new(ServeGate));

        let mut lanes = Vec::new();
        for (device, bundle) in bundles {
            let platform = Platform::new();
            let (entry, secure): (_, &[&str]) = match device {
                Device::Mmc => {
                    MmcSubsystem::attach(&platform).map_err(TeeError::from)?;
                    ("replay_mmc", &["sdhost", "dma"])
                }
                Device::Usb => {
                    UsbSubsystem::attach(&platform).map_err(TeeError::from)?;
                    ("replay_usb", &["dwc2"])
                }
                Device::Vchiq => {
                    VchiqSubsystem::attach(&platform).map_err(TeeError::from)?;
                    ("replay_cam", &["vchiq"])
                }
            };
            let io = secure_core(&platform, secure)?;
            let mut replayer = Replayer::with_config(
                io,
                ReplayConfig { mode: config.mode, ..ReplayConfig::default() },
            );
            replayer.load_driverlet(bundle.clone(), DEV_KEY)?;
            lanes.push(DeviceLane {
                device: *device,
                lane: Lane::new(config.queue_capacity),
                sq: SubmissionRing::new(config.sq_depth),
                platform,
                replayer,
                entry,
            });
        }
        Ok(DriverletService {
            control,
            tee,
            lanes,
            config,
            sessions: HashMap::new(),
            next_request: 1,
            stats: ServeStats::default(),
            exec_log: Vec::new(),
        })
    }

    /// Current **service time**: the pointwise max of the control-plane
    /// clock and every lane clock — the join that merges the per-core
    /// timelines into one monotonic service timeline. Elapsed-time
    /// (makespan) measurements read this; submission stamps instead read
    /// the control clock (see the module docs for the causal rules).
    pub fn now_ns(&self) -> u64 {
        self.lanes.iter().map(DeviceLane::now_ns).fold(self.control.now_ns(), u64::max)
    }

    /// Model normal-world client think time: advance the control-plane
    /// clock by `ns`, so the next submit's arrival stamp is spaced
    /// accordingly. Benchmarks use this to shape open-loop arrival
    /// processes (e.g. the anticipatory-hold sweep).
    pub fn client_think_ns(&mut self, ns: u64) {
        self.control.clock.lock().advance_ns(ns);
    }

    /// Per-lane timeline and queue snapshots (device, lane-local time,
    /// busy/idle split, backlog).
    pub fn lane_status(&self) -> Vec<LaneStatus> {
        self.lanes
            .iter()
            .map(|l| {
                let clock = l.platform.clock.lock();
                LaneStatus {
                    device: l.device,
                    now_ns: clock.now_ns(),
                    busy_ns: clock.busy_ns(),
                    idle_ns: clock.idle_ns(),
                    queued: l.lane.len(),
                    high_water: l.lane.high_water(),
                    sq_staged: l.sq.len(),
                    sq_high_water: l.sq.high_water(),
                    sq_depth: l.sq.depth(),
                }
            })
            .collect()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// World switches (SMCs) the session layer has performed, doorbells
    /// included. `smc_calls() / stats().completed` is the
    /// SMCs-per-request metric the serve bench gates on.
    pub fn smc_calls(&self) -> u64 {
        self.tee.smc_calls()
    }

    /// World switches that were ring doorbells.
    pub fn smc_doorbells(&self) -> u64 {
        self.tee.smc_doorbells()
    }

    /// World switches on the legacy per-call path (open/submit/reap/close).
    pub fn smc_legacy(&self) -> u64 {
        self.tee.smc_legacy()
    }

    /// The normal-world (control-plane) clock. Benchmarks read this to
    /// separate submission-path time from lane (device) time: the control
    /// clock is where per-call SMC overhead accumulates and what the ring
    /// path amortises.
    pub fn control_now_ns(&self) -> u64 {
        self.control.now_ns()
    }

    /// Admit a new client (one SMC through the TEE session layer).
    pub fn open_session(&mut self) -> Result<SessionId, ServeError> {
        if self.sessions.len() >= self.config.max_sessions {
            return Err(ServeError::SessionLimit { max: self.config.max_sessions });
        }
        let id = self.tee.open_session("dlt-serve")?;
        self.sessions.insert(id, CompletionRing::new(self.config.cq_depth));
        Ok(id)
    }

    /// Close a session. Queued requests still execute, but their
    /// completions are dropped.
    pub fn close_session(&mut self, session: SessionId) {
        self.tee.close_session(session);
        self.sessions.remove(&session);
        for lane in &mut self.lanes {
            lane.lane.forget_session(session);
        }
    }

    fn validate(&self, req: &Request) -> Result<(), ServeError> {
        // Shape checks only — one bad request must never take down the
        // service (the bound keeps a single tenant from demanding an
        // unbounded span buffer, and the end check keeps block arithmetic
        // in range). Whether the extent is *recorded* is the replayer's
        // coverage check at execution time.
        let check_span = |blkid: u32, blkcnt: u32| -> Result<(), ServeError> {
            if blkcnt == 0 {
                return Err(ServeError::Invalid("zero-length request".into()));
            }
            if blkcnt > MAX_REQUEST_BLOCKS {
                return Err(ServeError::Invalid(format!(
                    "request of {blkcnt} blocks exceeds the {MAX_REQUEST_BLOCKS}-block limit"
                )));
            }
            if blkid.checked_add(blkcnt).is_none() {
                return Err(ServeError::Invalid(format!(
                    "request extent {blkid}+{blkcnt} exceeds the block address space"
                )));
            }
            Ok(())
        };
        match req {
            Request::Read { blkid, blkcnt, .. } => check_span(*blkid, *blkcnt)?,
            Request::Write { blkid, data, .. } => {
                if data.is_empty() || data.len() % BLOCK != 0 {
                    return Err(ServeError::Invalid(
                        "write payload must be a whole number of blocks".into(),
                    ));
                }
                check_span(*blkid, (data.len() / BLOCK) as u32)?;
            }
            Request::Capture { frames, .. } => {
                if *frames == 0 {
                    return Err(ServeError::Invalid("zero-frame capture".into()));
                }
            }
        }
        Ok(())
    }

    /// Submit a request into a session, along the configured
    /// [`SubmitMode`]: one SMC per call, or an SMC-free stage into the
    /// lane's submission ring (admitted by the next
    /// [`DriverletService::ring_doorbell`]). Fails fast with
    /// [`ServeError::QueueFull`] when the device lane (per-call) or its
    /// submission ring (ring mode) is saturated.
    pub fn submit(&mut self, session: SessionId, req: Request) -> Result<RequestId, ServeError> {
        match self.config.submit_mode {
            SubmitMode::PerCall => self.submit_per_call(session, req),
            SubmitMode::Ring => self.ring_enqueue(session, req),
        }
    }

    /// The legacy one-SMC-per-operation submit. Public even in ring mode:
    /// a client may always fall back to a plain command invocation (the
    /// syscall beside io_uring), e.g. for a request that must be visible
    /// to the TEE immediately without waiting for a doorbell.
    pub fn submit_per_call(
        &mut self,
        session: SessionId,
        req: Request,
    ) -> Result<RequestId, ServeError> {
        if !self.sessions.contains_key(&session) {
            return Err(ServeError::InvalidSession(session));
        }
        self.validate(&req)?;
        let device = req.device();
        // Submission stamp: the instant the client *initiated* the call,
        // so client-observed latency includes the world switch it is about
        // to pay. The control clock advances on SMCs, client think time
        // and completion *observations*
        // ([`DriverletService::take_completions`]) — never on unobserved
        // lane progress — so independent sessions keep overlapping with a
        // slow lane they are not waiting on.
        let submitted_ns = self.control.now_ns();
        // The command invocation crossing into the TEE: validated and
        // charged by the session framework (on the control-plane clock) —
        // one world switch plus the GP invoke marshalling the gate bills.
        self.tee
            .invoke(session, GATE_SUBMIT, &[0; 4], &mut [])
            .map_err(|_| ServeError::InvalidSession(session))?;
        // Admission stamp: the SMC's return. The target lane serves this
        // request no earlier than this.
        let arrived_ns = self.control.now_ns();
        let lane = self
            .lanes
            .iter_mut()
            .find(|l| l.device == device)
            .ok_or(ServeError::DeviceNotServed(device))?;
        let id = self.next_request;
        match lane.lane.push(Pending { id, session, req, submitted_ns, arrived_ns }, device) {
            Ok(()) => {
                self.next_request += 1;
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Stage a request in the target lane's submission ring **without
    /// entering the TEE**: no SMC, no control-clock charge — the whole
    /// point of the ring path. Shape checks run here in the normal world
    /// (the client library mirrors the gate's admission rules; the gate
    /// re-validates every entry at doorbell time and bills that per-entry
    /// cost inside the one world switch). A full ring is typed
    /// backpressure — [`ServeError::QueueFull`] carrying the device, the
    /// ring depth and its capacity — never a silent drop.
    fn ring_enqueue(&mut self, session: SessionId, req: Request) -> Result<RequestId, ServeError> {
        if !self.sessions.contains_key(&session) {
            return Err(ServeError::InvalidSession(session));
        }
        self.validate(&req)?;
        let device = req.device();
        let enqueued_ns = self.control.now_ns();
        let lane = self
            .lanes
            .iter_mut()
            .find(|l| l.device == device)
            .ok_or(ServeError::DeviceNotServed(device))?;
        let id = self.next_request;
        match lane.sq.try_push(SqEntry { id, session, req, enqueued_ns }) {
            Ok(()) => {
                self.next_request += 1;
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(_) => {
                self.stats.rejected += 1;
                Err(ServeError::QueueFull {
                    device,
                    depth: lane.sq.len(),
                    capacity: lane.sq.depth(),
                })
            }
        }
    }

    /// Ring the doorbell: **one** SMC (a batch invoke of the gate
    /// trustlet) admits every entry currently staged in every lane's
    /// submission ring. The gate validates each entry under the same
    /// admission checks as the per-call path — that per-entry cost plus
    /// the doorbell switch are the only control-clock charges, however
    /// large the batch. Admitted entries join their lane queues with
    /// `arrived_ns` = the doorbell's return; an entry whose lane queue is
    /// full is *not* dropped — it completes with
    /// [`ServeError::QueueFull`] in its session's completion ring.
    /// Returns the number of entries admitted (0 when nothing was staged:
    /// no switch is paid for an empty doorbell).
    pub fn ring_doorbell(&mut self) -> Result<usize, ServeError> {
        let staged: usize = self.lanes.iter().map(|l| l.sq.len()).sum();
        if staged == 0 {
            return Ok(0);
        }
        self.tee.invoke_batch("dlt-serve", GATE_DOORBELL, &[staged as u64, 0, 0, 0], &mut [])?;
        let arrived_ns = self.control.now_ns();
        self.stats.doorbells += 1;
        self.stats.doorbell_entries += staged as u64;
        let mut rejected = Vec::new();
        for lane in &mut self.lanes {
            let device = lane.device;
            for e in lane.sq.drain_staged() {
                let pending = Pending {
                    id: e.id,
                    session: e.session,
                    req: e.req,
                    submitted_ns: e.enqueued_ns,
                    arrived_ns,
                };
                if let Err(err) = lane.lane.push(pending, device) {
                    self.stats.rejected += 1;
                    rejected.push(Completion {
                        id: e.id,
                        session: e.session,
                        device,
                        result: Err(err),
                        submitted_ns: e.enqueued_ns,
                        completed_ns: arrived_ns,
                        coalesced: false,
                    });
                }
            }
        }
        for c in rejected {
            self.post_completion(c);
        }
        Ok(staged)
    }

    /// Flush staged ring entries before the event loop looks for work
    /// (ring mode only; a no-op when nothing is staged).
    fn flush_doorbell(&mut self) {
        if self.config.submit_mode == SubmitMode::Ring {
            // The only failure mode is a missing gate trustlet, which
            // `with_driverlets` installed; treat it as unreachable.
            self.ring_doorbell().expect("the serve gate is always installed");
        }
    }

    /// Post one completion into its session's completion ring (dropped
    /// when the session is gone, exactly like the per-call path).
    fn post_completion(&mut self, c: Completion) {
        if let Some(cq) = self.sessions.get_mut(&c.session) {
            if cq.post(c) {
                self.stats.cq_overflows += 1;
            }
        }
    }

    /// The anticipatory-hold budget effective for one lane (holding is an
    /// optimisation of coalescing, so it follows the coalesce gates).
    fn lane_hold_budget(&self, lane: &DeviceLane) -> u64 {
        if self.config.coalesce && lane.device != Device::Vchiq {
            self.config.hold_budget_ns
        } else {
            0
        }
    }

    /// When lane `idx` would next dispatch a batch, and why then.
    fn lane_dispatch(&self, idx: usize) -> Option<Dispatch> {
        let lane = &self.lanes[idx];
        if lane.lane.is_empty() {
            return None;
        }
        let budget = self.lane_hold_budget(lane);
        // The plug's fill cap is the smaller of the queue bound and the
        // dispatch window: once a batch's worth of requests has arrived,
        // holding longer cannot merge anything more into *this* dispatch.
        let fill_cap = lane.lane.capacity().min(self.config.coalesce_window);
        Some(plan_dispatch(lane.lane.arrivals(), lane.now_ns(), budget, fill_cap))
    }

    /// Run **one step** of the multi-core event loop: pick the lane with
    /// the smallest next-event time (its plug deadline, or the instant it
    /// can start its earliest arrived request), execute one batch there,
    /// and return that batch's completions.
    ///
    /// # Contract (changed by the multi-core refactor)
    ///
    /// `drain` **yields per batch**: it no longer loops until every lane is
    /// empty. An empty return means every lane is idle. Completions are
    /// also retrievable per session via
    /// [`DriverletService::take_completions`]. Call
    /// [`DriverletService::drain_all`] to run the loop to quiescence, or
    /// [`DriverletService::drain_device`] to flush a single saturated lane
    /// (per-device backpressure relief).
    pub fn drain(&mut self) -> Vec<Completion> {
        self.flush_doorbell();
        self.step(None)
    }

    /// Run the event loop until every lane is empty and return all
    /// completions produced (the old `drain` contract).
    pub fn drain_all(&mut self) -> Vec<Completion> {
        self.flush_doorbell();
        let mut all = Vec::new();
        loop {
            let step = self.step(None);
            if step.is_empty() {
                break;
            }
            all.extend(step);
        }
        all
    }

    /// Run the event loop restricted to `device` until that lane is empty
    /// — the per-device backoff a caller applies after
    /// [`ServeError::QueueFull`] names the saturated device, leaving every
    /// other lane's queue (and hold) untouched.
    pub fn drain_device(&mut self, device: Device) -> Vec<Completion> {
        self.flush_doorbell();
        let mut all = Vec::new();
        loop {
            let step = self.step(Some(device));
            if step.is_empty() {
                break;
            }
            all.extend(step);
        }
        all
    }

    /// One event-loop step over the lanes `filter` selects.
    fn step(&mut self, filter: Option<Device>) -> Vec<Completion> {
        loop {
            let mut next: Option<(usize, Dispatch)> = None;
            for idx in 0..self.lanes.len() {
                if filter.is_some_and(|d| self.lanes[idx].device != d) {
                    continue;
                }
                if let Some(d) = self.lane_dispatch(idx) {
                    if next.is_none_or(|(_, best)| d.at_ns < best.at_ns) {
                        next = Some((idx, d));
                    }
                }
            }
            let Some((idx, dispatch)) = next else {
                return Vec::new();
            };
            // The core fast-forwards over its idle gap to the dispatch
            // instant (arrival or plug deadline)...
            self.lanes[idx].platform.clock.lock().advance_idle_to(dispatch.at_ns);
            // ...then unplugs and batches everything that arrived by then.
            let batch = self.lanes[idx].lane.next_batch(
                self.config.policy,
                self.config.coalesce_window,
                dispatch.at_ns,
            );
            if batch.is_empty() {
                // DRR with deficits still accumulating: retry — each call
                // grows the eligible sessions' deficits, so this
                // terminates.
                continue;
            }
            if dispatch.held() {
                self.stats.holds += 1;
                if dispatch.reason != coalesce::DispatchReason::HoldExpired {
                    self.stats.early_unplugs += 1;
                }
            }
            let completions = self.execute_batch(idx, &batch);
            for c in &completions {
                self.post_completion(c.clone());
            }
            return completions;
        }
    }

    /// Take the completions accumulated for one session.
    ///
    /// World-switch accounting follows the submit mode. **Per-call**: the
    /// reap is a command invocation — one SMC every call, completions or
    /// not (the baseline the issue's motivation counts as "one SMC per
    /// completion reap"). **Ring**: the client reads its completion ring
    /// directly — no world switch at all, except when the ring is empty
    /// (a blocking wait must enter the kernel to sleep) or when posts
    /// spilled to the overflow list (flushing it is a kernel entry).
    ///
    /// This is also the client's **observation point**: the caller
    /// blocked until these completions existed, so the normal-world
    /// (control) clock fast-forwards to the latest lane-local completion
    /// time taken. Sessions that never wait on a lane (e.g. block clients
    /// running beside a camera burst they did not submit) keep their own,
    /// earlier timeline — this is what lets independent tenants overlap
    /// device time across lanes.
    pub fn take_completions(&mut self, session: SessionId) -> Vec<Completion> {
        let Some(cq) = self.sessions.get_mut(&session) else {
            return Vec::new();
        };
        let (taken, flushed_overflow) = cq.take_all();
        match self.config.submit_mode {
            // The per-call reap is a full GP command invocation of the
            // gate, priced exactly like a per-call submit (world switch +
            // invoke marshalling).
            SubmitMode::PerCall => {
                let _ = self.tee.invoke(session, GATE_REAP, &[0; 4], &mut []);
            }
            SubmitMode::Ring => {
                if taken.is_empty() || flushed_overflow {
                    self.tee.smc_yield();
                }
            }
        }
        if let Some(latest) = taken.iter().map(|c| c.completed_ns).max() {
            self.control.clock.lock().advance_to(latest);
        }
        taken
    }

    /// The ids of every executed request in device-dispatch order — the
    /// witness serial order for the scheduler's equivalence property.
    pub fn take_exec_log(&mut self) -> Vec<RequestId> {
        std::mem::take(&mut self.exec_log)
    }

    fn execute_batch(&mut self, lane_idx: usize, batch: &[Pending]) -> Vec<Completion> {
        let reqs: Vec<Request> = batch.iter().map(|p| p.req.clone()).collect();
        let coalesce = self.config.coalesce && self.lanes[lane_idx].device != Device::Vchiq;
        let plans = coalesce::plan(&reqs, coalesce);
        let mut out = Vec::new();
        for plan in &plans {
            match plan {
                ExecPlan::Single(i) => {
                    let result = self.execute_single(lane_idx, &batch[*i].req);
                    out.push(self.complete(lane_idx, &batch[*i], result, false));
                }
                ExecPlan::MergedRead { blkid, blkcnt, members } => {
                    let coalesced = plan.is_coalesced();
                    match self.execute_read(lane_idx, *blkid, *blkcnt) {
                        Ok(bytes) => {
                            for &m in members {
                                let p = &batch[m];
                                let Request::Read { blkid: rb, blkcnt: rc, .. } = p.req else {
                                    unreachable!("merged read members are reads");
                                };
                                let off = (rb - blkid) as usize * BLOCK;
                                let payload =
                                    Payload::Read(bytes[off..off + rc as usize * BLOCK].to_vec());
                                if coalesced {
                                    self.stats.coalesced_requests += 1;
                                }
                                out.push(self.complete(lane_idx, p, Ok(payload), coalesced));
                            }
                        }
                        Err(_) if coalesced => {
                            // The merged span failed (e.g. one member is out
                            // of recorded coverage). Fall back to member-
                            // by-member execution so every request gets
                            // exactly the outcome the serial order would
                            // have produced.
                            for &m in members {
                                let result = self.execute_single(lane_idx, &batch[m].req);
                                out.push(self.complete(lane_idx, &batch[m], result, false));
                            }
                        }
                        Err(e) => {
                            out.push(self.complete(lane_idx, &batch[members[0]], Err(e), false));
                        }
                    }
                }
                ExecPlan::BatchedWrite { blkid, members } => {
                    let coalesced = plan.is_coalesced();
                    let mut data = Vec::new();
                    for &m in members {
                        let Request::Write { data: d, .. } = &batch[m].req else {
                            unreachable!("batched write members are writes");
                        };
                        data.extend_from_slice(d);
                    }
                    match self.execute_write(lane_idx, *blkid, &mut data) {
                        Ok(()) => {
                            for &m in members {
                                let p = &batch[m];
                                let Request::Write { data: d, .. } = &p.req else {
                                    unreachable!("batched write members are writes");
                                };
                                let blocks = (d.len() / BLOCK) as u32;
                                if coalesced {
                                    self.stats.coalesced_requests += 1;
                                }
                                out.push(self.complete(
                                    lane_idx,
                                    p,
                                    Ok(Payload::Written { blocks }),
                                    coalesced,
                                ));
                            }
                        }
                        Err(_) if coalesced => {
                            // Same serial-equivalence fallback as merged
                            // reads. A partially-executed batched write is
                            // re-issued per member in order, which matches
                            // the serial outcome because writes are
                            // idempotent per extent.
                            for &m in members {
                                let result = self.execute_single(lane_idx, &batch[m].req);
                                out.push(self.complete(lane_idx, &batch[m], result, false));
                            }
                        }
                        Err(e) => {
                            out.push(self.complete(lane_idx, &batch[members[0]], Err(e), false));
                        }
                    }
                }
            }
        }
        out
    }

    fn complete(
        &mut self,
        lane_idx: usize,
        p: &Pending,
        result: Result<Payload, ServeError>,
        coalesced: bool,
    ) -> Completion {
        self.stats.completed += 1;
        self.exec_log.push(p.id);
        Completion {
            id: p.id,
            session: p.session,
            device: self.lanes[lane_idx].device,
            result,
            submitted_ns: p.submitted_ns,
            // Lane-local completion time: the request finished on its own
            // core's timeline (>= submitted_ns, because the lane never
            // dispatches a request before it arrived).
            completed_ns: self.lanes[lane_idx].now_ns(),
            coalesced,
        }
    }

    fn execute_single(&mut self, lane_idx: usize, req: &Request) -> Result<Payload, ServeError> {
        match req {
            Request::Read { blkid, blkcnt, .. } => {
                self.execute_read(lane_idx, *blkid, *blkcnt).map(Payload::Read)
            }
            Request::Write { blkid, data, .. } => {
                let mut scratch = data.clone();
                self.execute_write(lane_idx, *blkid, &mut scratch)
                    .map(|()| Payload::Written { blocks: (data.len() / BLOCK) as u32 })
            }
            Request::Capture { frames, resolution } => {
                let lane = &mut self.lanes[lane_idx];
                let mut buf = vec![0u8; 2 << 20];
                let size = replay_cam(&mut lane.replayer, *frames, *resolution, &mut buf)?;
                self.stats.replays += 1;
                buf.truncate(size as usize);
                Ok(Payload::Image { data: buf })
            }
        }
    }

    /// One (possibly merged) read span, decomposed over the recorded
    /// granularities.
    fn execute_read(
        &mut self,
        lane_idx: usize,
        blkid: u32,
        blkcnt: u32,
    ) -> Result<Vec<u8>, ServeError> {
        let mut buf = vec![0u8; blkcnt as usize * BLOCK];
        let mut done = 0u32;
        for part in coalesce::decompose(blkcnt, &self.config.block_granularities) {
            let lane = &mut self.lanes[lane_idx];
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            lane.replayer.invoke_args(
                lane.entry,
                &block_args(0x1, part, blkid + done),
                &mut buf[start..end],
            )?;
            self.stats.replays += 1;
            self.stats.blocks_moved += u64::from(part);
            done += part;
        }
        Ok(buf)
    }

    /// One (possibly batched) write span.
    fn execute_write(
        &mut self,
        lane_idx: usize,
        blkid: u32,
        data: &mut [u8],
    ) -> Result<(), ServeError> {
        let blkcnt = (data.len() / BLOCK) as u32;
        let mut done = 0u32;
        for part in coalesce::decompose(blkcnt, &self.config.block_granularities) {
            let lane = &mut self.lanes[lane_idx];
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            lane.replayer.invoke_args(
                lane.entry,
                &block_args(0x10, part, blkid + done),
                &mut data[start..end],
            )?;
            self.stats.replays += 1;
            self.stats.blocks_moved += u64::from(part);
            done += part;
        }
        Ok(())
    }

    /// A [`SecureBlockIo`] view of one session bound to one block device:
    /// the handle trustlets hold instead of a replayer.
    pub fn session_io(&mut self, session: SessionId, device: Device) -> SessionBlockIo<'_> {
        SessionBlockIo { service: self, session, device }
    }

    fn lane_mut(&mut self, device: Device) -> Result<&mut DeviceLane, ServeError> {
        self.lanes
            .iter_mut()
            .find(|l| l.device == device)
            .ok_or(ServeError::DeviceNotServed(device))
    }

    /// Install a solver-driven device fault on `device`'s lane: every
    /// replay the lane runs from now on passes through a
    /// [`ConstraintFlipper`] following `plan` — it falsifies the targeted
    /// constraint with concolically solved register/DMA observations, so
    /// the lane behaves exactly like a misbehaving device at that point of
    /// the recorded trace. Returns the shared [`FlipOutcome`] handle the
    /// caller observes the campaign through. Replaces any previously
    /// installed fault.
    pub fn inject_fault(
        &mut self,
        device: Device,
        plan: FaultPlan,
    ) -> Result<Arc<Mutex<FlipOutcome>>, ServeError> {
        let lane = self.lane_mut(device)?;
        let (flipper, outcome) = ConstraintFlipper::new(plan);
        lane.replayer.set_response_mutator(Box::new(flipper));
        Ok(outcome)
    }

    /// Remove any fault installed on `device`'s lane; subsequent replays
    /// see the real device again.
    pub fn clear_fault(&mut self, device: Device) -> Result<(), ServeError> {
        let lane = self.lane_mut(device)?;
        lane.replayer.clear_response_mutator();
        Ok(())
    }

    /// Verify `device`'s lane is still serviceable — the post-divergence
    /// invariant the explore harness gates on. Block lanes write a pattern
    /// over the scratch probe extent at [`HEALTH_PROBE_BLKID`] and must
    /// read it back byte-identically; the camera lane must complete a
    /// one-frame capture. The probe goes straight at the lane replayer —
    /// no session, no queue — so a sick replayer cannot hide behind
    /// scheduling, and it **clobbers** the probe extent.
    pub fn lane_health_check(&mut self, device: Device) -> Result<(), ServeError> {
        let gran = self.config.block_granularities.iter().copied().min().unwrap_or(1);
        let frames = self.config.camera_bursts.first().copied().unwrap_or(1);
        let lane = self.lane_mut(device)?;
        match device {
            Device::Mmc | Device::Usb => {
                let pattern: Vec<u8> =
                    (0..gran as usize * BLOCK).map(|i| (i as u8) ^ 0xA5).collect();
                let mut buf = pattern.clone();
                lane.replayer.invoke_args(
                    lane.entry,
                    &block_args(0x10, gran, HEALTH_PROBE_BLKID),
                    &mut buf,
                )?;
                let mut readback = vec![0u8; gran as usize * BLOCK];
                lane.replayer.invoke_args(
                    lane.entry,
                    &block_args(0x1, gran, HEALTH_PROBE_BLKID),
                    &mut readback,
                )?;
                if readback != pattern {
                    return Err(ServeError::Invalid(format!(
                        "lane {device} failed its health probe: read-back differs from the \
                         written pattern"
                    )));
                }
            }
            Device::Vchiq => {
                let mut buf = vec![0u8; 2 << 20];
                let size = replay_cam(&mut lane.replayer, frames, 720, &mut buf)?;
                if size == 0 {
                    return Err(ServeError::Invalid(
                        "lane vchiq failed its health probe: empty capture".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// First block of the scratch extent [`DriverletService::lane_health_check`]
/// overwrites on block lanes (it stays clear of the low extents the tests
/// and workloads address).
pub const HEALTH_PROBE_BLKID: u32 = 1024;

fn block_args(rw: u64, blkcnt: u32, blkid: u32) -> [(&'static str, u64); 4] {
    [("rw", rw), ("blkcnt", u64::from(blkcnt)), ("blkid", u64::from(blkid)), ("flag", 0)]
}

/// A session-scoped block-IO handle (implements [`SecureBlockIo`], so the
/// trustlets in `dlt-trustlets` run over the shared service unchanged).
pub struct SessionBlockIo<'a> {
    service: &'a mut DriverletService,
    session: SessionId,
    device: Device,
}

impl SessionBlockIo<'_> {
    fn roundtrip(&mut self, req: Request) -> Result<Payload, dlt_core::ReplayError> {
        let invalid = |e: ServeError| dlt_core::ReplayError::Invalid(e.to_string());
        let id = self.service.submit(self.session, req).map_err(invalid)?;
        self.service.drain_all();
        let completions = self.service.take_completions(self.session);
        let completion = completions
            .into_iter()
            .find(|c| c.id == id)
            .ok_or_else(|| dlt_core::ReplayError::Invalid("completion lost".into()))?;
        completion.result.map_err(|e| match e {
            ServeError::Replay(r) => r,
            other => dlt_core::ReplayError::Invalid(other.to_string()),
        })
    }
}

impl SecureBlockIo for SessionBlockIo<'_> {
    fn read_blocks(
        &mut self,
        blkid: u32,
        blkcnt: u32,
        buf: &mut [u8],
    ) -> Result<(), dlt_core::ReplayError> {
        // Same contract as the bare-replayer implementation of this trait:
        // an undersized buffer is the caller's error, never a panic.
        if buf.len() < blkcnt as usize * BLOCK {
            return Err(dlt_core::ReplayError::Invalid(
                "buffer smaller than the requested blocks".into(),
            ));
        }
        let payload = self.roundtrip(Request::Read { device: self.device, blkid, blkcnt })?;
        match payload {
            Payload::Read(bytes) => {
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(())
            }
            _ => Err(dlt_core::ReplayError::Invalid("unexpected payload".into())),
        }
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), dlt_core::ReplayError> {
        self.roundtrip(Request::Write { device: self.device, blkid, data: data.to_vec() })
            .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmc_service(config: ServeConfig) -> DriverletService {
        DriverletService::new(&[Device::Mmc], config).expect("build service")
    }

    #[test]
    fn sessions_are_admitted_and_bounded() {
        let mut s = mmc_service(ServeConfig {
            max_sessions: 2,
            block_granularities: vec![1],
            ..ServeConfig::default()
        });
        let a = s.open_session().unwrap();
        let b = s.open_session().unwrap();
        assert_ne!(a, b);
        assert!(matches!(s.open_session(), Err(ServeError::SessionLimit { max: 2 })));
        s.close_session(a);
        assert_eq!(s.session_count(), 1);
        let _c = s.open_session().unwrap();
        // Submitting into a closed session fails.
        assert!(matches!(
            s.submit(a, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 1 }),
            Err(ServeError::InvalidSession(_))
        ));
        assert!(s.smc_calls() >= 3, "admission must cross the world boundary");
    }

    #[test]
    fn queue_full_is_backpressure_not_growth() {
        let mut s = mmc_service(ServeConfig {
            queue_capacity: 2,
            block_granularities: vec![1],
            ..ServeConfig::default()
        });
        let sess = s.open_session().unwrap();
        let rd = |i: u32| Request::Read { device: Device::Mmc, blkid: i, blkcnt: 1 };
        s.submit(sess, rd(0)).unwrap();
        s.submit(sess, rd(1)).unwrap();
        assert!(matches!(s.submit(sess, rd(2)), Err(ServeError::QueueFull { .. })));
        assert_eq!(s.stats().rejected, 1);
        // After a drain the queue has room again.
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        s.submit(sess, rd(2)).unwrap();
        assert_eq!(s.drain_all().len(), 1);
    }

    #[test]
    fn write_then_read_round_trips_through_two_sessions() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() });
        let writer = s.open_session().unwrap();
        let reader = s.open_session().unwrap();
        let data: Vec<u8> = (0..8 * BLOCK).map(|i| (i % 251) as u8).collect();
        s.submit(writer, Request::Write { device: Device::Mmc, blkid: 64, data: data.clone() })
            .unwrap();
        s.submit(reader, Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 8 }).unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        let read = s.take_completions(reader).pop().expect("reader completion");
        match read.result.expect("read ok") {
            Payload::Read(bytes) => assert_eq!(bytes, data),
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(read.completed_ns >= read.submitted_ns);
    }

    #[test]
    fn adjacent_single_block_reads_coalesce_into_one_replay() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() });
        let sessions: Vec<SessionId> = (0..8).map(|_| s.open_session().unwrap()).collect();
        for (i, sess) in sessions.iter().enumerate() {
            s.submit(
                *sess,
                Request::Read { device: Device::Mmc, blkid: 100 + i as u32, blkcnt: 1 },
            )
            .unwrap();
        }
        let r0 = s.stats().replays;
        let done = s.drain_all();
        assert_eq!(done.len(), 8);
        assert!(done.iter().all(|c| c.coalesced), "all eight reads rode one merged span");
        assert_eq!(s.stats().replays - r0, 1, "one rd_8 replay served all eight requests");
        assert!(s.stats().coalescing_ratio() > 1.0);
    }

    #[test]
    fn merged_reads_return_byte_identical_buffers_to_unmerged_ones() {
        // The same overlapping read mix, coalescing on vs off: every
        // completion payload must match byte for byte.
        let run = |coalesce: bool| -> Vec<(RequestId, Vec<u8>)> {
            let mut s = mmc_service(ServeConfig {
                coalesce,
                block_granularities: vec![1, 8],
                ..ServeConfig::default()
            });
            let writer = s.open_session().unwrap();
            let data: Vec<u8> = (0..32 * BLOCK).map(|i| (i % 253) as u8).collect();
            s.submit(writer, Request::Write { device: Device::Mmc, blkid: 96, data }).unwrap();
            s.drain_all();
            let readers: Vec<SessionId> = (0..4).map(|_| s.open_session().unwrap()).collect();
            // Overlapping and adjacent extents across four sessions.
            for (i, (blkid, blkcnt)) in
                [(96u32, 8u32), (100, 8), (104, 8), (112, 16)].iter().enumerate()
            {
                s.submit(
                    readers[i],
                    Request::Read { device: Device::Mmc, blkid: *blkid, blkcnt: *blkcnt },
                )
                .unwrap();
            }
            let mut out: Vec<(RequestId, Vec<u8>)> = s
                .drain_all()
                .into_iter()
                .map(|c| match c.result.expect("read ok") {
                    Payload::Read(bytes) => (c.id, bytes),
                    other => panic!("unexpected payload {other:?}"),
                })
                .collect();
            out.sort_by_key(|(id, _)| *id);
            out
        };
        let merged = run(true);
        let unmerged = run(false);
        assert_eq!(merged.len(), unmerged.len());
        for ((id_m, bytes_m), (id_u, bytes_u)) in merged.iter().zip(&unmerged) {
            assert_eq!(id_m, id_u);
            assert_eq!(bytes_m, bytes_u, "request {id_m}: merged read diverged from unmerged");
        }
    }

    #[test]
    fn uncoalesced_baseline_issues_one_replay_per_request() {
        let mut s = mmc_service(ServeConfig {
            coalesce: false,
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        });
        let sess = s.open_session().unwrap();
        for i in 0..4u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 200 + i, blkcnt: 1 })
                .unwrap();
        }
        let done = s.drain_all();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| !c.coalesced));
        assert_eq!(s.stats().replays, 4);
    }

    #[test]
    fn unserved_devices_and_bad_requests_fail_fast() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        assert!(matches!(
            s.submit(sess, Request::Capture { frames: 1, resolution: 720 }),
            Err(ServeError::DeviceNotServed(Device::Vchiq))
        ));
        assert!(matches!(
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 0 }),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            s.submit(sess, Request::Write { device: Device::Mmc, blkid: 0, data: vec![1, 2, 3] }),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn merged_span_failure_falls_back_to_member_outcomes() {
        // An in-coverage read merged with an out-of-coverage neighbour must
        // still succeed — exactly what serial execution would produce.
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let a = s.open_session().unwrap();
        let b = s.open_session().unwrap();
        let last = (dlt_dev_mmc::CARD_BLOCKS - 1) as u32;
        let good =
            s.submit(a, Request::Read { device: Device::Mmc, blkid: last, blkcnt: 1 }).unwrap();
        let bad =
            s.submit(b, Request::Read { device: Device::Mmc, blkid: last + 1, blkcnt: 1 }).unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        let by_id = |id| done.iter().find(|c| c.id == id).unwrap();
        assert!(by_id(good).result.is_ok(), "the in-coverage member must not inherit the error");
        assert!(matches!(by_id(bad).result, Err(ServeError::Replay(_))));
    }

    #[test]
    fn oversized_and_overflowing_requests_are_rejected_at_submit() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        assert!(matches!(
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: u32::MAX, blkcnt: 2 }),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            s.submit(
                sess,
                Request::Read {
                    device: Device::Mmc,
                    blkid: 0,
                    blkcnt: crate::MAX_REQUEST_BLOCKS + 1
                }
            ),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn drain_yields_one_batch_per_call() {
        // Hold disabled: the first read dispatches alone the instant it
        // arrived; the two that arrived while it was in flight form the
        // second batch. Each drain() call yields exactly one batch.
        let mut s = mmc_service(ServeConfig {
            hold_budget_ns: 0,
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        });
        let sess = s.open_session().unwrap();
        for i in 0..3u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 300 + i, blkcnt: 1 })
                .unwrap();
        }
        let first = s.drain_all();
        // drain_all is drain() to quiescence; redo the same traffic with
        // per-step drains to observe the batching.
        assert_eq!(first.len(), 3);
        // Observe the completions so the client's next submits are stamped
        // after the lane's current time (a closed-loop client).
        s.take_completions(sess);
        for i in 0..3u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 300 + i, blkcnt: 1 })
                .unwrap();
        }
        let step1 = s.drain();
        let step2 = s.drain();
        let step3 = s.drain();
        assert_eq!(step1.len(), 1, "the first arrival dispatches alone");
        assert_eq!(step2.len(), 2, "arrivals during service batch together");
        assert!(step3.is_empty(), "an empty vector signals quiescence");
    }

    #[test]
    fn anticipatory_hold_merges_one_sessions_stream_and_is_counted() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        for i in 0..8u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 400 + i, blkcnt: 1 })
                .unwrap();
        }
        let r0 = s.stats().replays;
        let done = s.drain_all();
        assert_eq!(done.len(), 8);
        assert_eq!(s.stats().replays - r0, 1, "the held window folds the stream into one rd_8");
        assert!(s.stats().holds >= 1, "the plug engaged");
        assert_eq!(s.stats().early_unplugs, 0, "nothing forced an early unplug");
    }

    #[test]
    fn camera_bursts_do_not_stall_the_mmc_lane() {
        // The multi-core acceptance scenario in miniature: a capture takes
        // seconds of VCHIQ-lane time, but block completions ride the MMC
        // lane's own clock and stay in the sub-millisecond range.
        let mut s = DriverletService::new(
            &[Device::Mmc, Device::Vchiq],
            ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() },
        )
        .expect("build service");
        let cam = s.open_session().unwrap();
        let blk = s.open_session().unwrap();
        s.submit(cam, Request::Capture { frames: 1, resolution: 720 }).unwrap();
        for i in 0..8u32 {
            s.submit(blk, Request::Read { device: Device::Mmc, blkid: 500 + i, blkcnt: 1 })
                .unwrap();
        }
        let done = s.drain_all();
        assert_eq!(done.len(), 9);
        let mut cap_latency = 0;
        for c in &done {
            c.result.as_ref().expect("all requests in coverage");
            match c.device {
                Device::Vchiq => cap_latency = c.latency_ns(),
                _ => assert!(
                    c.latency_ns() < 5_000_000,
                    "block read must not queue behind the capture (latency {} ns)",
                    c.latency_ns()
                ),
            }
        }
        assert!(cap_latency > 1_000_000_000, "the capture itself takes seconds");
        // The merge rule: service time is the max over lanes, i.e. the
        // camera lane here; the MMC lane's own clock stays far behind.
        let status = s.lane_status();
        let vchiq = status.iter().find(|l| l.device == Device::Vchiq).unwrap();
        let mmc = status.iter().find(|l| l.device == Device::Mmc).unwrap();
        assert_eq!(s.now_ns(), vchiq.now_ns, "service time joins to the furthest lane");
        assert!(vchiq.now_ns > mmc.now_ns, "lane clocks advance independently");
        assert!(mmc.busy_ns <= mmc.now_ns && mmc.utilization() <= 1.0);
    }

    #[test]
    fn drain_device_flushes_only_the_saturated_lane() {
        let mut s = DriverletService::new(
            &[Device::Mmc, Device::Usb],
            ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() },
        )
        .expect("build service");
        let sess = s.open_session().unwrap();
        s.submit(sess, Request::Read { device: Device::Mmc, blkid: 10, blkcnt: 1 }).unwrap();
        s.submit(sess, Request::Read { device: Device::Usb, blkid: 10, blkcnt: 1 }).unwrap();
        let usb_only = s.drain_device(Device::Usb);
        assert_eq!(usb_only.len(), 1);
        assert!(usb_only.iter().all(|c| c.device == Device::Usb));
        let rest = s.drain_all();
        assert_eq!(rest.len(), 1);
        assert!(rest.iter().all(|c| c.device == Device::Mmc), "the MMC lane kept its queue");
    }

    #[test]
    fn client_think_time_spaces_arrivals() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        let a = s.submit(sess, Request::Read { device: Device::Mmc, blkid: 1, blkcnt: 1 }).unwrap();
        s.client_think_ns(5_000_000);
        let b = s.submit(sess, Request::Read { device: Device::Mmc, blkid: 2, blkcnt: 1 }).unwrap();
        let done = s.drain_all();
        let at = |id| done.iter().find(|c| c.id == id).unwrap().submitted_ns;
        assert!(at(b) >= at(a) + 5_000_000, "think time separates the arrival stamps");
    }

    fn ring_config() -> ServeConfig {
        ServeConfig {
            submit_mode: SubmitMode::Ring,
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        }
    }

    #[test]
    fn doorbell_admits_a_whole_batch_in_one_world_switch() {
        let mut s = mmc_service(ring_config());
        let sess = s.open_session().unwrap();
        let smc0 = s.smc_calls();
        for i in 0..16u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 600 + i, blkcnt: 1 })
                .unwrap();
        }
        assert_eq!(s.smc_calls(), smc0, "staging 16 entries must not enter the TEE");
        let admitted = s.ring_doorbell().unwrap();
        assert_eq!(admitted, 16);
        assert_eq!(s.smc_calls() - smc0, 1, "one doorbell switch admits the whole batch");
        assert_eq!(s.smc_doorbells(), 1);
        let done = s.drain_all();
        assert_eq!(done.len(), 16);
        // Reaping a non-empty completion ring is SMC-free.
        let before = s.smc_calls();
        let taken = s.take_completions(sess);
        assert_eq!(taken.len(), 16);
        assert_eq!(s.smc_calls(), before, "a non-empty CQ reap never crosses worlds");
        // An empty reap is a blocking wait: one world switch.
        s.take_completions(sess);
        assert_eq!(s.smc_calls(), before + 1);
        assert_eq!(s.stats().doorbells, 1);
        assert_eq!(s.stats().doorbell_entries, 16);
        assert!((s.stats().mean_doorbell_batch() - 16.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sq_ring_full_is_typed_backpressure_not_a_silent_drop() {
        // The satellite regression test: a full submission ring surfaces
        // as the same typed QueueFull error the lane queue uses, carrying
        // the device, the ring depth and its capacity.
        let mut s = mmc_service(ServeConfig { sq_depth: 2, ..ring_config() });
        let sess = s.open_session().unwrap();
        let rd = |i: u32| Request::Read { device: Device::Mmc, blkid: 700 + i, blkcnt: 1 };
        s.submit(sess, rd(0)).unwrap();
        s.submit(sess, rd(1)).unwrap();
        match s.submit(sess, rd(2)) {
            Err(ServeError::QueueFull { device, depth, capacity }) => {
                assert_eq!(device, Device::Mmc);
                assert_eq!(depth, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected ring-full backpressure, got {other:?}"),
        }
        assert_eq!(s.stats().rejected, 1);
        // Nothing staged was lost: a doorbell + drain completes exactly
        // the two accepted requests, and the ring has room again.
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        s.submit(sess, rd(2)).unwrap();
        assert_eq!(s.drain_all().len(), 1);
        assert_eq!(s.stats().submitted, 3);
    }

    #[test]
    fn doorbell_lane_overflow_completes_with_queue_full_errors() {
        // The lane queue (not the ring) is the saturated bound: admitted
        // entries that do not fit complete with a typed error in the
        // session's CQ instead of disappearing.
        let mut s = mmc_service(ServeConfig { queue_capacity: 1, sq_depth: 4, ..ring_config() });
        let sess = s.open_session().unwrap();
        for i in 0..3u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 710 + i, blkcnt: 1 })
                .unwrap();
        }
        assert_eq!(s.ring_doorbell().unwrap(), 3);
        assert_eq!(s.stats().rejected, 2);
        let done = s.drain_all();
        assert_eq!(done.len(), 1, "only the admitted request executes");
        let taken = s.take_completions(sess);
        assert_eq!(taken.len(), 3, "rejected entries still surface to the client");
        let errors =
            taken.iter().filter(|c| matches!(c.result, Err(ServeError::QueueFull { .. }))).count();
        assert_eq!(errors, 2);
    }

    #[test]
    fn ring_and_per_call_submits_produce_identical_payloads() {
        // The same write-then-read program down both submission paths
        // must read back byte-identical data.
        let run = |mode: SubmitMode| -> Vec<u8> {
            let mut s = mmc_service(ServeConfig { submit_mode: mode, ..ring_config() });
            let sess = s.open_session().unwrap();
            let data: Vec<u8> = (0..8 * BLOCK).map(|i| (i % 249) as u8).collect();
            s.submit(sess, Request::Write { device: Device::Mmc, blkid: 800, data }).unwrap();
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 800, blkcnt: 8 }).unwrap();
            let done = s.drain_all();
            assert_eq!(done.len(), 2);
            let read = s.take_completions(sess).pop().expect("read completion");
            match read.result.expect("read ok") {
                Payload::Read(bytes) => bytes,
                other => panic!("unexpected payload {other:?}"),
            }
        };
        assert_eq!(run(SubmitMode::Ring), run(SubmitMode::PerCall));
    }

    #[test]
    fn ring_latency_includes_the_wait_for_the_doorbell() {
        // Entries are stamped at enqueue but only become servable at the
        // doorbell: completed >= arrived-at-doorbell >= submitted.
        let mut s = mmc_service(ring_config());
        let sess = s.open_session().unwrap();
        s.submit(sess, Request::Read { device: Device::Mmc, blkid: 900, blkcnt: 1 }).unwrap();
        let staged_at = s.control_now_ns();
        s.client_think_ns(2_000_000); // the client dawdles before ringing
        s.ring_doorbell().unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].submitted_ns, staged_at, "latency counts from the enqueue");
        assert!(
            done[0].completed_ns >= staged_at + 2_000_000,
            "the lane cannot serve an entry the TEE has not seen"
        );
    }

    #[test]
    fn mid_coalesce_divergence_fails_only_the_merged_sessions_and_lane_recovers() {
        use dlt_core::ReplayError;
        let config = || ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() };
        let seed: Vec<u8> = (0..16 * BLOCK).map(|i| (i % 241) as u8).collect();
        // A never-faulted reference service running the same seed write
        // and the same final read.
        let mut fresh = mmc_service(config());
        let fw = fresh.open_session().unwrap();
        fresh
            .submit(fw, Request::Write { device: Device::Mmc, blkid: 100, data: seed.clone() })
            .unwrap();
        fresh.drain_all();

        let mut s = mmc_service(config());
        let writer = s.open_session().unwrap();
        s.submit(writer, Request::Write { device: Device::Mmc, blkid: 100, data: seed.clone() })
            .unwrap();
        s.drain_all();

        // Sticky read-template fault: the merged span diverges, and so
        // does every member fallback — the whole coalesced run must fail
        // with typed divergences, never a panic or a wedged lane.
        let outcome = s
            .inject_fault(
                Device::Mmc,
                FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
            )
            .unwrap();
        let victims: Vec<SessionId> = (0..4).map(|_| s.open_session().unwrap()).collect();
        for (i, v) in victims.iter().enumerate() {
            s.submit(
                *v,
                Request::Read { device: Device::Mmc, blkid: 100 + 2 * i as u32, blkcnt: 2 },
            )
            .unwrap();
        }
        let failed = s.drain_all();
        assert_eq!(failed.len(), 4);
        for c in &failed {
            assert!(
                matches!(&c.result, Err(ServeError::Replay(ReplayError::Diverged(_)))),
                "expected a typed divergence, got {:?}",
                c.result
            );
            assert!(
                c.completed_ns >= c.submitted_ns,
                "the lane clock stayed monotone through the divergence"
            );
        }
        assert!(outcome.lock().unwrap().engaged_invocations >= 1, "the fault actually fired");

        // Clear the fault: the lane must verify healthy and then serve an
        // untouched session byte-identically to the never-faulted lane.
        s.clear_fault(Device::Mmc).unwrap();
        s.lane_health_check(Device::Mmc).unwrap();
        let untouched = s.open_session().unwrap();
        s.submit(untouched, Request::Read { device: Device::Mmc, blkid: 100, blkcnt: 16 }).unwrap();
        let healthy = s.drain_all();
        assert_eq!(healthy.len(), 1);

        let fr = fresh.open_session().unwrap();
        fresh.submit(fr, Request::Read { device: Device::Mmc, blkid: 100, blkcnt: 16 }).unwrap();
        let reference = fresh.drain_all();
        let bytes = |c: &Completion| match c.result.clone().expect("read ok") {
            Payload::Read(b) => b,
            other => panic!("unexpected payload {other:?}"),
        };
        assert_eq!(
            bytes(&healthy[0]),
            bytes(&reference[0]),
            "post-divergence lane reads diverged from a fresh lane"
        );
        assert_eq!(bytes(&healthy[0]), seed);
        assert_eq!(s.lane_status()[0].queued, 0, "the lane queue drained");
    }

    #[test]
    fn out_of_coverage_requests_fan_error_completions() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        // Far beyond the recorded blkid coverage.
        s.submit(sess, Request::Read { device: Device::Mmc, blkid: u32::MAX - 8, blkcnt: 1 })
            .unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 1);
        match &done[0].result {
            Err(ServeError::Replay(e)) => {
                assert!(e.to_string().contains("coverage"), "got: {e}");
            }
            other => panic!("expected a replay error, got {other:?}"),
        }
    }
}
