//! The block layer above the MMC host driver.
//!
//! This is what makes the *native* configuration of §8.3.1 fast: requests
//! pass through a (modelled) kernel block layer, adjacent writes are merged,
//! and a write-back cache lets writes complete before the medium commits
//! them. `native-sync` forces every write through to the medium, which the
//! paper measures as slower than the driverlet because the kernel-layer
//! overhead remains (§8.3.2).

use dlt_dev_mmc::BLOCK_SIZE;

use crate::kenv::{DriverError, HwIo, IoFlags, Rw};
use crate::mmc::host::MmcHost;

/// Caching behaviour of the block layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Native: write-back caching with request merging.
    WriteBack,
    /// Native-sync (`O_SYNC`): every write goes straight to the medium.
    WriteThrough,
}

/// One dirty extent in the write-back cache.
#[derive(Debug, Clone)]
struct Extent {
    blkid: u32,
    data: Vec<u8>,
}

impl Extent {
    fn blocks(&self) -> u32 {
        (self.data.len() / BLOCK_SIZE) as u32
    }
    fn end(&self) -> u32 {
        self.blkid + self.blocks()
    }
    fn overlaps(&self, blkid: u32, blkcnt: u32) -> bool {
        blkid < self.end() && self.blkid < blkid + blkcnt
    }
    fn covers(&self, blkid: u32, blkcnt: u32) -> bool {
        self.blkid <= blkid && blkid + blkcnt <= self.end()
    }
}

/// Block-layer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests accepted.
    pub writes: u64,
    /// Reads fully served from the write-back cache.
    pub cache_hits: u64,
    /// Write extents merged before hitting the device.
    pub merges: u64,
    /// Flush operations (cache drains).
    pub flushes: u64,
    /// Device commands actually issued by flushes and reads.
    pub device_ios: u64,
}

/// The block driver: caching, merging, and kernel-path cost accounting.
pub struct MmcBlockDriver<I: HwIo> {
    host: MmcHost<I>,
    mode: CacheMode,
    cache: Vec<Extent>,
    max_dirty_extents: usize,
    stats: BlockStats,
}

impl<I: HwIo> MmcBlockDriver<I> {
    /// Wrap a probed host.
    pub fn new(host: MmcHost<I>, mode: CacheMode) -> Self {
        MmcBlockDriver {
            host,
            mode,
            cache: Vec::new(),
            max_dirty_extents: 16,
            stats: BlockStats::default(),
        }
    }

    /// Block-layer statistics.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Access the underlying host (tests).
    pub fn host_mut(&mut self) -> &mut MmcHost<I> {
        &mut self.host
    }

    /// Charge the kernel block-layer / filesystem path cost the native driver
    /// pays per request (§8.3.2: the driverlet "forgoes complex kernel layers
    /// such as filesystems and driver frameworks").
    fn charge_kernel_path(&mut self, blkcnt: u32) {
        let pages = blkcnt.div_ceil(8) as u64;
        let ns = {
            let io = self.host.io_mut();
            let _ = io; // cost knobs live in the shared clock via delay below
            0u64
        };
        let _ = ns;
        // Approximate: 120 us block-layer fixed cost + 18 us scheduling per page.
        self.host.io_mut().delay_us(120 + 18 * pages);
    }

    /// Read `blkcnt` blocks starting at `blkid`.
    pub fn read(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), DriverError> {
        self.stats.reads += 1;
        self.charge_kernel_path(blkcnt);
        // Fast path: a single dirty extent fully covers the read.
        if let Some(ext) = self.cache.iter().find(|e| e.covers(blkid, blkcnt)) {
            let off = (blkid - ext.blkid) as usize * BLOCK_SIZE;
            let len = blkcnt as usize * BLOCK_SIZE;
            buf[..len].copy_from_slice(&ext.data[off..off + len]);
            self.stats.cache_hits += 1;
            return Ok(());
        }
        // Otherwise flush anything overlapping, then hit the device.
        if self.cache.iter().any(|e| e.overlaps(blkid, blkcnt)) {
            self.flush()?;
        }
        self.stats.device_ios += 1;
        self.host.do_io(Rw::Read, blkcnt, blkid, IoFlags::none(), buf)
    }

    /// Write whole blocks starting at `blkid`. `data` must be a multiple of
    /// the block size.
    pub fn write(&mut self, blkid: u32, data: &[u8], flags: IoFlags) -> Result<(), DriverError> {
        if data.is_empty() || !data.len().is_multiple_of(BLOCK_SIZE) {
            return Err(DriverError::Invalid("write must be whole blocks".into()));
        }
        let blkcnt = (data.len() / BLOCK_SIZE) as u32;
        self.stats.writes += 1;
        self.charge_kernel_path(blkcnt);

        if self.mode == CacheMode::WriteThrough || flags.sync {
            self.stats.device_ios += 1;
            let mut copy = data.to_vec();
            return self.host.do_io(Rw::Write, blkcnt, blkid, IoFlags::sync(), &mut copy);
        }

        // Write-back: coalesce with an adjacent or overlapping extent.
        if let Some(ext) = self
            .cache
            .iter_mut()
            .find(|e| e.overlaps(blkid, blkcnt) || e.end() == blkid || blkid + blkcnt == e.blkid)
        {
            let new_start = ext.blkid.min(blkid);
            let new_end = ext.end().max(blkid + blkcnt);
            let mut merged = vec![0u8; ((new_end - new_start) as usize) * BLOCK_SIZE];
            let old_off = ((ext.blkid - new_start) as usize) * BLOCK_SIZE;
            merged[old_off..old_off + ext.data.len()].copy_from_slice(&ext.data);
            let new_off = ((blkid - new_start) as usize) * BLOCK_SIZE;
            merged[new_off..new_off + data.len()].copy_from_slice(data);
            ext.blkid = new_start;
            ext.data = merged;
            self.stats.merges += 1;
        } else {
            self.cache.push(Extent { blkid, data: data.to_vec() });
        }

        if self.cache.len() > self.max_dirty_extents {
            self.flush()?;
        }
        Ok(())
    }

    /// Drain the write-back cache to the medium.
    pub fn flush(&mut self) -> Result<(), DriverError> {
        if self.cache.is_empty() {
            return Ok(());
        }
        self.stats.flushes += 1;
        let mut extents = std::mem::take(&mut self.cache);
        extents.sort_by_key(|e| e.blkid);
        for ext in extents {
            // Large merged extents are split into device-sized transfers.
            let mut off = 0usize;
            let mut blkid = ext.blkid;
            while off < ext.data.len() {
                let blocks = (((ext.data.len() - off) / BLOCK_SIZE) as u32).min(256);
                let len = blocks as usize * BLOCK_SIZE;
                let mut chunk = ext.data[off..off + len].to_vec();
                self.stats.device_ios += 1;
                self.host.do_io(Rw::Write, blocks, blkid, IoFlags::none(), &mut chunk)?;
                off += len;
                blkid += blocks;
            }
        }
        Ok(())
    }

    /// Number of dirty extents currently cached.
    pub fn dirty_extents(&self) -> usize {
        self.cache.len()
    }
}

impl<I: HwIo> Drop for MmcBlockDriver<I> {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kenv::BusIo;
    use dlt_dev_mmc::MmcSubsystem;
    use dlt_hw::{DmaRegion, Platform};

    fn rig(mode: CacheMode) -> (Platform, MmcSubsystem, MmcBlockDriver<BusIo>) {
        let p = Platform::new();
        let sys = MmcSubsystem::attach(&p).unwrap();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x200_0000, 0x100_0000));
        let mut host = MmcHost::new(io);
        host.probe().unwrap();
        let blk = MmcBlockDriver::new(host, mode);
        (p, sys, blk)
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn writeback_defers_the_medium_and_serves_reads_from_cache() {
        let (_p, sys, mut blk) = rig(CacheMode::WriteBack);
        let data = pattern(8 * BLOCK_SIZE, 1);
        blk.write(16, &data, IoFlags::none()).unwrap();
        // The card has not seen the data yet.
        assert_eq!(sys.sdhost.lock().card().blocks_written(), 0);
        // But reads observe it.
        let mut out = vec![0u8; 8 * BLOCK_SIZE];
        blk.read(16, 8, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(blk.stats().cache_hits, 1);
        // Flush persists it.
        blk.flush().unwrap();
        assert_eq!(sys.sdhost.lock().card().blocks_written(), 8);
        assert_eq!(sys.sdhost.lock().card().peek_block(16)[..32], data[..32]);
    }

    #[test]
    fn writethrough_hits_the_medium_immediately() {
        let (_p, sys, mut blk) = rig(CacheMode::WriteThrough);
        let data = pattern(BLOCK_SIZE, 2);
        blk.write(5, &data, IoFlags::none()).unwrap();
        assert_eq!(sys.sdhost.lock().card().blocks_written(), 1);
        assert_eq!(blk.dirty_extents(), 0);
    }

    #[test]
    fn adjacent_writes_are_merged_into_one_device_io() {
        let (_p, _sys, mut blk) = rig(CacheMode::WriteBack);
        for i in 0..4u32 {
            blk.write(100 + i * 8, &pattern(8 * BLOCK_SIZE, i as u8), IoFlags::none()).unwrap();
        }
        assert_eq!(blk.stats().merges, 3);
        assert_eq!(blk.dirty_extents(), 1);
        blk.flush().unwrap();
        assert_eq!(blk.stats().device_ios, 1, "one merged 32-block write");
    }

    #[test]
    fn partially_overlapping_read_forces_a_flush() {
        let (_p, sys, mut blk) = rig(CacheMode::WriteBack);
        blk.write(10, &pattern(4 * BLOCK_SIZE, 7), IoFlags::none()).unwrap();
        let mut out = vec![0u8; 8 * BLOCK_SIZE];
        blk.read(8, 8, &mut out).unwrap();
        // The dirty data was flushed before the device read.
        assert_eq!(sys.sdhost.lock().card().blocks_written(), 4);
        assert_eq!(&out[2 * BLOCK_SIZE..3 * BLOCK_SIZE], &pattern(4 * BLOCK_SIZE, 7)[..BLOCK_SIZE]);
    }

    #[test]
    fn sync_flag_overrides_writeback() {
        let (_p, sys, mut blk) = rig(CacheMode::WriteBack);
        blk.write(3, &pattern(BLOCK_SIZE, 9), IoFlags::sync()).unwrap();
        assert_eq!(sys.sdhost.lock().card().blocks_written(), 1);
    }

    #[test]
    fn cache_pressure_triggers_automatic_flush() {
        let (_p, sys, mut blk) = rig(CacheMode::WriteBack);
        // 17 disjoint (non-mergeable) extents exceed the 16-extent cap.
        for i in 0..17u32 {
            blk.write(i * 100, &pattern(BLOCK_SIZE, i as u8), IoFlags::none()).unwrap();
        }
        assert!(blk.stats().flushes >= 1);
        assert!(sys.sdhost.lock().card().blocks_written() >= 16);
    }

    #[test]
    fn misaligned_write_length_is_rejected() {
        let (_p, _sys, mut blk) = rig(CacheMode::WriteBack);
        assert!(matches!(blk.write(0, &[0u8; 100], IoFlags::none()), Err(DriverError::Invalid(_))));
    }

    #[test]
    fn native_write_latency_is_lower_than_sync_write_latency() {
        // The virtual-time shape behind Figure 5: a cached write returns much
        // faster than a synchronous one.
        let (p_native, _s1, mut native) = rig(CacheMode::WriteBack);
        let data = pattern(8 * BLOCK_SIZE, 3);
        let t0 = p_native.now_ns();
        native.write(0, &data, IoFlags::none()).unwrap();
        let native_ns = p_native.now_ns() - t0;

        let (p_sync, _s2, mut sync) = rig(CacheMode::WriteThrough);
        let t0 = p_sync.now_ns();
        sync.write(0, &data, IoFlags::none()).unwrap();
        let sync_ns = p_sync.now_ns() - t0;
        assert!(
            sync_ns > native_ns * 3,
            "sync write ({sync_ns} ns) should dwarf the cached write ({native_ns} ns)"
        );
    }
}
