//! Observability overhead: the same ring-mode threaded workload under
//! `ObsConfig::Off`, `MetricsOnly` and `Full`, measured in host
//! wall-clock (best of N trials per arm); persisted to `BENCH_obs.json`
//! with the Full arm's Chrome trace next to it as `trace.json`. CI runs
//! this with `--quick` and fails the build when `Full` keeps less than
//! 0.9x of the `Off` request rate.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p dlt-bench --bench obs_overhead            # full
//! cargo bench -p dlt-bench --bench obs_overhead -- --quick # CI smoke
//! ```
//!
//! Artifact paths default to `BENCH_obs.json` and `trace.json` in the
//! working directory; override with the `BENCH_OBS_OUT` and `TRACE_OUT`
//! environment variables.

use dlt_bench::obs_bench::{describe, emit_report, run_obs_bench, summary_line};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK").is_some();
    println!("== obs_overhead: flight recorder + metrics plane (host wall-clock) ==");
    println!(
        "recording driverlets and driving the three arms ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let run = run_obs_bench(quick);
    let report = &run.report;
    print!("{}", describe(report));
    println!("{}", summary_line(report));

    assert_eq!(
        report.off.requests, report.full.requests,
        "all arms must drive the identical workload"
    );
    assert!(report.trace_events > 0, "acceptance: the Full arm must record trace events");
    assert_eq!(
        report.dropped_events, 0,
        "acceptance: the default ring size must absorb this workload without loss"
    );
    // The tentpole gate: both observability planes on may cost at most
    // 10% of the baseline request rate.
    if let Err(why) = report.gate() {
        panic!("acceptance: {why}");
    }

    let out = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    emit_report(report, &out).expect("write BENCH_obs.json");
    println!("wrote {out}");
    let trace_out = std::env::var("TRACE_OUT").unwrap_or_else(|_| "trace.json".into());
    std::fs::write(&trace_out, &run.chrome_trace).expect("write trace.json");
    println!("wrote {trace_out} (load in chrome://tracing or Perfetto: one track per lane)");
}
