//! Cross-thread stress tests for the lock-free SPSC core ([`dlt_serve::spsc`])
//! and the concurrent behaviours built on it: submission-ring staging from a
//! detached producer thread, consistent `QueueFull` depth snapshots against a
//! live draining lane thread, and the `drain_all` quiescence contract under
//! park/unpark cycles.
//!
//! Everything here must pass on a single-core host: the tests use bounded
//! retry loops with `yield_now` (never busy-wait without yielding), so the
//! scheduler can always interleave the two sides.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dlt_serve::spsc;
use dlt_serve::{Device, DriverletService, ExecMode, Request, ServeConfig, ServeError, SubmitMode};

/// Push `n` items through a ring of the given capacity from a real producer
/// thread and assert the consumer sees every item exactly once, in order.
fn cross_thread_order(capacity: usize, n: u64) {
    let (mut tx, mut rx) = spsc::channel::<u64>(capacity);
    let producer = thread::spawn(move || {
        for i in 0..n {
            let mut item = i;
            loop {
                match tx.try_push(item) {
                    Ok(_) => break,
                    Err((back, depth)) => {
                        assert!(depth <= capacity, "rejection depth exceeds capacity");
                        item = back;
                        thread::yield_now();
                    }
                }
            }
        }
    });
    let mut expected = 0u64;
    while expected < n {
        match rx.try_pop() {
            Some(v) => {
                assert_eq!(v, expected, "items must arrive exactly once, in push order");
                expected += 1;
            }
            None => thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert!(rx.try_pop().is_none(), "nothing may remain after {n} pops");
}

#[test]
fn spsc_preserves_order_across_threads_at_every_capacity() {
    // Capacity 1 forces a full handoff per item (maximum full/empty racing);
    // 2 and 3 exercise wraparound with non-power-of-two moduli; 64 lets the
    // producer run ahead in bursts.
    for capacity in [1usize, 2, 3, 8, 64] {
        cross_thread_order(capacity, 10_000);
    }
}

#[test]
fn spsc_wraparound_indices_survive_many_cycles() {
    // A tiny ring cycled far past its capacity: monotone head/tail must
    // never confuse occupancy across wraps.
    cross_thread_order(2, 20_000);
}

#[test]
fn spsc_full_and_empty_races_lose_nothing() {
    // The consumer randomly stalls (coarse-grained via a shared flag) so the
    // ring oscillates between full and empty; the checksum proves no item is
    // lost or duplicated even when every push races a pop.
    let (mut tx, mut rx) = spsc::channel::<u64>(4);
    const N: u64 = 10_000;
    let stall = Arc::new(AtomicBool::new(false));
    let stall_producer = Arc::clone(&stall);
    let producer = thread::spawn(move || {
        for i in 0..N {
            if i % 97 == 0 {
                stall_producer.store(i % 194 == 0, Ordering::Relaxed);
            }
            let mut item = i;
            while let Err((back, _)) = tx.try_push(item) {
                item = back;
                thread::yield_now();
            }
        }
    });
    let mut sum = 0u64;
    let mut count = 0u64;
    while count < N {
        if stall.load(Ordering::Relaxed) {
            thread::yield_now();
        }
        match rx.try_pop() {
            Some(v) => {
                sum += v;
                count += 1;
            }
            None => thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert_eq!(sum, N * (N - 1) / 2, "checksum: every item exactly once");
}

#[test]
fn spsc_drops_in_flight_values_cleanly_when_both_ends_die() {
    // Kill the consumer with items still queued; the ring's drop glue must
    // release them (leak checks are what the Arc counts are for).
    let value = Arc::new(());
    let (mut tx, rx) = spsc::channel::<Arc<()>>(8);
    let handles: Vec<_> = (0..5).map(|_| Arc::clone(&value)).collect();
    let producer = thread::spawn(move || {
        for h in handles {
            let mut item = h;
            while let Err((back, _)) = tx.try_push(item) {
                item = back;
                thread::yield_now();
            }
        }
    });
    producer.join().unwrap();
    drop(rx);
    assert_eq!(Arc::strong_count(&value), 1, "queued values must not leak");
}

fn quick_config(exec_mode: ExecMode) -> ServeConfig {
    ServeConfig { exec_mode, block_granularities: vec![1, 8], ..ServeConfig::default() }
}

/// Satellite regression: a `QueueFull` raced against a concurrently draining
/// lane thread must report one coherent snapshot — `depth <= capacity`, and
/// under the bound-only admission rule exactly `depth == capacity`, because
/// the depth reported is the single atomic load the rejection was decided
/// on, never a second racy re-read.
#[test]
fn queue_full_depth_is_a_consistent_snapshot_under_a_draining_lane_thread() {
    let config = ServeConfig { queue_capacity: 4, ..quick_config(ExecMode::Threaded) };
    let capacity = config.queue_capacity;
    let mut service = DriverletService::new(&[Device::Mmc], config).expect("build service");
    let session = service.open_session().unwrap();

    // Keep submitting against the live lane thread; every rejection must
    // carry the exact snapshot. The lane drains concurrently, so accepted
    // and rejected submissions interleave arbitrarily.
    let mut accepted = 0u64;
    let mut rejections = 0u64;
    let mut attempts = 0u64;
    while accepted < 300 && attempts < 1_000_000 {
        attempts += 1;
        let req = Request::Read { device: Device::Mmc, blkid: accepted as u32 % 32, blkcnt: 1 };
        match service.submit(session, req) {
            Ok(_) => accepted += 1,
            Err(ServeError::QueueFull { device, depth, capacity: cap, high_water, fleet }) => {
                rejections += 1;
                assert_eq!(device, Device::Mmc);
                assert_eq!(fleet.len(), 1, "a routed reject reports the whole (1-lane) fleet");
                assert_eq!(cap, capacity);
                assert_eq!(high_water, capacity, "a full queue has saturated its high-water mark");
                assert_eq!(
                    depth, capacity,
                    "the reported depth must be the atomic load the rejection was decided on \
                     (== capacity under bound-only admission), not a racy re-read"
                );
                thread::yield_now();
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert_eq!(accepted, 300, "the lane thread must keep draining so submits make progress");
    let done = service.drain_all();
    assert_eq!(done.len() as u64, accepted);
    assert_eq!(service.stats().rejected, rejections);
}

/// Completion-ring overflow against lane threads: a tiny per-session CQ
/// forces posts onto the overflow list mid-drain, and every completion must
/// still be delivered exactly once.
#[test]
fn cq_overflow_under_lane_threads_delivers_every_completion() {
    let config = ServeConfig { cq_depth: 2, ..quick_config(ExecMode::Threaded) };
    let mut service = DriverletService::new(&[Device::Mmc], config).expect("build service");
    let session = service.open_session().unwrap();
    let mut submitted = 0u64;
    for i in 0..60u32 {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid: i % 32, blkcnt: 1 })
            .expect("submit");
        submitted += 1;
    }
    service.drain_all();
    let taken = service.take_completions(session);
    assert_eq!(taken.len() as u64, submitted, "overflow must spill, never drop");
    assert!(taken.iter().all(|c| c.result.is_ok()));
    assert!(
        service.stats().cq_overflows > 0,
        "a depth-2 session ring under 60 completions must have overflowed"
    );
}

/// The park/unpark protocol and the `drain_all` quiescence contract, cycled:
/// after every `drain_all`, all submitted work is complete and the stats
/// balance; idle lane threads park rather than spin, so repeated cycles work
/// even on one core.
#[test]
fn drain_all_quiesces_across_repeated_park_wake_cycles() {
    let mut service =
        DriverletService::new(&[Device::Mmc, Device::Usb], quick_config(ExecMode::Threaded))
            .expect("build service");
    let session = service.open_session().unwrap();
    let mut total = 0u64;
    for cycle in 0..10u32 {
        for i in 0..12u32 {
            let device = if i % 2 == 0 { Device::Mmc } else { Device::Usb };
            let req = if i % 3 == 0 {
                Request::Write { device, blkid: 64 + (cycle % 8), data: vec![cycle as u8; 512] }
            } else {
                Request::Read { device, blkid: 64 + (i % 16), blkcnt: 1 }
            };
            service.submit(session, req).expect("submit");
            total += 1;
        }
        // Let the lanes go idle (park) between cycles: the next cycle's
        // submits must unpark them.
        let batch = service.drain_all();
        assert_eq!(batch.len(), 12, "cycle {cycle}: drain_all returns the cycle's completions");
        let stats = service.stats();
        assert_eq!(stats.submitted, total);
        assert_eq!(stats.completed, total, "cycle {cycle}: quiescence means all work is done");
    }
    let taken = service.take_completions(session);
    assert_eq!(taken.len() as u64, total);
}

/// A detached [`dlt_serve::LaneSubmitter`] staging from its own thread while
/// the front-end rings doorbells and the lane thread executes: the fully
/// sharded three-thread pipeline. Every staged request must complete.
#[test]
fn detached_submitter_stages_concurrently_with_doorbells_and_lane_threads() {
    let config = ServeConfig {
        submit_mode: SubmitMode::Ring,
        sq_depth: 8,
        ..quick_config(ExecMode::Threaded)
    };
    let mut service = DriverletService::new(&[Device::Mmc], config).expect("build service");
    let session = service.open_session().unwrap();
    let mut submitter = service.lane_submitter(0).expect("detach producer");
    assert_eq!(submitter.device(), Device::Mmc);
    assert!(
        matches!(service.lane_submitter(0), Err(ServeError::Invalid(_))),
        "the producer endpoint detaches exactly once"
    );
    assert!(
        matches!(
            service.submit(session, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 1 }),
            Err(ServeError::Invalid(_))
        ),
        "inline ring staging reports the detachment as a typed error"
    );

    const N: u64 = 120;
    let producer = thread::spawn(move || {
        let mut staged = 0u64;
        let mut rejected = 0u64;
        while staged < N {
            let req = Request::Read { device: Device::Mmc, blkid: (staged % 32) as u32, blkcnt: 1 };
            match submitter.stage(session, req) {
                Ok(_) => staged += 1,
                Err(ServeError::QueueFull { depth, capacity, .. }) => {
                    assert!(depth <= capacity, "SQ rejection snapshot is coherent");
                    rejected += 1;
                    thread::yield_now();
                }
                Err(other) => panic!("unexpected stage error: {other}"),
            }
        }
        rejected
    });

    // Doorbell loop: keep admitting whatever the producer has staged until
    // all N have completed. `drain_all` flushes the ring too, so the final
    // partial batch is never stranded.
    let mut completed = 0u64;
    let mut spins = 0u64;
    while completed < N {
        service.ring_doorbell().expect("doorbell");
        completed += service.take_completions(session).len() as u64;
        spins += 1;
        assert!(spins < 10_000_000, "doorbell loop must make progress");
        thread::yield_now();
    }
    let rejected_stages = producer.join().unwrap();
    service.drain_all();
    assert_eq!(completed, N, "every staged request completes exactly once");
    let stats = service.stats();
    assert_eq!(stats.submitted, N);
    assert_eq!(stats.completed, N);
    assert_eq!(stats.rejected, rejected_stages, "SQ rejections are the only rejections");
    assert!(stats.doorbells > 0);
}
