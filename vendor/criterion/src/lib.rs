//! Workspace-local minimal stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the `dlt-bench` benches use —
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: each benchmark is warmed up, then timed over
//! `sample_size` samples, and the per-iteration median/mean are printed in
//! criterion's familiar `group/function/parameter` naming scheme.
//!
//! The statistical machinery of real criterion (outlier analysis, regression
//! tracking) is intentionally absent; the driverlets experiments report
//! *virtual-time* numbers through `dlt-bench`'s `report` binary, and these
//! wall-clock numbers only sanity-check the simulation cost.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, &mut f);
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark: a function name plus a parameter rendering.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    /// Number of iterations to run inside one sample.
    iters: u64,
    /// Total elapsed nanoseconds across all timed iterations.
    elapsed_ns: u128,
    /// Total iterations executed while timed.
    total_iters: u64,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.total_iters += self.iters;
    }
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: find an iteration count that makes one sample take
    // roughly a millisecond, so fast closures are measured in bulk.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed_ns: 0, total_iters: 0 };
        f(&mut b);
        if b.total_iters == 0 {
            // The closure never called `iter`; nothing to measure.
            println!("{label:<48} (no timing loop)");
            return;
        }
        if b.elapsed_ns >= 1_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed_ns: 0, total_iters: 0 };
        f(&mut b);
        if b.total_iters > 0 {
            samples_ns.push(b.elapsed_ns as f64 / b.total_iters as f64);
        }
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("benchmark sample was NaN"));
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!("{label:<48} median {:>12} mean {:>12}", fmt_ns(median), fmt_ns(mean));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
