//! Session-churn stress: thousands of open/close cycles through the gate
//! trustlet, interleaved with live traffic on long-lived sessions.
//!
//! The leak surfaces this pins:
//!
//! * **session ids are never reused** — the gate's id counter only moves
//!   forward, so a stale id held by a dead client can never alias a new
//!   session's completion queue;
//! * **completion queues do not leak** — `session_count` returns to the
//!   live baseline after every churn wave;
//! * **the metrics registry does not leak** — closed sessions drop their
//!   per-session series (`MetricsSnapshot::sessions` returns to baseline),
//!   while outcomes for requests whose session died in flight are folded
//!   into the robustness plane's `orphan_outcomes` aggregate instead of
//!   resurrecting a series.

use std::collections::HashSet;

use dlt_obs::ObsConfig;
use dlt_serve::{Device, DriverletService, ExecMode, Request, ServeConfig, SessionId, SubmitMode};

fn churn_config(exec_mode: ExecMode) -> ServeConfig {
    ServeConfig {
        exec_mode,
        obs: ObsConfig::Full,
        block_granularities: vec![1],
        ..ServeConfig::default()
    }
}

fn run_churn(exec_mode: ExecMode, waves: usize, churn_per_wave: usize) {
    let mut service =
        DriverletService::new(&[Device::Mmc], churn_config(exec_mode)).expect("build service");

    // Two long-lived tenants keep real traffic flowing through every wave.
    let residents: Vec<SessionId> =
        (0..2).map(|_| service.open_session().expect("resident session")).collect();
    let baseline_sessions = service.session_count();

    let mut seen = HashSet::new();
    for s in &residents {
        assert!(seen.insert(*s));
    }

    let mut resident_submitted = 0u64;
    let mut resident_completed = 0u64;
    for wave in 0..waves {
        // A burst of ephemeral sessions: open, touch the device, close.
        // Half close *before* reaping (their in-flight completions become
        // orphans), half reap first — both must leave nothing behind.
        let mut ephemerals = Vec::with_capacity(churn_per_wave);
        for i in 0..churn_per_wave {
            let s = service.open_session().expect("churn session");
            assert!(seen.insert(s), "session id {s} was reused — stale handles could alias it");
            service
                .submit(s, Request::Read { device: Device::Mmc, blkid: (i % 32) as u32, blkcnt: 1 })
                .expect("churn read");
            ephemerals.push(s);
        }
        // Interleaved resident traffic in the same wave.
        for (k, r) in residents.iter().enumerate() {
            service
                .submit(
                    *r,
                    Request::Read {
                        device: Device::Mmc,
                        blkid: ((wave + k) % 32) as u32,
                        blkcnt: 1,
                    },
                )
                .expect("resident read");
            resident_submitted += 1;
        }
        for (i, s) in ephemerals.iter().enumerate() {
            if i % 2 == 0 {
                // Close with the read still (possibly) in flight: its
                // completion is an orphan and must not resurrect a series.
                service.close_session(*s);
            } else {
                service.drain_all();
                let reaped = service.take_completions(*s);
                assert!(
                    reaped.iter().all(|c| c.session == *s),
                    "a session must only ever reap its own completions"
                );
                service.close_session(*s);
            }
        }
        service.drain_all();
        for r in &residents {
            resident_completed += service.take_completions(*r).len() as u64;
        }

        // Quiescent point: the gate's table and the registry are back to
        // the live baseline — no CQ leak, no metrics-series leak.
        assert_eq!(service.session_count(), baseline_sessions, "completion queues leaked");
        let snap = service.metrics_snapshot().expect("metrics plane is on");
        assert_eq!(
            snap.sessions.len(),
            baseline_sessions,
            "closed sessions left metrics series behind (wave {wave})"
        );
        assert!(
            snap.sessions.iter().all(|s| residents.contains(&s.session)),
            "only resident sessions may hold a series"
        );
    }

    assert_eq!(resident_completed, resident_submitted, "resident traffic lost completions");
    let opened = seen.len();
    assert_eq!(opened, baseline_sessions + waves * churn_per_wave);
    // Ids are strictly monotone: the largest id equals the number handed
    // out (the gate starts at 1 and never recycles).
    let max_id = seen.iter().copied().max().unwrap_or(0);
    assert_eq!(max_id as usize, opened, "gate session ids must be dense and monotone");

    // Nothing went missing from fleet-wide accounting: outcomes reaped by
    // live sessions, outcomes folded in from retired series, and orphans
    // delivered after a close together cover every lane-side terminal.
    let snap = service.metrics_snapshot().expect("metrics plane is on");
    let accounted = snap.sessions.iter().map(|s| s.completed + s.diverged).sum::<u64>()
        + snap.robustness.orphan_outcomes
        + snap.robustness.retired_outcomes;
    let lane_terminal = snap.lanes.iter().map(|l| l.completed + l.diverged + l.failed).sum::<u64>();
    assert_eq!(accounted, lane_terminal, "an outcome went missing during churn");
}

/// Sequential mode: a thousand-session churn with deterministic
/// interleaving. Every wave must return the service to its baseline.
#[test]
fn sequential_session_churn_leaks_nothing() {
    run_churn(ExecMode::Sequential, 50, 20);
}

/// Threaded mode: the same churn racing a live lane thread — closes land
/// while the worker is mid-batch, so orphan completions genuinely occur.
#[test]
fn threaded_session_churn_leaks_nothing() {
    run_churn(ExecMode::Threaded, 25, 20);
}

/// Ring mode churns through the doorbell path: ephemeral sessions stage
/// into the shared SQ, ring, then die; their staged-but-unreaped work must
/// still be admitted, executed, and retired as orphans.
#[test]
fn ring_session_churn_leaks_nothing() {
    let mut service = DriverletService::new(
        &[Device::Mmc],
        ServeConfig { submit_mode: SubmitMode::Ring, ..churn_config(ExecMode::Sequential) },
    )
    .expect("build service");
    let resident = service.open_session().expect("resident");
    let baseline = service.session_count();
    let mut seen = HashSet::new();
    seen.insert(resident);
    for wave in 0..40 {
        let mut ephemerals = Vec::new();
        for i in 0..10u32 {
            let s = service.open_session().expect("churn session");
            assert!(seen.insert(s), "session id {s} was reused");
            service
                .submit(s, Request::Read { device: Device::Mmc, blkid: i % 16, blkcnt: 1 })
                .expect("stage");
            ephemerals.push(s);
        }
        service.ring_doorbell().expect("doorbell");
        // Close every ephemeral immediately: all their completions orphan.
        for s in ephemerals {
            service.close_session(s);
        }
        service.drain_all();
        service.take_completions(resident);
        assert_eq!(service.session_count(), baseline, "CQ leak in wave {wave}");
        let snap = service.metrics_snapshot().expect("metrics plane is on");
        assert_eq!(snap.sessions.len(), baseline, "series leak in wave {wave}");
    }
    let snap = service.metrics_snapshot().expect("metrics plane is on");
    assert!(snap.robustness.orphan_outcomes > 0, "ring churn must have produced orphans");
}
