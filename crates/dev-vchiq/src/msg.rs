//! MMAL-style message encoding carried over the VCHIQ queue.
//!
//! Real VCHIQ/MMAL messages range from 28 to 306 bytes and come in tens of
//! types (§7.3.3). The model keeps the same shape — a fixed header followed
//! by a type-specific payload, padded to a 64-byte multiple in the slot —
//! while restricting the type population to what the camera path needs.

/// Camera resolutions the record campaign covers (Table 5/6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CameraResolution {
    /// 1280x720.
    R720p,
    /// 1920x1080.
    R1080p,
    /// 2560x1440.
    R1440p,
}

impl CameraResolution {
    /// Encode as the wire word used in PORT_SET_FORMAT.
    pub fn code(self) -> u32 {
        match self {
            CameraResolution::R720p => 720,
            CameraResolution::R1080p => 1080,
            CameraResolution::R1440p => 1440,
        }
    }

    /// Decode from the wire word.
    pub fn from_code(code: u32) -> Option<Self> {
        match code {
            720 => Some(CameraResolution::R720p),
            1080 => Some(CameraResolution::R1080p),
            1440 => Some(CameraResolution::R1440p),
            _ => None,
        }
    }

    /// Pixel dimensions.
    pub fn dims(self) -> (u32, u32) {
        match self {
            CameraResolution::R720p => (1280, 720),
            CameraResolution::R1080p => (1920, 1080),
            CameraResolution::R1440p => (2560, 1440),
        }
    }

    /// Megapixels scaled by 100 (for the cost model).
    pub fn megapixels_x100(self) -> u64 {
        let (w, h) = self.dims();
        u64::from(w) * u64::from(h) / 10_000
    }

    /// The encoded (JPEG) frame size VC4 produces at this resolution.
    ///
    /// Deterministic by design: the device FSM and the frame size depend only
    /// on the configured resolution, never on scene content — the
    /// data-independence prerequisite of §3.1.
    pub fn frame_bytes(self) -> u32 {
        match self {
            CameraResolution::R720p => 311_296,    // 304 KiB
            CameraResolution::R1080p => 622_592,   // 608 KiB
            CameraResolution::R1440p => 1_048_576, // 1 MiB
        }
    }

    /// All supported resolutions.
    pub fn all() -> [CameraResolution; 3] {
        [CameraResolution::R720p, CameraResolution::R1080p, CameraResolution::R1440p]
    }
}

/// Message types carried over the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum MsgType {
    /// CPU -> VC4 connection handshake.
    Connect = 1,
    /// VC4 -> CPU handshake acknowledgement.
    ConnectAck = 2,
    /// Open an MMAL service port (payload: fourcc).
    OpenService = 3,
    /// Service opened (payload: service handle).
    OpenServiceAck = 4,
    /// Create a component (payload: component name).
    ComponentCreate = 5,
    /// Component created (payload: component handle).
    ComponentCreateAck = 6,
    /// Set the capture port format (payload: resolution code).
    PortSetFormat = 7,
    /// Format accepted (payload: expected image size for this format).
    PortSetFormatAck = 8,
    /// Enable the capture port.
    PortEnable = 9,
    /// Port enabled.
    PortEnableAck = 10,
    /// Hand a host buffer to VC4 and trigger a capture
    /// (payload: page-list address, buffer size, expected image size).
    BufferFromHost = 11,
    /// Capture finished; the buffer now holds `img_size` bytes.
    BufferToHost = 12,
    /// Disable the capture port.
    PortDisable = 13,
    /// Port disabled.
    PortDisableAck = 14,
    /// Destroy the component.
    ComponentDestroy = 15,
    /// Component destroyed.
    ComponentDestroyAck = 16,
    /// VC4 signals a protocol error (payload: error code).
    Error = 255,
}

impl MsgType {
    /// Decode from the wire word.
    pub fn from_u32(v: u32) -> Option<MsgType> {
        use MsgType::*;
        Some(match v {
            1 => Connect,
            2 => ConnectAck,
            3 => OpenService,
            4 => OpenServiceAck,
            5 => ComponentCreate,
            6 => ComponentCreateAck,
            7 => PortSetFormat,
            8 => PortSetFormatAck,
            9 => PortEnable,
            10 => PortEnableAck,
            11 => BufferFromHost,
            12 => BufferToHost,
            13 => PortDisable,
            14 => PortDisableAck,
            15 => ComponentDestroy,
            16 => ComponentDestroyAck,
            255 => Error,
            _ => return None,
        })
    }
}

/// Message header size in bytes: type, service handle, payload length.
pub const HEADER_BYTES: usize = 12;
/// Messages are padded to this granularity inside a slot.
pub const MSG_ALIGN: usize = 64;
/// Maximum payload words a message can carry.
pub const MAX_PAYLOAD_WORDS: usize = 72;

/// A decoded VCHIQ/MMAL message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmalMessage {
    /// Message type.
    pub mtype: MsgType,
    /// Service handle (0 before OpenServiceAck).
    pub service: u32,
    /// Payload words.
    pub payload: Vec<u32>,
}

impl MmalMessage {
    /// Construct a message.
    pub fn new(mtype: MsgType, service: u32, payload: Vec<u32>) -> Self {
        MmalMessage { mtype, service, payload }
    }

    /// Encoded length in bytes before slot padding.
    pub fn wire_len(&self) -> usize {
        HEADER_BYTES + self.payload.len() * 4
    }

    /// Encoded length in bytes after padding to [`MSG_ALIGN`].
    pub fn padded_len(&self) -> usize {
        self.wire_len().div_ceil(MSG_ALIGN) * MSG_ALIGN
    }

    /// Encode to wire words (header + payload). The caller writes these words
    /// into the slot area.
    pub fn encode(&self) -> Vec<u32> {
        let mut words = Vec::with_capacity(3 + self.payload.len());
        words.push(self.mtype as u32);
        words.push(self.service);
        words.push((self.payload.len() * 4) as u32);
        words.extend_from_slice(&self.payload);
        words
    }

    /// Decode from wire words.
    pub fn decode(words: &[u32]) -> Option<MmalMessage> {
        if words.len() < 3 {
            return None;
        }
        let mtype = MsgType::from_u32(words[0])?;
        let service = words[1];
        let payload_len = (words[2] as usize) / 4;
        if payload_len > MAX_PAYLOAD_WORDS || words.len() < 3 + payload_len {
            return None;
        }
        Some(MmalMessage { mtype, service, payload: words[3..3 + payload_len].to_vec() })
    }
}

/// Deterministic synthetic JPEG frame produced by the modelled ISP.
///
/// The content carries valid SOI/EOI markers so the paper's "captured images
/// are in the valid JPEG format" validation (§8.2.1) has something real to
/// check, and a frame counter + resolution tag so tests can verify that
/// distinct captures yield distinct images.
pub fn synth_jpeg(resolution: CameraResolution, frame_no: u32) -> Vec<u8> {
    let len = resolution.frame_bytes() as usize;
    let mut out = vec![0u8; len];
    // SOI marker.
    out[0] = 0xff;
    out[1] = 0xd8;
    // APP0 header carrying the frame number and resolution for validation.
    out[2] = 0xff;
    out[3] = 0xe0;
    out[4..8].copy_from_slice(&frame_no.to_le_bytes());
    out[8..12].copy_from_slice(&resolution.code().to_le_bytes());
    // Deterministic pseudo-random body (xorshift seeded by frame + resolution).
    let mut state =
        (u64::from(frame_no) << 32) ^ u64::from(resolution.code()) ^ 0x9e37_79b9_7f4a_7c15;
    let body = &mut out[12..len - 2];
    for chunk in body.chunks_mut(8) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let bytes = state.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
    // Avoid accidental EOI markers in the body would be overkill; just ensure
    // the real EOI terminates the stream.
    out[len - 2] = 0xff;
    out[len - 1] = 0xd9;
    out
}

/// Check that a byte buffer looks like one of our synthetic JPEG frames.
pub fn is_valid_jpeg(data: &[u8]) -> bool {
    data.len() >= 4
        && data[0] == 0xff
        && data[1] == 0xd8
        && data[data.len() - 2] == 0xff
        && data[data.len() - 1] == 0xd9
}

/// Extract the frame number embedded in a synthetic frame.
pub fn frame_number(data: &[u8]) -> Option<u32> {
    if data.len() < 12 || !is_valid_jpeg(data) {
        return None;
    }
    Some(u32::from_le_bytes([data[4], data[5], data[6], data[7]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_codes_round_trip() {
        for r in CameraResolution::all() {
            assert_eq!(CameraResolution::from_code(r.code()), Some(r));
        }
        assert_eq!(CameraResolution::from_code(480), None);
    }

    #[test]
    fn frame_sizes_grow_with_resolution() {
        assert!(CameraResolution::R720p.frame_bytes() < CameraResolution::R1080p.frame_bytes());
        assert!(CameraResolution::R1080p.frame_bytes() < CameraResolution::R1440p.frame_bytes());
        assert!(
            CameraResolution::R720p.megapixels_x100() < CameraResolution::R1440p.megapixels_x100()
        );
    }

    #[test]
    fn message_encode_decode_round_trip() {
        let m = MmalMessage::new(MsgType::BufferFromHost, 7, vec![0x1000, 2 << 20, 311_296]);
        let words = m.encode();
        let back = MmalMessage::decode(&words).unwrap();
        assert_eq!(back, m);
        assert_eq!(m.wire_len(), 12 + 12);
        assert_eq!(m.padded_len(), 64);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MmalMessage::decode(&[]).is_none());
        assert!(MmalMessage::decode(&[999, 0, 0]).is_none());
        assert!(MmalMessage::decode(&[1, 0, 400]).is_none(), "payload longer than provided");
    }

    #[test]
    fn all_message_types_decode() {
        for v in [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 255] {
            assert!(MsgType::from_u32(v).is_some());
        }
        assert!(MsgType::from_u32(42).is_none());
    }

    #[test]
    fn synthetic_jpeg_is_well_formed_and_distinct() {
        let a = synth_jpeg(CameraResolution::R720p, 0);
        let b = synth_jpeg(CameraResolution::R720p, 1);
        assert_eq!(a.len(), CameraResolution::R720p.frame_bytes() as usize);
        assert!(is_valid_jpeg(&a));
        assert!(is_valid_jpeg(&b));
        assert_ne!(a, b, "frames with different numbers must differ");
        assert_eq!(frame_number(&a), Some(0));
        assert_eq!(frame_number(&b), Some(1));
        // Deterministic: the same frame number reproduces bit-for-bit.
        assert_eq!(a, synth_jpeg(CameraResolution::R720p, 0));
    }

    #[test]
    fn invalid_jpeg_is_detected() {
        assert!(!is_valid_jpeg(&[0, 1, 2, 3]));
        let mut good = synth_jpeg(CameraResolution::R720p, 3);
        let n = good.len();
        good[n - 1] = 0;
        assert!(!is_valid_jpeg(&good));
        assert_eq!(frame_number(&good), None);
    }

    #[test]
    fn padded_len_is_a_multiple_of_the_alignment() {
        for payload_words in 0..40 {
            let m = MmalMessage::new(MsgType::Connect, 0, vec![0; payload_words]);
            assert_eq!(m.padded_len() % MSG_ALIGN, 0);
            assert!(m.padded_len() >= m.wire_len());
        }
    }
}
