//! Calibrated virtual-time cost model.
//!
//! Every performance experiment in the paper (Figures 5-7) is reproduced on a
//! deterministic virtual clock. The costs below are calibrated so that the
//! *relative* behaviour of the paper holds: driverlets pay uncached MMIO,
//! synchronous completion and per-template device resets; native drivers
//! enjoy write-behind, IRQ coalescing and transfer scheduling but pay the
//! kernel block-layer and scheduling overheads the paper calls out in §8.3.
//!
//! The absolute values are in the ballpark of a Raspberry Pi 3 class SoC with
//! a class-10 SD card and a USB 2.0 flash drive, but we make no claim of
//! matching the authors' testbed cycle-for-cycle.

use serde::{Deserialize, Serialize};

/// Cost model in nanoseconds of virtual time.
///
/// The model is intentionally a plain data struct: device simulators, gold
/// drivers and the replayer all read the same instance (owned by the
/// [`crate::clock::VirtualClock`]), so experiments can perturb a single knob
/// for ablations (see `crates/bench/benches/ablation.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cached (normal-world driver) MMIO register access.
    pub mmio_access_ns: u64,
    /// Uncached (TEE replayer) MMIO register access. The paper's replayer maps
    /// device memory uncached to guarantee coherence (§6.2), which is slower.
    pub mmio_uncached_ns: u64,
    /// One SMC world switch (entry + exit). Driverlets do *not* pay this per
    /// IO (§8.3.1: "driverlets do not incur world-switch overheads"), but
    /// delegation-based baselines would.
    pub world_switch_ns: u64,
    /// Software overhead of a full GlobalPlatform command invocation on top
    /// of the raw SMC: message marshalling, session lookup and TA
    /// scheduling in OP-TEE. Amacher & Schiavoni measure complete OP-TEE
    /// invocations at tens of microseconds even though the bare world
    /// switch is a few; the per-call serve gate pays this once per submit,
    /// which is exactly what the shared-memory ring path amortises away.
    pub smc_invoke_ns: u64,
    /// One doorbell SMC on the ring submission path: a world switch plus
    /// the gate's fetch of the submission-ring indices. Charged **once per
    /// doorbell batch**, not per request.
    pub ring_doorbell_ns: u64,
    /// The gate trustlet's per-entry cost while draining a rung submission
    /// ring: copy-in of one ring slot plus the admission checks. Charged
    /// per entry inside one doorbell's world switch.
    pub ring_entry_validate_ns: u64,
    /// DRAM copy cost per 32-bit word (PIO data movement).
    pub dram_word_copy_ns: u64,
    /// Fixed cost to set up one DMA transfer (program the engine).
    pub dma_setup_ns: u64,
    /// DMA transfer cost per 4 KiB page moved.
    pub dma_per_page_ns: u64,
    /// Latency for the SD card to execute one command (CMD line round trip).
    pub sd_cmd_ns: u64,
    /// SD card single 512-byte block read latency (media + transfer).
    pub sd_read_block_ns: u64,
    /// SD card single 512-byte block program (write) latency.
    pub sd_write_block_ns: u64,
    /// Extra latency the SD card charges once per multi-block transaction.
    pub sd_transaction_overhead_ns: u64,
    /// USB control transfer (setup/status stages) latency.
    pub usb_control_ns: u64,
    /// USB bulk transfer latency per 512-byte block.
    pub usb_bulk_block_ns: u64,
    /// USB bulk-only-transport per-command overhead (CBW + CSW round trip).
    pub usb_bot_overhead_ns: u64,
    /// Flash translation layer program cost per 4 KiB LBA on the USB stick.
    pub usb_lba_program_ns: u64,
    /// Camera pipeline: one-time component/port initialisation (sensor
    /// power-up, firmware tuner load). Charged by VC4 on component creation.
    pub cam_init_ns: u64,
    /// Camera pipeline: capture-port (re-)arming — sensor mode switch plus
    /// AGC/AWB re-convergence. Charged by VC4 on every port enable; burst
    /// templates that re-arm the port per frame pay it per frame (§8.3.2).
    pub cam_port_setup_ns: u64,
    /// Camera pipeline: sensor exposure + readout per frame.
    pub cam_exposure_ns: u64,
    /// Camera pipeline: ISP/encode cost per megapixel.
    pub cam_isp_per_mp_ns: u64,
    /// VCHIQ message round trip (enqueue + doorbell + parse on VC4).
    pub vchiq_msg_ns: u64,
    /// Interrupt delivery latency (device assert -> CPU observes).
    pub irq_delivery_ns: u64,
    /// Extra latency when the native driver coalesces interrupts: the cost of
    /// *not* coalescing, charged per extra IRQ a driverlet must wait for.
    pub irq_wait_overhead_ns: u64,
    /// Linux block-layer + filesystem + driver-framework overhead charged per
    /// request by the native path (absent in the driverlet path, §8.3.2).
    pub kernel_block_layer_ns: u64,
    /// Native driver request scheduling/merging work per 4 KiB page
    /// (absent in the driverlet path; explains the Fig. 7 large-write win).
    pub native_sched_per_page_ns: u64,
    /// USB-stack transfer scheduling per 4 KiB page on the native path
    /// (§8.3.3 explains the large-write gap with this cost).
    pub usb_sched_per_page_ns: u64,
    /// Cost of a device soft reset (driverlets reset between templates, §5).
    pub soft_reset_ns: u64,
    /// Polling loop delay quantum used by `udelay`-style busy waits.
    pub poll_delay_ns: u64,
    /// TEE template instantiation (constraint check + binding) per event.
    pub replay_event_dispatch_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mmio_access_ns: 120,
            mmio_uncached_ns: 190,
            world_switch_ns: 4_000,
            smc_invoke_ns: 10_000,
            ring_doorbell_ns: 4_500,
            ring_entry_validate_ns: 300,
            dram_word_copy_ns: 12,
            dma_setup_ns: 2_500,
            dma_per_page_ns: 3_200,
            sd_cmd_ns: 42_000,
            sd_read_block_ns: 46_000,
            sd_write_block_ns: 130_000,
            sd_transaction_overhead_ns: 60_000,
            usb_control_ns: 250_000,
            usb_bulk_block_ns: 36_000,
            usb_bot_overhead_ns: 180_000,
            usb_lba_program_ns: 220_000,
            cam_init_ns: 1_750_000_000,
            cam_port_setup_ns: 230_000_000,
            cam_exposure_ns: 70_000_000,
            cam_isp_per_mp_ns: 50_000_000,
            vchiq_msg_ns: 350_000,
            irq_delivery_ns: 8_000,
            irq_wait_overhead_ns: 55_000,
            kernel_block_layer_ns: 220_000,
            native_sched_per_page_ns: 18_000,
            usb_sched_per_page_ns: 55_000,
            soft_reset_ns: 30_000,
            poll_delay_ns: 10_000,
            replay_event_dispatch_ns: 1_200,
        }
    }
}

impl CostModel {
    /// Cost of one MMIO access for the given mapping attribute.
    pub fn mmio(&self, uncached: bool) -> u64 {
        if uncached {
            self.mmio_uncached_ns
        } else {
            self.mmio_access_ns
        }
    }

    /// Total DMA cost for a transfer covering `pages` 4 KiB pages.
    pub fn dma_transfer(&self, pages: u64) -> u64 {
        self.dma_setup_ns + pages * self.dma_per_page_ns
    }

    /// Camera frame cost at a resolution of `megapixels_x100` (megapixels
    /// scaled by 100 to stay in integer arithmetic, e.g. 1080p ≈ 207).
    pub fn cam_frame(&self, megapixels_x100: u64) -> u64 {
        self.cam_exposure_ns + self.cam_isp_per_mp_ns * megapixels_x100 / 100
    }

    /// Scale every cost by `num/den` (used by ablation benches).
    pub fn scaled(&self, num: u64, den: u64) -> Self {
        let s = |v: u64| v.saturating_mul(num) / den.max(1);
        CostModel {
            mmio_access_ns: s(self.mmio_access_ns),
            mmio_uncached_ns: s(self.mmio_uncached_ns),
            world_switch_ns: s(self.world_switch_ns),
            smc_invoke_ns: s(self.smc_invoke_ns),
            ring_doorbell_ns: s(self.ring_doorbell_ns),
            ring_entry_validate_ns: s(self.ring_entry_validate_ns),
            dram_word_copy_ns: s(self.dram_word_copy_ns),
            dma_setup_ns: s(self.dma_setup_ns),
            dma_per_page_ns: s(self.dma_per_page_ns),
            sd_cmd_ns: s(self.sd_cmd_ns),
            sd_read_block_ns: s(self.sd_read_block_ns),
            sd_write_block_ns: s(self.sd_write_block_ns),
            sd_transaction_overhead_ns: s(self.sd_transaction_overhead_ns),
            usb_control_ns: s(self.usb_control_ns),
            usb_bulk_block_ns: s(self.usb_bulk_block_ns),
            usb_bot_overhead_ns: s(self.usb_bot_overhead_ns),
            usb_lba_program_ns: s(self.usb_lba_program_ns),
            cam_init_ns: s(self.cam_init_ns),
            cam_port_setup_ns: s(self.cam_port_setup_ns),
            cam_exposure_ns: s(self.cam_exposure_ns),
            cam_isp_per_mp_ns: s(self.cam_isp_per_mp_ns),
            vchiq_msg_ns: s(self.vchiq_msg_ns),
            irq_delivery_ns: s(self.irq_delivery_ns),
            irq_wait_overhead_ns: s(self.irq_wait_overhead_ns),
            kernel_block_layer_ns: s(self.kernel_block_layer_ns),
            native_sched_per_page_ns: s(self.native_sched_per_page_ns),
            usb_sched_per_page_ns: s(self.usb_sched_per_page_ns),
            soft_reset_ns: s(self.soft_reset_ns),
            poll_delay_ns: s(self.poll_delay_ns),
            replay_event_dispatch_ns: s(self.replay_event_dispatch_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = CostModel::default();
        // Uncached MMIO must be more expensive than cached: this asymmetry is
        // one of the sources of driverlet overhead in §8.3.
        assert!(c.mmio_uncached_ns > c.mmio_access_ns);
        // SD writes are slower than reads on real flash.
        assert!(c.sd_write_block_ns > c.sd_read_block_ns);
        // Camera init dominates single-frame capture (paper §8.3.2: most of
        // the 3.7 s per frame is camera initialisation), and the full
        // component bring-up dwarfs a port re-arm.
        assert!(c.cam_init_ns > c.cam_frame(207));
        assert!(c.cam_init_ns > c.cam_port_setup_ns);
        assert!(c.cam_port_setup_ns > c.cam_exposure_ns);
        // The full GP invoke path costs more software time than the raw
        // switch (Amacher & Schiavoni); a doorbell is one switch plus an
        // index fetch; validating one already-shared ring entry is far
        // cheaper than crossing the world for it.
        assert!(c.smc_invoke_ns > c.world_switch_ns);
        assert!(c.ring_doorbell_ns >= c.world_switch_ns);
        assert!(c.ring_entry_validate_ns < c.world_switch_ns);
    }

    #[test]
    fn dma_cost_is_linear_in_pages() {
        let c = CostModel::default();
        let one = c.dma_transfer(1);
        let four = c.dma_transfer(4);
        assert_eq!(four - one, 3 * c.dma_per_page_ns);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let c = CostModel::default();
        let half = c.scaled(1, 2);
        assert_eq!(half.sd_cmd_ns, c.sd_cmd_ns / 2);
        assert_eq!(half.mmio_access_ns, c.mmio_access_ns / 2);
        let same = c.scaled(7, 7);
        assert_eq!(same, c);
    }

    #[test]
    fn cam_frame_grows_with_resolution() {
        let c = CostModel::default();
        assert!(c.cam_frame(92) < c.cam_frame(207));
        assert!(c.cam_frame(207) < c.cam_frame(368));
    }

    #[test]
    fn serde_round_trip() {
        let c = CostModel::default();
        let json = serde_json::to_string(&c);
        // serde_json is only a dev/test aid here; dlt-hw itself doesn't depend
        // on it, so just verify the Serialize impl compiles via serde's
        // in-memory token check instead when unavailable.
        if let Ok(j) = json {
            let back: CostModel = serde_json::from_str(&j).unwrap();
            assert_eq!(back, c);
        }
    }
}
