//! Device-response fault injection for divergence-robustness testing.
//!
//! The paper's safety argument (§5, §8.2.1) is that the replayer rejects
//! any run that strays from the recorded trace. This module provides the
//! hook that *makes* runs stray, deliberately and precisely: a
//! [`ResponseMutator`] installed on a [`crate::Replayer`] sees every
//! constrained device observation the compiled engine makes — `Read` ops
//! and each `Poll` iteration, register and DMA-word reads alike — and may
//! replace the observed value before the constraint check runs. The
//! replayer's behaviour under mutation is exactly its behaviour under a
//! misbehaving device: soft reset, re-execution, and a typed
//! [`crate::ReplayError::Diverged`] once `max_attempts` is exhausted.
//!
//! [`ConstraintFlipper`] is the standard mutator: pointed at a constraint
//! site (or left free-roaming) it solves for a violating observation with
//! `dlt-template`'s concolic solver *at mutation time*, against the live
//! register file — so symbolic constraints (`Eq(blkcnt << 9)`, capture-
//! relative checks) are falsified with the exact values the replayer would
//! have accepted. The interpreted baseline engine never consults the
//! mutator; fault injection targets the production (compiled) path.

use std::sync::{Arc, Mutex};

use dlt_template::program::{EvalScratch, OpRange, ReplayProgram};
use dlt_template::Violation;

/// Everything a mutator may inspect at one constrained observation.
pub struct MutationCtx<'a> {
    /// The program being replayed.
    pub program: &'a ReplayProgram,
    /// Index of the current op in [`ReplayProgram::ops`].
    pub op_index: usize,
    /// The op's root constraint range (the site).
    pub cons: OpRange,
    /// The value the device actually produced.
    pub observed: u64,
    /// The live register file (parameters and captures bound so far).
    pub regs: &'a [u64],
    /// Bound flags, parallel to `regs`.
    pub bound: &'a [bool],
    /// `Some(i)` when the observation is the `i`-th read of a poll loop,
    /// `None` for a plain `Read` op.
    pub poll_iteration: Option<u64>,
}

/// A hook on the compiled replayer's device-read path.
///
/// `begin_invocation` runs once per invocation, after template selection
/// and before the first attempt; returning `false` leaves every read of
/// that invocation untouched. An engaged mutator is consulted on *every
/// attempt* of the invocation — a mutation that persists across the
/// replayer's soft-reset retries is what turns a transient fault into a
/// typed persistent divergence.
pub trait ResponseMutator: Send {
    /// Decide whether to engage for this invocation of `program`.
    fn begin_invocation(&mut self, program: &ReplayProgram) -> bool;

    /// Optionally replace one constrained observation. Returning `None`
    /// passes the device's real value through.
    fn mutate(&mut self, ctx: &MutationCtx<'_>) -> Option<u64>;
}

/// Where and when a [`ConstraintFlipper`] strikes.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Engage only on programs whose template name contains this substring
    /// (e.g. `"_rd_"` hits every read template). `None` matches all.
    pub template: Option<String>,
    /// Target op index in the selected program. `None` mutates the first
    /// constrained observation the solver can actually falsify.
    pub op_index: Option<usize>,
    /// Target `ConsOp` index (absolute, into `cons_ops`) within the target
    /// op's site — the concolic per-leaf flip. `None` flips the site root.
    pub cons_index: Option<usize>,
    /// Number of matching invocations to let through untouched before
    /// engaging (mid-batch injection).
    pub skip_invocations: u64,
    /// `true` keeps mutating every subsequent matching invocation until the
    /// mutator is cleared (the fault persists through coalescing fallbacks
    /// and retries); `false` engages exactly one invocation.
    pub sticky: bool,
}

/// What a [`ConstraintFlipper`] actually did, shared with the test harness
/// through an `Arc<Mutex<..>>` so outcomes survive the replayer owning the
/// mutator box.
#[derive(Debug, Clone, Default)]
pub struct FlipOutcome {
    /// Invocations the flipper engaged on.
    pub engaged_invocations: u64,
    /// Observations it replaced.
    pub mutated_reads: u64,
    /// Op index of the last mutation.
    pub last_op: Option<usize>,
    /// Value it last injected.
    pub last_value: Option<u64>,
    /// `true` when the last mutation only flipped a shadowed leaf (the site
    /// root stayed satisfied, so the replay should still succeed).
    pub last_shadowed: bool,
    /// Engaged observations the solver found unfalsifiable.
    pub unsolved: u64,
}

/// A [`ResponseMutator`] that falsifies one constraint with solver-derived
/// values (see [`FaultPlan`] for targeting).
pub struct ConstraintFlipper {
    plan: FaultPlan,
    outcome: Arc<Mutex<FlipOutcome>>,
    scratch: EvalScratch,
    skipped: u64,
    fired: bool,
    engaged: bool,
}

impl ConstraintFlipper {
    /// Build a flipper and the shared outcome handle to observe it by.
    pub fn new(plan: FaultPlan) -> (Self, Arc<Mutex<FlipOutcome>>) {
        let outcome = Arc::new(Mutex::new(FlipOutcome::default()));
        let flipper = ConstraintFlipper {
            plan,
            outcome: outcome.clone(),
            scratch: EvalScratch::default(),
            skipped: 0,
            fired: false,
            engaged: false,
        };
        (flipper, outcome)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlipOutcome> {
        // A panicking replay attempt is itself a test failure; the outcome
        // counters stay meaningful either way.
        self.outcome.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl ResponseMutator for ConstraintFlipper {
    fn begin_invocation(&mut self, program: &ReplayProgram) -> bool {
        self.engaged = false;
        if let Some(t) = &self.plan.template {
            if !program.name.contains(t.as_str()) {
                return false;
            }
        }
        if self.skipped < self.plan.skip_invocations {
            self.skipped += 1;
            return false;
        }
        if !self.plan.sticky && self.fired {
            return false;
        }
        self.engaged = true;
        self.fired = true;
        self.lock().engaged_invocations += 1;
        true
    }

    fn mutate(&mut self, ctx: &MutationCtx<'_>) -> Option<u64> {
        if !self.engaged {
            return None;
        }
        match self.plan.op_index {
            Some(op) if op != ctx.op_index => return None,
            _ => {}
        }
        let root = (ctx.cons.start + ctx.cons.len - 1) as usize;
        let target = self.plan.cons_index.unwrap_or(root);
        if !ctx.cons.bounds().contains(&target) {
            return None;
        }
        let sol =
            ctx.program.solve_violation(ctx.cons, target, ctx.regs, ctx.bound, &mut self.scratch);
        match sol {
            Violation::Violates { value } | Violation::Shadowed { value } => {
                let mut o = self.lock();
                o.mutated_reads += 1;
                o.last_op = Some(ctx.op_index);
                o.last_value = Some(value);
                o.last_shadowed = matches!(sol, Violation::Shadowed { .. });
                Some(value)
            }
            Violation::Unfalsifiable => {
                // Free-roaming plans move on to the next observation; a
                // pinned op that cannot be falsified is recorded.
                if self.plan.op_index.is_some() || self.plan.cons_index.is_some() {
                    self.lock().unsolved += 1;
                }
                None
            }
        }
    }
}
