//! System DMA engine (one channel), control-block chained.
//!
//! The full MMC driver builds the Figure-4 descriptor topology in DMA memory:
//! one control block per 4 KiB data page, chained through the `NEXTCONBK`
//! field, with the head address written to `CONBLK_AD` and the channel kicked
//! through `CS.ACTIVE`. The engine walks the chain, moving bytes between
//! physical memory and the SDHOST data FIFO.

use dlt_hw::device::{MmioDevice, RegBank};
use dlt_hw::irq::lines;
use dlt_hw::{CostModel, IrqController, PhysMem, Shared};

use crate::fifo::FifoLink;
use crate::regs::{dmacb, dmacs, dmareg, dmati};
use crate::{DMA_BASE, DMA_LEN, SDHOST_DATA_BUS_ADDR};

/// One decoded control block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlBlock {
    /// Transfer information flags.
    pub ti: u32,
    /// Source physical address.
    pub source: u32,
    /// Destination physical address.
    pub dest: u32,
    /// Length in bytes.
    pub len: u32,
    /// Next control block physical address (0 terminates).
    pub next: u32,
}

impl ControlBlock {
    /// Decode a control block from physical memory.
    pub fn load(mem: &PhysMem, addr: u64) -> Option<ControlBlock> {
        Some(ControlBlock {
            ti: mem.read32(addr + dmacb::TI).ok()?,
            source: mem.read32(addr + dmacb::SOURCE_AD).ok()?,
            dest: mem.read32(addr + dmacb::DEST_AD).ok()?,
            len: mem.read32(addr + dmacb::TXFR_LEN).ok()?,
            next: mem.read32(addr + dmacb::NEXTCONBK).ok()?,
        })
    }
}

/// The DMA engine device model (a single channel, which is all the MMC
/// record campaign reserves — "the 15-th DMA channel", §7.1.2).
pub struct DmaEngine {
    regs: RegBank,
    fifo: Shared<FifoLink>,
    mem: Shared<PhysMem>,
    irqs: Shared<IrqController>,
    cost: CostModel,
    /// Completion deadline of the in-flight chain walk.
    busy_until_ns: Option<u64>,
    /// Whether the chain still has data waiting on the FIFO (read path where
    /// the card has not produced data yet).
    pending_kick_ns: Option<u64>,
    /// Cached pre-flight FIFO demand of the pending chain. While a read
    /// chain waits for the card to fill the FIFO, the engine is ticked every
    /// delay quantum; re-walking the control blocks through locked memory on
    /// each tick dominated the replay hot path. Any register write or reset
    /// invalidates the cache.
    preflight_need: Option<u64>,
    /// Reusable transfer buffer (FIFO <-> memory staging).
    xfer: Vec<u8>,
    chains_executed: u64,
    bytes_transferred: u64,
}

impl DmaEngine {
    /// Create the engine.
    pub fn new(
        fifo: Shared<FifoLink>,
        mem: Shared<PhysMem>,
        irqs: Shared<IrqController>,
        cost: CostModel,
    ) -> Self {
        let mut regs = RegBank::new();
        for (off, _) in dmareg::DMA_REGISTERS {
            regs.define(*off, 0);
        }
        DmaEngine {
            regs,
            fifo,
            mem,
            irqs,
            cost,
            busy_until_ns: None,
            pending_kick_ns: None,
            preflight_need: None,
            xfer: Vec::new(),
            chains_executed: 0,
            bytes_transferred: 0,
        }
    }

    /// Number of control-block chains executed.
    pub fn chains_executed(&self) -> u64 {
        self.chains_executed
    }

    /// Total bytes moved by the engine.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    fn is_fifo_addr(addr: u32) -> bool {
        u64::from(addr) == SDHOST_DATA_BUS_ADDR
    }

    /// Attempt to execute the whole chain. Returns `false` if the chain needs
    /// FIFO data that is not available yet (the card is still reading media),
    /// in which case the walk is retried on a later tick.
    fn try_run_chain(&mut self, now_ns: u64) -> bool {
        let head = u64::from(self.regs.get(dmareg::CONBLK_AD));
        if head == 0 {
            self.regs.set_bits(dmareg::DEBUG, 1); // "read error" style flag
            self.finish(now_ns, false);
            return true;
        }

        // Pre-flight: if any CB pulls from the FIFO, the FIFO must be ready
        // and contain enough bytes for the whole chain. The walked demand is
        // cached as a *negative* gate across retry ticks (any register write
        // or reset invalidates it): while the FIFO is still short of the
        // cached demand the engine skips the locked memory walk entirely —
        // that walk per tick dominated the replay hot path. Once the gate
        // passes, the demand is re-walked fresh so software that rewrote the
        // control blocks in place is still honoured before any side effect.
        if let Some(cached) = self.preflight_need {
            let fifo = self.fifo.lock();
            if cached > 0 && (!fifo.data_ready(now_ns) || (fifo.level() as u64) < cached) {
                return false;
            }
        }
        let need_from_fifo = {
            let mem = self.mem.lock();
            let mut addr = head;
            let mut need: u64 = 0;
            let mut hops = 0;
            while addr != 0 && hops < 4096 {
                let Some(cb) = ControlBlock::load(&mem, addr) else {
                    drop(mem);
                    self.regs.set_bits(dmareg::DEBUG, 1);
                    self.finish(now_ns, false);
                    return true;
                };
                if Self::is_fifo_addr(cb.source) {
                    need += u64::from(cb.len);
                }
                addr = u64::from(cb.next);
                hops += 1;
            }
            need
        };
        if need_from_fifo > 0 {
            let fifo = self.fifo.lock();
            if !fifo.data_ready(now_ns) || (fifo.level() as u64) < need_from_fifo {
                self.preflight_need = Some(need_from_fifo);
                return false;
            }
        }
        self.preflight_need = None;

        // Execute the chain.
        let mut addr = head;
        let mut total: u64 = 0;
        let mut hops = 0;
        let mut want_irq = false;
        while addr != 0 && hops < 4096 {
            let cb = {
                let mem = self.mem.lock();
                ControlBlock::load(&mem, addr)
            };
            let Some(cb) = cb else { break };
            self.regs.set(dmareg::TI, cb.ti);
            self.regs.set(dmareg::SOURCE_AD, cb.source);
            self.regs.set(dmareg::DEST_AD, cb.dest);
            self.regs.set(dmareg::TXFR_LEN, cb.len);
            self.regs.set(dmareg::NEXTCONBK, cb.next);
            want_irq |= cb.ti & dmati::INTEN != 0;

            let len = cb.len as usize;
            if self.xfer.len() < len {
                self.xfer.resize(len, 0);
            }
            match (Self::is_fifo_addr(cb.source), Self::is_fifo_addr(cb.dest)) {
                (true, false) => {
                    // Peripheral -> memory (read path), staged through the
                    // reusable transfer buffer.
                    let taken = self.fifo.lock().pop_into(&mut self.xfer[..len]);
                    let _ = self.mem.lock().write_bytes(u64::from(cb.dest), &self.xfer[..taken]);
                }
                (false, true) => {
                    // Memory -> peripheral (write path). A failed source
                    // read yields zeros, like the fresh buffer it replaced.
                    if self
                        .mem
                        .lock()
                        .read_bytes(u64::from(cb.source), &mut self.xfer[..len])
                        .is_err()
                    {
                        self.xfer[..len].fill(0);
                    }
                    self.fifo.lock().push_bytes(&self.xfer[..len]);
                }
                (false, false) => {
                    // Memory -> memory copy (unused by the MMC path but
                    // architecturally valid).
                    if self
                        .mem
                        .lock()
                        .read_bytes(u64::from(cb.source), &mut self.xfer[..len])
                        .is_err()
                    {
                        self.xfer[..len].fill(0);
                    }
                    let _ = self.mem.lock().write_bytes(u64::from(cb.dest), &self.xfer[..len]);
                }
                (true, true) => {
                    self.regs.set_bits(dmareg::DEBUG, 2);
                }
            }
            total += u64::from(cb.len);
            addr = u64::from(cb.next);
            hops += 1;
        }

        self.bytes_transferred += total;
        self.chains_executed += 1;
        let pages = total.div_ceil(4096).max(1);
        let done_ns = now_ns + self.cost.dma_transfer(pages);
        self.busy_until_ns = Some(done_ns);
        if want_irq {
            self.irqs.lock().assert_at(lines::DMA, done_ns);
        }
        true
    }

    fn finish(&mut self, _now_ns: u64, ok: bool) {
        let mut cs = self.regs.get(dmareg::CS);
        cs &= !dmacs::ACTIVE;
        cs |= dmacs::END | dmacs::INT;
        if !ok {
            cs |= dmacs::ERROR;
        }
        self.regs.set(dmareg::CS, cs);
    }

    fn progress(&mut self, now_ns: u64) {
        if let Some(kick) = self.pending_kick_ns {
            if now_ns >= kick && self.try_run_chain(now_ns) {
                self.pending_kick_ns = None;
            }
        }
        if let Some(done) = self.busy_until_ns {
            if now_ns >= done {
                self.busy_until_ns = None;
                self.finish(now_ns, true);
            }
        }
    }
}

impl MmioDevice for DmaEngine {
    fn name(&self) -> &'static str {
        "dma"
    }

    fn mmio_base(&self) -> u64 {
        DMA_BASE
    }

    fn mmio_len(&self) -> u64 {
        DMA_LEN
    }

    fn read32(&mut self, offset: u64, now_ns: u64) -> u32 {
        self.progress(now_ns);
        self.regs.get(offset)
    }

    fn write32(&mut self, offset: u64, val: u32, now_ns: u64) {
        self.progress(now_ns);
        // Software may be rewriting the chain: drop the pre-flight cache.
        self.preflight_need = None;
        match offset {
            dmareg::CS => {
                if val & dmacs::RESET != 0 {
                    self.soft_reset(now_ns);
                    return;
                }
                let mut cs = self.regs.get(dmareg::CS);
                // Write-1-to-clear for END / INT.
                cs &= !(val & (dmacs::END | dmacs::INT));
                if val & dmacs::ABORT != 0 {
                    self.busy_until_ns = None;
                    self.pending_kick_ns = None;
                    cs &= !dmacs::ACTIVE;
                }
                if val & dmacs::ACTIVE != 0 {
                    cs |= dmacs::ACTIVE;
                    self.regs.set(dmareg::CS, cs);
                    self.pending_kick_ns = Some(now_ns);
                    self.progress(now_ns);
                    return;
                }
                self.regs.set(dmareg::CS, cs);
            }
            _ => self.regs.set(offset, val),
        }
        self.progress(now_ns);
    }

    fn tick(&mut self, now_ns: u64) {
        self.progress(now_ns);
    }

    fn soft_reset(&mut self, _now_ns: u64) {
        self.regs.reset();
        self.busy_until_ns = None;
        self.pending_kick_ns = None;
        self.preflight_need = None;
    }

    fn irq_line(&self) -> Option<u32> {
        Some(lines::DMA)
    }

    fn register_map(&self) -> Vec<(u64, &'static str)> {
        dmareg::DMA_REGISTERS.iter().map(|(o, n)| (*o, *n)).collect()
    }

    fn is_idle(&self) -> bool {
        self.busy_until_ns.is_none() && self.pending_kick_ns.is_none()
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        // A pending read chain becomes runnable once the card's FIFO data is
        // valid; a running chain completes at its transfer deadline.
        let kick = self.pending_kick_ns.map(|_| self.fifo.lock().ready_at());
        match (self.busy_until_ns, kick) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoDir;
    use dlt_hw::shared;

    fn fixture() -> (DmaEngine, Shared<FifoLink>, Shared<PhysMem>, Shared<IrqController>) {
        let fifo = shared(FifoLink::new());
        let mem = shared(PhysMem::new(0, 1 << 20));
        let irqs = shared(IrqController::new());
        let dma = DmaEngine::new(fifo.clone(), mem.clone(), irqs.clone(), CostModel::default());
        (dma, fifo, mem, irqs)
    }

    fn write_cb(mem: &Shared<PhysMem>, addr: u64, cb: &ControlBlock) {
        let mut m = mem.lock();
        m.write32(addr + dmacb::TI, cb.ti).unwrap();
        m.write32(addr + dmacb::SOURCE_AD, cb.source).unwrap();
        m.write32(addr + dmacb::DEST_AD, cb.dest).unwrap();
        m.write32(addr + dmacb::TXFR_LEN, cb.len).unwrap();
        m.write32(addr + dmacb::STRIDE, 0).unwrap();
        m.write32(addr + dmacb::NEXTCONBK, cb.next).unwrap();
    }

    #[test]
    fn memory_to_memory_copy() {
        let (mut dma, _f, mem, _i) = fixture();
        mem.lock().write_bytes(0x2000, &[7u8; 64]).unwrap();
        write_cb(
            &mem,
            0x1000,
            &ControlBlock { ti: dmati::INTEN, source: 0x2000, dest: 0x3000, len: 64, next: 0 },
        );
        dma.write32(dmareg::CONBLK_AD, 0x1000, 0);
        dma.write32(dmareg::CS, dmacs::ACTIVE, 0);
        dma.tick(10_000_000);
        let mut out = [0u8; 64];
        mem.lock().read_bytes(0x3000, &mut out).unwrap();
        assert_eq!(out, [7u8; 64]);
        assert!(dma.read32(dmareg::CS, 10_000_000) & dmacs::END != 0);
        assert_eq!(dma.chains_executed(), 1);
    }

    #[test]
    fn fifo_to_memory_waits_for_data_readiness() {
        let (mut dma, fifo, mem, _i) = fixture();
        // Card data appears at t=1ms.
        fifo.lock().begin(FifoDir::CardToHost, 1_000_000);
        fifo.lock().push_bytes(&[0xcd; 512]);
        write_cb(
            &mem,
            0x1000,
            &ControlBlock {
                ti: dmati::INTEN | dmati::SRC_DREQ,
                source: SDHOST_DATA_BUS_ADDR as u32,
                dest: 0x4000,
                len: 512,
                next: 0,
            },
        );
        dma.write32(dmareg::CONBLK_AD, 0x1000, 0);
        dma.write32(dmareg::CS, dmacs::ACTIVE, 0);
        // Before the data is ready nothing moves.
        dma.tick(500_000);
        assert_eq!(mem.lock().read8(0x4000).unwrap(), 0);
        assert!(dma.read32(dmareg::CS, 500_000) & dmacs::END == 0);
        // After readiness the chain runs.
        dma.tick(1_100_000);
        dma.tick(20_000_000);
        assert_eq!(mem.lock().read8(0x4000).unwrap(), 0xcd);
        assert!(dma.read32(dmareg::CS, 20_000_000) & dmacs::END != 0);
    }

    #[test]
    fn chained_blocks_all_execute_and_raise_irq() {
        let (mut dma, fifo, mem, irqs) = fixture();
        fifo.lock().begin(FifoDir::HostToCard, 0);
        mem.lock().write_bytes(0x8000, &[1u8; 4096]).unwrap();
        mem.lock().write_bytes(0x9000, &[2u8; 4096]).unwrap();
        write_cb(
            &mem,
            0x1000,
            &ControlBlock {
                ti: 0,
                source: 0x8000,
                dest: SDHOST_DATA_BUS_ADDR as u32,
                len: 4096,
                next: 0x1020,
            },
        );
        write_cb(
            &mem,
            0x1020,
            &ControlBlock {
                ti: dmati::INTEN,
                source: 0x9000,
                dest: SDHOST_DATA_BUS_ADDR as u32,
                len: 4096,
                next: 0,
            },
        );
        dma.write32(dmareg::CONBLK_AD, 0x1000, 0);
        dma.write32(dmareg::CS, dmacs::ACTIVE, 0);
        dma.tick(50_000_000);
        assert_eq!(fifo.lock().level(), 8192);
        assert_eq!(dma.bytes_transferred(), 8192);
        assert!(irqs.lock().assert_count() > 0);
    }

    #[test]
    fn abort_stops_a_pending_chain() {
        let (mut dma, fifo, mem, _i) = fixture();
        fifo.lock().begin(FifoDir::CardToHost, u64::MAX); // never ready
        write_cb(
            &mem,
            0x1000,
            &ControlBlock {
                ti: 0,
                source: SDHOST_DATA_BUS_ADDR as u32,
                dest: 0x4000,
                len: 512,
                next: 0,
            },
        );
        dma.write32(dmareg::CONBLK_AD, 0x1000, 0);
        dma.write32(dmareg::CS, dmacs::ACTIVE, 0);
        assert!(!dma.is_idle());
        dma.write32(dmareg::CS, dmacs::ABORT, 10);
        assert!(dma.is_idle());
        assert!(dma.read32(dmareg::CS, 10) & dmacs::ACTIVE == 0);
    }

    #[test]
    fn null_head_is_an_error() {
        let (mut dma, _f, _m, _i) = fixture();
        dma.write32(dmareg::CONBLK_AD, 0, 0);
        dma.write32(dmareg::CS, dmacs::ACTIVE, 0);
        dma.tick(1_000);
        assert!(dma.read32(dmareg::DEBUG, 1_000) & 1 != 0);
        assert!(dma.read32(dmareg::CS, 1_000) & dmacs::ERROR != 0);
    }

    #[test]
    fn cs_end_and_int_are_write_one_to_clear() {
        let (mut dma, _f, mem, _i) = fixture();
        write_cb(
            &mem,
            0x1000,
            &ControlBlock { ti: 0, source: 0x2000, dest: 0x3000, len: 16, next: 0 },
        );
        dma.write32(dmareg::CONBLK_AD, 0x1000, 0);
        dma.write32(dmareg::CS, dmacs::ACTIVE, 0);
        dma.tick(10_000_000);
        assert!(dma.read32(dmareg::CS, 10_000_000) & (dmacs::END | dmacs::INT) != 0);
        dma.write32(dmareg::CS, dmacs::END | dmacs::INT, 10_000_000);
        assert_eq!(dma.read32(dmareg::CS, 10_000_000) & (dmacs::END | dmacs::INT), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let (mut dma, _f, _m, _i) = fixture();
        dma.write32(dmareg::CONBLK_AD, 0x1234, 0);
        dma.write32(dmareg::CS, dmacs::RESET, 0);
        assert_eq!(dma.read32(dmareg::CONBLK_AD, 0), 0);
        assert!(dma.is_idle());
    }
}
