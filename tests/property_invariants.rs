//! Property-based tests of the core invariants (proptest).

use std::collections::HashMap;

use dlt_template::{Constraint, EvalEnv, SymExpr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symbolic expressions survive a JSON round trip.
    #[test]
    fn expr_serde_round_trip(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64, shift in 0u32..24) {
        let expr = SymExpr::Param("p".into()).shl(shift).or_const(a).plus(b);
        let json = serde_json::to_string(&expr).unwrap();
        let back: SymExpr = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, expr);
    }

    /// Evaluation of the Table-4 style expressions matches direct arithmetic.
    #[test]
    fn expr_eval_matches_reference(p in 0u64..1u64<<32, mask in 0u64..u32::MAX as u64, add in 0u64..1u64<<20) {
        let env = EvalEnv::default().param("x", p);
        let masked = SymExpr::Param("x".into()).masked(mask);
        prop_assert_eq!(masked.eval(&env), Some(p & mask));
        let affine = SymExpr::Param("x".into()).shl(9).plus(add);
        prop_assert_eq!(affine.eval(&env), Some((p << 9).wrapping_add(add)));
    }

    /// Constraint unions are upper bounds: anything accepted by either input
    /// constraint is accepted by the union (coverage only ever grows during a
    /// record campaign).
    #[test]
    fn constraint_union_is_an_upper_bound(a in 0u64..1000, b in 0u64..1000, probe in 0u64..1000) {
        let ca = Constraint::eq_const(a);
        let cb = Constraint::InRange { min: b, max: b + 100 };
        let u = ca.union(&cb);
        let env = EvalEnv::default();
        if ca.check(probe, &env) || cb.check(probe, &env) {
            prop_assert!(u.check(probe, &env), "union rejected a value a member accepted");
        }
    }

    /// The bump DMA allocator never hands out overlapping regions and always
    /// respects its bounds.
    #[test]
    fn dma_allocator_never_overlaps(sizes in proptest::collection::vec(1usize..5000, 1..40)) {
        let region = dlt_hw::DmaRegion::new(0x10_0000, 1 << 20);
        let mut alloc = dlt_hw::mem::BumpDmaAllocator::new(region);
        let mut got: Vec<dlt_hw::DmaRegion> = Vec::new();
        for s in sizes {
            if let Ok(r) = alloc.alloc(s) {
                prop_assert!(r.base >= region.base && r.end() <= region.end());
                for prev in &got {
                    let overlap = r.base < prev.end() && prev.base < r.end();
                    prop_assert!(!overlap, "allocations overlap");
                }
                got.push(r);
            }
        }
    }

    /// Physical memory round-trips arbitrary byte strings at arbitrary
    /// in-bounds offsets.
    #[test]
    fn phys_mem_round_trip(offset in 0u64..3000, data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut mem = dlt_hw::PhysMem::new(0, 4096);
        if (offset as usize) + data.len() <= 4096 {
            mem.write_bytes(offset, &data).unwrap();
            let mut out = vec![0u8; data.len()];
            mem.read_bytes(offset, &mut out).unwrap();
            prop_assert_eq!(out, data);
        }
    }

    /// The SD card model stores and returns arbitrary block runs faithfully
    /// (the block-device contract every layer above relies on).
    #[test]
    fn sd_card_block_store_is_faithful(
        lba in 0u64..1000,
        blocks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 512..=512), 1..4)
    ) {
        let mut card = dlt_dev_mmc::SdCard::formatted(2048);
        card.fast_init();
        let flat: Vec<u8> = blocks.concat();
        card.execute(dlt_dev_mmc::card::cmd::WRITE_MULTIPLE, lba as u32);
        prop_assert!(card.write_blocks(lba, &flat));
        card.execute(dlt_dev_mmc::card::cmd::READ_MULTIPLE, lba as u32);
        let back = card.read_blocks(lba, blocks.len() as u32).unwrap();
        prop_assert_eq!(back, flat);
    }

    /// Driverlet signatures detect arbitrary single-byte tampering of the
    /// template contents.
    #[test]
    fn signature_detects_tampering(tweak in 0u64..1u64<<32) {
        let mut d = dlt_template::Driverlet::new("sdhost", "replay_mmc", vec![]);
        d.sign(b"key");
        prop_assert!(d.verify(b"key").is_ok());
        d.entry = format!("replay_mmc_{tweak}");
        prop_assert!(d.verify(b"key").is_err());
    }
}

/// Template selection is a function: for any in-coverage argument set, at
/// most one recorded MMC template matches it (the §5 guarantee that no two
/// templates can be selected simultaneously).
#[test]
fn template_selection_is_unambiguous() {
    let driverlet =
        dlt_recorder::campaign::record_mmc_driverlet_subset(&[1, 8]).expect("record campaign");
    let mut cases = 0;
    for rw in [0x1u64, 0x10] {
        for blkcnt in [1u64, 8] {
            for blkid in [0u64, 999, 1_000_000] {
                let args: HashMap<String, u64> = [
                    ("rw".to_string(), rw),
                    ("blkcnt".to_string(), blkcnt),
                    ("blkid".to_string(), blkid),
                    ("flag".to_string(), 0),
                ]
                .into_iter()
                .collect();
                let matches: Vec<_> =
                    driverlet.templates.iter().filter(|t| t.matches(&args)).collect();
                assert_eq!(matches.len(), 1, "args {args:?} matched {} templates", matches.len());
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 12);
}
