//! Workspace-local minimal `#[derive(Serialize, Deserialize)]`.
//!
//! The offline container has neither the real `serde_derive` nor `syn`/
//! `quote`, so this macro parses the derive input `TokenStream` directly.
//! It supports exactly the type shapes this workspace derives on:
//!
//! - structs with named fields (no generics),
//! - enums whose variants are unit, newtype/tuple (positional) or
//!   struct-like (named fields), again without generics.
//!
//! Generated code targets the sibling `serde` stand-in crate: structs encode
//! as objects, enums use serde's externally-tagged representation (a bare
//! string for unit variants, a single-key object otherwise), so the JSON
//! written by the `serde_json` stand-in matches what the real crates would
//! produce for these shapes.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Variants of an enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    /// Positional fields (newtype when arity is 1).
    Tuple(usize),
    /// Named fields.
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Skip the attribute body `[...]`.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip a `pub(...)` restriction if present.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(iter.next());
                let body = expect_brace(iter.next(), &name);
                return Item { name, kind: Kind::Struct(parse_named_fields(body)) };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(iter.next());
                let body = expect_brace(iter.next(), &name);
                return Item { name, kind: Kind::Enum(parse_variants(body)) };
            }
            Some(other) => panic!("serde_derive: unexpected token `{other}` before item keyword"),
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

fn expect_ident(tok: Option<TokenTree>) -> String {
    match tok {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier, got {other:?}"),
    }
}

fn expect_brace(tok: Option<TokenTree>, name: &str) -> TokenStream {
    match tok {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde_derive: `{name}` must be a braced struct or enum without generics \
             (tuple/unit structs and generic types are not supported by the offline stand-in)"
        ),
    }
}

/// Parse `attr* pub? name : Type ,` sequences, returning the field names.
/// Commas inside angle brackets (`HashMap<String, u64>`) do not split fields;
/// bracketed and parenthesised groups are opaque `TokenTree::Group`s already.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip leading attributes.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
                expect_ident(iter.next())
            }
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, got `{other}`"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

/// Parse `attr* Name ( ... )? { ... }? ,` sequences, returning the variants.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, got `{other}`"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level(g.stream());
                iter.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // Skip discriminant-free separator comma, if any.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

/// Count comma-separated entries at angle-bracket depth zero.
fn count_top_level(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tok in body {
        saw_any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut push = String::new();
            for f in fields {
                push.push_str(&format!(
                    "obj.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            format!(
                "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{push}::serde::Value::Obj(obj)"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Obj(vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::serialize(f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Obj(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Arr(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Obj(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Obj(vec![{}]))]),\n",
                            fields.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::field(obj, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let obj = ::serde::expect_obj(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n", v.name))
                .collect();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let items = ::serde::expect_arr(inner, {n}, \"{name}::{vname}\")?;\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                     ::serde::field(obj, \"{f}\", \"{name}::{vname}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let obj = ::serde::expect_obj(inner, \"{name}::{vname}\")?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let has_data = variants.iter().any(|v| !matches!(v.shape, Shape::Unit));
            let obj_arm = if has_data {
                format!(
                    "::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                     let (tag, inner) = &fields[0];\n\
                     match tag.as_str() {{\n{data_arms}\
                     other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(other, \"{name}\")),\n}}\n}}\n"
                )
            } else {
                String::new()
            };
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n\
                 {obj_arm}\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum\", \"{name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
