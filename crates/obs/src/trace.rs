//! Plane 1: the flight recorder.
//!
//! Every instrumented thread (the service front-end, each lane worker, the
//! TEE kernel, the replayer) owns a [`TraceHandle`] — the producing end of
//! a private [`crate::spsc`] ring of fixed-size [`TraceEvent`]s. Emitting
//! is one `Instant::elapsed` read plus one lock-free push; when the ring is
//! full the event is **dropped and counted**, never blocked on and never
//! panicked over, because tracing must not perturb the lane it observes.
//!
//! The [`Recorder`] is the collecting side: it keeps the consumer half of
//! every registered ring, drains them into a bounded flight buffer on
//! demand, and exports either Chrome `trace_event` JSON
//! ([`chrome_trace_json`], one timeline track per registered thread) or
//! per-request spans ([`reconstruct_spans`], submit → admit → queue →
//! replay → complete with per-phase durations).
//!
//! ## Ordering argument
//!
//! Each ring is written by exactly one thread, so events within a track are
//! in that thread's program order (the SPSC push publishes with `Release`,
//! the drain reads with `Acquire`). *Across* tracks the merged stream is
//! ordered by the stamps instead: the virtual clock is causally monotone
//! along each request's lifecycle (admission, dispatch and completion all
//! read-then-advance the same per-lane `ClockCell`-derived timeline), so
//! span reconstruction sorts by virtual time and the fully-ordered
//! submit ≤ admit ≤ dispatch ≤ complete invariant is checkable per request
//! regardless of drain interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::spsc::{self, SpscConsumer, SpscProducer};

/// What happened. The discriminant is part of the binary event layout, so
/// the variants are explicitly numbered and append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A request arrived at the service front-end (pre-admission).
    Submitted = 0,
    /// The lane accepted the request into its submission queue; `arg` is
    /// the queue depth after admission.
    Admitted = 1,
    /// A doorbell SMC flushed staged ring entries; `arg` is the batch size.
    Doorbell = 2,
    /// The lane worker pulled the request (or the batch containing it) for
    /// execution.
    Dispatched = 3,
    /// The replayer selected a template and began replaying; `arg` is the
    /// attempt ordinal (1-based).
    ReplayStart = 4,
    /// The replay finished; `arg` is the attempts consumed.
    ReplayEnd = 5,
    /// The request completed successfully.
    Completed = 6,
    /// The request completed with a divergence.
    Diverged = 7,
    /// Secure-world entry; `arg` is the [`SmcKind`] discriminant.
    SmcEnter = 8,
    /// Secure-world exit; `arg` is the [`SmcKind`] discriminant.
    SmcExit = 9,
    /// The scheduler plugged (held) a lane anticipating a merge.
    Plug = 10,
    /// The scheduler released a hold early; `arg` is 1 if the hold expired
    /// without a merge.
    Unplug = 11,
    /// The lane worker parked (no admissions, no dispatchable work).
    Park = 12,
    /// The lane worker was woken.
    Unpark = 13,
    /// A fault was injected into the lane's device model.
    FaultInject = 14,
    /// The injected fault was cleared.
    FaultClear = 15,
    /// Admission QoS rejected a submit; `arg` is the advised
    /// `retry_after_ns`.
    Throttled = 16,
    /// A clean-read completion was retried on a sibling replica; `arg` is
    /// the attempt ordinal (1-based) charged against the retry budget.
    Failover = 17,
    /// The lane supervisor changed a lane's state; `arg` is 1 when the
    /// lane entered quarantine, 2 when it entered probation.
    Quarantine = 18,
    /// A quarantined lane passed probation and returned to healthy.
    LaneRestored = 19,
}

impl EventKind {
    /// Stable lower-case name, used as the Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Admitted => "admitted",
            EventKind::Doorbell => "doorbell",
            EventKind::Dispatched => "dispatched",
            EventKind::ReplayStart => "replay_start",
            EventKind::ReplayEnd => "replay_end",
            EventKind::Completed => "completed",
            EventKind::Diverged => "diverged",
            EventKind::SmcEnter => "smc_enter",
            EventKind::SmcExit => "smc_exit",
            EventKind::Plug => "plug",
            EventKind::Unplug => "unplug",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::FaultInject => "fault_inject",
            EventKind::FaultClear => "fault_clear",
            EventKind::Throttled => "throttled",
            EventKind::Failover => "failover",
            EventKind::Quarantine => "quarantine",
            EventKind::LaneRestored => "lane_restored",
        }
    }
}

/// Which SMC gate a [`EventKind::SmcEnter`]/[`EventKind::SmcExit`] pair (or
/// a metrics-plane counter) refers to. Carried in [`TraceEvent::arg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SmcKind {
    /// `open_session`: install a trustlet session.
    OpenSession = 0,
    /// `invoke`: one legacy per-call world switch.
    Invoke = 1,
    /// `invoke_batch`: one doorbell ringing a shared-memory ring.
    Doorbell = 2,
    /// `smc_yield`: a secure-world poll/yield slice.
    Yield = 3,
    /// `close_session`: tear a session down.
    CloseSession = 4,
}

impl SmcKind {
    /// Number of kinds (fixed-size metric arrays are indexed by this).
    pub const COUNT: usize = 5;

    /// All kinds, in discriminant order.
    pub const ALL: [SmcKind; SmcKind::COUNT] = [
        SmcKind::OpenSession,
        SmcKind::Invoke,
        SmcKind::Doorbell,
        SmcKind::Yield,
        SmcKind::CloseSession,
    ];

    /// Stable lower-case name, used in metric labels and trace args.
    pub fn name(self) -> &'static str {
        match self {
            SmcKind::OpenSession => "open_session",
            SmcKind::Invoke => "invoke",
            SmcKind::Doorbell => "doorbell",
            SmcKind::Yield => "yield",
            SmcKind::CloseSession => "close_session",
        }
    }

    /// Recover a kind from a [`TraceEvent::arg`] discriminant.
    pub fn from_arg(arg: u64) -> Option<SmcKind> {
        SmcKind::ALL.get(arg as usize).copied()
    }
}

/// One fixed-size binary trace record. `Copy` and field-only — the hot
/// path moves 48 bytes into a preallocated ring slot and nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Host monotonic nanoseconds since the recorder's epoch.
    pub host_ns: u64,
    /// Virtual-clock nanoseconds (the emitting side's timeline).
    pub virt_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which timeline track (thread) emitted this.
    pub track: u16,
    /// Session the event belongs to (0 when not applicable).
    pub session: u32,
    /// Request the event belongs to (0 when not applicable).
    pub request: u64,
    /// Kind-specific argument (queue depth, batch size, SMC kind, …).
    pub arg: u64,
}

/// The producing end of one thread's trace ring. Owned exclusively by the
/// emitting thread (the SPSC producer is not `Clone`); emission is
/// wait-free and overflow is a counted drop.
#[derive(Debug)]
pub struct TraceHandle {
    producer: SpscProducer<TraceEvent>,
    track: u16,
    epoch: Instant,
    dropped: Arc<AtomicU64>,
}

impl TraceHandle {
    /// Timeline track this handle stamps onto.
    pub fn track(&self) -> u16 {
        self.track
    }

    /// Host-monotonic nanoseconds since the recorder's epoch — the stamp
    /// domain of [`TraceEvent::host_ns`]. Sites that emit several events
    /// back-to-back read this once and pass it to [`TraceHandle::emit_at`]
    /// (the clock read is the most expensive part of an emit).
    pub fn host_now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event. Never blocks, never panics: a full ring bumps the
    /// recorder-wide drop counter and the event is lost (by design — the
    /// flight recorder must not perturb the lane it observes).
    pub fn emit(&mut self, kind: EventKind, virt_ns: u64, session: u32, request: u64, arg: u64) {
        let host_ns = self.host_now_ns();
        self.emit_at(host_ns, kind, virt_ns, session, request, arg);
    }

    /// [`TraceHandle::emit`] with the host stamp supplied by the caller —
    /// must come from this handle's own [`TraceHandle::host_now_ns`] (or a
    /// clock sharing the recorder epoch) so the merged stream still sorts.
    pub fn emit_at(
        &mut self,
        host_ns: u64,
        kind: EventKind,
        virt_ns: u64,
        session: u32,
        request: u64,
        arg: u64,
    ) {
        let event = TraceEvent { host_ns, virt_ns, kind, track: self.track, session, request, arg };
        if self.producer.try_push(event).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One registered ring: the consumer half plus its track identity.
struct Channel {
    name: String,
    track: u16,
    consumer: SpscConsumer<TraceEvent>,
}

/// The collector: hands out [`TraceHandle`]s and drains their rings into a
/// bounded flight buffer.
pub struct Recorder {
    enabled: bool,
    ring_capacity: usize,
    flight_capacity: usize,
    epoch: Instant,
    channels: Mutex<Vec<Channel>>,
    /// Events that did not fit an emitter's ring (shared with every handle).
    dropped: Arc<AtomicU64>,
    /// Events evicted from the flight buffer because it was full.
    evicted: AtomicU64,
    flight: Mutex<Vec<TraceEvent>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("ring_capacity", &self.ring_capacity)
            .field("flight_capacity", &self.flight_capacity)
            .finish()
    }
}

/// Default per-thread ring size: deep enough that the serve concurrency
/// suites drain with zero loss (asserted by test), small enough to stay
/// resident in cache.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Default flight-buffer bound across all rings.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 65_536;

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_RING_CAPACITY, DEFAULT_FLIGHT_CAPACITY)
    }
}

impl Recorder {
    /// An enabled recorder: per-thread rings of `ring_capacity` events, a
    /// flight buffer bounded at `flight_capacity` events (oldest evicted
    /// first, eviction counted).
    pub fn new(ring_capacity: usize, flight_capacity: usize) -> Recorder {
        Recorder::with_epoch(ring_capacity, flight_capacity, Instant::now())
    }

    /// [`Recorder::new`] with an explicit host epoch, so co-located stamp
    /// domains (e.g. a metrics registry built alongside) can share it and
    /// stamps taken off-recorder stay directly comparable.
    pub fn with_epoch(ring_capacity: usize, flight_capacity: usize, epoch: Instant) -> Recorder {
        Recorder {
            enabled: true,
            ring_capacity: ring_capacity.max(1),
            flight_capacity: flight_capacity.max(1),
            epoch,
            channels: Mutex::new(Vec::new()),
            dropped: Arc::new(AtomicU64::new(0)),
            evicted: AtomicU64::new(0),
            flight: Mutex::new(Vec::new()),
        }
    }

    /// A recorder that registers nothing: [`Recorder::register`] returns
    /// `None`, so every `obs_event!` site stays a single branch.
    pub fn disabled() -> Recorder {
        Recorder { enabled: false, ..Recorder::new(1, 1) }
    }

    /// Whether this recorder hands out live handles.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register a new emitting thread under `name` on timeline `track` and
    /// return its handle (`None` when the recorder is disabled). Multiple
    /// rings may share a track — e.g. a lane worker and the replayer it
    /// drives are one thread and render on one timeline.
    pub fn register(&self, name: &str, track: u16) -> Option<TraceHandle> {
        if !self.enabled {
            return None;
        }
        let (producer, consumer) = spsc::channel(self.ring_capacity);
        self.channels.lock().expect("recorder channel registry poisoned").push(Channel {
            name: name.to_string(),
            track,
            consumer,
        });
        Some(TraceHandle { producer, track, epoch: self.epoch, dropped: Arc::clone(&self.dropped) })
    }

    /// Track names registered so far, as `(track, name)` pairs in
    /// registration order (a track registered twice keeps its first name).
    pub fn track_names(&self) -> Vec<(u16, String)> {
        let channels = self.channels.lock().expect("recorder channel registry poisoned");
        let mut out: Vec<(u16, String)> = Vec::new();
        for ch in channels.iter() {
            if !out.iter().any(|(t, _)| *t == ch.track) {
                out.push((ch.track, ch.name.clone()));
            }
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Pull everything currently visible in the per-thread rings into the
    /// flight buffer, evicting the oldest events beyond the bound.
    pub fn collect(&self) {
        let mut channels = self.channels.lock().expect("recorder channel registry poisoned");
        let mut flight = self.flight.lock().expect("recorder flight buffer poisoned");
        for ch in channels.iter_mut() {
            ch.consumer.drain_into(&mut flight);
        }
        if flight.len() > self.flight_capacity {
            let excess = flight.len() - self.flight_capacity;
            // Oldest-first within the merged buffer: drain order preserved
            // per ring, so dropping the front loses the stalest records.
            flight.drain(..excess);
            self.evicted.fetch_add(excess as u64, Ordering::Relaxed);
        }
    }

    /// Collect, then take the whole flight buffer, sorted by host time so
    /// the merged stream reads chronologically across tracks.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.collect();
        let mut events =
            std::mem::take(&mut *self.flight.lock().expect("recorder flight buffer poisoned"));
        events.sort_by_key(|e| e.host_ns);
        events
    }

    /// Events lost to full per-thread rings (exact: each failed push adds
    /// exactly one).
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events evicted from the flight buffer by the bound.
    pub fn evicted_events(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// A virtual/host timestamp pair for one lifecycle stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Virtual-clock nanoseconds.
    pub virt_ns: u64,
    /// Host monotonic nanoseconds since the recorder epoch.
    pub host_ns: u64,
}

/// One request's reconstructed lifecycle: submit → admit → queue →
/// replay → complete, with per-phase durations in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpan {
    /// The request id the span belongs to.
    pub request: u64,
    /// The session that submitted it.
    pub session: u32,
    /// The lane track it was dispatched on (0 until dispatched).
    pub track: u16,
    /// Front-end arrival (pre-admission SMC).
    pub submitted: Option<Stamp>,
    /// Lane queue acceptance.
    pub admitted: Option<Stamp>,
    /// Lane worker pickup.
    pub dispatched: Option<Stamp>,
    /// Terminal completion (success or divergence).
    pub completed: Option<Stamp>,
    /// Whether the terminal event was [`EventKind::Diverged`].
    pub diverged: bool,
}

impl RequestSpan {
    /// submit → admit (front-end + admission SMC) in virtual ns.
    pub fn admit_ns(&self) -> Option<u64> {
        phase(self.submitted, self.admitted)
    }

    /// admit → dispatch (time spent queued) in virtual ns.
    pub fn queue_ns(&self) -> Option<u64> {
        phase(self.admitted, self.dispatched)
    }

    /// dispatch → complete (replay/service time) in virtual ns.
    pub fn service_ns(&self) -> Option<u64> {
        phase(self.dispatched, self.completed)
    }

    /// submit → complete in virtual ns.
    pub fn total_ns(&self) -> Option<u64> {
        phase(self.submitted, self.completed)
    }

    /// Whether all four stages are present and causally ordered
    /// (submit ≤ admit ≤ dispatch ≤ complete in virtual time).
    pub fn is_fully_ordered(&self) -> bool {
        match (self.submitted, self.admitted, self.dispatched, self.completed) {
            (Some(s), Some(a), Some(d), Some(c)) => {
                s.virt_ns <= a.virt_ns && a.virt_ns <= d.virt_ns && d.virt_ns <= c.virt_ns
            }
            _ => false,
        }
    }
}

/// Keep the *earliest* stamp for a stage: a retried stage (e.g. a second
/// dispatch after a soft reset) must not rewrite history.
fn stamp_first(slot: &mut Option<Stamp>, stamp: Stamp) {
    if slot.is_none() {
        *slot = Some(stamp);
    }
}

fn phase(from: Option<Stamp>, to: Option<Stamp>) -> Option<u64> {
    match (from, to) {
        (Some(f), Some(t)) => Some(t.virt_ns.saturating_sub(f.virt_ns)),
        _ => None,
    }
}

/// Rebuild per-request spans from a drained event stream. Events with
/// `request == 0` (SMC pairs, park/unpark, plug decisions, …) do not open
/// spans. Output is sorted by request id.
pub fn reconstruct_spans(events: &[TraceEvent]) -> Vec<RequestSpan> {
    use std::collections::HashMap;
    let mut spans: HashMap<u64, RequestSpan> = HashMap::new();
    for ev in events {
        if ev.request == 0 {
            continue;
        }
        let stamp = Stamp { virt_ns: ev.virt_ns, host_ns: ev.host_ns };
        let span = spans.entry(ev.request).or_insert(RequestSpan {
            request: ev.request,
            session: ev.session,
            track: 0,
            submitted: None,
            admitted: None,
            dispatched: None,
            completed: None,
            diverged: false,
        });
        if ev.session != 0 {
            span.session = ev.session;
        }
        match ev.kind {
            EventKind::Submitted => stamp_first(&mut span.submitted, stamp),
            EventKind::Admitted => stamp_first(&mut span.admitted, stamp),
            EventKind::Dispatched => {
                stamp_first(&mut span.dispatched, stamp);
                span.track = ev.track;
            }
            EventKind::Completed => stamp_first(&mut span.completed, stamp),
            EventKind::Diverged => {
                stamp_first(&mut span.completed, stamp);
                span.diverged = true;
            }
            _ => {}
        }
    }
    let mut out: Vec<RequestSpan> = spans.into_values().collect();
    out.sort_by_key(|s| s.request);
    out
}

/// Render a drained event stream as Chrome `trace_event` JSON (the
/// "JSON array format"): one `thread_name` metadata record per track, an
/// instant (`"ph":"i"`) per event, and a complete (`"ph":"X"`) slice per
/// reconstructed request span using its host-time dispatch→complete
/// window. Load the output in `chrome://tracing` or
/// <https://ui.perfetto.dev> — each registered thread renders as its own
/// timeline track.
pub fn chrome_trace_json(events: &[TraceEvent], tracks: &[(u16, String)]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("[\n");
    let mut first = true;
    for (track, name) in tracks {
        push_record(&mut out, &mut first, &format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }
    for ev in events {
        let ts = micros(ev.host_ns);
        push_record(&mut out, &mut first, &format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"args\":{{\"virt_ns\":{},\"session\":{},\"request\":{},\"arg\":{}}}}}",
            ev.kind.name(),
            ev.track,
            ev.virt_ns,
            ev.session,
            ev.request,
            ev.arg
        ));
    }
    for span in reconstruct_spans(events) {
        let (Some(d), Some(c)) = (span.dispatched, span.completed) else { continue };
        let ts = micros(d.host_ns);
        let dur = micros(c.host_ns.saturating_sub(d.host_ns));
        push_record(&mut out, &mut first, &format!(
            "{{\"name\":\"request {}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"session\":{},\"diverged\":{},\"queue_virt_ns\":{},\"service_virt_ns\":{}}}}}",
            span.request,
            span.track,
            span.session,
            span.diverged,
            span.queue_ns().unwrap_or(0),
            span.service_ns().unwrap_or(0)
        ));
    }
    out.push_str("\n]\n");
    out
}

fn push_record(out: &mut String, first: &mut bool, record: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(record);
}

/// Nanoseconds → Chrome-trace microseconds with sub-µs precision kept.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(handle: &mut TraceHandle, kind: EventKind, virt: u64, req: u64) {
        handle.emit(kind, virt, 7, req, 0);
    }

    #[test]
    fn disabled_recorder_hands_out_no_handles() {
        let recorder = Recorder::disabled();
        assert!(recorder.register("lane-0", 1).is_none());
        assert!(recorder.drain().is_empty());
    }

    #[test]
    fn spans_reconstruct_across_two_tracks() {
        let recorder = Recorder::new(64, 256);
        let mut front = recorder.register("front-end", 0).unwrap();
        let mut lane = recorder.register("lane-0-mmc", 1).unwrap();
        stamp(&mut front, EventKind::Submitted, 100, 1);
        stamp(&mut front, EventKind::Admitted, 150, 1);
        stamp(&mut lane, EventKind::Dispatched, 200, 1);
        stamp(&mut lane, EventKind::Completed, 900, 1);
        stamp(&mut front, EventKind::Submitted, 110, 2);
        stamp(&mut front, EventKind::Admitted, 160, 2);
        stamp(&mut lane, EventKind::Dispatched, 900, 2);
        stamp(&mut lane, EventKind::Diverged, 1_400, 2);
        // Non-request events must not open spans.
        lane.emit(EventKind::Park, 1_400, 0, 0, 0);

        let events = recorder.drain();
        assert_eq!(events.len(), 9);
        let spans = reconstruct_spans(&events);
        assert_eq!(spans.len(), 2);
        assert!(spans[0].is_fully_ordered() && spans[1].is_fully_ordered());
        assert_eq!(spans[0].queue_ns(), Some(50));
        assert_eq!(spans[0].service_ns(), Some(700));
        assert_eq!(spans[0].total_ns(), Some(800));
        assert!(!spans[0].diverged);
        assert!(spans[1].diverged);
        assert_eq!(spans[1].track, 1, "span lands on the dispatching lane's track");
        assert_eq!(recorder.dropped_events(), 0);
        assert!(recorder.drain().is_empty(), "drain consumes the flight buffer");
    }

    #[test]
    fn ring_overflow_drops_are_counted_exactly_and_never_panic() {
        let recorder = Recorder::new(8, 1_024);
        let mut handle = recorder.register("lane-0", 1).unwrap();
        for i in 0..100u64 {
            handle.emit(EventKind::Dispatched, i, 1, i + 1, 0);
        }
        // 8 fit the ring; the other 92 must be counted, one each, exactly.
        assert_eq!(recorder.dropped_events(), 92);
        assert_eq!(recorder.drain().len(), 8);
        // The ring is drained now: emission resumes losslessly.
        handle.emit(EventKind::Completed, 200, 1, 1, 0);
        assert_eq!(recorder.dropped_events(), 92);
        assert_eq!(recorder.drain().len(), 1);
    }

    #[test]
    fn flight_buffer_eviction_is_bounded_and_counted() {
        let recorder = Recorder::new(64, 16);
        let mut handle = recorder.register("lane-0", 1).unwrap();
        for i in 0..40u64 {
            handle.emit(EventKind::Dispatched, i, 1, i + 1, 0);
        }
        recorder.collect();
        assert_eq!(recorder.evicted_events(), 24);
        let events = recorder.drain();
        assert_eq!(events.len(), 16);
        assert_eq!(events[0].virt_ns, 24, "oldest events are the ones evicted");
    }

    #[test]
    fn chrome_export_names_every_track_and_span() {
        let recorder = Recorder::new(64, 256);
        let mut front = recorder.register("front-end", 0).unwrap();
        let mut lane = recorder.register("lane-0-mmc", 1).unwrap();
        stamp(&mut front, EventKind::Submitted, 100, 1);
        stamp(&mut front, EventKind::Admitted, 150, 1);
        stamp(&mut lane, EventKind::Dispatched, 200, 1);
        stamp(&mut lane, EventKind::Completed, 900, 1);
        let events = recorder.drain();
        let json = chrome_trace_json(&events, &recorder.track_names());
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"lane-0-mmc\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"request 1\""));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        // Balanced braces ⇒ structurally plausible JSON without a parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn smc_kind_round_trips_through_arg() {
        for kind in SmcKind::ALL {
            assert_eq!(SmcKind::from_arg(kind as u64), Some(kind));
        }
        assert_eq!(SmcKind::from_arg(99), None);
    }
}
