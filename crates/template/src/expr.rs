//! Symbolic value expressions.
//!
//! The recorder's taint analysis discovers how output values derive from
//! earlier inputs — e.g. `SDARG = blkid & !0x7` or
//! `SDCMD = 0x8000 | (rw << 6)` (Table 4). Those derivations are stored as
//! [`SymExpr`] trees and evaluated by the replayer against the trustlet's
//! dynamic arguments.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A symbolic expression over replay-entry parameters, captured input values
/// and DMA allocation base addresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymExpr {
    /// A concrete constant.
    Const(u64),
    /// A replay-entry parameter, e.g. `blkid`.
    Param(String),
    /// A value captured by an earlier input event (by capture name).
    Captured(String),
    /// The base address returned by the n-th `dma_alloc` event of the
    /// template (0-based, in event order).
    DmaBase(usize),
    /// Bitwise AND.
    And(Box<SymExpr>, Box<SymExpr>),
    /// Bitwise OR.
    Or(Box<SymExpr>, Box<SymExpr>),
    /// Bitwise XOR.
    Xor(Box<SymExpr>, Box<SymExpr>),
    /// Wrapping addition.
    Add(Box<SymExpr>, Box<SymExpr>),
    /// Wrapping subtraction.
    Sub(Box<SymExpr>, Box<SymExpr>),
    /// Wrapping multiplication.
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Logical shift left by a constant.
    Shl(Box<SymExpr>, u32),
    /// Logical shift right by a constant.
    Shr(Box<SymExpr>, u32),
    /// Bitwise NOT.
    Not(Box<SymExpr>),
}

impl SymExpr {
    /// Convenience constructor: `expr & mask`.
    pub fn masked(self, mask: u64) -> SymExpr {
        SymExpr::And(Box::new(self), Box::new(SymExpr::Const(mask)))
    }

    /// Convenience constructor: `expr | bits`.
    pub fn or_const(self, bits: u64) -> SymExpr {
        SymExpr::Or(Box::new(self), Box::new(SymExpr::Const(bits)))
    }

    /// Convenience constructor: `expr + c`.
    pub fn plus(self, c: u64) -> SymExpr {
        SymExpr::Add(Box::new(self), Box::new(SymExpr::Const(c)))
    }

    /// Convenience constructor: `expr << n`.
    // Not the `std::ops::Shl` trait: this is a tree-building constructor
    // taking a literal shift count, not an operator overload.
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, n: u32) -> SymExpr {
        SymExpr::Shl(Box::new(self), n)
    }

    /// Evaluate against an environment. Returns `None` if the expression
    /// references a parameter, capture or DMA base the environment lacks —
    /// the replayer treats that as a malformed template.
    pub fn eval(&self, env: &EvalEnv) -> Option<u64> {
        Some(match self {
            SymExpr::Const(c) => *c,
            SymExpr::Param(name) => *env.params.get(name)?,
            SymExpr::Captured(name) => *env.captured.get(name)?,
            SymExpr::DmaBase(idx) => *env.dma_bases.get(*idx)?,
            SymExpr::And(a, b) => a.eval(env)? & b.eval(env)?,
            SymExpr::Or(a, b) => a.eval(env)? | b.eval(env)?,
            SymExpr::Xor(a, b) => a.eval(env)? ^ b.eval(env)?,
            SymExpr::Add(a, b) => a.eval(env)?.wrapping_add(b.eval(env)?),
            SymExpr::Sub(a, b) => a.eval(env)?.wrapping_sub(b.eval(env)?),
            SymExpr::Mul(a, b) => a.eval(env)?.wrapping_mul(b.eval(env)?),
            SymExpr::Shl(a, n) => a.eval(env)?.wrapping_shl(*n),
            SymExpr::Shr(a, n) => a.eval(env)?.wrapping_shr(*n),
            SymExpr::Not(a) => !a.eval(env)?,
        })
    }

    /// Whether the expression depends on any non-constant symbol.
    pub fn is_symbolic(&self) -> bool {
        match self {
            SymExpr::Const(_) => false,
            SymExpr::Param(_) | SymExpr::Captured(_) | SymExpr::DmaBase(_) => true,
            SymExpr::And(a, b)
            | SymExpr::Or(a, b)
            | SymExpr::Xor(a, b)
            | SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b) => a.is_symbolic() || b.is_symbolic(),
            SymExpr::Shl(a, _) | SymExpr::Shr(a, _) | SymExpr::Not(a) => a.is_symbolic(),
        }
    }

    /// Names of parameters referenced by this expression.
    pub fn referenced_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            SymExpr::Param(p) => out.push(p.clone()),
            SymExpr::And(a, b)
            | SymExpr::Or(a, b)
            | SymExpr::Xor(a, b)
            | SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            SymExpr::Shl(a, _) | SymExpr::Shr(a, _) | SymExpr::Not(a) => a.collect_params(out),
            _ => {}
        }
    }

    /// A compact human-readable rendering (used in the emitted template
    /// documents and in failure reports).
    pub fn describe(&self) -> String {
        match self {
            SymExpr::Const(c) => format!("{c:#x}"),
            SymExpr::Param(p) => p.clone(),
            SymExpr::Captured(c) => format!("${c}"),
            SymExpr::DmaBase(i) => format!("dma[{i}]"),
            SymExpr::And(a, b) => format!("({} & {})", a.describe(), b.describe()),
            SymExpr::Or(a, b) => format!("({} | {})", a.describe(), b.describe()),
            SymExpr::Xor(a, b) => format!("({} ^ {})", a.describe(), b.describe()),
            SymExpr::Add(a, b) => format!("({} + {})", a.describe(), b.describe()),
            SymExpr::Sub(a, b) => format!("({} - {})", a.describe(), b.describe()),
            SymExpr::Mul(a, b) => format!("({} * {})", a.describe(), b.describe()),
            SymExpr::Shl(a, n) => format!("({} << {n})", a.describe()),
            SymExpr::Shr(a, n) => format!("({} >> {n})", a.describe()),
            SymExpr::Not(a) => format!("~{}", a.describe()),
        }
    }
}

/// Evaluation environment: the dynamic state a replay run builds up.
#[derive(Debug, Clone, Default)]
pub struct EvalEnv {
    /// Replay-entry parameter values supplied by the trustlet.
    pub params: HashMap<String, u64>,
    /// Values captured by earlier input events in this replay.
    pub captured: HashMap<String, u64>,
    /// Base addresses returned by the template's `dma_alloc` events, in
    /// event order.
    pub dma_bases: Vec<u64>,
}

impl EvalEnv {
    /// An environment with only parameters bound.
    pub fn with_params(params: HashMap<String, u64>) -> Self {
        EvalEnv { params, captured: HashMap::new(), dma_bases: Vec::new() }
    }

    /// Bind a single parameter (builder style, mostly for tests).
    pub fn param(mut self, name: &str, value: u64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> EvalEnv {
        let mut e = EvalEnv::default();
        e.params.insert("blkid".into(), 42);
        e.params.insert("blkcnt".into(), 6);
        e.params.insert("rw".into(), 1);
        e.captured.insert("img_size".into(), 311_296);
        e.dma_bases = vec![0x10_0000, 0x10_1000];
        e
    }

    #[test]
    fn table4_sdarg_expression() {
        // SDARG = blkid & ~0x7
        let expr = SymExpr::Param("blkid".into()).masked(!0x7u64);
        assert_eq!(expr.eval(&env()), Some(40));
        assert_eq!(expr.describe(), "(blkid & 0xfffffffffffffff8)");
    }

    #[test]
    fn table4_sdcmd_expression() {
        // SDCMD = 0x8000 | (rw << 6)
        let expr = SymExpr::Param("rw".into()).shl(6).or_const(0x8000);
        assert_eq!(expr.eval(&env()), Some(0x8040));
        assert_eq!(expr.referenced_params(), vec!["rw".to_string()]);
    }

    #[test]
    fn captured_and_dma_symbols() {
        let expr = SymExpr::Captured("img_size".into());
        assert_eq!(expr.eval(&env()), Some(311_296));
        let expr = SymExpr::DmaBase(1).plus(0x8);
        assert_eq!(expr.eval(&env()), Some(0x10_1008));
        assert!(expr.is_symbolic());
        assert!(!SymExpr::Const(4).is_symbolic());
    }

    #[test]
    fn missing_symbols_yield_none() {
        let expr = SymExpr::Param("nonexistent".into());
        assert_eq!(expr.eval(&env()), None);
        let expr = SymExpr::DmaBase(9);
        assert_eq!(expr.eval(&env()), None);
        let expr = SymExpr::Captured("nope".into());
        assert_eq!(expr.eval(&env()), None);
    }

    #[test]
    fn arithmetic_is_wrapping() {
        let expr = SymExpr::Sub(Box::new(SymExpr::Const(0)), Box::new(SymExpr::Const(1)));
        assert_eq!(expr.eval(&EvalEnv::default()), Some(u64::MAX));
        let expr = SymExpr::Mul(Box::new(SymExpr::Const(u64::MAX)), Box::new(SymExpr::Const(2)));
        assert!(expr.eval(&EvalEnv::default()).is_some());
    }

    #[test]
    fn serde_round_trip() {
        let expr = SymExpr::Param("blkcnt".into()).shl(9).plus(12);
        let json = serde_json::to_string(&expr).unwrap();
        let back: SymExpr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, expr);
    }

    #[test]
    fn describe_is_stable_for_nested_expressions() {
        let expr = SymExpr::Xor(
            Box::new(SymExpr::Not(Box::new(SymExpr::Param("a".into())))),
            Box::new(SymExpr::Shr(Box::new(SymExpr::Const(0x100)), 4)),
        );
        assert_eq!(expr.describe(), "(~a ^ (0x100 >> 4))");
    }
}
