//! Observability-overhead measurement and the `BENCH_obs.json` emitter.
//!
//! One workload, three arms: the same ring-mode threaded traffic (two
//! block lanes, two sessions, a doorbell every 16 staged entries, every
//! request paying its own uncoalesced replay) driven under
//! [`ObsConfig::Off`], [`ObsConfig::MetricsOnly`] and [`ObsConfig::Full`].
//! Unlike the rest of the bench suite these numbers are **host
//! wall-clock**: the whole point is what the flight recorder and the
//! metrics registry cost on the real hot path, and virtual time cannot
//! see an atomic `fetch_add` or an SPSC push. Each arm runs several
//! trials and reports its best (least-noise) makespan.
//!
//! The CI acceptance gate: `Full` must retain ≥ 0.9x the `Off` request
//! rate — observability may tax the service at most 10%.
//!
//! The `Full` arm additionally harvests the artifacts the `report -- obs`
//! pretty-printer consumes: the frozen [`MetricsSnapshot`] (per-lane log₂
//! latency histograms, SMC calls by kind, the doorbell batch histogram)
//! and the Chrome `trace_event` JSON written next to `BENCH_obs.json` as
//! `trace.json` (load it in `chrome://tracing` or Perfetto: one track per
//! lane thread).

use dlt_obs::metrics::{HistogramSnapshot, MetricsSnapshot};
use dlt_obs::trace::chrome_trace_json;
use dlt_obs::ObsConfig;
use dlt_recorder::campaign::{record_mmc_driverlet_subset, record_usb_driverlet_subset};
use dlt_serve::{Device, DriverletService, ExecMode, Request, ServeConfig, SubmitMode};
use serde::{Deserialize, Serialize};

/// One observability level driven over the common workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsArmSample {
    /// Arm label (`off`, `metrics`, `full`).
    pub mode: String,
    /// Requests completed per trial.
    pub requests: u64,
    /// Host wall-clock makespan of every trial (milliseconds).
    pub trials_ms: Vec<f64>,
    /// Best (minimum) trial makespan — the number the ratios use, since
    /// the minimum is the least scheduler-noise estimate of the true cost.
    pub best_ms: f64,
    /// Requests per second of host time at the best trial.
    pub rate_rps: f64,
}

/// The persisted `BENCH_obs.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsBenchReport {
    /// Workload description.
    pub workload: String,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cores: usize,
    /// The recorder-dark, registry-dark baseline.
    pub off: ObsArmSample,
    /// Counters/gauges/histograms on, flight recorder off.
    pub metrics_only: ObsArmSample,
    /// Both planes on: every lane thread traces into its own ring.
    pub full: ObsArmSample,
    /// `metrics_only.rate_rps / off.rate_rps`.
    pub metrics_vs_off: f64,
    /// `full.rate_rps / off.rate_rps` — the CI gate demands ≥ 0.9.
    pub full_vs_off: f64,
    /// Trace events drained from the `Full` arm's final trial.
    pub trace_events: u64,
    /// Events the flight recorder dropped on ring overflow (counted,
    /// never blocking).
    pub dropped_events: u64,
    /// The `Full` arm's frozen metrics plane: per-lane latency
    /// histograms, SMC-by-kind, doorbell batches, per-session counters.
    pub snapshot: MetricsSnapshot,
}

/// A finished run: the serialisable report plus the Chrome trace JSON
/// (kept out of the report document — it is its own artifact).
#[derive(Debug, Clone)]
pub struct ObsBenchRun {
    /// The `BENCH_obs.json` payload.
    pub report: ObsBenchReport,
    /// Chrome `trace_event` JSON from the `Full` arm (`trace.json`).
    pub chrome_trace: String,
}

impl ObsBenchReport {
    /// The acceptance check: observability must keep ≥ 90% of the
    /// baseline request rate.
    pub fn gate(&self) -> Result<(), String> {
        if self.full_vs_off >= 0.9 {
            Ok(())
        } else {
            Err(format!(
                "ObsConfig::Full retains only {:.2}x of the Off request rate ({:.0} vs {:.0} \
                 req/s); the budget is >= 0.9x",
                self.full_vs_off, self.full.rate_rps, self.off.rate_rps
            ))
        }
    }
}

fn mode_label(obs: ObsConfig) -> &'static str {
    match obs {
        ObsConfig::Off => "off",
        ObsConfig::MetricsOnly => "metrics",
        ObsConfig::Full => "full",
    }
}

/// Drive the common workload once under `obs` and return the host
/// makespan plus the service (so the caller can harvest trace events and
/// the metrics snapshot from the `Full` arm's final trial).
fn drive_once(
    obs: ObsConfig,
    bundles: &[(Device, dlt_template::Driverlet)],
    requests: u64,
) -> (f64, DriverletService) {
    let config = ServeConfig {
        obs,
        exec_mode: ExecMode::Threaded,
        submit_mode: SubmitMode::Ring,
        sq_depth: 64,
        queue_capacity: requests as usize,
        // Coalescing and anticipation off: every request pays its own
        // replay, so the per-request instrumentation (trace events,
        // counter bumps, histogram records) is the only variable between
        // the arms relative to a fixed compute baseline.
        coalesce: false,
        hold_budget_ns: 0,
        block_granularities: vec![1, 8],
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::with_driverlets(bundles, config).expect("build obs-arm service");
    let a = service.open_session().unwrap();
    let b = service.open_session().unwrap();
    let start = std::time::Instant::now();
    let mut staged = 0u32;
    for i in 0..requests {
        let session = if i % 2 == 0 { a } else { b };
        let device = if i % 2 == 0 { Device::Mmc } else { Device::Usb };
        let blkid = 64 + (i % 48) as u32;
        let req = if i % 5 == 4 {
            Request::Write { device, blkid, data: vec![i as u8; 512] }
        } else {
            // Mixed read sizes: both recorded granularities replay, like
            // real block traffic (a pure 1-block stream would leave the
            // 8-block templates cold).
            Request::Read { device, blkid, blkcnt: if i % 3 == 0 { 8 } else { 1 } }
        };
        service.submit(session, req).expect("obs-arm submit");
        staged += 1;
        if staged >= 16 {
            service.ring_doorbell().expect("obs-arm doorbell");
            staged = 0;
        }
        // Pump the flight recorder the way a live deployment would (a
        // periodic collector thread): move ring contents into the flight
        // buffer so per-thread rings never wrap however long the run is.
        // The pump cost is part of observability's bill and stays inside
        // the timed region.
        if i % 1024 == 1023 {
            service.recorder().collect();
        }
    }
    let done = service.drain_all().len() as u64;
    service.take_completions(a);
    service.take_completions(b);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(done, requests, "every request must complete on the {} arm", mode_label(obs));
    (elapsed_ms, service)
}

fn sample_from(obs: ObsConfig, requests: u64, trials_ms: Vec<f64>) -> ObsArmSample {
    let best_ms = trials_ms.iter().copied().fold(f64::INFINITY, f64::min);
    ObsArmSample {
        mode: mode_label(obs).to_string(),
        requests,
        trials_ms,
        best_ms,
        rate_rps: requests as f64 / (best_ms / 1e3).max(1e-12),
    }
}

/// Drive one arm for `trials` back-to-back runs (the module test's
/// harness; the bench proper interleaves arms via [`run_obs_bench`]).
#[cfg(test)]
fn run_arm(
    obs: ObsConfig,
    bundles: &[(Device, dlt_template::Driverlet)],
    requests: u64,
    trials: usize,
) -> (ObsArmSample, DriverletService) {
    let mut trials_ms = Vec::with_capacity(trials);
    let mut last = None;
    for _ in 0..trials {
        let (ms, service) = drive_once(obs, bundles, requests);
        trials_ms.push(ms);
        last = Some(service);
    }
    (sample_from(obs, requests, trials_ms), last.expect("at least one trial ran"))
}

/// Run the three-arm overhead comparison.
pub fn run_obs_bench(quick: bool) -> ObsBenchRun {
    // Two noise defences, both load-bearing on a busy single-core host:
    // each trial must run long enough (several ms) that scheduler jitter
    // cannot move the ratio by 10%, and the arms are interleaved
    // round-robin rather than run in blocks so slow drift (CPU frequency,
    // a neighbouring build) taxes every arm equally instead of whichever
    // arm happened to run during the bad stretch. Best-of-N then picks
    // each arm's least-disturbed trial.
    let (requests, trials) = if quick { (2_000u64, 9usize) } else { (4_000, 9) };
    let bundles = vec![
        (Device::Mmc, record_mmc_driverlet_subset(&[1, 8]).expect("record mmc")),
        (Device::Usb, record_usb_driverlet_subset(&[1, 8]).expect("record usb")),
    ];
    let arms = [ObsConfig::Off, ObsConfig::MetricsOnly, ObsConfig::Full];
    // One discarded warmup pass per arm pays the one-time costs (lazy
    // allocation, cold branch predictors, thread-spawn page faults).
    for &obs in &arms {
        drive_once(obs, &bundles, requests.min(256));
    }
    let mut trials_ms: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut full_service = None;
    for _ in 0..trials {
        for (slot, &obs) in arms.iter().enumerate() {
            let (ms, service) = drive_once(obs, &bundles, requests);
            trials_ms[slot].push(ms);
            if matches!(obs, ObsConfig::Full) {
                full_service = Some(service);
            }
        }
    }
    let [off_ms, metrics_ms, full_ms] = trials_ms;
    let off = sample_from(ObsConfig::Off, requests, off_ms);
    let metrics_only = sample_from(ObsConfig::MetricsOnly, requests, metrics_ms);
    let full = sample_from(ObsConfig::Full, requests, full_ms);
    let service = full_service.expect("at least one Full trial ran");

    // Harvest the Full arm's artifacts from its final trial: one drain
    // feeds both the event count and the Chrome export.
    let events = service.trace_events();
    let dropped_events = service.recorder().dropped_events();
    let chrome_trace = chrome_trace_json(&events, &service.recorder().track_names());
    let snapshot = service.metrics_snapshot().expect("the Full arm has a metrics plane");

    let report = ObsBenchReport {
        workload: format!(
            "obs overhead (host wall-clock): {requests} uncoalesced ring-mode requests (80% \
             mixed 1/8-block reads, 20% 1-block writes) over MMC+USB lane threads, 2 sessions, \
             doorbell batch 16, best of {trials} interleaved trials per arm"
        ),
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        metrics_vs_off: full_ratio(&metrics_only, &off),
        full_vs_off: full_ratio(&full, &off),
        off,
        metrics_only,
        full,
        trace_events: events.len() as u64,
        dropped_events,
        snapshot,
    };
    ObsBenchRun { report, chrome_trace }
}

fn full_ratio(arm: &ObsArmSample, off: &ObsArmSample) -> f64 {
    arm.rate_rps / off.rate_rps.max(1e-12)
}

/// Serialise the report as pretty JSON.
pub fn report_json(report: &ObsBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialisation cannot fail")
}

/// Parse a previously persisted report.
pub fn parse_report(json: &str) -> Result<ObsBenchReport, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Write the report to `path` (default artifact name: `BENCH_obs.json`).
pub fn emit_report(report: &ObsBenchReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// Render one log₂ histogram: a line per occupied bucket with its upper
/// bound (in the given unit), count and a proportional bar.
fn histogram_lines(h: &HistogramSnapshot, indent: &str, unit_div: u64, unit: &str) -> String {
    let total = h.total();
    if total == 0 {
        return format!("{indent}(empty)\n");
    }
    let mut out = String::new();
    for (i, &count) in h.counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let bound = HistogramSnapshot::bucket_upper_bound(i);
        let bar = "#".repeat(((count as f64 / total as f64) * 40.0).ceil() as usize);
        out.push_str(&format!(
            "{indent}<= {:>12} {unit}: {:>8}  {bar}\n",
            if bound == u64::MAX {
                "inf".to_string()
            } else {
                (bound / unit_div.max(1)).to_string()
            },
            count
        ));
    }
    out
}

/// Render the human-readable summary the bench and `report -- obs` print:
/// the three-arm rate table, the gate verdict, per-lane latency
/// histograms and the SMC-by-kind table.
pub fn describe(report: &ObsBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("workload: {}\n", report.workload));
    out.push_str(&format!("host cores: {}\n", report.host_cores));
    for (arm, ratio) in [
        (&report.off, 1.0),
        (&report.metrics_only, report.metrics_vs_off),
        (&report.full, report.full_vs_off),
    ] {
        out.push_str(&format!(
            "arm {:<8}: {} requests, best {:>7.1} ms of {:?} -> {:>8.0} req/s ({:.2}x of off)\n",
            arm.mode,
            arm.requests,
            arm.best_ms,
            arm.trials_ms.iter().map(|ms| (ms * 10.0).round() / 10.0).collect::<Vec<_>>(),
            arm.rate_rps,
            ratio
        ));
    }
    out.push_str(&format!(
        "overhead gate (full >= 0.9x off): {}\n",
        match report.gate() {
            Ok(()) => format!("PASS ({:.2}x)", report.full_vs_off),
            Err(why) => format!("FAIL — {why}"),
        }
    ));
    out.push_str(&format!(
        "flight recorder: {} events drained, {} dropped on overflow\n",
        report.trace_events, report.dropped_events
    ));
    for lane in &report.snapshot.lanes {
        out.push_str(&format!(
            "lane {} ({}): admitted {}, completed {}, diverged {}, failed {}, replays {} \
             (ratio {:.2}), occupancy high-water {}, p50 {} us, p99 {} us\n",
            lane.lane,
            lane.device,
            lane.admitted,
            lane.completed,
            lane.diverged,
            lane.failed,
            lane.replays,
            lane.coalesce_ratio,
            lane.occupancy_high_water,
            lane.p50_us().unwrap_or(0),
            lane.p99_us().unwrap_or(0)
        ));
        out.push_str("  virtual submit->complete latency (log2 buckets, us):\n");
        out.push_str(&histogram_lines(&lane.latency_ns, "    ", 1_000, "us"));
    }
    out.push_str("SMC world switches by kind:\n");
    for kind in &report.snapshot.smc_by_kind {
        if kind.calls > 0 {
            out.push_str(&format!("  {:<14} {:>8}\n", kind.kind, kind.calls));
        }
    }
    out.push_str(&format!("  {:<14} {:>8}\n", "total", report.snapshot.smc_total()));
    out.push_str(&format!(
        "doorbell batch sizes ({} doorbells):\n",
        report.snapshot.doorbell_batch.total()
    ));
    out.push_str(&histogram_lines(&report.snapshot.doorbell_batch, "  ", 1, "entries"));
    out.push_str(&format!(
        "sessions: {} tracked, {} submitted / {} terminal\n",
        report.snapshot.sessions.len(),
        report.snapshot.sessions.iter().map(|s| s.submitted).sum::<u64>(),
        report.snapshot.sessions.iter().map(|s| s.completed + s.diverged).sum::<u64>()
    ));
    out
}

/// One-line record for log scraping.
pub fn summary_line(report: &ObsBenchReport) -> String {
    format!(
        "obs_overhead off={:.0} metrics={:.0} full={:.0} metrics_vs_off={:.2} full_vs_off={:.2} \
         events={} dropped={} cores={}",
        report.off.rate_rps,
        report.metrics_only.rate_rps,
        report.full.rate_rps,
        report.metrics_vs_off,
        report.full_vs_off,
        report.trace_events,
        report.dropped_events,
        report.host_cores
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bench_report_is_complete_and_round_trips() {
        // A tiny run: no ratio assertion (host wall-clock on a loaded CI
        // box is noisy at this size — the gate lives in the obs_overhead
        // bench, which runs best-of-N at real sizes), but the structure
        // must be complete: both arms finish, the Full arm traces and
        // snapshots, and the JSON round-trips.
        let run = {
            let bundles = vec![
                (Device::Mmc, record_mmc_driverlet_subset(&[1, 8]).expect("record mmc")),
                (Device::Usb, record_usb_driverlet_subset(&[1, 8]).expect("record usb")),
            ];
            let (off, _) = run_arm(ObsConfig::Off, &bundles, 48, 1);
            let (full, service) = run_arm(ObsConfig::Full, &bundles, 48, 1);
            let events = service.trace_events();
            let chrome = chrome_trace_json(&events, &service.recorder().track_names());
            let snapshot = service.metrics_snapshot().expect("metrics plane on");
            ObsBenchRun {
                report: ObsBenchReport {
                    workload: "test".into(),
                    host_cores: 1,
                    metrics_vs_off: 1.0,
                    full_vs_off: full_ratio(&full, &off),
                    metrics_only: off.clone(),
                    off,
                    full,
                    trace_events: events.len() as u64,
                    dropped_events: service.recorder().dropped_events(),
                    snapshot,
                },
                chrome_trace: chrome,
            }
        };
        let r = &run.report;
        assert!(r.off.rate_rps > 0.0 && r.full.rate_rps > 0.0);
        assert!(r.full_vs_off > 0.0);
        assert!(r.trace_events > 0, "the Full arm must record events");
        assert_eq!(r.snapshot.lanes.len(), 2);
        let lane_completed: u64 = r.snapshot.lanes.iter().map(|l| l.completed).sum();
        assert_eq!(lane_completed, 48, "the snapshot covers the final Full trial");
        assert!(run.chrome_trace.contains("lane-0-mmc"), "trace names the lane tracks");

        let json = report_json(r);
        let back = parse_report(&json).expect("parse persisted report");
        assert_eq!(back.snapshot.lanes.len(), 2);
        assert_eq!(back.trace_events, r.trace_events);
        let text = describe(&back);
        assert!(text.contains("overhead gate"));
        assert!(text.contains("SMC world switches by kind"));
        assert!(summary_line(&back).starts_with("obs_overhead"));
    }
}
