//! Walk through a record campaign the way a driverlet developer would (§4
//! "How to use"): record templates, inspect the discovered constraints and
//! taint sinks, check the cumulative coverage, and emit the signed
//! human-readable bundle.
//!
//! Run with `cargo run --example record_campaign`.

use dlt_recorder::campaign::{record_mmc_driverlet_subset, DEV_KEY};
use dlt_template::Event;

fn main() {
    println!("[campaign] recording MMC read/write templates for 1 and 8 blocks...");
    let driverlet = record_mmc_driverlet_subset(&[1, 8]).expect("record campaign");

    for t in &driverlet.templates {
        let b = t.breakdown();
        println!(
            "\ntemplate {:<12} events: {} input / {} output / {} meta",
            t.name, b.input, b.output, b.meta
        );
        println!("  parameter constraints:");
        for p in &t.params {
            println!("    {:<8} {}", p.name, p.constraint.describe());
        }
        println!("  first ten events:");
        for re in t.events.iter().take(10) {
            println!("    {:<60} [{}:{}]", re.event.describe(), re.site.file, re.site.line);
        }
        let symbolic = t
            .events
            .iter()
            .filter(|re| matches!(&re.event, Event::Write { value, .. } if value.is_symbolic()))
            .count();
        println!("  parameterised output events (taint sinks): {symbolic}");
    }

    println!("\ncumulative input-space coverage:\n{}", driverlet.coverage.describe());
    println!("\nsignature verifies: {}", driverlet.verify(DEV_KEY).is_ok());
    let binary = dlt_recorder::campaign::emit_binary_bundle(&driverlet);
    println!(
        "bundle size: {} bytes pretty JSON / {} bytes compact / {} bytes binary ({} events total)",
        driverlet.serialized_size(),
        driverlet.compact_size(),
        binary.len(),
        driverlet.total_events()
    );
    let back = dlt_template::Driverlet::from_binary(&binary).expect("binary round trip");
    println!(
        "binary bundle round-trips: {} (signature verifies: {})",
        back == driverlet,
        back.verify(DEV_KEY).is_ok()
    );

    // Emit the human-readable document the paper describes (§6.2).
    let json = driverlet.to_json();
    println!("\nfirst lines of the emitted driverlet document:");
    for line in json.lines().take(12) {
        println!("  {line}");
    }
    println!("record campaign example complete.");
}
