//! The VC4 accelerator device model.
//!
//! The accelerator parses CPU→VC4 messages when doorbell 2 rings, runs the
//! MMAL camera service state machine, produces synthetic JPEG frames into the
//! host page list after the per-resolution exposure + ISP latency, writes its
//! replies into the VC4→CPU slot area and rings doorbell 0 (which is wired to
//! the VCHIQ interrupt line).

use dlt_hw::device::{MmioDevice, RegBank};
use dlt_hw::irq::lines;
use dlt_hw::{CostModel, IrqController, PhysMem, Shared};

use crate::msg::{synth_jpeg, CameraResolution, MmalMessage, MsgType};
use crate::queue::{self, pagelist, RX_AREA_OFF, TX_AREA_OFF};
use crate::regs;
use crate::{VCHIQ_BASE, VCHIQ_LEN};

/// Error codes carried in [`MsgType::Error`] replies.
pub mod error_code {
    /// The capture port is not enabled / component missing.
    pub const BAD_STATE: u32 = 1;
    /// The echoed image size does not match what VC4 assigned.
    pub const SIZE_MISMATCH: u32 = 2;
    /// The supplied buffer is too small for a frame.
    pub const BUFFER_TOO_SMALL: u32 = 3;
    /// The camera sensor is not responding (fault injection).
    pub const SENSOR_LOST: u32 = 4;
    /// Malformed message.
    pub const BAD_MESSAGE: u32 = 5;
}

/// MMAL service handle handed out on OpenService.
const SERVICE_HANDLE: u32 = 0x6d6d_616c; // "mmal"
/// Component handle handed out on ComponentCreate.
const CAMERA_COMPONENT: u32 = 0x0052_494c; // "RIL"

#[derive(Debug, Clone)]
struct PendingReply {
    due_ns: u64,
    msg: MmalMessage,
    /// For capture completions: where to materialise the frame.
    capture: Option<CaptureJob>,
}

#[derive(Debug, Clone)]
struct CaptureJob {
    pg_list: u64,
    buf_size: u32,
    resolution: CameraResolution,
    frame_no: u32,
}

/// The VC4/VCHIQ device.
pub struct Vc4Vchiq {
    regs: RegBank,
    mem: Shared<PhysMem>,
    irqs: Shared<IrqController>,
    cost: CostModel,
    queue_base: Option<u64>,
    /// How far into the TX area the device has parsed.
    tx_read_pos: u32,
    /// Where the device will write its next reply in the RX area.
    rx_write_pos: u32,
    connected: bool,
    service_open: bool,
    component_created: bool,
    resolution: Option<CameraResolution>,
    port_enabled: bool,
    sensor_present: bool,
    frame_counter: u32,
    pending: Vec<PendingReply>,
    bell0_pending: bool,
    /// Statistics.
    messages_handled: u64,
    frames_produced: u64,
    errors_signalled: u64,
}

impl Vc4Vchiq {
    /// Create the accelerator.
    pub fn new(mem: Shared<PhysMem>, irqs: Shared<IrqController>, cost: CostModel) -> Self {
        let mut regbank = RegBank::new();
        for (off, _) in regs::VCHIQ_REGISTERS {
            regbank.define(*off, 0);
        }
        regbank.define(regs::VERSION, 0x0001_0007);
        Vc4Vchiq {
            regs: regbank,
            mem,
            irqs,
            cost,
            queue_base: None,
            tx_read_pos: 0,
            rx_write_pos: 0,
            connected: false,
            service_open: false,
            component_created: false,
            resolution: None,
            port_enabled: false,
            sensor_present: true,
            frame_counter: 0,
            pending: Vec::new(),
            bell0_pending: false,
            messages_handled: 0,
            frames_produced: 0,
            errors_signalled: 0,
        }
    }

    /// Total messages handled.
    pub fn messages_handled(&self) -> u64 {
        self.messages_handled
    }

    /// Frames produced so far.
    pub fn frames_produced(&self) -> u64 {
        self.frames_produced
    }

    /// Error replies signalled so far.
    pub fn errors_signalled(&self) -> u64 {
        self.errors_signalled
    }

    /// Whether the capture port is currently enabled.
    pub fn port_enabled(&self) -> bool {
        self.port_enabled
    }

    /// Disconnect the image sensor (fault injection: the paper's "media
    /// accelerator loses the connection to the image sensor", §3.3).
    pub fn disconnect_sensor(&mut self) {
        self.sensor_present = false;
    }

    /// Reconnect the image sensor.
    pub fn reconnect_sensor(&mut self) {
        self.sensor_present = true;
    }

    fn queue_reply(&mut self, due_ns: u64, msg: MmalMessage, capture: Option<CaptureJob>) {
        if matches!(msg.mtype, MsgType::Error) {
            self.errors_signalled += 1;
        }
        self.pending.push(PendingReply { due_ns, msg, capture });
        self.pending.sort_by_key(|p| p.due_ns);
    }

    fn handle_message(&mut self, msg: MmalMessage, now_ns: u64) {
        self.messages_handled += 1;
        let ack_at = now_ns + self.cost.vchiq_msg_ns;
        match msg.mtype {
            MsgType::Connect => {
                self.connected = true;
                self.queue_reply(ack_at, MmalMessage::new(MsgType::ConnectAck, 0, vec![]), None);
            }
            MsgType::OpenService => {
                if self.connected {
                    self.service_open = true;
                    self.queue_reply(
                        ack_at,
                        MmalMessage::new(
                            MsgType::OpenServiceAck,
                            SERVICE_HANDLE,
                            vec![SERVICE_HANDLE],
                        ),
                        None,
                    );
                } else {
                    self.queue_reply(
                        ack_at,
                        MmalMessage::new(MsgType::Error, 0, vec![error_code::BAD_STATE]),
                        None,
                    );
                }
            }
            MsgType::ComponentCreate => {
                if self.service_open && self.sensor_present {
                    self.component_created = true;
                    // Component creation powers the sensor and loads the
                    // firmware tuner: the ack only arrives after the full
                    // initialisation latency (the dominant share of the
                    // paper's 3.7 s single-frame capture, §8.3.2).
                    self.queue_reply(
                        ack_at + self.cost.cam_init_ns,
                        MmalMessage::new(
                            MsgType::ComponentCreateAck,
                            SERVICE_HANDLE,
                            vec![CAMERA_COMPONENT],
                        ),
                        None,
                    );
                } else {
                    let code = if self.sensor_present {
                        error_code::BAD_STATE
                    } else {
                        error_code::SENSOR_LOST
                    };
                    self.queue_reply(
                        ack_at,
                        MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![code]),
                        None,
                    );
                }
            }
            MsgType::PortSetFormat => {
                let res = msg.payload.first().copied().and_then(CameraResolution::from_code);
                match (self.component_created, res) {
                    (true, Some(r)) => {
                        self.resolution = Some(r);
                        self.queue_reply(
                            ack_at,
                            MmalMessage::new(
                                MsgType::PortSetFormatAck,
                                SERVICE_HANDLE,
                                vec![r.frame_bytes()],
                            ),
                            None,
                        );
                    }
                    _ => self.queue_reply(
                        ack_at,
                        MmalMessage::new(
                            MsgType::Error,
                            SERVICE_HANDLE,
                            vec![error_code::BAD_MESSAGE],
                        ),
                        None,
                    ),
                }
            }
            MsgType::PortEnable => {
                if self.resolution.is_some() {
                    self.port_enabled = true;
                    // Arming the capture port switches the sensor mode and
                    // waits for AGC/AWB re-convergence before the first
                    // frame is usable; the ack arrives after that settle
                    // time. Recorded burst templates that re-arm the port
                    // per frame therefore pay this per frame (§8.3.2).
                    self.queue_reply(
                        ack_at + self.cost.cam_port_setup_ns,
                        MmalMessage::new(MsgType::PortEnableAck, SERVICE_HANDLE, vec![]),
                        None,
                    );
                } else {
                    self.queue_reply(
                        ack_at,
                        MmalMessage::new(
                            MsgType::Error,
                            SERVICE_HANDLE,
                            vec![error_code::BAD_STATE],
                        ),
                        None,
                    );
                }
            }
            MsgType::BufferFromHost => {
                self.handle_capture(&msg, now_ns);
            }
            MsgType::PortDisable => {
                self.port_enabled = false;
                self.queue_reply(
                    ack_at,
                    MmalMessage::new(MsgType::PortDisableAck, SERVICE_HANDLE, vec![]),
                    None,
                );
            }
            MsgType::ComponentDestroy => {
                self.component_created = false;
                self.port_enabled = false;
                self.resolution = None;
                self.queue_reply(
                    ack_at,
                    MmalMessage::new(MsgType::ComponentDestroyAck, SERVICE_HANDLE, vec![]),
                    None,
                );
            }
            // Replies and unknown traffic from the CPU are protocol errors.
            _ => {
                self.queue_reply(
                    ack_at,
                    MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![error_code::BAD_MESSAGE]),
                    None,
                );
            }
        }
    }

    fn handle_capture(&mut self, msg: &MmalMessage, now_ns: u64) {
        let ack_at = now_ns + self.cost.vchiq_msg_ns;
        let (pg_list, buf_size, img_echo) = match msg.payload.as_slice() {
            [p, b, i, ..] => (u64::from(*p), *b, *i),
            _ => {
                self.queue_reply(
                    ack_at,
                    MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![error_code::BAD_MESSAGE]),
                    None,
                );
                return;
            }
        };
        let Some(resolution) = self.resolution else {
            self.queue_reply(
                ack_at,
                MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![error_code::BAD_STATE]),
                None,
            );
            return;
        };
        if !self.port_enabled || !self.component_created {
            self.queue_reply(
                ack_at,
                MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![error_code::BAD_STATE]),
                None,
            );
            return;
        }
        if !self.sensor_present {
            self.queue_reply(
                ack_at,
                MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![error_code::SENSOR_LOST]),
                None,
            );
            return;
        }
        let expected = resolution.frame_bytes();
        if img_echo != expected {
            self.queue_reply(
                ack_at,
                MmalMessage::new(MsgType::Error, SERVICE_HANDLE, vec![error_code::SIZE_MISMATCH]),
                None,
            );
            return;
        }
        if buf_size < expected || pg_list == 0 {
            self.queue_reply(
                ack_at,
                MmalMessage::new(
                    MsgType::Error,
                    SERVICE_HANDLE,
                    vec![error_code::BUFFER_TOO_SMALL],
                ),
                None,
            );
            return;
        }
        let frame_no = self.frame_counter;
        self.frame_counter += 1;
        let latency = self.cost.cam_exposure_ns
            + self.cost.cam_isp_per_mp_ns * resolution.megapixels_x100() / 100;
        self.queue_reply(
            now_ns + latency,
            MmalMessage::new(MsgType::BufferToHost, SERVICE_HANDLE, vec![expected, frame_no]),
            Some(CaptureJob { pg_list, buf_size, resolution, frame_no }),
        );
    }

    fn materialise_frame(&mut self, job: &CaptureJob) {
        let frame = synth_jpeg(job.resolution, job.frame_no);
        let to_write = frame.len().min(job.buf_size as usize);
        let mut mem = self.mem.lock();
        let num_pages = mem.read32(job.pg_list + pagelist::NUM_PAGES).unwrap_or(0) as usize;
        // The page list describes a physically contiguous span starting at the
        // first page entry (the host allocator hands out contiguous buffers);
        // VC4 streams the frame into it, honouring the page count as an upper
        // bound on the span it may touch.
        let first_page = mem.read32(job.pg_list + pagelist::FIRST_PAGE).unwrap_or(0);
        let mut written = 0usize;
        if first_page != 0 && num_pages > 0 {
            let span = to_write;
            let _ = mem.write_bytes(u64::from(first_page), &frame[..span]);
            written = span;
        }
        // Record how many bytes actually landed in the buffer.
        let _ = mem.write32(job.pg_list + pagelist::TOTAL_LEN, written as u32);
        drop(mem);
        self.frames_produced += 1;
    }

    fn process_doorbell(&mut self, now_ns: u64) {
        let Some(base) = self.queue_base else { return };
        loop {
            let tx_pos = {
                let mem = self.mem.lock();
                mem.read32(base + queue::slot0::TX_POS).unwrap_or(0)
            };
            if self.tx_read_pos >= tx_pos {
                break;
            }
            let parsed = {
                let mem = self.mem.lock();
                queue::read_message(&mem, base, TX_AREA_OFF, self.tx_read_pos).unwrap_or(None)
            };
            match parsed {
                Some((msg, next)) => {
                    self.tx_read_pos = next;
                    self.handle_message(msg, now_ns);
                }
                None => {
                    // Corrupt slot contents: skip to the position the CPU
                    // advertised so we do not spin forever.
                    self.tx_read_pos = tx_pos;
                    self.queue_reply(
                        now_ns + self.cost.vchiq_msg_ns,
                        MmalMessage::new(
                            MsgType::Error,
                            SERVICE_HANDLE,
                            vec![error_code::BAD_MESSAGE],
                        ),
                        None,
                    );
                }
            }
        }
    }

    fn deliver_due_replies(&mut self, now_ns: u64) {
        let Some(base) = self.queue_base else { return };
        while let Some(first) = self.pending.first() {
            if first.due_ns > now_ns {
                break;
            }
            let reply = self.pending.remove(0);
            if let Some(job) = &reply.capture {
                self.materialise_frame(job);
            }
            let next = {
                let mut mem = self.mem.lock();
                let written = queue::write_message(
                    &mut mem,
                    base,
                    RX_AREA_OFF,
                    self.rx_write_pos,
                    &reply.msg,
                );
                match written {
                    Ok(next) => {
                        let _ = mem.write32(base + queue::slot0::RX_POS, next);
                        next
                    }
                    Err(_) => self.rx_write_pos,
                }
            };
            self.rx_write_pos = next;
            self.bell0_pending = true;
            self.irqs.lock().assert_at(lines::VCHIQ, now_ns + self.cost.irq_delivery_ns);
        }
    }
}

impl MmioDevice for Vc4Vchiq {
    fn name(&self) -> &'static str {
        "vchiq"
    }

    fn mmio_base(&self) -> u64 {
        VCHIQ_BASE
    }

    fn mmio_len(&self) -> u64 {
        VCHIQ_LEN
    }

    fn read32(&mut self, offset: u64, now_ns: u64) -> u32 {
        self.tick(now_ns);
        match offset {
            regs::BELL0 => {
                if self.bell0_pending {
                    1
                } else {
                    0
                }
            }
            regs::MBOX_WRITE => self.regs.get(regs::MBOX_WRITE),
            _ => self.regs.get(offset),
        }
    }

    fn write32(&mut self, offset: u64, val: u32, now_ns: u64) {
        match offset {
            regs::MBOX_WRITE => {
                // The published address must be queue-aligned; the low bits
                // are reserved for channel numbers on real hardware.
                let base = u64::from(val) & !(queue::QUEUE_ALIGN - 1);
                self.regs.set(regs::MBOX_WRITE, val);
                self.queue_base = if base == 0 { None } else { Some(base) };
                self.tx_read_pos = 0;
                self.rx_write_pos = 0;
            }
            regs::BELL2 => {
                if val & 1 != 0 {
                    self.process_doorbell(now_ns);
                }
            }
            regs::BELL0 => {
                if val & 1 != 0 {
                    self.bell0_pending = false;
                    self.irqs.lock().clear(lines::VCHIQ);
                }
            }
            _ => self.regs.set(offset, val),
        }
        self.tick(now_ns);
    }

    fn tick(&mut self, now_ns: u64) {
        self.deliver_due_replies(now_ns);
    }

    fn soft_reset(&mut self, _now_ns: u64) {
        self.regs.reset();
        self.regs.set(regs::VERSION, 0x0001_0007);
        self.queue_base = None;
        self.tx_read_pos = 0;
        self.rx_write_pos = 0;
        self.connected = false;
        self.service_open = false;
        self.component_created = false;
        self.resolution = None;
        self.port_enabled = false;
        self.frame_counter = 0;
        self.pending.clear();
        self.bell0_pending = false;
        // The sensor stays in whatever physical state it is in; a soft reset
        // cannot re-attach a lost sensor (matches the paper's unrecoverable
        // fault-injection outcome).
    }

    fn irq_line(&self) -> Option<u32> {
        Some(lines::VCHIQ)
    }

    fn register_map(&self) -> Vec<(u64, &'static str)> {
        regs::VCHIQ_REGISTERS.iter().map(|(o, n)| (*o, *n)).collect()
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::is_valid_jpeg;
    use dlt_hw::shared;

    const QUEUE_BASE: u64 = 0x10_0000;
    const PG_LIST: u64 = 0x20_0000;
    const FRAME_PAGES: u64 = 0x30_0000;

    struct Rig {
        vc4: Vc4Vchiq,
        mem: Shared<PhysMem>,
        irqs: Shared<IrqController>,
        now: u64,
        tx_pos: u32,
        rx_read: u32,
    }

    impl Rig {
        fn new() -> Self {
            let mem = shared(PhysMem::new(0, 16 << 20));
            let irqs = shared(IrqController::new());
            let vc4 = Vc4Vchiq::new(mem.clone(), irqs.clone(), CostModel::default());
            let mut rig = Rig { vc4, mem, irqs, now: 0, tx_pos: 0, rx_read: 0 };
            // CPU initialises slot 0 and publishes the queue address.
            for (off, w) in queue::slot0_init_words() {
                rig.mem.lock().write32(QUEUE_BASE + off, w).unwrap();
            }
            rig.vc4.write32(regs::MBOX_WRITE, QUEUE_BASE as u32, 0);
            rig
        }

        fn send(&mut self, msg: MmalMessage) {
            let (words, new_pos) = queue::tx_message_words(self.tx_pos, &msg);
            for (off, w) in words {
                self.mem.lock().write32(QUEUE_BASE + off, w).unwrap();
            }
            self.tx_pos = new_pos;
            self.vc4.write32(regs::BELL2, 1, self.now);
        }

        /// Advance time until a reply is available and return it.
        fn recv(&mut self) -> MmalMessage {
            for _ in 0..100_000 {
                self.now += 1_000_000; // 1 ms steps
                self.vc4.tick(self.now);
                let rx_pos = self.mem.lock().read32(QUEUE_BASE + queue::slot0::RX_POS).unwrap();
                if self.rx_read < rx_pos {
                    let (msg, next) = queue::read_message(
                        &self.mem.lock(),
                        QUEUE_BASE,
                        RX_AREA_OFF,
                        self.rx_read,
                    )
                    .unwrap()
                    .unwrap();
                    self.rx_read = next;
                    assert_eq!(self.vc4.read32(regs::BELL0, self.now), 1);
                    self.vc4.write32(regs::BELL0, 1, self.now);
                    return msg;
                }
            }
            panic!("no reply from VC4");
        }

        fn init_camera(&mut self, res: CameraResolution) -> u32 {
            self.send(MmalMessage::new(MsgType::Connect, 0, vec![]));
            assert_eq!(self.recv().mtype, MsgType::ConnectAck);
            self.send(MmalMessage::new(MsgType::OpenService, 0, vec![0x6d6d_616c]));
            assert_eq!(self.recv().mtype, MsgType::OpenServiceAck);
            self.send(MmalMessage::new(MsgType::ComponentCreate, SERVICE_HANDLE, vec![]));
            assert_eq!(self.recv().mtype, MsgType::ComponentCreateAck);
            self.send(MmalMessage::new(MsgType::PortSetFormat, SERVICE_HANDLE, vec![res.code()]));
            let ack = self.recv();
            assert_eq!(ack.mtype, MsgType::PortSetFormatAck);
            let img_size = ack.payload[0];
            self.send(MmalMessage::new(MsgType::PortEnable, SERVICE_HANDLE, vec![]));
            assert_eq!(self.recv().mtype, MsgType::PortEnableAck);
            img_size
        }

        fn build_page_list(&mut self, bytes: u32) {
            let pages = (bytes as usize).div_ceil(pagelist::PAGE_BYTES);
            let mut mem = self.mem.lock();
            mem.write32(PG_LIST + pagelist::TOTAL_LEN, bytes).unwrap();
            mem.write32(PG_LIST + pagelist::NUM_PAGES, pages as u32).unwrap();
            for i in 0..pages {
                let addr = FRAME_PAGES + (i as u64) * pagelist::PAGE_BYTES as u64;
                mem.write32(PG_LIST + pagelist::FIRST_PAGE + (i as u64) * 4, addr as u32).unwrap();
            }
        }

        fn read_frame(&self, bytes: usize) -> Vec<u8> {
            let mut out = vec![0u8; bytes];
            let mem = self.mem.lock();
            let mut read = 0;
            let mut page = 0u64;
            while read < bytes {
                let chunk = (bytes - read).min(pagelist::PAGE_BYTES);
                mem.read_bytes(
                    FRAME_PAGES + page * pagelist::PAGE_BYTES as u64,
                    &mut out[read..read + chunk],
                )
                .unwrap();
                read += chunk;
                page += 1;
            }
            out
        }
    }

    #[test]
    fn full_capture_sequence_produces_a_valid_jpeg() {
        let mut rig = Rig::new();
        let img_size = rig.init_camera(CameraResolution::R720p);
        assert_eq!(img_size, CameraResolution::R720p.frame_bytes());
        rig.build_page_list(2 << 20);
        rig.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 2 << 20, img_size],
        ));
        let done = rig.recv();
        assert_eq!(done.mtype, MsgType::BufferToHost);
        assert_eq!(done.payload[0], img_size);
        let frame = rig.read_frame(img_size as usize);
        assert!(is_valid_jpeg(&frame));
        assert_eq!(rig.vc4.frames_produced(), 1);
        assert!(rig.irqs.lock().assert_count() > 0);
    }

    #[test]
    fn capture_latency_scales_with_resolution() {
        let mut a = Rig::new();
        let sa = a.init_camera(CameraResolution::R720p);
        a.build_page_list(2 << 20);
        let t0 = a.now;
        a.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 2 << 20, sa],
        ));
        a.recv();
        let lat_720 = a.now - t0;

        let mut b = Rig::new();
        let sb = b.init_camera(CameraResolution::R1440p);
        b.build_page_list(2 << 20);
        let t0 = b.now;
        b.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 2 << 20, sb],
        ));
        b.recv();
        let lat_1440 = b.now - t0;
        assert!(lat_1440 > lat_720, "higher resolution must take longer");
    }

    #[test]
    fn img_size_mismatch_is_rejected() {
        let mut rig = Rig::new();
        let img_size = rig.init_camera(CameraResolution::R1080p);
        rig.build_page_list(2 << 20);
        rig.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 2 << 20, img_size - 4],
        ));
        let reply = rig.recv();
        assert_eq!(reply.mtype, MsgType::Error);
        assert_eq!(reply.payload[0], error_code::SIZE_MISMATCH);
        assert_eq!(rig.vc4.frames_produced(), 0);
    }

    #[test]
    fn too_small_buffer_is_rejected() {
        let mut rig = Rig::new();
        let img_size = rig.init_camera(CameraResolution::R1080p);
        rig.build_page_list(1024);
        rig.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 1024, img_size],
        ));
        let reply = rig.recv();
        assert_eq!(reply.mtype, MsgType::Error);
        assert_eq!(reply.payload[0], error_code::BUFFER_TOO_SMALL);
    }

    #[test]
    fn capture_without_port_enable_is_a_state_error() {
        let mut rig = Rig::new();
        rig.send(MmalMessage::new(MsgType::Connect, 0, vec![]));
        rig.recv();
        rig.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 2 << 20, 311_296],
        ));
        let reply = rig.recv();
        assert_eq!(reply.mtype, MsgType::Error);
        assert_eq!(reply.payload[0], error_code::BAD_STATE);
    }

    #[test]
    fn sensor_loss_fails_captures_even_after_soft_reset() {
        let mut rig = Rig::new();
        let img_size = rig.init_camera(CameraResolution::R720p);
        rig.build_page_list(2 << 20);
        rig.vc4.disconnect_sensor();
        rig.send(MmalMessage::new(
            MsgType::BufferFromHost,
            SERVICE_HANDLE,
            vec![PG_LIST as u32, 2 << 20, img_size],
        ));
        let reply = rig.recv();
        assert_eq!(reply.mtype, MsgType::Error);
        assert_eq!(reply.payload[0], error_code::SENSOR_LOST);
        // Soft reset cannot bring the sensor back.
        rig.vc4.soft_reset(rig.now);
        assert!(!rig.vc4.port_enabled());
    }

    #[test]
    fn consecutive_frames_are_distinct() {
        let mut rig = Rig::new();
        let img_size = rig.init_camera(CameraResolution::R720p);
        rig.build_page_list(2 << 20);
        let mut frames = Vec::new();
        for _ in 0..3 {
            rig.send(MmalMessage::new(
                MsgType::BufferFromHost,
                SERVICE_HANDLE,
                vec![PG_LIST as u32, 2 << 20, img_size],
            ));
            let done = rig.recv();
            assert_eq!(done.mtype, MsgType::BufferToHost);
            frames.push(rig.read_frame(img_size as usize));
        }
        assert_ne!(frames[0], frames[1]);
        assert_ne!(frames[1], frames[2]);
        assert_eq!(rig.vc4.frames_produced(), 3);
    }

    #[test]
    fn soft_reset_requires_requeueing_the_mailbox() {
        let mut rig = Rig::new();
        rig.init_camera(CameraResolution::R720p);
        rig.vc4.soft_reset(rig.now);
        // Doorbells without a published queue are ignored rather than crashing.
        rig.vc4.write32(regs::BELL2, 1, rig.now);
        assert!(rig.vc4.is_idle());
        assert_eq!(rig.vc4.read32(regs::MBOX_WRITE, rig.now), 0);
    }
}
