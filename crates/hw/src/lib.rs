//! # dlt-hw — hardware substrate for the driverlet reproduction
//!
//! This crate models the SoC-level hardware that the paper's record/replay
//! machinery sits on top of:
//!
//! * a [`clock::VirtualClock`] with a calibrated [`cost::CostModel`] so that
//!   every experiment runs in deterministic virtual time,
//! * a flat [`mem::PhysMem`] physical memory used for DMA descriptors, data
//!   pages and shared-memory message queues,
//! * an [`irq::IrqController`] with per-line assertion deadlines,
//! * the [`device::MmioDevice`] trait implemented by every device simulator
//!   (MMC controller, USB host controller, VC4/VCHIQ accelerator), and
//! * a [`bus::SystemBus`] that maps devices into the physical address space,
//!   charges access costs, and enforces secure-world-only assignment the way
//!   a TZASC does on a real TrustZone SoC.
//!
//! Everything is single-threaded and deterministic: devices make progress when
//! they are accessed, ticked, or when the bus advances virtual time while a
//! driver polls or waits for an interrupt. This mirrors the paper's system
//! model (§3.1): devices are reactive FSMs that never initiate requests on
//! their own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod clock;
pub mod cost;
pub mod device;
pub mod error;
pub mod irq;
pub mod mem;

use std::sync::Arc;

/// Shared, mutably lockable handle used to wire devices, memory, the clock and
/// the interrupt controller together.
///
/// The whole platform is single-threaded; the mutex only provides interior
/// mutability with runtime borrow discipline (and keeps the types `Send` so
/// Criterion benches can own them).
pub type Shared<T> = Arc<parking_lot::Mutex<T>>;

/// Wrap a value in a [`Shared`] handle.
pub fn shared<T>(value: T) -> Shared<T> {
    Arc::new(parking_lot::Mutex::new(value))
}

pub use bus::{Platform, SystemBus, World};
pub use clock::{ClockCell, VirtualClock};
pub use cost::CostModel;
pub use device::MmioDevice;
pub use error::HwError;
pub use irq::IrqController;
pub use mem::{DmaRegion, PhysMem};

/// Result alias used throughout the hardware substrate.
pub type HwResult<T> = Result<T, HwError>;
