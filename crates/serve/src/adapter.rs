//! Routing the workload suite's block path through the service.
//!
//! [`ServedBlockDev`] owns a whole service plus one session and implements
//! `dlt_workloads::block::BlockDev`, so every Figure-5 workload can run
//! against the multi-tenant scheduler + coalescer instead of an
//! exclusively-owned replayer (`dlt_workloads::block::DriverletDev`).

use std::collections::HashMap;

use dlt_workloads::block::BlockDev;

use crate::service::{DriverletService, ServeConfig};
use crate::{Device, Payload, Request, ServeError, SessionId};

/// A block device served through one session of a [`DriverletService`].
pub struct ServedBlockDev {
    service: DriverletService,
    session: SessionId,
    device: Device,
}

impl ServedBlockDev {
    /// Stand up a single-device service and open one session on it.
    pub fn new(device: Device, config: ServeConfig) -> Result<Self, ServeError> {
        assert!(device != Device::Vchiq, "ServedBlockDev serves block devices");
        let mut service = DriverletService::new(&[device], config)?;
        let session = service.open_session()?;
        Ok(ServedBlockDev { service, session, device })
    }

    /// The underlying service (stats, more sessions).
    pub fn service_mut(&mut self) -> &mut DriverletService {
        &mut self.service
    }

    fn roundtrip(&mut self, req: Request) -> Result<Payload, String> {
        let id = self.service.submit(self.session, req).map_err(|e| e.to_string())?;
        self.service.drain_all();
        self.service
            .take_completions(self.session)
            .into_iter()
            .find(|c| c.id == id)
            .ok_or_else(|| "completion lost".to_string())?
            .result
            .map_err(|e| e.to_string())
    }
}

impl BlockDev for ServedBlockDev {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        if buf.len() < blkcnt as usize * crate::BLOCK {
            return Err("buffer smaller than the requested blocks".into());
        }
        match self.roundtrip(Request::Read { device: self.device, blkid, blkcnt })? {
            Payload::Read(bytes) => {
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(())
            }
            other => Err(format!("unexpected payload {other:?}")),
        }
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        self.roundtrip(Request::Write { device: self.device, blkid, data: data.to_vec() })
            .map(|_| ())
    }

    fn flush(&mut self) -> Result<(), String> {
        // Served IO is synchronous at completion time: nothing to flush.
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.service.now_ns()
    }

    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        HashMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_workloads::suite::{run_benchmark_on, SqliteBenchmark};
    use dlt_workloads::{StorageKind, StoragePath};

    #[test]
    fn the_sqlite_suite_runs_through_the_service() {
        let dev = ServedBlockDev::new(Device::Mmc, ServeConfig::quick()).expect("served dev");
        let r = run_benchmark_on(
            dev,
            SqliteBenchmark::Select3,
            StorageKind::Mmc,
            StoragePath::Driverlet,
            10,
        )
        .expect("suite over the service");
        assert!(r.iops > 0.0);
        assert!(r.page_io.0 > 0);
    }
}
