//! Load-time compilation of templates into flat **replay programs**.
//!
//! The tree-shaped [`crate::Template`] is the recorder's artefact: readable,
//! signable, diffable. It is a poor execution format — every invocation of
//! the naive interpreter clones the event tree, resolves parameter and
//! capture names through `HashMap`s, and recursively walks [`SymExpr`] /
//! [`Constraint`] trees per event. This module lowers a vetted template
//! *once, at driverlet load time* into a [`ReplayProgram`]:
//!
//! * every parameter, capture name and DMA base is **interned to a fixed
//!   slot index** into a flat `u64` register file,
//! * every [`SymExpr`] is flattened into **index-addressed postfix ops**
//!   ([`ExprOp`]) evaluated on a reusable value stack,
//! * every [`Constraint`] is flattened the same way ([`ConsOp`]) on a
//!   reusable boolean stack, with `OneOf` constants pooled,
//! * every event becomes one fixed-size [`Op`] whose interfaces are
//!   pre-resolved (register address or allocation index + offset — the
//!   unreplayable `Env` interfaces are rejected at compile time),
//! * poll bodies are folded into a precomputed per-iteration delay (the
//!   replayer only ever honoured `delay` events inside poll bodies),
//! * the human-readable renderings the divergence reports need are
//!   precomputed per op ([`OpMeta`]), so the hot loop never formats strings.
//!
//! The result is that the replayer's `execute_once` runs a branch-on-opcode
//! loop with **zero heap allocation** on the divergence-free path: the
//! register file, evaluation stacks and DMA table live in a scratch arena
//! owned by the replayer and are reused across invocations.

use std::collections::HashMap;

use crate::constraint::Constraint;
use crate::event::{Event, Iface, ReadSink, SourceSite};
use crate::expr::SymExpr;
use crate::template::Template;

/// A slot index into the program's register file.
pub type Slot = u32;

/// A range of ops inside one of the program's flat pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRange {
    /// First op index.
    pub start: u32,
    /// Number of ops.
    pub len: u32,
}

impl OpRange {
    fn of(start: usize, end: usize) -> OpRange {
        OpRange { start: start as u32, len: (end - start) as u32 }
    }

    /// The range as usize bounds.
    pub fn bounds(&self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// One postfix expression op. Operands are pushed onto a value stack;
/// operators pop their arguments and push the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprOp {
    /// Push a constant.
    Const(u64),
    /// Push the value of a register-file slot (parameter, capture or DMA
    /// base). Evaluation fails if the slot is unbound.
    Slot(Slot),
    /// Pop two, push bitwise AND.
    And,
    /// Pop two, push bitwise OR.
    Or,
    /// Pop two, push bitwise XOR.
    Xor,
    /// Pop two, push wrapping sum.
    Add,
    /// Pop two, push wrapping difference.
    Sub,
    /// Pop two, push wrapping product.
    Mul,
    /// Pop one, push logical shift left by the constant.
    Shl(u32),
    /// Pop one, push logical shift right by the constant.
    Shr(u32),
    /// Pop one, push bitwise NOT.
    Not,
}

/// One postfix constraint op over the observed value. Leaf checks push a
/// boolean; `All`/`AnyOf` pop `n` booleans and push the combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsOp {
    /// Always true (`Constraint::Any`).
    True,
    /// Value equals the expression (false if the expression is unbound).
    Eq(OpRange),
    /// Value differs from the expression (false if unbound).
    Ne(OpRange),
    /// Value lies in `[min, max]`.
    InRange {
        /// Inclusive lower bound.
        min: u64,
        /// Inclusive upper bound.
        max: u64,
    },
    /// Value is one of the pooled constants.
    OneOf(OpRange),
    /// `(value & mask) == expected`.
    MaskEq {
        /// Bits to test.
        mask: u64,
        /// Required masked value.
        expected: u64,
    },
    /// `(value & mask) == 0`.
    MaskClear {
        /// Bits that must all be clear.
        mask: u64,
    },
    /// Pop `n` booleans, push their conjunction.
    All(u16),
    /// Pop `n` booleans, push their disjunction.
    AnyOf(u16),
}

/// Pre-resolved interface: where an op reads from / writes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CIface {
    /// A device register at an absolute physical address (window-checked at
    /// load time).
    Reg(u64),
    /// A word inside the `alloc`-th DMA allocation.
    Shm {
        /// Allocation index (in `dma_alloc` op order).
        alloc: u32,
        /// Byte offset within the allocation.
        offset: u64,
    },
}

/// Pre-resolved read sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CSink {
    /// Check the constraint, discard the value.
    Discard,
    /// Bind the value to a capture slot.
    Capture(Slot),
    /// Store the value as IO payload at this trustlet-buffer byte offset.
    UserData(u64),
}

/// One compiled replay op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read the interface, check the constraint, route the value.
    Read {
        /// Source interface.
        iface: CIface,
        /// Compiled constraint on the observed value.
        cons: OpRange,
        /// Where the value goes.
        sink: CSink,
    },
    /// Evaluate the expression and write it to the interface.
    Write {
        /// Destination interface.
        iface: CIface,
        /// Compiled value expression.
        value: OpRange,
    },
    /// Allocate DMA memory and bind its base to a slot.
    DmaAlloc {
        /// Compiled allocation-size expression.
        len: OpRange,
        /// Register-file slot receiving the base address.
        slot: Slot,
    },
    /// Obtain `len` random bytes from the environment.
    GetRandBytes {
        /// Number of bytes.
        len: u32,
    },
    /// Obtain a timestamp, optionally binding it to a capture slot.
    GetTs {
        /// Capture slot, or `u32::MAX` for discard.
        slot: Slot,
    },
    /// Wait for an interrupt.
    WaitForIrq {
        /// Interrupt line.
        line: u32,
        /// Give-up timeout in microseconds.
        timeout_us: u64,
    },
    /// Delay for `us` microseconds.
    Delay {
        /// Microseconds.
        us: u64,
    },
    /// Poll the interface until the constraint holds.
    Poll {
        /// Polled interface.
        iface: CIface,
        /// Termination condition.
        cons: OpRange,
        /// Pre-folded delay per iteration (body delays + inter-iteration
        /// delay) in microseconds.
        iter_delay_us: u64,
        /// Iteration bound before divergence.
        max_iters: u64,
    },
    /// Copy payload from the trustlet buffer into a DMA allocation.
    CopyUserToDma {
        /// Destination allocation index.
        alloc: u32,
        /// Offset within the allocation.
        offset: u64,
        /// Source offset in the trustlet buffer.
        user_offset: u64,
        /// Compiled length expression.
        len: OpRange,
    },
    /// Copy device-produced payload from a DMA allocation to the trustlet
    /// buffer.
    CopyDmaToUser {
        /// Source allocation index.
        alloc: u32,
        /// Offset within the allocation.
        offset: u64,
        /// Destination offset in the trustlet buffer.
        user_offset: u64,
        /// Compiled length expression.
        len: OpRange,
    },
}

/// Sentinel slot for "no capture".
pub const NO_SLOT: Slot = u32::MAX;

/// Divergence-report metadata for one op, precomputed at compile time so the
/// hot loop never formats strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMeta {
    /// Index of the originating event in the source template.
    pub src_index: u32,
    /// Gold-driver recording site of the originating event.
    pub site: SourceSite,
    /// Rendered event (`Event::describe`).
    pub desc: String,
    /// Rendered constraint (`Constraint::describe`), empty when the op
    /// carries none.
    pub cons_desc: String,
}

/// One compiled parameter-selection check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamCheck {
    /// Register-file slot of the parameter.
    pub slot: Slot,
    /// Compiled constraint.
    pub cons: OpRange,
    /// Whether the constraint restricts anything (unbound parameters are
    /// accepted only for non-constraining checks, mirroring
    /// [`Template::matches`]).
    pub constraining: bool,
}

/// A template lowered to its flat, pre-resolved execution form.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayProgram {
    /// Template name (for reports).
    pub name: String,
    /// Device the program drives.
    pub device: String,
    /// Parameter names; parameter `i` lives in register-file slot `i`.
    pub param_names: Vec<String>,
    /// Capture names; capture `i` lives in slot `param_names.len() + i`.
    pub capture_names: Vec<String>,
    /// Number of DMA allocations; base `i` lives in slot
    /// `param_names.len() + capture_names.len() + i`.
    pub num_dma: u32,
    /// Compiled parameter-selection checks.
    pub param_checks: Vec<ParamCheck>,
    /// The flat op sequence.
    pub ops: Vec<Op>,
    /// Shared postfix expression pool.
    pub expr_ops: Vec<ExprOp>,
    /// Shared postfix constraint pool.
    pub cons_ops: Vec<ConsOp>,
    /// Pooled `OneOf` constants.
    pub pool: Vec<u64>,
    /// Worst-case expression value-stack depth (for scratch pre-sizing).
    pub max_value_stack: usize,
    /// Worst-case constraint boolean-stack depth.
    pub max_bool_stack: usize,
    /// Largest `get_rand_bytes` request in the program.
    pub max_rand_len: usize,
    /// Per-op divergence metadata, parallel to `ops`.
    pub meta: Vec<OpMeta>,
}

impl ReplayProgram {
    /// Total register-file size.
    pub fn num_slots(&self) -> usize {
        self.param_names.len() + self.capture_names.len() + self.num_dma as usize
    }

    /// Slot of the first DMA base register.
    pub fn dma_slot_base(&self) -> usize {
        self.param_names.len() + self.capture_names.len()
    }

    /// Bind trustlet arguments into a register file. `regs`/`bound` must be
    /// at least [`ReplayProgram::num_slots`] long; capture and DMA slots are
    /// reset to unbound.
    pub fn bind_args(&self, args: &HashMap<String, u64>, regs: &mut [u64], bound: &mut [bool]) {
        for b in bound[..self.num_slots()].iter_mut() {
            *b = false;
        }
        for (slot, name) in self.param_names.iter().enumerate() {
            if let Some(v) = args.get(name) {
                regs[slot] = *v;
                bound[slot] = true;
            }
        }
    }

    /// Bind trustlet arguments supplied as a borrowed slice — the zero-
    /// allocation entry path (`replay_mmc(rw, blkcnt, blkid, flag, buf)`
    /// style calls never build a name-keyed map; a linear scan over a
    /// handful of pairs beats hashing).
    pub fn bind_arg_slice(&self, args: &[(&str, u64)], regs: &mut [u64], bound: &mut [bool]) {
        for b in bound[..self.num_slots()].iter_mut() {
            *b = false;
        }
        for (slot, name) in self.param_names.iter().enumerate() {
            if let Some((_, v)) = args.iter().find(|(n, _)| *n == name.as_str()) {
                regs[slot] = *v;
                bound[slot] = true;
            }
        }
    }

    /// Whether a bound register file satisfies every parameter check —
    /// the compiled form of [`Template::matches`].
    pub fn matches_regs(&self, regs: &[u64], bound: &[bool], scratch: &mut EvalScratch) -> bool {
        self.param_checks.iter().all(|pc| {
            if bound[pc.slot as usize] {
                self.check_cons(pc.cons, regs[pc.slot as usize], regs, bound, scratch)
            } else {
                !pc.constraining
            }
        })
    }

    /// Evaluate a compiled expression against the register file. Returns
    /// `None` if the expression references an unbound slot.
    pub fn eval_expr(
        &self,
        range: OpRange,
        regs: &[u64],
        bound: &[bool],
        scratch: &mut EvalScratch,
    ) -> Option<u64> {
        let stack = &mut scratch.values;
        stack.clear();
        for op in &self.expr_ops[range.bounds()] {
            match op {
                ExprOp::Const(c) => stack.push(*c),
                ExprOp::Slot(s) => {
                    if !bound[*s as usize] {
                        return None;
                    }
                    stack.push(regs[*s as usize]);
                }
                ExprOp::And => bin(stack, |a, b| a & b),
                ExprOp::Or => bin(stack, |a, b| a | b),
                ExprOp::Xor => bin(stack, |a, b| a ^ b),
                ExprOp::Add => bin(stack, |a, b| a.wrapping_add(b)),
                ExprOp::Sub => bin(stack, |a, b| a.wrapping_sub(b)),
                ExprOp::Mul => bin(stack, |a, b| a.wrapping_mul(b)),
                ExprOp::Shl(n) => un(stack, |a| a.wrapping_shl(*n)),
                ExprOp::Shr(n) => un(stack, |a| a.wrapping_shr(*n)),
                ExprOp::Not => un(stack, |a| !a),
            }
        }
        stack.pop()
    }

    /// Check a compiled constraint against an observed value.
    pub fn check_cons(
        &self,
        range: OpRange,
        value: u64,
        regs: &[u64],
        bound: &[bool],
        scratch: &mut EvalScratch,
    ) -> bool {
        // The boolean stack is taken out of the scratch arena so expression
        // sub-evaluations can reuse `scratch.values` without aliasing.
        let mut bools = std::mem::take(&mut scratch.bools);
        bools.clear();
        for i in range.bounds() {
            let op = self.cons_ops[i];
            let r = match op {
                ConsOp::True => true,
                ConsOp::Eq(e) => {
                    self.eval_expr(e, regs, bound, scratch).map(|v| v == value).unwrap_or(false)
                }
                ConsOp::Ne(e) => {
                    self.eval_expr(e, regs, bound, scratch).map(|v| v != value).unwrap_or(false)
                }
                ConsOp::InRange { min, max } => value >= min && value <= max,
                ConsOp::OneOf(p) => self.pool[p.bounds()].contains(&value),
                ConsOp::MaskEq { mask, expected } => value & mask == expected,
                ConsOp::MaskClear { mask } => value & mask == 0,
                ConsOp::All(n) => {
                    let at = bools.len() - n as usize;
                    let r = bools[at..].iter().all(|b| *b);
                    bools.truncate(at);
                    r
                }
                ConsOp::AnyOf(n) => {
                    let at = bools.len() - n as usize;
                    let r = bools[at..].iter().any(|b| *b);
                    bools.truncate(at);
                    r
                }
            };
            bools.push(r);
        }
        let out = bools.pop().unwrap_or(true);
        scratch.bools = bools;
        out
    }
}

#[inline]
fn bin(stack: &mut Vec<u64>, f: impl Fn(u64, u64) -> u64) {
    // Compilation guarantees the stack discipline; a malformed pool would
    // only underflow into the safe `unwrap_or(0)` defaults.
    let b = stack.pop().unwrap_or(0);
    let a = stack.pop().unwrap_or(0);
    stack.push(f(a, b));
}

#[inline]
fn un(stack: &mut Vec<u64>, f: impl Fn(u64) -> u64) {
    let a = stack.pop().unwrap_or(0);
    stack.push(f(a));
}

/// Reusable evaluation stacks. Owned by the replayer's scratch arena and
/// pre-sized at load time so the hot path never reallocates.
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    /// Value stack for expression evaluation.
    pub values: Vec<u64>,
    /// Boolean stack for constraint evaluation.
    pub bools: Vec<bool>,
}

impl EvalScratch {
    /// Reserve capacity for a program's worst-case stack depths.
    /// (`Vec::reserve` is relative to the length, and the stacks are always
    /// drained between uses, so reserving the full depth is exact.)
    pub fn reserve_for(&mut self, prog: &ReplayProgram) {
        if self.values.capacity() < prog.max_value_stack {
            self.values.reserve(prog.max_value_stack);
        }
        if self.bools.capacity() < prog.max_bool_stack {
            self.bools.reserve(prog.max_bool_stack);
        }
    }
}

/// Errors raised when lowering a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The template references an environment interface in a replayable
    /// position (env interfaces are not readable/writable at replay time).
    EnvInterface(String),
    /// An expression references a parameter/capture the template does not
    /// declare or produce (should have been caught by static vetting).
    UnknownSymbol(String),
    /// Structural limits exceeded (slot or op counts beyond `u32`).
    TooLarge(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::EnvInterface(s) => write!(f, "env interface not replayable: {s}"),
            CompileError::UnknownSymbol(s) => write!(f, "unknown symbol: {s}"),
            CompileError::TooLarge(s) => write!(f, "template too large to compile: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

struct Compiler<'t> {
    template: &'t Template,
    param_names: Vec<String>,
    capture_names: Vec<String>,
    num_dma: u32,
    ops: Vec<Op>,
    expr_ops: Vec<ExprOp>,
    cons_ops: Vec<ConsOp>,
    pool: Vec<u64>,
    max_value_stack: usize,
    max_bool_stack: usize,
    max_rand_len: usize,
    meta: Vec<OpMeta>,
}

impl<'t> Compiler<'t> {
    fn slot_of_param(&self, name: &str) -> Option<Slot> {
        self.param_names.iter().position(|p| p == name).map(|i| i as Slot)
    }

    fn slot_of_capture(&self, name: &str) -> Option<Slot> {
        self.capture_names
            .iter()
            .position(|c| c == name)
            .map(|i| (self.param_names.len() + i) as Slot)
    }

    fn dma_slot(&self, idx: usize) -> Slot {
        (self.param_names.len() + self.capture_names.len() + idx) as Slot
    }

    /// Flatten a `SymExpr` tree into postfix ops; returns the range and
    /// tracks the worst-case stack depth.
    fn compile_expr(&mut self, expr: &SymExpr) -> Result<OpRange, CompileError> {
        let start = self.expr_ops.len();
        let depth = self.emit_expr(expr)?;
        self.max_value_stack = self.max_value_stack.max(depth);
        Ok(OpRange::of(start, self.expr_ops.len()))
    }

    fn emit_expr(&mut self, expr: &SymExpr) -> Result<usize, CompileError> {
        Ok(match expr {
            SymExpr::Const(c) => {
                self.expr_ops.push(ExprOp::Const(*c));
                1
            }
            SymExpr::Param(name) => {
                let slot = self
                    .slot_of_param(name)
                    .ok_or_else(|| CompileError::UnknownSymbol(format!("parameter `{name}`")))?;
                self.expr_ops.push(ExprOp::Slot(slot));
                1
            }
            SymExpr::Captured(name) => {
                let slot = self
                    .slot_of_capture(name)
                    .ok_or_else(|| CompileError::UnknownSymbol(format!("capture `{name}`")))?;
                self.expr_ops.push(ExprOp::Slot(slot));
                1
            }
            SymExpr::DmaBase(idx) => {
                if *idx >= self.num_dma as usize {
                    return Err(CompileError::UnknownSymbol(format!("dma[{idx}]")));
                }
                self.expr_ops.push(ExprOp::Slot(self.dma_slot(*idx)));
                1
            }
            SymExpr::And(a, b)
            | SymExpr::Or(a, b)
            | SymExpr::Xor(a, b)
            | SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b) => {
                let da = self.emit_expr(a)?;
                let db = self.emit_expr(b)?;
                self.expr_ops.push(match expr {
                    SymExpr::And(..) => ExprOp::And,
                    SymExpr::Or(..) => ExprOp::Or,
                    SymExpr::Xor(..) => ExprOp::Xor,
                    SymExpr::Add(..) => ExprOp::Add,
                    SymExpr::Sub(..) => ExprOp::Sub,
                    SymExpr::Mul(..) => ExprOp::Mul,
                    _ => unreachable!(),
                });
                // Left operand stays on the stack while the right evaluates.
                da.max(1 + db)
            }
            SymExpr::Shl(a, n) => {
                let d = self.emit_expr(a)?;
                self.expr_ops.push(ExprOp::Shl(*n));
                d
            }
            SymExpr::Shr(a, n) => {
                let d = self.emit_expr(a)?;
                self.expr_ops.push(ExprOp::Shr(*n));
                d
            }
            SymExpr::Not(a) => {
                let d = self.emit_expr(a)?;
                self.expr_ops.push(ExprOp::Not);
                d
            }
        })
    }

    fn compile_cons(&mut self, cons: &Constraint) -> Result<OpRange, CompileError> {
        let start = self.cons_ops.len();
        let depth = self.emit_cons(cons)?;
        self.max_bool_stack = self.max_bool_stack.max(depth);
        Ok(OpRange::of(start, self.cons_ops.len()))
    }

    fn emit_cons(&mut self, cons: &Constraint) -> Result<usize, CompileError> {
        Ok(match cons {
            Constraint::Any => {
                self.cons_ops.push(ConsOp::True);
                1
            }
            Constraint::Eq(e) => {
                let r = self.compile_expr(e)?;
                self.cons_ops.push(ConsOp::Eq(r));
                1
            }
            Constraint::Ne(e) => {
                let r = self.compile_expr(e)?;
                self.cons_ops.push(ConsOp::Ne(r));
                1
            }
            Constraint::InRange { min, max } => {
                self.cons_ops.push(ConsOp::InRange { min: *min, max: *max });
                1
            }
            Constraint::OneOf(vals) => {
                let start = self.pool.len();
                self.pool.extend_from_slice(vals);
                self.cons_ops.push(ConsOp::OneOf(OpRange::of(start, self.pool.len())));
                1
            }
            Constraint::MaskEq { mask, expected } => {
                self.cons_ops.push(ConsOp::MaskEq { mask: *mask, expected: *expected });
                1
            }
            Constraint::MaskClear { mask } => {
                self.cons_ops.push(ConsOp::MaskClear { mask: *mask });
                1
            }
            Constraint::All(cs) | Constraint::AnyOf(cs) => {
                if cs.len() > u16::MAX as usize {
                    return Err(CompileError::TooLarge("constraint fan-in".into()));
                }
                let mut depth = 0usize;
                for (i, c) in cs.iter().enumerate() {
                    depth = depth.max(i + self.emit_cons(c)?);
                }
                self.cons_ops.push(match cons {
                    Constraint::All(_) => ConsOp::All(cs.len() as u16),
                    _ => ConsOp::AnyOf(cs.len() as u16),
                });
                depth.max(1)
            }
        })
    }

    fn compile_iface(&self, iface: &Iface, what: &str) -> Result<CIface, CompileError> {
        match iface {
            Iface::Reg { addr, .. } => Ok(CIface::Reg(*addr)),
            Iface::Shm { alloc, offset } => {
                Ok(CIface::Shm { alloc: *alloc as u32, offset: *offset })
            }
            Iface::Env(api) => Err(CompileError::EnvInterface(format!("{what} on env:{api:?}"))),
        }
    }

    fn compile_sink(&self, sink: &ReadSink) -> Result<CSink, CompileError> {
        Ok(match sink {
            ReadSink::Discard => CSink::Discard,
            ReadSink::Capture(name) => CSink::Capture(
                self.slot_of_capture(name)
                    .ok_or_else(|| CompileError::UnknownSymbol(format!("capture `{name}`")))?,
            ),
            ReadSink::UserData { offset } => CSink::UserData(*offset),
        })
    }

    fn push_op(
        &mut self,
        op: Op,
        src_index: usize,
        site: &SourceSite,
        desc: String,
        cons_desc: String,
    ) {
        self.ops.push(op);
        self.meta.push(OpMeta { src_index: src_index as u32, site: site.clone(), desc, cons_desc });
    }

    fn run(mut self) -> Result<ReplayProgram, CompileError> {
        if self.template.events.len() > u32::MAX as usize {
            return Err(CompileError::TooLarge("event count".into()));
        }
        let mut dma_seen = 0usize;
        // `self.template` is a shared reference; copy it out so iterating the
        // events does not pin a borrow of `self` across the `&mut self` calls.
        let template = self.template;
        for (idx, re) in template.events.iter().enumerate() {
            let (event, site, idx) = (&re.event, &re.site, &idx);
            let desc = event.describe();
            match event {
                Event::Read { iface, constraint, sink, .. } => {
                    let ci = self.compile_iface(iface, "read")?;
                    let cr = self.compile_cons(constraint)?;
                    let cs = self.compile_sink(sink)?;
                    let cd = constraint.describe();
                    self.push_op(Op::Read { iface: ci, cons: cr, sink: cs }, *idx, site, desc, cd);
                }
                Event::Write { iface, value } => {
                    let ci = self.compile_iface(iface, "write")?;
                    let vr = self.compile_expr(value)?;
                    self.push_op(
                        Op::Write { iface: ci, value: vr },
                        *idx,
                        site,
                        desc,
                        String::new(),
                    );
                }
                Event::DmaAlloc { len, .. } => {
                    let lr = self.compile_expr(len)?;
                    let slot = self.dma_slot(dma_seen);
                    dma_seen += 1;
                    self.push_op(Op::DmaAlloc { len: lr, slot }, *idx, site, desc, String::new());
                }
                Event::GetRandBytes { len, .. } => {
                    self.max_rand_len = self.max_rand_len.max(*len as usize);
                    self.push_op(Op::GetRandBytes { len: *len }, *idx, site, desc, String::new());
                }
                Event::GetTs { sink, .. } => {
                    let slot = match sink {
                        ReadSink::Capture(name) => self.slot_of_capture(name).ok_or_else(|| {
                            CompileError::UnknownSymbol(format!("capture `{name}`"))
                        })?,
                        _ => NO_SLOT,
                    };
                    self.push_op(Op::GetTs { slot }, *idx, site, desc, String::new());
                }
                Event::WaitForIrq { line, timeout_us } => {
                    self.push_op(
                        Op::WaitForIrq { line: *line, timeout_us: *timeout_us },
                        *idx,
                        site,
                        desc,
                        String::new(),
                    );
                }
                Event::Delay { us } => {
                    self.push_op(Op::Delay { us: *us }, *idx, site, desc, String::new());
                }
                Event::Poll { iface, body, cond, delay_us, max_iters } => {
                    let ci = self.compile_iface(iface, "poll")?;
                    let cr = self.compile_cons(cond)?;
                    // The interpreter only ever honoured `delay` events inside
                    // poll bodies; fold them into one per-iteration delay.
                    let body_us: u64 = body
                        .iter()
                        .map(|e| if let Event::Delay { us } = e { *us } else { 0 })
                        .sum();
                    let cd = cond.describe();
                    self.push_op(
                        Op::Poll {
                            iface: ci,
                            cons: cr,
                            iter_delay_us: body_us + (*delay_us).max(1),
                            max_iters: *max_iters,
                        },
                        *idx,
                        site,
                        desc,
                        cd,
                    );
                }
                Event::CopyUserToDma { alloc, offset, user_offset, len } => {
                    let lr = self.compile_expr(len)?;
                    self.push_op(
                        Op::CopyUserToDma {
                            alloc: *alloc as u32,
                            offset: *offset,
                            user_offset: *user_offset,
                            len: lr,
                        },
                        *idx,
                        site,
                        desc,
                        String::new(),
                    );
                }
                Event::CopyDmaToUser { alloc, offset, user_offset, len } => {
                    let lr = self.compile_expr(len)?;
                    self.push_op(
                        Op::CopyDmaToUser {
                            alloc: *alloc as u32,
                            offset: *offset,
                            user_offset: *user_offset,
                            len: lr,
                        },
                        *idx,
                        site,
                        desc,
                        String::new(),
                    );
                }
            }
        }

        // Compile the parameter-selection checks last: they may reference
        // other parameters (e.g. `Eq(Param(..))`) but share the same pools.
        let mut param_checks = Vec::with_capacity(template.params.len());
        for (i, p) in template.params.iter().enumerate() {
            let cons = self.compile_cons(&p.constraint)?;
            param_checks.push(ParamCheck {
                slot: i as Slot,
                cons,
                constraining: p.constraint.is_constraining(),
            });
        }

        Ok(ReplayProgram {
            name: self.template.name.clone(),
            device: self.template.device.clone(),
            param_names: self.param_names,
            capture_names: self.capture_names,
            num_dma: self.num_dma,
            param_checks,
            ops: self.ops,
            expr_ops: self.expr_ops,
            cons_ops: self.cons_ops,
            pool: self.pool,
            max_value_stack: self.max_value_stack.max(1),
            max_bool_stack: self.max_bool_stack.max(1),
            max_rand_len: self.max_rand_len,
            meta: self.meta,
        })
    }
}

/// Collect capture names in first-definition order, including sinks inside
/// poll bodies (never executed, but validation accepts them; the slots simply
/// stay unbound at run time, exactly like the tree-walking interpreter).
fn collect_captures<'a>(events: impl Iterator<Item = &'a Event>, out: &mut Vec<String>) {
    for e in events {
        match e {
            Event::Read { sink: ReadSink::Capture(name), .. }
            | Event::GetRandBytes { sink: ReadSink::Capture(name), .. }
            | Event::GetTs { sink: ReadSink::Capture(name), .. }
                if !out.contains(name) =>
            {
                out.push(name.clone());
            }
            Event::Poll { body, .. } => collect_captures(body.iter(), out),
            _ => {}
        }
    }
}

/// Lower a vetted template into its flat replay program.
///
/// The template should already have passed [`Template::validate`]; compilation
/// re-checks symbol resolution as a defence in depth and additionally rejects
/// templates that read/write environment interfaces (which the replayer could
/// never execute).
pub fn compile(template: &Template) -> Result<ReplayProgram, CompileError> {
    let param_names: Vec<String> = template.params.iter().map(|p| p.name.clone()).collect();
    let mut capture_names = Vec::new();
    collect_captures(template.events.iter().map(|re| &re.event), &mut capture_names);
    let num_dma = template.dma_plan().len();
    if param_names.len() + capture_names.len() + num_dma >= NO_SLOT as usize {
        return Err(CompileError::TooLarge("register file".into()));
    }
    let compiler = Compiler {
        template,
        param_names,
        capture_names,
        num_dma: num_dma as u32,
        ops: Vec::new(),
        expr_ops: Vec::new(),
        cons_ops: Vec::new(),
        pool: Vec::new(),
        max_value_stack: 0,
        max_bool_stack: 0,
        max_rand_len: 0,
        meta: Vec::new(),
    };
    compiler.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DataDirection, DmaRole, RecordedEvent};
    use crate::template::{ParamSpec, TemplateMeta};

    fn reg(name: &str, addr: u64) -> Iface {
        Iface::Reg { addr, name: name.to_string() }
    }

    fn mini_template() -> Template {
        Template {
            name: "mini".into(),
            entry: "replay_mini".into(),
            device: "dev".into(),
            params: vec![
                ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(1) },
                ParamSpec {
                    name: "blkcnt".into(),
                    constraint: Constraint::InRange { min: 1, max: 8 },
                },
            ],
            direction: DataDirection::UserToDevice,
            data_len: SymExpr::Param("blkcnt".into()).shl(9),
            irq_line: None,
            events: vec![
                RecordedEvent::bare(Event::DmaAlloc {
                    len: SymExpr::Const(4096),
                    role: DmaRole::DataOut,
                }),
                RecordedEvent::bare(Event::Write {
                    iface: reg("ARG", 0x100),
                    value: SymExpr::Param("blkcnt".into()).shl(9).or_const(0x8000),
                }),
                RecordedEvent::bare(Event::Read {
                    iface: reg("STS", 0x104),
                    constraint: Constraint::All(vec![
                        Constraint::MaskClear { mask: 0x1 },
                        Constraint::InRange { min: 0, max: 0xffff },
                    ]),
                    len: 4,
                    sink: ReadSink::Capture("sts".into()),
                }),
                RecordedEvent::bare(Event::Write {
                    iface: reg("ECHO", 0x108),
                    value: SymExpr::Captured("sts".into()).plus(1),
                }),
                RecordedEvent::bare(Event::Poll {
                    iface: reg("BUSY", 0x10c),
                    body: vec![Event::Delay { us: 3 }],
                    cond: Constraint::MaskClear { mask: 0x8000 },
                    delay_us: 7,
                    max_iters: 100,
                }),
            ],
            meta: TemplateMeta::default(),
        }
    }

    #[test]
    fn compiles_slots_and_ops() {
        let prog = compile(&mini_template()).unwrap();
        assert_eq!(prog.param_names, vec!["rw".to_string(), "blkcnt".to_string()]);
        assert_eq!(prog.capture_names, vec!["sts".to_string()]);
        assert_eq!(prog.num_dma, 1);
        assert_eq!(prog.num_slots(), 4);
        assert_eq!(prog.ops.len(), 5);
        // Poll body delay folded: 3 (body) + 7 (delay_us) per iteration.
        assert!(matches!(prog.ops[4], Op::Poll { iter_delay_us: 10, max_iters: 100, .. }));
        assert_eq!(prog.meta[4].src_index, 4);
        assert!(prog.meta[4].cons_desc.contains("0x8000"));
    }

    #[test]
    fn expr_eval_matches_tree_walk() {
        let t = mini_template();
        let prog = compile(&t).unwrap();
        let mut regs = vec![0u64; prog.num_slots()];
        let mut bound = vec![false; prog.num_slots()];
        let args: HashMap<String, u64> =
            [("rw".to_string(), 1u64), ("blkcnt".to_string(), 4)].into_iter().collect();
        prog.bind_args(&args, &mut regs, &mut bound);
        let mut scratch = EvalScratch::default();
        // Op 1 is the parameterised write: (blkcnt << 9) | 0x8000.
        let Op::Write { value, .. } = prog.ops[1] else { panic!("expected write") };
        assert_eq!(prog.eval_expr(value, &regs, &bound, &mut scratch), Some((4 << 9) | 0x8000));
        // The capture is unbound until executed.
        let Op::Write { value, .. } = prog.ops[3] else { panic!("expected write") };
        assert_eq!(prog.eval_expr(value, &regs, &bound, &mut scratch), None);
        // Bind the capture slot and re-evaluate.
        let cap_slot = prog.param_names.len();
        regs[cap_slot] = 41;
        bound[cap_slot] = true;
        assert_eq!(prog.eval_expr(value, &regs, &bound, &mut scratch), Some(42));
    }

    #[test]
    fn compiled_constraints_match_tree_walk() {
        let t = mini_template();
        let prog = compile(&t).unwrap();
        let regs = vec![0u64; prog.num_slots()];
        let bound = vec![true; prog.num_slots()];
        let mut scratch = EvalScratch::default();
        let Op::Read { cons, .. } = prog.ops[2] else { panic!("expected read") };
        // All([MaskClear(1), InRange(0..=0xffff)]).
        assert!(prog.check_cons(cons, 0x10, &regs, &bound, &mut scratch));
        assert!(!prog.check_cons(cons, 0x11, &regs, &bound, &mut scratch), "mask bit set");
        assert!(!prog.check_cons(cons, 0x1_0000, &regs, &bound, &mut scratch), "out of range");
    }

    #[test]
    fn compiled_matches_agrees_with_template_matches() {
        let t = mini_template();
        let prog = compile(&t).unwrap();
        let mut regs = vec![0u64; prog.num_slots()];
        let mut bound = vec![false; prog.num_slots()];
        let mut scratch = EvalScratch::default();
        for (rw, blkcnt) in [(1u64, 4u64), (1, 9), (0, 4), (1, 1), (2, 8)] {
            let args: HashMap<String, u64> =
                [("rw".to_string(), rw), ("blkcnt".to_string(), blkcnt)].into_iter().collect();
            prog.bind_args(&args, &mut regs, &mut bound);
            assert_eq!(
                prog.matches_regs(&regs, &bound, &mut scratch),
                t.matches(&args),
                "disagreement at rw={rw} blkcnt={blkcnt}"
            );
        }
    }

    #[test]
    fn env_interfaces_are_rejected_at_compile_time() {
        let mut t = mini_template();
        t.events.push(RecordedEvent::bare(Event::Read {
            iface: Iface::Env(crate::event::EnvApi::GetTs),
            constraint: Constraint::Any,
            len: 4,
            sink: ReadSink::Discard,
        }));
        assert!(matches!(compile(&t), Err(CompileError::EnvInterface(_))));
    }

    #[test]
    fn unknown_symbols_are_rejected() {
        let mut t = mini_template();
        t.events.push(RecordedEvent::bare(Event::Write {
            iface: reg("X", 0x110),
            value: SymExpr::Param("ghost".into()),
        }));
        assert!(matches!(compile(&t), Err(CompileError::UnknownSymbol(_))));
    }

    #[test]
    fn scratch_reservation_grows_across_programs() {
        // Regression: reserving for a small program first must not cap the
        // scratch below a later, deeper program's needs (`Vec::reserve` is
        // relative to the length, not the capacity).
        let small = compile(&mini_template()).unwrap();
        let mut deep = mini_template();
        // Right-nested additions: depth grows linearly with the chain.
        let expr = (0..12).fold(SymExpr::Const(1), |acc, i| {
            SymExpr::Add(Box::new(SymExpr::Const(i)), Box::new(acc))
        });
        deep.events
            .push(RecordedEvent::bare(Event::Write { iface: reg("DEEP", 0x110), value: expr }));
        let big = compile(&deep).unwrap();
        assert!(big.max_value_stack > small.max_value_stack);
        let mut s = EvalScratch::default();
        s.reserve_for(&small);
        s.reserve_for(&big);
        assert!(s.values.capacity() >= big.max_value_stack);
        assert!(s.bools.capacity() >= big.max_bool_stack);
    }

    #[test]
    fn oneof_constants_are_pooled() {
        let mut t = mini_template();
        t.params.push(ParamSpec {
            name: "res".into(),
            constraint: Constraint::OneOf(vec![720, 1080, 1440]),
        });
        let prog = compile(&t).unwrap();
        assert!(prog.pool.len() >= 3);
        let mut regs = vec![0u64; prog.num_slots()];
        let mut bound = vec![false; prog.num_slots()];
        let mut scratch = EvalScratch::default();
        let args: HashMap<String, u64> =
            [("rw".to_string(), 1u64), ("blkcnt".to_string(), 4), ("res".to_string(), 1080)]
                .into_iter()
                .collect();
        prog.bind_args(&args, &mut regs, &mut bound);
        assert!(prog.matches_regs(&regs, &bound, &mut scratch));
        regs[2] = 999; // res slot
        assert!(!prog.matches_regs(&regs, &bound, &mut scratch));
    }
}
