//! Quickstart: record an MMC driverlet, load it into the TEE, and perform
//! secure block IO that the untrusted OS can neither see nor reach.
//!
//! Run with `cargo run --example quickstart`.

use dlt_core::{replay_mmc, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{record_mmc_driverlet_subset, DEV_KEY};
use dlt_tee::{SecureIo, TeeKernel};

fn main() {
    // 1. On the developer machine: exercise the full driver and distil a
    //    driverlet (here restricted to 1- and 8-block templates for speed).
    println!("[record] running the MMC record campaign...");
    let driverlet = record_mmc_driverlet_subset(&[1, 8]).expect("record campaign");
    println!(
        "[record] {} templates, {} events, coverage:\n{}",
        driverlet.templates.len(),
        driverlet.total_events(),
        driverlet.coverage.describe()
    );

    // 2. On the target device: build the platform, assign the MMC controller
    //    and DMA engine to the TEE, and load the signed driverlet.
    let platform = Platform::new();
    let mmc = MmcSubsystem::attach(&platform).expect("attach MMC");
    TeeKernel::install(&platform, &["sdhost", "dma"]).expect("install TEE");
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(driverlet, DEV_KEY).expect("verify + load driverlet");

    // 3. A trustlet writes and reads back a secret, entirely inside the TEE.
    let secret = b"driverlets: minimum viable drivers for TrustZone";
    let mut block = vec![0u8; 512];
    block[..secret.len()].copy_from_slice(secret);
    replay_mmc(&mut replayer, 0x10, 1, 42, 0, &mut block).expect("secure write");

    let mut back = vec![0u8; 512];
    replay_mmc(&mut replayer, 0x1, 1, 42, 0, &mut back).expect("secure read");
    assert_eq!(&back[..secret.len()], secret);
    println!(
        "[replay] round-tripped {} bytes through block 42 of the secure SD card",
        secret.len()
    );

    // 4. The card really holds the data, and the normal world really cannot
    //    reach the controller.
    assert_eq!(&mmc.sdhost.lock().card().peek_block(42)[..secret.len()], secret);
    let blocked = platform.bus.lock().mmio_read32(
        dlt_dev_mmc::SDHOST_BASE,
        dlt_hw::World::NonSecure,
        dlt_hw::bus::MmioAttr::Cached,
    );
    assert!(blocked.is_err());
    println!("[tzasc]  normal-world access to the MMC controller faults, as expected");
    println!(
        "[stats]  replayer: {} invocations, {} events, {} resets, {} divergences",
        replayer.stats().invocations,
        replayer.stats().events_executed,
        replayer.stats().resets,
        replayer.stats().divergences
    );
    println!("quickstart complete.");
}
