//! # dlt-gold-drivers — full-featured ("gold") drivers for the simulated devices
//!
//! These are the drivers the paper assumes already exist in a commodity OS
//! (§3.1 "the gold driver"): feature-rich, performance-oriented, and far too
//! entangled with kernel services to port into a TEE. The record step
//! exercises them with concrete sample requests; the driverlets then reuse
//! their *interactions*, not their code.
//!
//! Structure:
//!
//! * [`kenv`] — the kernel-environment interface ([`kenv::HwIo`]) every gold
//!   driver uses for register access, shared-memory access, interrupts, DMA
//!   allocation, randomness, timestamps and delays. This is exactly the
//!   three-interface surface the recorder interposes on (§4.1:
//!   Program↔Driver, Environment↔Driver, Device↔Driver).
//! * [`mmc`] — the MMC stack: a SDHOST host-controller driver (card
//!   initialisation, command issue, PIO and DMA data paths, the last-3-words
//!   PIO quirk, periodic bus re-tuning) and a block layer with request
//!   merging and a write-back cache (the "native" behaviour of §8.3.1) plus
//!   an O_SYNC mode ("native-sync").
//! * [`usb`] — the USB stack: a DWC2 host-controller driver (core init, port
//!   reset, enumeration via control transfers, bulk channel scheduling) and a
//!   mass-storage class driver (bulk-only transport, CBW/CSW, SCSI command
//!   selection, sub-page read-modify-write).
//! * [`vchiq`] — the VCHIQ/MMAL stack: queue setup, message send/receive,
//!   camera component lifecycle and frame capture.
//! * [`stats`] — static effort metadata backing the Table 7/8 reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kenv;
pub mod mmc;
pub mod stats;
pub mod usb;
pub mod vchiq;

pub use kenv::{BusIo, DriverError, HwIo, IoFlags, Rw};
