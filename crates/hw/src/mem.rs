//! Physical memory and DMA regions.
//!
//! A single flat [`PhysMem`] backs everything a device can reach over the
//! AXI bus: DMA descriptors, data pages, and the VCHIQ shared-memory message
//! queue. Gold drivers allocate from it through the kernel-env interface; the
//! TEE reserves a contiguous CMA-style pool out of it for the replayer
//! (the paper reserves 3 MB of TEE RAM, §8.3.1).

use crate::error::HwError;
use crate::HwResult;

/// A contiguous physical memory region handed out by a DMA allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmaRegion {
    /// Physical base address of the region.
    pub base: u64,
    /// Length in bytes.
    pub len: usize,
}

impl DmaRegion {
    /// Create a region descriptor.
    pub fn new(base: u64, len: usize) -> Self {
        DmaRegion { base, len }
    }

    /// Physical address one past the end of the region.
    pub fn end(&self) -> u64 {
        self.base + self.len as u64
    }

    /// Whether `addr..addr+len` lies fully inside this region.
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr.saturating_add(len as u64) <= self.end()
    }
}

/// Flat, bounds-checked physical memory.
#[derive(Debug, Clone)]
pub struct PhysMem {
    base: u64,
    data: Vec<u8>,
}

impl PhysMem {
    /// Create `size` bytes of zeroed physical memory starting at `base`.
    pub fn new(base: u64, size: usize) -> Self {
        PhysMem { base, data: vec![0u8; size] }
    }

    /// Physical base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Physical address one past the end.
    pub fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }

    fn offset(&self, addr: u64, len: usize) -> HwResult<usize> {
        if addr < self.base || addr.saturating_add(len as u64) > self.end() {
            return Err(HwError::OutOfBounds { addr, len });
        }
        Ok((addr - self.base) as usize)
    }

    /// Read a single byte.
    pub fn read8(&self, addr: u64) -> HwResult<u8> {
        let off = self.offset(addr, 1)?;
        Ok(self.data[off])
    }

    /// Write a single byte.
    pub fn write8(&mut self, addr: u64, val: u8) -> HwResult<()> {
        let off = self.offset(addr, 1)?;
        self.data[off] = val;
        Ok(())
    }

    /// Read a little-endian 16-bit value.
    pub fn read16(&self, addr: u64) -> HwResult<u16> {
        let off = self.offset(addr, 2)?;
        Ok(u16::from_le_bytes([self.data[off], self.data[off + 1]]))
    }

    /// Write a little-endian 16-bit value.
    pub fn write16(&mut self, addr: u64, val: u16) -> HwResult<()> {
        let off = self.offset(addr, 2)?;
        self.data[off..off + 2].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Read a little-endian 32-bit value.
    pub fn read32(&self, addr: u64) -> HwResult<u32> {
        let off = self.offset(addr, 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[off..off + 4]);
        Ok(u32::from_le_bytes(b))
    }

    /// Write a little-endian 32-bit value.
    pub fn write32(&mut self, addr: u64, val: u32) -> HwResult<()> {
        let off = self.offset(addr, 4)?;
        self.data[off..off + 4].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Read a little-endian 64-bit value.
    pub fn read64(&self, addr: u64) -> HwResult<u64> {
        let off = self.offset(addr, 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian 64-bit value.
    pub fn write64(&mut self, addr: u64, val: u64) -> HwResult<()> {
        let off = self.offset(addr, 8)?;
        self.data[off..off + 8].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Copy `out.len()` bytes starting at `addr` into `out`.
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) -> HwResult<()> {
        let off = self.offset(addr, out.len())?;
        out.copy_from_slice(&self.data[off..off + out.len()]);
        Ok(())
    }

    /// Copy `src` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) -> HwResult<()> {
        let off = self.offset(addr, src.len())?;
        self.data[off..off + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Fill `len` bytes starting at `addr` with `val`.
    pub fn fill(&mut self, addr: u64, len: usize, val: u8) -> HwResult<()> {
        let off = self.offset(addr, len)?;
        self.data[off..off + len].fill(val);
        Ok(())
    }

    /// Return a copy of `len` bytes starting at `addr`.
    pub fn snapshot(&self, addr: u64, len: usize) -> HwResult<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read_bytes(addr, &mut v)?;
        Ok(v)
    }
}

/// A trivially simple, first-fit contiguous allocator over a [`DmaRegion`].
///
/// This is what backs both the normal-world `dma_alloc` kernel API and the
/// TEE's CMA pool. Allocations are 64-byte aligned (cache-line), matching the
/// alignment the gold drivers assume for descriptors.
#[derive(Debug, Clone)]
pub struct BumpDmaAllocator {
    region: DmaRegion,
    next: u64,
    allocations: Vec<DmaRegion>,
    high_water: u64,
}

impl BumpDmaAllocator {
    /// Alignment (bytes) applied to every allocation.
    pub const ALIGN: u64 = 64;

    /// Create an allocator managing `region`.
    pub fn new(region: DmaRegion) -> Self {
        BumpDmaAllocator { region, next: region.base, allocations: Vec::new(), high_water: 0 }
    }

    /// The region under management.
    pub fn region(&self) -> DmaRegion {
        self.region
    }

    /// Alignment applied to allocations of 16 KiB and larger (CMA-style), so
    /// that large shared structures such as the VCHIQ queue land on the
    /// 16 KiB boundary their publication register assumes.
    pub const BIG_ALIGN: u64 = 0x4000;

    /// Allocate `len` bytes of physically contiguous memory.
    pub fn alloc(&mut self, len: usize) -> HwResult<DmaRegion> {
        let align = if len as u64 >= Self::BIG_ALIGN { Self::BIG_ALIGN } else { Self::ALIGN };
        let aligned = (self.next + align - 1) & !(align - 1);
        let end = aligned.saturating_add(len as u64);
        if end > self.region.end() {
            return Err(HwError::OutOfBounds { addr: aligned, len });
        }
        self.next = end;
        let r = DmaRegion::new(aligned, len);
        self.allocations.push(r);
        self.high_water = self.high_water.max(end - self.region.base);
        Ok(r)
    }

    /// Release every allocation (the replayer frees all DMA memory between
    /// template executions; the gold drivers free per request).
    pub fn release_all(&mut self) {
        self.next = self.region.base;
        self.allocations.clear();
    }

    /// Number of live allocations.
    pub fn live(&self) -> usize {
        self.allocations.len()
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn used(&self) -> u64 {
        self.next - self.region.base
    }

    /// Highest number of bytes ever in use.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// All live allocations, in allocation order.
    pub fn allocations(&self) -> &[DmaRegion] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_read_write_round_trip() {
        let mut m = PhysMem::new(0x1000, 4096);
        m.write8(0x1000, 0xab).unwrap();
        assert_eq!(m.read8(0x1000).unwrap(), 0xab);
        m.write16(0x1002, 0xbeef).unwrap();
        assert_eq!(m.read16(0x1002).unwrap(), 0xbeef);
        m.write32(0x1004, 0xdead_beef).unwrap();
        assert_eq!(m.read32(0x1004).unwrap(), 0xdead_beef);
        m.write64(0x1008, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read64(0x1008).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(0, 16);
        m.write32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read8(0).unwrap(), 0x04);
        assert_eq!(m.read8(3).unwrap(), 0x01);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = PhysMem::new(0x1000, 64);
        assert!(matches!(m.read32(0x0ffc), Err(HwError::OutOfBounds { .. })));
        assert!(matches!(m.read32(0x1000 + 61), Err(HwError::OutOfBounds { .. })));
        assert!(matches!(m.write_bytes(0x1000 + 60, &[0; 8]), Err(HwError::OutOfBounds { .. })));
        assert!(m.write_bytes(0x1000 + 60, &[0; 4]).is_ok());
    }

    #[test]
    fn bulk_read_write_round_trip() {
        let mut m = PhysMem::new(0, 1024);
        let src: Vec<u8> = (0..=255u8).collect();
        m.write_bytes(100, &src).unwrap();
        let mut out = vec![0u8; 256];
        m.read_bytes(100, &mut out).unwrap();
        assert_eq!(out, src);
        m.fill(100, 256, 0xff).unwrap();
        assert_eq!(m.read8(100).unwrap(), 0xff);
        assert_eq!(m.read8(355).unwrap(), 0xff);
    }

    #[test]
    fn dma_region_containment() {
        let r = DmaRegion::new(0x4000, 0x1000);
        assert!(r.contains(0x4000, 0x1000));
        assert!(r.contains(0x4800, 0x100));
        assert!(!r.contains(0x3fff, 2));
        assert!(!r.contains(0x4f00, 0x200));
        assert_eq!(r.end(), 0x5000);
    }

    #[test]
    fn bump_allocator_aligns_and_tracks() {
        let mut a = BumpDmaAllocator::new(DmaRegion::new(0x10_0000, 0x1_0000));
        let r1 = a.alloc(31).unwrap();
        assert_eq!(r1.base % BumpDmaAllocator::ALIGN, 0);
        let r2 = a.alloc(31).unwrap();
        assert!(r2.base >= r1.end());
        assert_eq!(r2.base % BumpDmaAllocator::ALIGN, 0);
        assert_eq!(a.live(), 2);
        let used = a.used();
        assert!(used >= 62);
        a.release_all();
        assert_eq!(a.live(), 0);
        assert_eq!(a.used(), 0);
        assert!(a.high_water() >= used);
    }

    #[test]
    fn bump_allocator_exhaustion() {
        let mut a = BumpDmaAllocator::new(DmaRegion::new(0, 256));
        assert!(a.alloc(200).is_ok());
        assert!(matches!(a.alloc(200), Err(HwError::OutOfBounds { .. })));
    }
}
