//! # dlt-core — the driverlet runtime (replayer)
//!
//! This crate is the paper's primary contribution: the in-TEE replayer that
//! turns signed interaction templates into working device access (§5).
//!
//! The replayer:
//!
//! * verifies and statically vets driverlet bundles before accepting them
//!   ([`Replayer::load_driverlet`]) — signature check, template validation,
//!   and a bounds check that every register event stays inside the window of
//!   a secure-world device (the self-hardening measures of §5) — then lowers
//!   each template into a flat replay program (`dlt_template::program`) so
//!   the hot path runs a zero-allocation branch-on-opcode loop,
//! * selects the unique template whose parameter constraints the trustlet's
//!   arguments satisfy, rejecting out-of-coverage requests,
//! * executes the template's events sequentially and transactionally: input
//!   constraints are checked against the live device, outputs are evaluated
//!   from the trustlet's dynamic arguments, captured device values and DMA
//!   base addresses, polling loops run until their recorded termination
//!   condition, and payload moves between the trustlet buffer and the TEE's
//!   DMA pool,
//! * soft-resets the device before every template execution and on any
//!   divergence, re-executes a bounded number of times, and aborts with a
//!   report of the failing event and its gold-driver recording site when the
//!   divergence persists (§3.3, §8.2.1).
//!
//! The `replay_mmc` / `replay_usb` / `replay_cam` wrappers expose the
//! paper's trustlet-facing interfaces (Figure 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod inject;
mod interp;
pub mod replayer;

pub use api::{replay_cam, replay_mmc, replay_usb, SecureBlockIo, MMC_BLOCK_SIZE};
pub use inject::{ConstraintFlipper, FaultPlan, FlipOutcome, MutationCtx, ResponseMutator};
pub use replayer::{
    DivergenceEvent, DivergenceReport, ReplayConfig, ReplayError, ReplayMode, ReplayOutcome,
    ReplayStats, Replayer,
};
