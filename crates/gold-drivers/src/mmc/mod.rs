//! The MMC gold-driver stack.
//!
//! Mirrors the shape of the Linux MMC framework the paper describes (§7.1.1):
//! a host-controller driver ([`host::MmcHost`]) that knows the SDHOST
//! register programming model, and a block layer ([`block::MmcBlockDriver`])
//! that adds request merging and a write-back cache — the features that make
//! the *native* driver fast and asynchronous, and that the driverlet
//! deliberately forgoes (§8.3.2).

pub mod block;
pub mod host;

pub use block::{CacheMode, MmcBlockDriver};
pub use host::{HostStats, MmcHost};
