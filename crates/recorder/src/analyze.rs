//! Differential concolic analysis: turning aligned traces into a template.
//!
//! The recorder runs the same record entry several times with perturbed
//! parameters and a skewed DMA allocator. Values that stay constant become
//! constraints; values that track a parameter, a DMA base or an earlier
//! device-produced value become symbolic expressions (the taint sinks of
//! Tables 4 and 6); values that track the payload buffer become user-data
//! sinks; and perturbations that change the trace *shape* mark the path
//! boundaries that become parameter constraints.

use std::collections::HashMap;

use dlt_template::{
    Constraint, DataDirection, DmaRole, Event, Iface, ParamSpec, ReadSink, RecordedEvent,
    SourceSite, SymExpr, Template, TemplateMeta,
};

use crate::trace::{Trace, TraceOp};
use crate::RecorderError;

/// One executed record run: the parameters used, the payload buffer before
/// and after, and the interaction trace.
#[derive(Debug, Clone)]
pub struct RecordRun {
    /// Parameter values for this run.
    pub params: HashMap<String, u64>,
    /// Payload buffer contents before the run (what a write sends).
    pub input_buf: Vec<u8>,
    /// Payload buffer contents after the run (what a read produced).
    pub output_buf: Vec<u8>,
    /// The interaction trace.
    pub trace: Trace,
}

/// Static description of the template being synthesised (provided by the
/// record campaign).
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Template name.
    pub name: String,
    /// Replay entry name.
    pub entry: String,
    /// Bus device name.
    pub device: String,
    /// Parameter constraints (from the campaign's boundary probing).
    pub params: Vec<ParamSpec>,
    /// Payload direction.
    pub direction: DataDirection,
    /// Payload length expression.
    pub data_len: SymExpr,
    /// Interrupt line used by the device.
    pub irq_line: Option<u32>,
    /// Register-name lookup for emitted events.
    pub reg_names: HashMap<u64, String>,
    /// Gold-driver tag used as the recording-site "file".
    pub driver_tag: String,
}

/// Probe result used by boundary bisection.
pub enum ProbeOutcome {
    /// The probe run followed the recorded path.
    SamePath,
    /// The probe run diverged (different shape or driver error).
    Diverged,
}

/// Bisect the largest value in `[lo, hi]` for which `probe` reports the same
/// path; `lo` must be known-good. Used to discover range constraints such as
/// the maximum block id (Table 4's `blkid <= 0x1df77f8`).
pub fn bisect_upper_bound<F: FnMut(u64) -> ProbeOutcome>(lo: u64, hi: u64, mut probe: F) -> u64 {
    let mut good = lo;
    let mut bad = hi;
    if matches!(probe(hi), ProbeOutcome::SamePath) {
        return hi;
    }
    while bad - good > 1 {
        let mid = good + (bad - good) / 2;
        match probe(mid) {
            ProbeOutcome::SamePath => good = mid,
            ProbeOutcome::Diverged => bad = mid,
        }
    }
    good
}

/// Fold ad-hoc polling loops — maximal repetitions of `[read(X), delay(d)]`
/// pairs — into a single `PollReg` op (the static-loop-analysis substitute
/// for loops that do not use the standard `readl_poll` helper).
pub fn fold_adhoc_loops(trace: &Trace) -> Trace {
    let mut out = Trace { ops: Vec::new(), allocs: trace.allocs.clone() };
    let ops = &trace.ops;
    let mut i = 0;
    while i < ops.len() {
        let is_pair = |j: usize| -> Option<(u64, u32, u64)> {
            if j + 1 < ops.len() {
                if let (TraceOp::ReadReg { addr, value }, TraceOp::Delay { us }) =
                    (&ops[j], &ops[j + 1])
                {
                    return Some((*addr, *value, *us));
                }
            }
            None
        };
        if let Some((addr, first_val, us)) = is_pair(i) {
            // Count how many consecutive pairs poll the same register.
            let mut k = i;
            let mut iterations = 0u64;
            while let Some((a, _v, u)) = is_pair(k) {
                if a != addr || u != us {
                    break;
                }
                iterations += 1;
                k += 2;
            }
            // A final read of the same register terminates the loop.
            let final_read =
                matches!(&ops.get(k), Some(TraceOp::ReadReg { addr: a, .. }) if *a == addr);
            if iterations >= 2 && final_read {
                let final_val = match &ops[k] {
                    TraceOp::ReadReg { value, .. } => *value,
                    _ => unreachable!(),
                };
                let mask = final_val ^ first_val;
                out.ops.push(TraceOp::PollReg {
                    addr,
                    mask,
                    expect: final_val & mask,
                    delay_us: us,
                    iterations: iterations + 1,
                });
                i = k + 1;
                continue;
            }
        }
        out.ops.push(ops[i].clone());
        i += 1;
    }
    out
}

/// The value carried by a trace op, if any.
fn op_value(op: &TraceOp) -> Option<u64> {
    match op {
        TraceOp::ReadReg { value, .. }
        | TraceOp::WriteReg { value, .. }
        | TraceOp::ShmRead { value, .. }
        | TraceOp::ShmWrite { value, .. } => Some(u64::from(*value)),
        TraceOp::GetTs { value } => Some(*value),
        TraceOp::DmaAlloc { len, .. } => Some(*len as u64),
        TraceOp::CopyToDma { data, .. } | TraceOp::CopyFromDma { data, .. } => {
            Some(data.len() as u64)
        }
        _ => None,
    }
}

/// Whether the op is an input whose value could be captured for later use.
fn is_capturable_input(op: &TraceOp) -> bool {
    matches!(op, TraceOp::ReadReg { .. } | TraceOp::ShmRead { .. } | TraceOp::GetTs { .. })
}

struct Synth<'a> {
    runs: Vec<&'a RecordRun>,
    /// Capture marks: position -> capture name.
    captures: HashMap<usize, String>,
}

impl<'a> Synth<'a> {
    fn values_at(&self, pos: usize) -> Option<Vec<u64>> {
        self.runs.iter().map(|r| op_value(&r.trace.ops[pos])).collect()
    }

    fn alloc_base(&self, run: usize, alloc_idx: usize) -> Option<u64> {
        self.runs[run].trace.allocs.get(alloc_idx).map(|r| r.base)
    }

    /// Try to express `vals` (one per run) as an affine function of a
    /// parameter, a DMA base, or an earlier varying input. `pos` is the
    /// current position (captures may only reference strictly earlier ones).
    fn synth_expr(&mut self, vals: &[u64], pos: usize) -> SymExpr {
        // 1. Constant.
        if vals.windows(2).all(|w| w[0] == w[1]) {
            return SymExpr::Const(vals[0]);
        }
        // 2. Affine in a parameter.
        let param_names: Vec<String> = self.runs[0].params.keys().cloned().collect();
        for name in &param_names {
            let ps: Vec<u64> =
                self.runs.iter().map(|r| *r.params.get(name).unwrap_or(&0)).collect();
            if let Some(expr) = affine(&ps, vals, || SymExpr::Param(name.clone())) {
                return expr;
            }
        }
        // 3. Offset from a DMA base.
        let num_allocs = self.runs[0].trace.allocs.len();
        for k in 0..num_allocs {
            let bases: Vec<u64> =
                (0..self.runs.len()).map(|r| self.alloc_base(r, k).unwrap_or(0)).collect();
            if bases.windows(2).all(|w| w[0] == w[1]) {
                continue; // the skew did not move it; cannot attribute safely
            }
            if let Some(expr) = affine_unit(&bases, vals, || SymExpr::DmaBase(k)) {
                return expr;
            }
        }
        // 4. Offset from an earlier varying input (device-assigned value).
        for j in (0..pos).rev() {
            if !is_capturable_input(&self.runs[0].trace.ops[j]) {
                continue;
            }
            let Some(ws) = self.values_at(j) else { continue };
            if ws.windows(2).all(|w| w[0] == w[1]) {
                continue; // constant: not a useful capture source
            }
            if let Some(expr) = affine_unit(&ws, vals, || SymExpr::Captured(format!("cap_{j}"))) {
                self.captures.entry(j).or_insert_with(|| format!("cap_{j}"));
                return expr;
            }
        }
        // 5. Sound fallback: replay the concrete value of the base run.
        SymExpr::Const(vals[0])
    }

    /// Byte-level decomposition for output values that pack parameter or
    /// captured bytes in a non-affine way (e.g. the big-endian LBA inside a
    /// SCSI CDB word): each byte of the value is either constant or equal to
    /// `(source >> shift) & 0xff` for some source and byte shift.
    fn synth_bytes(&mut self, vals: &[u64], pos: usize) -> Option<SymExpr> {
        let nruns = self.runs.len();
        // Candidate sources: parameters and earlier varying inputs.
        let mut sources: Vec<(SymExpr, Vec<u64>, Option<usize>)> = Vec::new();
        for name in self.runs[0].params.keys() {
            let ps: Vec<u64> =
                self.runs.iter().map(|r| *r.params.get(name).unwrap_or(&0)).collect();
            if ps.windows(2).any(|w| w[0] != w[1]) {
                sources.push((SymExpr::Param(name.clone()), ps, None));
            }
        }
        for j in 0..pos {
            if !is_capturable_input(&self.runs[0].trace.ops[j]) {
                continue;
            }
            if let Some(ws) = self.values_at(j) {
                if ws.windows(2).any(|w| w[0] != w[1]) {
                    sources.push((SymExpr::Captured(format!("cap_{j}")), ws, Some(j)));
                }
            }
        }
        if sources.is_empty() {
            return None;
        }

        let mut const_part: u64 = 0;
        let mut terms: Vec<SymExpr> = Vec::new();
        let mut used_captures: Vec<usize> = Vec::new();
        for byte_pos in 0..4u32 {
            let bytes: Vec<u64> = vals.iter().map(|v| (v >> (8 * byte_pos)) & 0xff).collect();
            if bytes.windows(2).all(|w| w[0] == w[1]) {
                const_part |= bytes[0] << (8 * byte_pos);
                continue;
            }
            let mut explained = false;
            'src: for (expr, svals, cap) in &sources {
                for shift in (0..64).step_by(8) {
                    let ok = (0..nruns).all(|r| (svals[r] >> shift) & 0xff == bytes[r]);
                    if ok {
                        let byte_expr = SymExpr::And(
                            Box::new(SymExpr::Shr(Box::new(expr.clone()), shift)),
                            Box::new(SymExpr::Const(0xff)),
                        );
                        let shifted = if byte_pos == 0 {
                            byte_expr
                        } else {
                            SymExpr::Shl(Box::new(byte_expr), 8 * byte_pos)
                        };
                        terms.push(shifted);
                        if let Some(j) = cap {
                            used_captures.push(*j);
                        }
                        explained = true;
                        break 'src;
                    }
                }
            }
            if !explained {
                return None;
            }
        }
        for j in used_captures {
            self.captures.entry(j).or_insert_with(|| format!("cap_{j}"));
        }
        let mut expr = SymExpr::Const(const_part);
        for t in terms {
            expr = SymExpr::Or(Box::new(expr), Box::new(t));
        }
        Some(expr)
    }
}

/// Affine fit `v = a*p + c` over all runs (a >= 0 small, wrapping c).
fn affine(ps: &[u64], vals: &[u64], mk: impl Fn() -> SymExpr) -> Option<SymExpr> {
    // Need at least two distinct parameter values.
    let (i, j) = distinct_pair(ps)?;
    let dp = ps[j].wrapping_sub(ps[i]);
    let dv = vals[j].wrapping_sub(vals[i]);
    if dp == 0 {
        return None;
    }
    if !dv.is_multiple_of(dp) {
        return None;
    }
    let a = dv / dp;
    if a > u32::MAX as u64 {
        return None;
    }
    let c = vals[i].wrapping_sub(a.wrapping_mul(ps[i]));
    for k in 0..ps.len() {
        if a.wrapping_mul(ps[k]).wrapping_add(c) != vals[k] {
            return None;
        }
    }
    if a == 0 {
        return None;
    }
    let base = if a == 1 {
        mk()
    } else if a.is_power_of_two() {
        SymExpr::Shl(Box::new(mk()), a.trailing_zeros())
    } else {
        SymExpr::Mul(Box::new(mk()), Box::new(SymExpr::Const(a)))
    };
    Some(if c == 0 { base } else { SymExpr::Add(Box::new(base), Box::new(SymExpr::Const(c))) })
}

/// Affine fit with unit slope only (`v = p + c`), for DMA bases and captures.
fn affine_unit(ps: &[u64], vals: &[u64], mk: impl Fn() -> SymExpr) -> Option<SymExpr> {
    let c = vals[0].wrapping_sub(ps[0]);
    for k in 0..ps.len() {
        if ps[k].wrapping_add(c) != vals[k] {
            return None;
        }
    }
    Some(if c == 0 { mk() } else { SymExpr::Add(Box::new(mk()), Box::new(SymExpr::Const(c))) })
}

fn distinct_pair(vals: &[u64]) -> Option<(usize, usize)> {
    for i in 0..vals.len() {
        for j in i + 1..vals.len() {
            if vals[i] != vals[j] {
                return Some((i, j));
            }
        }
    }
    None
}

/// Find the byte offset of `needle` inside `hay`, scanning 4-byte-aligned
/// offsets and using the first 8 bytes as a fast filter.
fn find_payload_offset(hay: &[u8], needle: &[u8]) -> Option<u64> {
    if needle.is_empty() || needle.len() > hay.len() {
        return None;
    }
    let probe = &needle[..needle.len().min(8)];
    let mut found = None;
    let mut off = 0usize;
    while off + needle.len() <= hay.len() {
        if &hay[off..off + probe.len()] == probe && &hay[off..off + needle.len()] == needle {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(off as u64);
        }
        off += 4;
    }
    found
}

/// Synthesise an interaction template from a base run and its variants.
pub fn synthesize_template(
    spec: &TemplateSpec,
    base: &RecordRun,
    variants: &[RecordRun],
) -> Result<Template, RecorderError> {
    for (i, v) in variants.iter().enumerate() {
        if !base.trace.same_shape(&v.trace) {
            return Err(RecorderError::Misaligned(format!(
                "variant {i} diverged from the base run ({} vs {} ops)",
                v.trace.ops.len(),
                base.trace.ops.len()
            )));
        }
    }
    let mut runs = vec![base];
    runs.extend(variants.iter());
    let mut synth = Synth { runs, captures: HashMap::new() };
    let n = base.trace.ops.len();

    // Pass 1: synthesise output expressions, input constraints and payload
    // sinks (this marks captures on earlier inputs).
    let mut out_exprs: HashMap<usize, SymExpr> = HashMap::new();
    let mut in_constraints: HashMap<usize, Constraint> = HashMap::new();
    let mut user_data_reads: HashMap<usize, u64> = HashMap::new();
    let mut copy_infos: HashMap<usize, (u64, SymExpr)> = HashMap::new(); // user_offset, len expr
    let mut alloc_lens: HashMap<usize, SymExpr> = HashMap::new();

    for pos in 0..n {
        let op = &base.trace.ops[pos];
        match op {
            TraceOp::WriteReg { .. } | TraceOp::ShmWrite { .. } => {
                let vals = synth.values_at(pos).unwrap();
                let varies = vals.windows(2).any(|w| w[0] != w[1]);
                let mut expr = synth.synth_expr(&vals, pos);
                if varies && matches!(expr, SymExpr::Const(_)) {
                    if let Some(e) = synth.synth_bytes(&vals, pos) {
                        expr = e;
                    }
                }
                out_exprs.insert(pos, expr);
            }
            TraceOp::DmaAlloc { .. } => {
                let vals = synth.values_at(pos).unwrap();
                let expr = synth.synth_expr(&vals, pos);
                alloc_lens.insert(pos, expr);
            }
            TraceOp::ReadReg { .. } | TraceOp::ShmRead { .. } => {
                let vals = synth.values_at(pos).unwrap();
                if vals.windows(2).all(|w| w[0] == w[1]) {
                    in_constraints.insert(pos, Constraint::eq_const(vals[0]));
                } else {
                    // Payload first: IO data must never be constrained.
                    let mut payload = None;
                    if spec.direction == DataDirection::DeviceToUser {
                        let needle = (vals[0] as u32).to_le_bytes();
                        if let Some(off) = find_payload_offset(&base.output_buf, &needle) {
                            // Verify the offset in every variant run.
                            let consistent = variants.iter().all(|vr| {
                                let vv = op_value(&vr.trace.ops[pos]).unwrap_or(0) as u32;
                                vr.output_buf.len() > (off as usize + 3)
                                    && vr.output_buf[off as usize..off as usize + 4]
                                        == vv.to_le_bytes()
                            });
                            if consistent {
                                payload = Some(off);
                            }
                        }
                    }
                    if let Some(off) = payload {
                        user_data_reads.insert(pos, off);
                        in_constraints.insert(pos, Constraint::Any);
                    } else {
                        // Otherwise try to explain the variation; unexplained
                        // variation is treated as non-state-changing.
                        let expr = synth.synth_expr(&vals, pos);
                        match expr {
                            SymExpr::Const(_) => {
                                in_constraints.insert(pos, Constraint::Any);
                            }
                            e => {
                                in_constraints.insert(pos, Constraint::Eq(e));
                            }
                        }
                    }
                }
            }
            TraceOp::CopyToDma { data, .. } => {
                let user_off = find_payload_offset(&base.input_buf, data).unwrap_or(0);
                let vals = synth.values_at(pos).unwrap();
                let len_expr = synth.synth_expr(&vals, pos);
                copy_infos.insert(pos, (user_off, len_expr));
            }
            TraceOp::CopyFromDma { data, .. } => {
                let user_off = find_payload_offset(&base.output_buf, data).unwrap_or(0);
                let vals = synth.values_at(pos).unwrap();
                let len_expr = synth.synth_expr(&vals, pos);
                copy_infos.insert(pos, (user_off, len_expr));
            }
            _ => {}
        }
    }

    // Determine DMA allocation roles from how the template uses them.
    let num_allocs = base.trace.allocs.len();
    let mut roles = vec![DmaRole::Other; num_allocs];
    let mut alloc_counter = 0usize;
    let mut alloc_at_pos: HashMap<usize, usize> = HashMap::new();
    for (pos, op) in base.trace.ops.iter().enumerate() {
        if let TraceOp::DmaAlloc { .. } = op {
            alloc_at_pos.insert(pos, alloc_counter);
            alloc_counter += 1;
        }
    }
    for op in &base.trace.ops {
        match op {
            TraceOp::CopyToDma { alloc, .. } if *alloc < num_allocs => {
                roles[*alloc] = DmaRole::DataOut
            }
            TraceOp::CopyFromDma { alloc, .. } if *alloc < num_allocs => {
                roles[*alloc] = DmaRole::DataIn
            }
            _ => {}
        }
    }
    for (k, role) in roles.iter_mut().enumerate() {
        if *role != DmaRole::Other {
            continue;
        }
        let touched_by_shm = base.trace.ops.iter().any(|o| {
            matches!(o, TraceOp::ShmRead { alloc, .. } | TraceOp::ShmWrite { alloc, .. } if *alloc == k)
        });
        if touched_by_shm {
            *role = if base.trace.allocs[k].len >= 0x1_0000 {
                DmaRole::Queue
            } else {
                DmaRole::Descriptor
            };
        }
    }

    // Pass 2: emit events in order.
    let mut events = Vec::with_capacity(n);
    for (pos, op) in base.trace.ops.iter().enumerate() {
        let site = SourceSite::new(&spec.driver_tag, pos as u32 + 1);
        let reg_iface = |addr: &u64| Iface::Reg {
            addr: *addr,
            name: spec.reg_names.get(addr).cloned().unwrap_or_else(|| format!("REG_{addr:#x}")),
        };
        let sink_for_input = |pos: usize| -> ReadSink {
            if let Some(name) = synth.captures.get(&pos) {
                ReadSink::Capture(name.clone())
            } else if let Some(off) = user_data_reads.get(&pos) {
                ReadSink::UserData { offset: *off }
            } else {
                ReadSink::Discard
            }
        };
        let event = match op {
            TraceOp::ReadReg { addr, .. } => Event::Read {
                iface: reg_iface(addr),
                constraint: in_constraints.get(&pos).cloned().unwrap_or(Constraint::Any),
                len: 4,
                sink: sink_for_input(pos),
            },
            TraceOp::ShmRead { alloc, offset, .. } => Event::Read {
                iface: Iface::Shm { alloc: *alloc, offset: *offset },
                constraint: in_constraints.get(&pos).cloned().unwrap_or(Constraint::Any),
                len: 4,
                sink: sink_for_input(pos),
            },
            TraceOp::WriteReg { addr, .. } => Event::Write {
                iface: reg_iface(addr),
                value: out_exprs.get(&pos).cloned().unwrap_or(SymExpr::Const(0)),
            },
            TraceOp::ShmWrite { alloc, offset, .. } => Event::Write {
                iface: Iface::Shm { alloc: *alloc, offset: *offset },
                value: out_exprs.get(&pos).cloned().unwrap_or(SymExpr::Const(0)),
            },
            TraceOp::PollReg { addr, mask, expect, delay_us, iterations } => Event::Poll {
                iface: reg_iface(addr),
                body: vec![],
                cond: Constraint::MaskEq { mask: u64::from(*mask), expected: u64::from(*expect) },
                delay_us: *delay_us,
                max_iters: iterations * 8 + 64,
            },
            TraceOp::WaitIrq { line, timeout_us } => {
                Event::WaitForIrq { line: *line, timeout_us: *timeout_us }
            }
            TraceOp::DmaAlloc { .. } => {
                let idx = alloc_at_pos[&pos];
                Event::DmaAlloc {
                    len: alloc_lens.get(&pos).cloned().unwrap_or(SymExpr::Const(0)),
                    role: roles[idx],
                }
            }
            TraceOp::GetRand { len } => {
                Event::GetRandBytes { len: *len as u32, sink: ReadSink::Discard }
            }
            TraceOp::GetTs { .. } => Event::GetTs { len: 8, sink: sink_for_input(pos) },
            TraceOp::Delay { us } => Event::Delay { us: *us },
            TraceOp::CopyToDma { alloc, offset, .. } => {
                let (user_offset, len) = copy_infos.get(&pos).cloned().unwrap();
                Event::CopyUserToDma { alloc: *alloc, offset: *offset, user_offset, len }
            }
            TraceOp::CopyFromDma { alloc, offset, .. } => {
                let (user_offset, len) = copy_infos.get(&pos).cloned().unwrap();
                Event::CopyDmaToUser { alloc: *alloc, offset: *offset, user_offset, len }
            }
        };
        events.push(RecordedEvent::new(event, site));
    }

    let template = Template {
        name: spec.name.clone(),
        entry: spec.entry.clone(),
        device: spec.device.clone(),
        params: spec.params.clone(),
        direction: spec.direction,
        data_len: spec.data_len.clone(),
        irq_line: spec.irq_line,
        events,
        meta: TemplateMeta {
            recorded_with: base.params.clone(),
            notes: format!(
                "synthesised from {} runs; {} captures; {} events",
                variants.len() + 1,
                synth.captures.len(),
                n
            ),
        },
    };
    template.validate().map_err(RecorderError::Invalid)?;
    Ok(template)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_hw::DmaRegion;

    fn run_with(
        params: &[(&str, u64)],
        ops: Vec<TraceOp>,
        allocs: Vec<DmaRegion>,
        output_buf: Vec<u8>,
    ) -> RecordRun {
        RecordRun {
            params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            input_buf: vec![0u8; output_buf.len()],
            output_buf,
            trace: Trace { ops, allocs },
        }
    }

    fn spec(params: Vec<ParamSpec>) -> TemplateSpec {
        TemplateSpec {
            name: "t".into(),
            entry: "replay_test".into(),
            device: "stub".into(),
            params,
            direction: DataDirection::DeviceToUser,
            data_len: SymExpr::Const(0),
            irq_line: Some(1),
            reg_names: [(0x1000u64, "CTRL".to_string()), (0x1004u64, "ARG".to_string())]
                .into_iter()
                .collect(),
            driver_tag: "stub-driver.c".into(),
        }
    }

    #[test]
    fn bisect_finds_the_boundary() {
        // Path changes above 1000.
        let bound = bisect_upper_bound(1, 1 << 20, |v| {
            if v <= 1000 {
                ProbeOutcome::SamePath
            } else {
                ProbeOutcome::Diverged
            }
        });
        assert_eq!(bound, 1000);
        assert_eq!(bisect_upper_bound(1, 50, |_| ProbeOutcome::SamePath), 50);
    }

    #[test]
    fn constant_writes_stay_constant_and_param_writes_generalise() {
        let mk = |blkid: u64| {
            run_with(
                &[("blkid", blkid)],
                vec![
                    TraceOp::WriteReg { addr: 0x1000, value: 0x8012 },
                    TraceOp::WriteReg { addr: 0x1004, value: blkid as u32 },
                ],
                vec![],
                vec![],
            )
        };
        let base = mk(100);
        let t = synthesize_template(
            &spec(vec![ParamSpec { name: "blkid".into(), constraint: Constraint::Any }]),
            &base,
            &[mk(2000), mk(77)],
        )
        .unwrap();
        match &t.events[0].event {
            Event::Write { value, .. } => assert_eq!(*value, SymExpr::Const(0x8012)),
            other => panic!("unexpected {other:?}"),
        }
        match &t.events[1].event {
            Event::Write { value, .. } => assert_eq!(*value, SymExpr::Param("blkid".into())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn affine_scaling_and_offsets_are_discovered() {
        // value = blkcnt * 512 + 16
        let mk = |blkcnt: u64| {
            run_with(
                &[("blkcnt", blkcnt)],
                vec![TraceOp::WriteReg { addr: 0x1000, value: (blkcnt * 512 + 16) as u32 }],
                vec![],
                vec![],
            )
        };
        let t = synthesize_template(
            &spec(vec![ParamSpec { name: "blkcnt".into(), constraint: Constraint::Any }]),
            &mk(1),
            &[mk(4), mk(32)],
        )
        .unwrap();
        match &t.events[0].event {
            Event::Write { value, .. } => {
                let env = dlt_template::EvalEnv::default().param("blkcnt", 8);
                assert_eq!(value.eval(&env), Some(8 * 512 + 16));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dma_base_offsets_and_captures_are_discovered() {
        // The driver allocates a descriptor, reads a device-assigned size,
        // then writes base+8 and echoes the size.
        let mk = |skew: u64, dev_val: u32| {
            run_with(
                &[("x", 1)],
                vec![
                    TraceOp::DmaAlloc { len: 64, base: 0x1_0000 + skew },
                    TraceOp::ShmRead { alloc: 0, offset: 4, value: dev_val },
                    TraceOp::WriteReg { addr: 0x1000, value: (0x1_0000 + skew + 8) as u32 },
                    TraceOp::WriteReg { addr: 0x1004, value: dev_val },
                ],
                vec![DmaRegion::new(0x1_0000 + skew, 64)],
                vec![],
            )
        };
        let t = synthesize_template(
            &spec(vec![ParamSpec { name: "x".into(), constraint: Constraint::Any }]),
            &mk(0, 300_000),
            &[mk(0x4000, 620_000), mk(0x8000, 1_000_000)],
        )
        .unwrap();
        // Write 1: dma[0] + 8.
        match &t.events[2].event {
            Event::Write { value, .. } => {
                assert_eq!(
                    *value,
                    SymExpr::Add(Box::new(SymExpr::DmaBase(0)), Box::new(SymExpr::Const(8)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Write 2 references the captured read; the read is marked as a capture.
        match &t.events[3].event {
            Event::Write { value, .. } => match value {
                SymExpr::Captured(name) => assert_eq!(name, "cap_1"),
                other => panic!("expected a capture, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &t.events[1].event {
            Event::Read { sink, .. } => assert!(matches!(sink, ReadSink::Capture(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_reads_become_constraints_and_payload_reads_become_user_data() {
        let payload =
            |seed: u32| -> Vec<u8> { (0..64u32).flat_map(|i| (i ^ seed).to_le_bytes()).collect() };
        let mk = |seed: u32| {
            let buf = payload(seed);
            let tail = u32::from_le_bytes([buf[60], buf[61], buf[62], buf[63]]);
            run_with(
                &[("x", 1)],
                vec![
                    TraceOp::ReadReg { addr: 0x1000, value: 0x200 },
                    TraceOp::ReadReg { addr: 0x1004, value: tail },
                ],
                vec![],
                buf,
            )
        };
        let t = synthesize_template(
            &spec(vec![ParamSpec { name: "x".into(), constraint: Constraint::Any }]),
            &mk(0xaaaa_0001),
            &[mk(0x5555_0002), mk(0x1234_5678)],
        )
        .unwrap();
        match &t.events[0].event {
            Event::Read { constraint, .. } => assert_eq!(*constraint, Constraint::eq_const(0x200)),
            other => panic!("unexpected {other:?}"),
        }
        match &t.events[1].event {
            Event::Read { sink, constraint, .. } => {
                assert_eq!(*sink, ReadSink::UserData { offset: 60 });
                assert_eq!(*constraint, Constraint::Any);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn misaligned_variants_are_rejected() {
        let a = run_with(&[("x", 1)], vec![TraceOp::Delay { us: 1 }], vec![], vec![]);
        let b = run_with(
            &[("x", 2)],
            vec![TraceOp::Delay { us: 1 }, TraceOp::Delay { us: 2 }],
            vec![],
            vec![],
        );
        assert!(matches!(
            synthesize_template(&spec(vec![]), &a, &[b]),
            Err(RecorderError::Misaligned(_))
        ));
    }

    #[test]
    fn adhoc_loops_fold_into_poll_events() {
        let trace = Trace {
            ops: vec![
                TraceOp::WriteReg { addr: 0x1000, value: 1 },
                TraceOp::ReadReg { addr: 0x1004, value: 0 },
                TraceOp::Delay { us: 10 },
                TraceOp::ReadReg { addr: 0x1004, value: 0 },
                TraceOp::Delay { us: 10 },
                TraceOp::ReadReg { addr: 0x1004, value: 0x1 },
                TraceOp::WriteReg { addr: 0x1008, value: 2 },
            ],
            allocs: vec![],
        };
        let folded = fold_adhoc_loops(&trace);
        assert_eq!(folded.ops.len(), 3);
        match &folded.ops[1] {
            TraceOp::PollReg { addr, mask, expect, iterations, .. } => {
                assert_eq!(*addr, 0x1004);
                assert_eq!(*mask, 1);
                assert_eq!(*expect, 1);
                assert_eq!(*iterations, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_loop_read_delay_pairs_are_left_alone() {
        let trace = Trace {
            ops: vec![
                TraceOp::ReadReg { addr: 0x1004, value: 0 },
                TraceOp::Delay { us: 10 },
                TraceOp::WriteReg { addr: 0x1008, value: 2 },
            ],
            allocs: vec![],
        };
        let folded = fold_adhoc_loops(&trace);
        assert_eq!(folded.ops.len(), 3);
    }
}
