//! End-to-end record → replay integration tests (§8.2.1 correctness
//! validation): the record campaign runs against one platform ("the developer
//! machine"); the resulting driverlet is then replayed inside the TEE of a
//! *different* platform ("the target device") and the IO it performs is
//! checked against what the native driver would have done.

use std::collections::HashMap;

use dlt_core::{replay_cam, replay_mmc, replay_usb, ReplayError, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_dev_vchiq::msg::is_valid_jpeg;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{
    pattern_buf, record_camera_driverlet_subset, record_mmc_driverlet_subset,
    record_usb_driverlet_subset, DEV_KEY,
};
use dlt_tee::{SecureIo, TeeKernel};

/// A fresh "target device": platform + MMC + USB + VC4 with the TEE owning
/// all three, plus a replayer.
struct Target {
    platform: Platform,
    mmc: MmcSubsystem,
    usb: UsbSubsystem,
    _vchiq: VchiqSubsystem,
    replayer: Replayer,
}

fn target() -> Target {
    let platform = Platform::new();
    let mmc = MmcSubsystem::attach(&platform).unwrap();
    let usb = UsbSubsystem::attach(&platform).unwrap();
    let vchiq = VchiqSubsystem::attach(&platform).unwrap();
    let _tee = TeeKernel::install(&platform, &["sdhost", "dma", "dwc2", "vchiq"]).unwrap();
    let replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    Target { platform, mmc, usb, _vchiq: vchiq, replayer }
}

#[test]
fn mmc_write_then_read_replay_round_trip() {
    let driverlet = record_mmc_driverlet_subset(&[8]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();

    // Write 8 blocks at block 4096 through the driverlet.
    let payload = pattern_buf(8 * 512, 0xd00d);
    let mut buf = payload.clone();
    replay_mmc(&mut t.replayer, 0x10, 8, 4096, 0, &mut buf).unwrap();

    // The card holds exactly the written data.
    for b in 0..8u64 {
        assert_eq!(
            t.mmc.sdhost.lock().card().peek_block(4096 + b),
            payload[(b as usize) * 512..(b as usize + 1) * 512].to_vec(),
            "block {b} mismatch"
        );
    }

    // Read it back through the driverlet (including the 3-word PIO tail).
    let mut back = vec![0u8; 8 * 512];
    replay_mmc(&mut t.replayer, 0x1, 8, 4096, 0, &mut back).unwrap();
    assert_eq!(back, payload);
    assert!(t.replayer.stats().resets >= 2);
    assert_eq!(t.replayer.stats().divergences, 0);
}

#[test]
fn mmc_replay_matches_native_driver_results() {
    // Validation of IO data integrity (§8.2.1): values read by driverlets
    // match those read by the native driver.
    let driverlet = record_mmc_driverlet_subset(&[8]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();

    // Populate the card directly (fixture).
    let fixture = pattern_buf(8 * 512, 0xcafe);
    for b in 0..8u64 {
        t.mmc
            .sdhost
            .lock()
            .card_mut()
            .poke_block(128 + b, &fixture[(b as usize) * 512..(b as usize + 1) * 512]);
    }
    let mut via_driverlet = vec![0u8; 8 * 512];
    replay_mmc(&mut t.replayer, 0x1, 8, 128, 0, &mut via_driverlet).unwrap();
    assert_eq!(via_driverlet, fixture);
}

#[test]
fn mmc_out_of_coverage_requests_are_rejected() {
    let driverlet = record_mmc_driverlet_subset(&[8]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    let mut buf = vec![0u8; 32 * 512];
    // 32-block requests were not recorded in this subset.
    let err = replay_mmc(&mut t.replayer, 0x1, 32, 0, 0, &mut buf).unwrap_err();
    assert!(matches!(err, ReplayError::OutOfCoverage { .. }));
    // Block ids beyond the card are out of coverage too.
    let mut buf = vec![0u8; 8 * 512];
    let err =
        replay_mmc(&mut t.replayer, 0x1, 8, (dlt_dev_mmc::CARD_BLOCKS - 2) as u32, 0, &mut buf)
            .unwrap_err();
    assert!(matches!(err, ReplayError::OutOfCoverage { .. }));
}

#[test]
fn tampered_driverlets_are_rejected() {
    let mut driverlet = record_mmc_driverlet_subset(&[1]).unwrap();
    // Flip a constraint after signing.
    driverlet.templates[0].params[0].constraint = dlt_template::Constraint::Any;
    let mut t = target();
    let err = t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap_err();
    assert!(matches!(err, ReplayError::Signature(_)));
}

#[test]
fn usb_write_then_read_replay_round_trip() {
    let driverlet = record_usb_driverlet_subset(&[8]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();

    let payload = pattern_buf(8 * 512, 0x1337);
    let mut buf = payload.clone();
    replay_usb(&mut t.replayer, 0x10, 8, 2000, 0, &mut buf).unwrap();
    assert_eq!(t.usb.hostctrl.lock().device().disk().peek_block(2000), payload[..512].to_vec());
    let mut back = vec![0u8; 8 * 512];
    replay_usb(&mut t.replayer, 0x1, 8, 2000, 0, &mut back).unwrap();
    assert_eq!(back, payload);
}

#[test]
fn camera_replay_produces_valid_jpeg_frames_at_all_resolutions() {
    let driverlet = record_camera_driverlet_subset(&[1]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();

    for (code, expected) in [(720u32, 311_296u32), (1080, 622_592), (1440, 1_048_576)] {
        let mut buf = vec![0u8; 2 << 20];
        let img = replay_cam(&mut t.replayer, 1, code, &mut buf).unwrap();
        assert_eq!(img, expected, "resolution {code}");
        assert!(is_valid_jpeg(&buf[..img as usize]), "resolution {code} frame is not a JPEG");
    }
    assert_eq!(t.replayer.stats().divergences, 0);
}

#[test]
fn camera_rejects_unrecorded_resolutions_and_small_buffers() {
    let driverlet = record_camera_driverlet_subset(&[1]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    let mut buf = vec![0u8; 2 << 20];
    assert!(matches!(
        replay_cam(&mut t.replayer, 1, 480, &mut buf),
        Err(ReplayError::OutOfCoverage { .. })
    ));
    let mut small = vec![0u8; 64 * 1024];
    assert!(matches!(
        replay_cam(&mut t.replayer, 1, 720, &mut small),
        Err(ReplayError::OutOfCoverage { .. })
    ));
}

#[test]
fn tzasc_keeps_the_normal_world_out_while_the_replayer_works() {
    let driverlet = record_mmc_driverlet_subset(&[1]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    // Normal world cannot reach the secured MMC controller...
    let err = t
        .platform
        .bus
        .lock()
        .mmio_read32(
            dlt_dev_mmc::SDHOST_BASE,
            dlt_hw::World::NonSecure,
            dlt_hw::bus::MmioAttr::Cached,
        )
        .unwrap_err();
    assert!(matches!(err, dlt_hw::HwError::PermissionDenied { .. }));
    // ...while the driverlet path works fine.
    let mut buf = vec![0u8; 512];
    replay_mmc(&mut t.replayer, 0x1, 1, 0, 0, &mut buf).unwrap();
}

#[test]
fn fault_injection_unplugging_the_card_aborts_with_a_divergence_report() {
    let driverlet = record_mmc_driverlet_subset(&[8]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    // A few good requests first.
    let mut buf = vec![0u8; 8 * 512];
    replay_mmc(&mut t.replayer, 0x1, 8, 0, 0, &mut buf).unwrap();
    // Unplug the medium (§8.2.1 fault injection).
    t.mmc.sdhost.lock().card_mut().remove();
    let err = replay_mmc(&mut t.replayer, 0x1, 8, 64, 0, &mut buf).unwrap_err();
    match err {
        ReplayError::Diverged(report) => {
            assert!(report.attempts >= 2, "the replayer must retry with reset before giving up");
            assert!(!report.failure.site.file.is_empty());
            assert!(
                report.failure.event.contains("SDCMD")
                    || report.failure.event.contains("SDHSTS")
                    || report.failure.event.contains("irq")
                    || report.failure.event.contains("poll"),
                "failure should point at a status register or interrupt wait, got {}",
                report.failure.event
            );
        }
        other => panic!("expected a divergence report, got {other}"),
    }
    assert!(t.replayer.stats().divergences >= 2);
    // Re-inserting the medium lets replay recover after resets.
    t.mmc.sdhost.lock().card_mut().reinsert();
    replay_mmc(&mut t.replayer, 0x1, 8, 64, 0, &mut buf).unwrap();
}

#[test]
fn replay_requests_beyond_the_recorded_inputs_still_work() {
    // Expressiveness (§3.3): the recorded runs used specific block ids; the
    // driverlet serves any block id within coverage.
    let driverlet = record_mmc_driverlet_subset(&[1]).unwrap();
    let mut t = target();
    t.replayer.load_driverlet(driverlet, DEV_KEY).unwrap();
    let mut args_checked = 0;
    for blkid in [0u32, 7, 1_000_000, 20_000_000, (dlt_dev_mmc::CARD_BLOCKS - 1) as u32] {
        let payload = pattern_buf(512, u64::from(blkid) ^ 0x5a5a);
        let mut buf = payload.clone();
        replay_mmc(&mut t.replayer, 0x10, 1, blkid, 0, &mut buf).unwrap();
        let mut back = vec![0u8; 512];
        replay_mmc(&mut t.replayer, 0x1, 1, blkid, 0, &mut back).unwrap();
        assert_eq!(back, payload, "blkid {blkid}");
        args_checked += 1;
    }
    assert_eq!(args_checked, 5);
}

#[test]
fn driverlet_coverage_report_reflects_the_campaign() {
    let driverlet = record_mmc_driverlet_subset(&[1, 8]).unwrap();
    let report = driverlet.coverage.describe();
    assert!(report.contains("blkcnt"));
    assert!(report.contains("blkid"));
    let mut args: HashMap<String, u64> = [
        ("rw".to_string(), 1u64),
        ("blkcnt".to_string(), 8),
        ("blkid".to_string(), 5),
        ("flag".to_string(), 0),
    ]
    .into_iter()
    .collect();
    assert!(driverlet.coverage.covers(&args));
    args.insert("blkcnt".into(), 999);
    assert!(!driverlet.coverage.covers(&args));
}
