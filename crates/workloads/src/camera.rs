//! Camera capture-latency workloads (Figure 6).

use dlt_core::{replay_cam, Replayer};
use dlt_dev_vchiq::msg::CameraResolution;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_gold_drivers::kenv::BusIo;
use dlt_gold_drivers::vchiq::VchiqDriver;
use dlt_hw::{DmaRegion, Platform};
use dlt_recorder::campaign::{record_camera_driverlet, DEV_KEY};
use dlt_tee::{SecureIo, TeeKernel};

/// Result of one capture workload.
#[derive(Debug, Clone)]
pub struct CameraResult {
    /// Number of frames in the burst (1 = OneShot, 10 = ShortBurst, 100 =
    /// LongBurst).
    pub burst: u32,
    /// Resolution code (720 / 1080 / 1440).
    pub resolution: u32,
    /// Whether this is the driverlet path ("ours") or the native driver.
    pub driverlet: bool,
    /// Total burst latency in virtual nanoseconds.
    pub latency_ns: u64,
    /// Image size produced.
    pub img_size: u32,
}

impl CameraResult {
    /// Latency per frame in seconds.
    pub fn per_frame_s(&self) -> f64 {
        self.latency_ns as f64 / 1e9 / f64::from(self.burst)
    }

    /// Burst name as used in the paper.
    pub fn burst_name(&self) -> &'static str {
        match self.burst {
            1 => "OneShot",
            10 => "ShortBurst",
            100 => "LongBurst",
            _ => "Burst",
        }
    }
}

/// Run one capture burst through the native gold driver.
pub fn native_capture(burst: u32, resolution: CameraResolution) -> CameraResult {
    let platform = Platform::new();
    VchiqSubsystem::attach(&platform).expect("attach vchiq");
    let io = BusIo::normal_world(platform.bus.clone(), DmaRegion::new(0x0200_0000, 0x0100_0000));
    let mut drv = VchiqDriver::new(io);
    let mut buf = vec![0u8; 2 << 20];
    let start = platform.now_ns();
    let img_size = drv.capture(burst, resolution, &mut buf).expect("native capture");
    CameraResult {
        burst,
        resolution: resolution.code(),
        driverlet: false,
        latency_ns: platform.now_ns() - start,
        img_size,
    }
}

/// A reusable driverlet camera rig (recording the driverlet once is
/// expensive; Figure 6 sweeps nine configurations over it).
pub struct DriverletCamera {
    platform: Platform,
    replayer: Replayer,
}

impl DriverletCamera {
    /// Record the camera driverlet (restricted to the given bursts) and set
    /// up a TEE-owned VC4 with a replayer.
    pub fn new(bursts: &[u32]) -> Self {
        let platform = Platform::new();
        VchiqSubsystem::attach(&platform).expect("attach vchiq");
        TeeKernel::install(&platform, &["vchiq"]).expect("install tee");
        let driverlet = dlt_recorder::campaign::record_camera_driverlet_subset(bursts)
            .expect("record camera driverlet");
        let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
        replayer.load_driverlet(driverlet, DEV_KEY).expect("load driverlet");
        DriverletCamera { platform, replayer }
    }

    /// Record the full (1/10/100) camera driverlet.
    pub fn full() -> Self {
        let platform = Platform::new();
        VchiqSubsystem::attach(&platform).expect("attach vchiq");
        TeeKernel::install(&platform, &["vchiq"]).expect("install tee");
        let driverlet = record_camera_driverlet().expect("record camera driverlet");
        let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
        replayer.load_driverlet(driverlet, DEV_KEY).expect("load driverlet");
        DriverletCamera { platform, replayer }
    }

    /// Capture one burst through the driverlet.
    pub fn capture(&mut self, burst: u32, resolution: CameraResolution) -> CameraResult {
        let mut buf = vec![0u8; 2 << 20];
        let start = self.platform.now_ns();
        let img_size =
            replay_cam(&mut self.replayer, burst, resolution.code(), &mut buf).expect("replay_cam");
        CameraResult {
            burst,
            resolution: resolution.code(),
            driverlet: true,
            latency_ns: self.platform.now_ns() - start,
            img_size,
        }
    }
}

/// Run the full Figure 6 sweep: bursts × resolutions × {native, driverlet}.
pub fn run_camera_sweep(bursts: &[u32]) -> Vec<CameraResult> {
    let mut out = Vec::new();
    let mut rig = DriverletCamera::new(bursts);
    for &burst in bursts {
        for resolution in CameraResolution::all() {
            out.push(rig.capture(burst, resolution));
            out.push(native_capture(burst, resolution));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_holds_for_oneshot_and_shortburst() {
        let mut rig = DriverletCamera::new(&[1, 10]);
        let ours_1 = rig.capture(1, CameraResolution::R720p);
        let native_1 = native_capture(1, CameraResolution::R720p);
        // Single-frame latency: the driverlet is only modestly slower (the
        // paper reports ~11%).
        assert!(ours_1.latency_ns >= native_1.latency_ns);
        assert!(
            ours_1.latency_ns < native_1.latency_ns * 2,
            "one-shot driverlet capture should be within 2x of native"
        );
        // Per-frame latency decreases with burst size (init cost amortises).
        let ours_10 = rig.capture(10, CameraResolution::R720p);
        assert!(ours_10.per_frame_s() < ours_1.per_frame_s());
        // Higher resolutions take longer.
        let ours_1440 = rig.capture(1, CameraResolution::R1440p);
        assert!(ours_1440.latency_ns > ours_1.latency_ns);
        assert_eq!(ours_1440.img_size, CameraResolution::R1440p.frame_bytes());
    }
}
