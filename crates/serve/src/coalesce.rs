//! Request coalescing: plan a drained batch into merged replays.
//!
//! The planner walks the batch **in queue order** and groups maximal runs
//! of same-direction block requests:
//!
//! * within a read run, adjacent or overlapping extents merge into maximal
//!   contiguous spans (reads commute with reads, so reordering inside one
//!   run cannot change any result);
//! * within a write run, only strictly adjacent, non-overlapping writes
//!   chain into one larger write (overlapping writes must keep their
//!   submission order, so an overlap breaks the chain);
//! * a direction change (or a camera request) closes the current group, so
//!   a read never moves across a write it raced with.
//!
//! Executing the resulting plans in order is therefore equivalent to
//! executing the batch serially in queue order — the invariant the
//! differential property test in `tests/serial_equivalence.rs` checks.

use crate::{Request, SessionId, BLOCK};

/// One executable unit of a planned batch. Member indices point into the
/// batch the plan was computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecPlan {
    /// Execute the request at this batch index as-is.
    Single(usize),
    /// One read replay covering `blkid..blkid+blkcnt`, fanned out to every
    /// member afterwards.
    MergedRead {
        /// First block of the merged span.
        blkid: u32,
        /// Length of the merged span in blocks.
        blkcnt: u32,
        /// Batch indices served by this span.
        members: Vec<usize>,
    },
    /// One write replay of the concatenated member payloads (strictly
    /// adjacent extents, in order).
    BatchedWrite {
        /// First block of the batched write.
        blkid: u32,
        /// Batch indices folded into this write, in submission order.
        members: Vec<usize>,
    },
}

impl ExecPlan {
    /// Whether this plan actually merged more than one request.
    pub fn is_coalesced(&self) -> bool {
        match self {
            ExecPlan::Single(_) => false,
            ExecPlan::MergedRead { members, .. } | ExecPlan::BatchedWrite { members, .. } => {
                members.len() > 1
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    Other,
}

fn kind(req: &Request) -> Kind {
    match req {
        Request::Read { .. } => Kind::Read,
        Request::Write { .. } => Kind::Write,
        Request::Capture { .. } => Kind::Other,
    }
}

/// Merge a run of read requests (batch indices) into maximal contiguous
/// spans.
fn plan_read_run(batch: &[Request], run: &[usize], out: &mut Vec<ExecPlan>) {
    // Sort members by start block; sweep to build spans over the union.
    let mut members: Vec<usize> = run.to_vec();
    members.sort_by_key(|&i| match &batch[i] {
        Request::Read { blkid, .. } => *blkid,
        _ => unreachable!("read run holds only reads"),
    });
    let extent = |i: usize| match &batch[i] {
        Request::Read { blkid, blkcnt, .. } => (*blkid, *blkid + *blkcnt),
        _ => unreachable!("read run holds only reads"),
    };
    let mut span_members = vec![members[0]];
    let (mut lo, mut hi) = extent(members[0]);
    for &i in &members[1..] {
        let (s, e) = extent(i);
        if s <= hi && hi.max(e) - lo <= crate::MAX_REQUEST_BLOCKS {
            // Adjacent or overlapping (and still within the span bound):
            // extend the span.
            hi = hi.max(e);
            span_members.push(i);
        } else {
            out.push(ExecPlan::MergedRead {
                blkid: lo,
                blkcnt: hi - lo,
                members: std::mem::take(&mut span_members),
            });
            lo = s;
            hi = e;
            span_members.push(i);
        }
    }
    out.push(ExecPlan::MergedRead { blkid: lo, blkcnt: hi - lo, members: span_members });
}

/// Chain strictly adjacent writes of a run; overlaps break the chain.
fn plan_write_run(batch: &[Request], run: &[usize], out: &mut Vec<ExecPlan>) {
    let extent = |i: usize| match &batch[i] {
        Request::Write { blkid, data, .. } => (*blkid, *blkid + (data.len() / BLOCK) as u32),
        _ => unreachable!("write run holds only writes"),
    };
    let mut chain: Vec<usize> = vec![run[0]];
    let (mut lo, mut end) = extent(run[0]);
    for &i in &run[1..] {
        let (s, e) = extent(i);
        if s == end && e - lo <= crate::MAX_REQUEST_BLOCKS {
            end = e;
            chain.push(i);
        } else {
            out.push(ExecPlan::BatchedWrite { blkid: lo, members: std::mem::take(&mut chain) });
            lo = s;
            end = e;
            chain.push(i);
        }
    }
    out.push(ExecPlan::BatchedWrite { blkid: lo, members: chain });
}

/// Plan a drained batch. With `coalesce` off, every request is a
/// [`ExecPlan::Single`] in queue order (the uncoalesced baseline).
pub fn plan(batch: &[Request], coalesce: bool) -> Vec<ExecPlan> {
    if !coalesce {
        return (0..batch.len()).map(ExecPlan::Single).collect();
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < batch.len() {
        let k = kind(&batch[i]);
        let mut run = vec![i];
        let mut j = i + 1;
        while j < batch.len() && kind(&batch[j]) == k {
            run.push(j);
            j += 1;
        }
        match k {
            Kind::Read => plan_read_run(batch, &run, &mut out),
            Kind::Write => plan_write_run(batch, &run, &mut out),
            Kind::Other => out.extend(run.into_iter().map(ExecPlan::Single)),
        }
        i = j;
    }
    out
}

/// Decompose an arbitrary block count into the recorded granularities
/// (largest first) — the replayer "must access the data in ways specified
/// by the recorded paths" (§3.3). `granularities` must contain 1.
pub fn decompose(mut blkcnt: u32, granularities: &[u32]) -> Vec<u32> {
    let mut sorted = granularities.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut parts = Vec::new();
    while blkcnt > 0 {
        let g = sorted.iter().copied().find(|g| *g <= blkcnt).unwrap_or(1);
        parts.push(g);
        blkcnt -= g;
    }
    parts
}

/// Transfer direction of a pending request, as the plug state machine and
/// the run planner see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A block read.
    Read,
    /// A block write.
    Write,
    /// Anything that never merges (camera captures).
    Other,
}

/// The direction of a request.
pub fn direction(req: &Request) -> Direction {
    match req {
        Request::Read { .. } => Direction::Read,
        Request::Write { .. } => Direction::Write,
        Request::Capture { .. } => Direction::Other,
    }
}

/// One pending request as the plug planner sees it: who submitted it, when
/// it arrived (virtual service time), and which way it moves data.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Owning session.
    pub session: SessionId,
    /// Virtual arrival (submission) time.
    pub arrival_ns: u64,
    /// Transfer direction.
    pub direction: Direction,
}

/// Why a planned dispatch fires when it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchReason {
    /// No hold: the lane had a backlog (requests — possibly from several
    /// competing sessions — were already waiting when the lane became
    /// free), holds are disabled, or the request never merges (captures).
    Immediate,
    /// The plug held the full latency budget and no unplug trigger fired.
    HoldExpired,
    /// Unplugged early: the plugging session changed transfer direction.
    UnplugDirection,
    /// Unplugged early: the fill cap was reached — the queue is full (no
    /// further request can arrive) or a whole dispatch window's worth has
    /// arrived (nothing more can join this batch), so holding buys
    /// nothing.
    UnplugQueueFull,
    /// Unplugged early: a competing session's request that cannot join the
    /// held run (opposite direction) arrived — the plug never makes
    /// another tenant wait for work it cannot merge.
    UnplugCompetitor,
}

/// A planned dispatch instant for one lane.
#[derive(Debug, Clone, Copy)]
pub struct Dispatch {
    /// Virtual time at which the lane unplugs and executes a batch.
    pub at_ns: u64,
    /// What ended (or prevented) the hold.
    pub reason: DispatchReason,
}

impl Dispatch {
    /// Whether this dispatch actually held the queue open past the ready
    /// instant (anticipatory behaviour, as opposed to immediate issue).
    pub fn held(&self) -> bool {
        self.reason != DispatchReason::Immediate
    }
}

/// The anticipatory plug/unplug state machine (kernel block-layer style),
/// evaluated over a lane's pending queue in virtual time.
///
/// `pending` yields the lane's queue in arrival order (per-lane queues
/// are FIFO in submission time, so this is also sorted by `arrival_ns`);
/// it is an iterator — the planner sits on the event loop's hot path and
/// only ever inspects the prefix up to the hold deadline, so the lane
/// hands it a lazy view rather than materialising its queue. `lane_now`
/// is the lane clock; `hold_budget_ns` the anticipation budget (0
/// disables holding); `capacity` the fill cap — the queue bound or the
/// dispatch window, whichever is smaller, since holding past either
/// cannot merge anything more into this dispatch.
///
/// Rules, replayed deterministically against the stamped arrivals:
///
/// * **No hold on a backlog.** If the first pending request arrived while
///   the lane was still busy (`arrival <= lane_now`), requests are already
///   waiting — possibly from competing sessions — and the batch dispatches
///   immediately. A plug only ever opens on an *idle* lane the moment a
///   request arrives.
/// * **Hold.** Otherwise the lane plugs at the first arrival and holds its
///   queue open until `arrival + hold_budget_ns`, merging every
///   same-direction request (any session — cross-tenant adjacent reads are
///   cooperating, not competing) that arrives inside the window.
/// * **Early unplug.** The plug releases before the budget expires when a
///   request of the opposite direction arrives ([`DispatchReason::UnplugDirection`]
///   from the plugging session, [`DispatchReason::UnplugCompetitor`] from
///   any other — the plug never holds while a competing session waits with
///   unmergeable work), or when the queue fills to capacity
///   ([`DispatchReason::UnplugQueueFull`]).
pub fn plan_dispatch(
    pending: impl IntoIterator<Item = Arrival>,
    lane_now: u64,
    hold_budget_ns: u64,
    capacity: usize,
) -> Dispatch {
    let mut pending = pending.into_iter();
    let first = pending.next().expect("plan_dispatch needs a non-empty queue");
    let ready = lane_now.max(first.arrival_ns);
    let immediate = Dispatch { at_ns: ready, reason: DispatchReason::Immediate };
    if hold_budget_ns == 0 || first.direction == Direction::Other {
        return immediate;
    }
    if first.arrival_ns <= lane_now {
        // Backlog: the request (and anything behind it) was already
        // waiting when the lane became free.
        return immediate;
    }
    let deadline = first.arrival_ns.saturating_add(hold_budget_ns);
    for (held, p) in std::iter::once(first).chain(pending).enumerate() {
        if p.arrival_ns > deadline {
            break;
        }
        if p.direction != first.direction {
            let reason = if p.session == first.session {
                DispatchReason::UnplugDirection
            } else {
                DispatchReason::UnplugCompetitor
            };
            return Dispatch { at_ns: p.arrival_ns, reason };
        }
        if held + 1 >= capacity {
            return Dispatch { at_ns: p.arrival_ns, reason: DispatchReason::UnplugQueueFull };
        }
    }
    Dispatch { at_ns: deadline, reason: DispatchReason::HoldExpired }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn rd(blkid: u32, blkcnt: u32) -> Request {
        Request::Read { device: Device::Mmc, blkid, blkcnt }
    }

    fn wr(blkid: u32, blocks: u32) -> Request {
        Request::Write { device: Device::Mmc, blkid, data: vec![0u8; blocks as usize * BLOCK] }
    }

    #[test]
    fn adjacent_reads_from_many_sessions_merge_into_one_span() {
        let batch: Vec<Request> = (0..8).map(|i| rd(100 + i, 1)).collect();
        let plans = plan(&batch, true);
        assert_eq!(
            plans,
            vec![ExecPlan::MergedRead {
                blkid: 100,
                blkcnt: 8,
                members: (0..8).collect::<Vec<_>>()
            }]
        );
        assert!(plans[0].is_coalesced());
    }

    #[test]
    fn overlapping_reads_merge_and_holes_split_spans() {
        let batch = vec![rd(10, 4), rd(12, 4), rd(30, 2)];
        let plans = plan(&batch, true);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0], ExecPlan::MergedRead { blkid: 10, blkcnt: 6, members: vec![0, 1] });
        assert_eq!(plans[1], ExecPlan::MergedRead { blkid: 30, blkcnt: 2, members: vec![2] });
        assert!(!plans[1].is_coalesced());
    }

    #[test]
    fn writes_chain_only_when_strictly_adjacent() {
        let batch = vec![wr(0, 8), wr(8, 8), wr(8, 8), wr(24, 8)];
        let plans = plan(&batch, true);
        // 0 and 1 chain; 2 overlaps 1 (same extent) so it breaks the chain;
        // 3 is not adjacent to 2's end (16) so it stands alone.
        assert_eq!(
            plans,
            vec![
                ExecPlan::BatchedWrite { blkid: 0, members: vec![0, 1] },
                ExecPlan::BatchedWrite { blkid: 8, members: vec![2] },
                ExecPlan::BatchedWrite { blkid: 24, members: vec![3] },
            ]
        );
    }

    #[test]
    fn direction_changes_fence_the_runs() {
        // The read of block 8 must not merge across the write to block 8.
        let batch = vec![rd(8, 1), wr(8, 1), rd(8, 1)];
        let plans = plan(&batch, true);
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|p| !p.is_coalesced()));
    }

    #[test]
    fn disabled_coalescing_is_all_singles() {
        let batch: Vec<Request> = (0..4).map(|i| rd(i, 1)).collect();
        let plans = plan(&batch, false);
        assert_eq!(plans, (0..4).map(ExecPlan::Single).collect::<Vec<_>>());
    }

    fn arr(session: SessionId, arrival_ns: u64, direction: Direction) -> Arrival {
        Arrival { session, arrival_ns, direction }
    }

    #[test]
    fn hold_expires_on_the_latency_budget() {
        // One session streams same-direction reads into an idle lane: the
        // plug holds the full budget, capturing every arrival inside it.
        let pending = [
            arr(1, 1_000, Direction::Read),
            arr(1, 5_000, Direction::Read),
            arr(1, 40_000, Direction::Read), // outside the window
        ];
        let d = plan_dispatch(pending, 0, 20_000, 64);
        assert_eq!(d.at_ns, 21_000, "dispatch at first arrival + budget");
        assert_eq!(d.reason, DispatchReason::HoldExpired);
        assert!(d.held());
    }

    #[test]
    fn hold_unplugs_early_on_direction_change() {
        let pending = [
            arr(1, 1_000, Direction::Read),
            arr(1, 4_000, Direction::Write), // same session turns around
        ];
        let d = plan_dispatch(pending, 0, 20_000, 64);
        assert_eq!(d.at_ns, 4_000, "unplug the moment the direction changes");
        assert_eq!(d.reason, DispatchReason::UnplugDirection);
    }

    #[test]
    fn hold_unplugs_early_when_the_queue_fills() {
        // Capacity 3: the third arrival fills the queue; waiting longer
        // cannot merge anything more, so the plug releases right there.
        let pending = [
            arr(1, 1_000, Direction::Read),
            arr(1, 2_000, Direction::Read),
            arr(1, 3_000, Direction::Read),
        ];
        let d = plan_dispatch(pending, 0, 50_000, 3);
        assert_eq!(d.at_ns, 3_000);
        assert_eq!(d.reason, DispatchReason::UnplugQueueFull);
    }

    #[test]
    fn never_holds_when_a_competing_session_is_waiting() {
        // Backlog case: both sessions' requests were already waiting when
        // the lane became free (lane_now past their arrivals) — no hold at
        // all, the batch issues immediately.
        let pending = [arr(1, 1_000, Direction::Read), arr(2, 2_000, Direction::Read)];
        let d = plan_dispatch(pending, 10_000, 50_000, 64);
        assert_eq!(d.at_ns, 10_000);
        assert_eq!(d.reason, DispatchReason::Immediate);
        assert!(!d.held());

        // Mid-hold case: a competing session arrives with unmergeable
        // (opposite-direction) work — the plug releases at that arrival
        // instead of making the competitor wait out the budget.
        let pending = [arr(1, 1_000, Direction::Read), arr(2, 6_000, Direction::Write)];
        let d = plan_dispatch(pending, 0, 50_000, 64);
        assert_eq!(d.at_ns, 6_000);
        assert_eq!(d.reason, DispatchReason::UnplugCompetitor);
    }

    #[test]
    fn cooperating_sessions_join_a_hold_and_captures_never_plug() {
        // Same-direction arrivals from *other* sessions ride the plug —
        // cross-tenant adjacent reads are the coalescer's bread and butter.
        let pending = [
            arr(1, 1_000, Direction::Read),
            arr(2, 2_000, Direction::Read),
            arr(3, 3_000, Direction::Read),
        ];
        let d = plan_dispatch(pending, 0, 20_000, 64);
        assert_eq!(d.reason, DispatchReason::HoldExpired);

        // Camera captures never anticipate.
        let pending = [arr(1, 1_000, Direction::Other)];
        let d = plan_dispatch(pending, 0, 20_000, 64);
        assert_eq!(d.at_ns, 1_000);
        assert_eq!(d.reason, DispatchReason::Immediate);

        // Budget 0 disables holding outright.
        let pending = [arr(1, 1_000, Direction::Read)];
        let d = plan_dispatch(pending, 0, 0, 64);
        assert_eq!(d.reason, DispatchReason::Immediate);
    }

    #[test]
    fn decompose_prefers_large_recorded_granularities() {
        let g = [1, 8, 32, 128, 256];
        assert_eq!(decompose(300, &g), vec![256, 32, 8, 1, 1, 1, 1]);
        assert_eq!(decompose(300, &g).iter().sum::<u32>(), 300);
        assert_eq!(decompose(40, &[1, 8]), vec![8, 8, 8, 8, 8]);
    }
}
