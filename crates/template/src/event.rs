//! Replay events (Table 1) and their metadata.

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::expr::SymExpr;

/// The interface an event touches: a device register, a location inside one
/// of the template's DMA allocations ("shared memory"), or an environment
/// API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Iface {
    /// A device register at an absolute physical address.
    Reg {
        /// Physical address.
        addr: u64,
        /// Architected register name (for failure reports / debugging).
        name: String,
    },
    /// A word inside the `alloc`-th DMA allocation of the template.
    Shm {
        /// Index of the allocation (in `dma_alloc` event order).
        alloc: usize,
        /// Byte offset within the allocation.
        offset: u64,
    },
    /// An environment (kernel-API) interface.
    Env(EnvApi),
}

impl Iface {
    /// Short display form used in failure reports.
    pub fn describe(&self) -> String {
        match self {
            Iface::Reg { addr, name } => format!("{name}@{addr:#x}"),
            Iface::Shm { alloc, offset } => format!("dma[{alloc}]+{offset:#x}"),
            Iface::Env(api) => format!("env:{api:?}"),
        }
    }
}

/// Environment APIs a driver may call (the Env↔Driver interface, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnvApi {
    /// Allocate DMA-capable contiguous memory.
    DmaAlloc,
    /// Obtain random bytes.
    GetRandBytes,
    /// Obtain a timestamp.
    GetTs,
}

/// What the replayer does with the value produced by an input event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadSink {
    /// Value only checked against the constraint, then discarded.
    Discard,
    /// Value bound to a name usable by later expressions/constraints.
    Capture(String),
    /// Value is IO payload destined for the trustlet's buffer at this byte
    /// offset (e.g. the last three words of an MMC read arriving via SDDATA).
    UserData {
        /// Byte offset into the trustlet buffer.
        offset: u64,
    },
}

/// Role of a DMA allocation within a template, discovered at record time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmaRole {
    /// Holds device descriptors (DMA control blocks, CBW/CSW, page lists).
    Descriptor,
    /// Holds IO payload moving device -> trustlet.
    DataIn,
    /// Holds IO payload moving trustlet -> device.
    DataOut,
    /// Holds a long-lived shared-memory structure (the VCHIQ queue).
    Queue,
    /// Anything else.
    Other,
}

/// Direction of the IO payload a template moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataDirection {
    /// Device -> trustlet (a read / capture).
    DeviceToUser,
    /// Trustlet -> device (a write).
    UserToDevice,
    /// No payload (pure control).
    None,
}

/// One replay event (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Input: read `len` bytes from `iface`; the observed value must satisfy
    /// `constraint`.
    Read {
        /// Interface to read.
        iface: Iface,
        /// Constraint on the observed value (state-changing reads carry a
        /// real constraint; non-state-changing reads carry `Any`).
        constraint: Constraint,
        /// Access width in bytes (4 for registers and shm words).
        len: u32,
        /// What to do with the value.
        sink: ReadSink,
    },
    /// Input: allocate DMA memory (`V = dma_alloc(A)`).
    DmaAlloc {
        /// Allocation size in bytes. May be symbolic (e.g. depend on a
        /// captured image size), though the common case is a constant.
        len: SymExpr,
        /// Role of the allocation.
        role: DmaRole,
    },
    /// Input: obtain `len` random bytes from the environment.
    GetRandBytes {
        /// Number of random bytes.
        len: u32,
        /// Capture name for the value (first 8 bytes), if referenced later.
        sink: ReadSink,
    },
    /// Input: obtain a timestamp of `len` bytes from the environment.
    GetTs {
        /// Timestamp width in bytes (4 or 8).
        len: u32,
        /// Capture name, if referenced later.
        sink: ReadSink,
    },
    /// Input: wait for an interrupt on `line`.
    WaitForIrq {
        /// Interrupt line number.
        line: u32,
        /// Give-up timeout in microseconds (divergence if it expires).
        timeout_us: u64,
    },
    /// Output: write the evaluated `value` to `iface`.
    Write {
        /// Interface to write.
        iface: Iface,
        /// Value expression (concrete or parameterised).
        value: SymExpr,
    },
    /// Output: copy the trustlet's payload into a DMA allocation before the
    /// device consumes it (recorded when the gold driver copies user data
    /// into DMA pages; the bytes themselves are not part of the recording).
    CopyUserToDma {
        /// Destination allocation index.
        alloc: usize,
        /// Offset within the allocation.
        offset: u64,
        /// Source offset within the trustlet buffer.
        user_offset: u64,
        /// Number of bytes; may be symbolic (e.g. `blkcnt * 512`).
        len: SymExpr,
    },
    /// Input: copy device-produced payload from a DMA allocation to the
    /// trustlet buffer after the device produced it.
    CopyDmaToUser {
        /// Source allocation index.
        alloc: usize,
        /// Offset within the allocation.
        offset: u64,
        /// Destination offset within the trustlet buffer.
        user_offset: u64,
        /// Number of bytes; may be symbolic.
        len: SymExpr,
    },
    /// Meta: delay for `us` microseconds.
    Delay {
        /// Microseconds to wait.
        us: u64,
    },
    /// Meta: poll `iface` until `cond` holds, executing `body` each
    /// iteration, waiting `delay_us` between iterations.
    Poll {
        /// Interface being polled.
        iface: Iface,
        /// Events executed in each loop iteration (often empty).
        body: Vec<Event>,
        /// Termination condition on the polled value.
        cond: Constraint,
        /// Delay between iterations in microseconds.
        delay_us: u64,
        /// Upper bound on iterations before declaring divergence.
        max_iters: u64,
    },
}

/// Event kind, for the Table 3/5 breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Input events.
    Input,
    /// Output events.
    Output,
    /// Meta events.
    Meta,
}

impl Event {
    /// Classify per the paper's input/output/meta taxonomy.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Read { .. }
            | Event::DmaAlloc { .. }
            | Event::GetRandBytes { .. }
            | Event::GetTs { .. }
            | Event::WaitForIrq { .. }
            | Event::CopyDmaToUser { .. } => EventKind::Input,
            Event::Write { .. } | Event::CopyUserToDma { .. } => EventKind::Output,
            Event::Delay { .. } | Event::Poll { .. } => EventKind::Meta,
        }
    }

    /// Whether the event is state-changing per the §3.1 definition: all
    /// outputs, plus inputs that are interrupts, environment responses, or
    /// constrained/captured reads.
    pub fn is_state_changing(&self) -> bool {
        match self {
            Event::Write { .. } | Event::CopyUserToDma { .. } => true,
            Event::DmaAlloc { .. }
            | Event::GetRandBytes { .. }
            | Event::GetTs { .. }
            | Event::WaitForIrq { .. } => true,
            Event::Read { constraint, sink, .. } => {
                constraint.is_constraining() || !matches!(sink, ReadSink::Discard)
            }
            Event::Poll { .. } | Event::Delay { .. } | Event::CopyDmaToUser { .. } => false,
        }
    }

    /// Short one-line rendering for emitted documents and failure reports,
    /// e.g. `read(SDCMD@0x3f202000, "==0x0", 4)`.
    pub fn describe(&self) -> String {
        match self {
            Event::Read { iface, constraint, len, .. } => {
                format!("read({}, \"{}\", {len})", iface.describe(), constraint.describe())
            }
            Event::DmaAlloc { len, role } => {
                format!("dma_alloc({}, {:?})", len.describe(), role)
            }
            Event::GetRandBytes { len, .. } => format!("get_rand_bytes({len})"),
            Event::GetTs { len, .. } => format!("get_ts({len})"),
            Event::WaitForIrq { line, timeout_us } => {
                format!("wait_for_irq({line}, {timeout_us}us)")
            }
            Event::Write { iface, value } => {
                format!("write({}, {})", iface.describe(), value.describe())
            }
            Event::CopyUserToDma { alloc, offset, len, .. } => {
                format!("copy_user_to_dma(dma[{alloc}]+{offset:#x}, {})", len.describe())
            }
            Event::CopyDmaToUser { alloc, offset, len, .. } => {
                format!("copy_dma_to_user(dma[{alloc}]+{offset:#x}, {})", len.describe())
            }
            Event::Delay { us } => format!("delay({us})"),
            Event::Poll { iface, cond, delay_us, .. } => {
                format!("poll({}, \"delay {delay_us}\", \"{}\")", iface.describe(), cond.describe())
            }
        }
    }
}

/// Where in the gold driver an event was recorded. The replayer dumps these
/// sites when it aborts after persistent divergence, which is how the paper's
/// fault-injection experiment pinpoints the failing register read (§8.2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSite {
    /// Source file in the gold driver.
    pub file: String,
    /// Line number.
    pub line: u32,
}

impl SourceSite {
    /// Construct a source site.
    pub fn new(file: &str, line: u32) -> Self {
        SourceSite { file: file.to_string(), line }
    }

    /// Unknown provenance (synthesised events).
    pub fn unknown() -> Self {
        SourceSite { file: "<synthesised>".to_string(), line: 0 }
    }
}

/// An event plus its recording provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedEvent {
    /// The replay event.
    pub event: Event,
    /// Where the gold driver performed the original interaction.
    pub site: SourceSite,
}

impl RecordedEvent {
    /// Wrap an event with a recording site.
    pub fn new(event: Event, site: SourceSite) -> Self {
        RecordedEvent { event, site }
    }

    /// Wrap an event with unknown provenance.
    pub fn bare(event: Event) -> Self {
        RecordedEvent { event, site: SourceSite::unknown() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str, addr: u64) -> Iface {
        Iface::Reg { addr, name: name.to_string() }
    }

    #[test]
    fn classification_matches_table1() {
        let read = Event::Read {
            iface: reg("SDHSTS", 0x3f20_2020),
            constraint: Constraint::eq_const(0x200),
            len: 4,
            sink: ReadSink::Discard,
        };
        assert_eq!(read.kind(), EventKind::Input);
        let write = Event::Write { iface: reg("SDARG", 0x3f20_2004), value: SymExpr::Const(0) };
        assert_eq!(write.kind(), EventKind::Output);
        let poll = Event::Poll {
            iface: reg("SDCMD", 0x3f20_2000),
            body: vec![],
            cond: Constraint::MaskClear { mask: 0x8000 },
            delay_us: 10,
            max_iters: 1000,
        };
        assert_eq!(poll.kind(), EventKind::Meta);
        let delay = Event::Delay { us: 5 };
        assert_eq!(delay.kind(), EventKind::Meta);
        let irq = Event::WaitForIrq { line: 56, timeout_us: 100_000 };
        assert_eq!(irq.kind(), EventKind::Input);
        let alloc = Event::DmaAlloc { len: SymExpr::Const(4096), role: DmaRole::DataIn };
        assert_eq!(alloc.kind(), EventKind::Input);
    }

    #[test]
    fn state_changing_follows_the_papers_definition() {
        // All outputs are state-changing.
        assert!(Event::Write { iface: reg("SDCMD", 0), value: SymExpr::Const(0x8011) }
            .is_state_changing());
        // IRQs and env responses are state-changing.
        assert!(Event::WaitForIrq { line: 56, timeout_us: 1 }.is_state_changing());
        assert!(Event::DmaAlloc { len: SymExpr::Const(31), role: DmaRole::Descriptor }
            .is_state_changing());
        // Constrained reads are state-changing; unconstrained ones are not.
        assert!(Event::Read {
            iface: reg("SDHSTS", 0),
            constraint: Constraint::eq_const(1),
            len: 4,
            sink: ReadSink::Discard
        }
        .is_state_changing());
        assert!(!Event::Read {
            iface: reg("HFNUM", 0),
            constraint: Constraint::Any,
            len: 4,
            sink: ReadSink::Discard
        }
        .is_state_changing());
        // Captured reads are state-changing even without a constraint (their
        // value feeds later outputs).
        assert!(Event::Read {
            iface: Iface::Shm { alloc: 0, offset: 0x10 },
            constraint: Constraint::Any,
            len: 4,
            sink: ReadSink::Capture("img_size".into())
        }
        .is_state_changing());
    }

    #[test]
    fn describe_renders_paper_style_lines() {
        let e = Event::Read {
            iface: reg("SDCMD", 0x3f20_2000),
            constraint: Constraint::eq_const(0),
            len: 4,
            sink: ReadSink::Discard,
        };
        assert_eq!(e.describe(), "read(SDCMD@0x3f202000, \"== 0x0\", 4)");
        let e = Event::Poll {
            iface: reg("SDCMD", 0x3f20_2000),
            body: vec![],
            cond: Constraint::MaskClear { mask: 0x8000 },
            delay_us: 10,
            max_iters: 100,
        };
        assert!(e.describe().starts_with("poll(SDCMD"));
        let e = Event::Write {
            iface: Iface::Shm { alloc: 2, offset: 0x4 },
            value: SymExpr::DmaBase(3),
        };
        assert_eq!(e.describe(), "write(dma[2]+0x4, dma[3])");
    }

    #[test]
    fn serde_round_trip_of_a_small_event_list() {
        let events = vec![
            RecordedEvent::new(
                Event::Write { iface: reg("SDARG", 4), value: SymExpr::Param("blkid".into()) },
                SourceSite::new("bcm2835-sdhost.c", 612),
            ),
            RecordedEvent::bare(Event::Delay { us: 10 }),
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<RecordedEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
        assert_eq!(back[0].site.line, 612);
        assert_eq!(back[1].site.file, "<synthesised>");
    }
}
