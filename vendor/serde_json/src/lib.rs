//! Workspace-local minimal stand-in for the `serde_json` crate.
//!
//! Serialises the [`serde::Value`] tree produced by the sibling `serde`
//! stand-in to JSON text and parses JSON text back. Supports everything the
//! workspace's data model emits: objects, arrays, strings with escapes,
//! booleans, `null`, unsigned/signed integers and floating-point numbers.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialisation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialise to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialise to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialise to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parse a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that parses back
                // to the same f64 (and keeps a `.0` on integral values).
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_word("null").map(|()| Value::Null),
            Some(b't') => self.eat_word("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // `-0` and friends parse as signed.
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        let n: Option<u32> = from_str("null").unwrap();
        assert_eq!(n, None);
        let f: f64 = from_str("2.5").unwrap();
        assert_eq!(f, 2.5);
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u64> = vec![1];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }
}
