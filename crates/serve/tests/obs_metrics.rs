//! Metrics-plane reconciliation property: under random threaded traffic —
//! faults injected and cleared mid-run — the [`MetricsSnapshot`] counters
//! must reconcile exactly at every quiescent point:
//!
//! * per lane: `admitted == completed + diverged + failed` and
//!   `in_queue == 0` once drained (mid-run, `in_queue` is the difference);
//! * per service: the per-session `submitted` total equals the terminal
//!   total (`completed + diverged`) — every accepted request reaches
//!   exactly one terminal classification, whatever path it took.

use dlt_core::FaultPlan;
use dlt_obs::metrics::MetricsSnapshot;
use dlt_obs::ObsConfig;
use dlt_serve::{Device, DriverletService, ExecMode, Request, ServeConfig, SubmitMode};
use proptest::prelude::*;

fn reconcile_lanes(snap: &MetricsSnapshot) {
    for lane in &snap.lanes {
        prop_assert_eq!(lane.in_queue, 0, "lane {} drained but holds work", lane.lane);
        prop_assert_eq!(
            lane.admitted,
            lane.completed + lane.diverged + lane.failed,
            "lane {} ({}) leaked a request between admission and its terminal event",
            lane.lane,
            &lane.device
        );
    }
}

fn run_case(choices: &[u8], mode: SubmitMode) {
    let config = ServeConfig {
        submit_mode: mode,
        exec_mode: ExecMode::Threaded,
        obs: ObsConfig::Full,
        block_granularities: vec![1, 8],
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::new(&[Device::Mmc, Device::Usb], config).expect("build service");
    let sessions: Vec<u32> = (0..3).map(|_| service.open_session().unwrap()).collect();

    let mut faulted = false;
    for (i, byte) in choices.iter().enumerate() {
        let session = sessions[*byte as usize % sessions.len()];
        let device = if byte % 2 == 0 { Device::Mmc } else { Device::Usb };
        match byte % 7 {
            // Flip the fault state on the MMC lane: replays from here on
            // diverge (sticky) until the next flip clears it.
            0 => {
                if faulted {
                    service.clear_fault(Device::Mmc).expect("clear fault");
                } else {
                    service
                        .inject_fault(
                            Device::Mmc,
                            FaultPlan {
                                template: Some("_rd_".to_string()),
                                sticky: true,
                                ..FaultPlan::default()
                            },
                        )
                        .expect("inject fault");
                }
                faulted = !faulted;
            }
            // A quiescent checkpoint mid-run: the invariants must already
            // hold here, not only at the end.
            1 => {
                service.drain_all();
                for s in &sessions {
                    service.take_completions(*s);
                }
                let snap = service.metrics_snapshot().expect("metrics plane is on");
                reconcile_lanes(&snap);
            }
            2 | 3 => {
                let data = vec![*byte; 512];
                let _ = service.submit(
                    session,
                    Request::Write { device, blkid: 64 + u32::from(*byte % 32), data },
                );
            }
            _ => {
                let _ = service.submit(
                    session,
                    Request::Read {
                        device,
                        blkid: 64 + u32::from(*byte % 32),
                        blkcnt: 1 + u32::from(i as u8 % 4),
                    },
                );
            }
        }
        if mode == SubmitMode::Ring && byte % 5 == 0 {
            service.ring_doorbell().expect("doorbell");
        }
    }
    service.drain_all();
    for s in &sessions {
        service.take_completions(*s);
    }

    let snap = service.metrics_snapshot().expect("metrics plane is on");
    reconcile_lanes(&snap);

    let submitted: u64 = snap.sessions.iter().map(|s| s.submitted).sum();
    let terminal: u64 = snap.sessions.iter().map(|s| s.completed + s.diverged).sum();
    prop_assert_eq!(
        submitted,
        terminal,
        "sessions saw {} submissions but {} terminal completions",
        submitted,
        terminal
    );

    // The faulted phases produced real divergences exactly when a fault
    // was live; the lane counter and the session counters agree on them.
    let lane_diverged: u64 = snap.lanes.iter().map(|l| l.diverged).sum();
    let session_diverged: u64 = snap.sessions.iter().map(|s| s.diverged).sum();
    prop_assert_eq!(lane_diverged, session_diverged);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn per_call_metrics_reconcile_under_faulted_threaded_traffic(
        choices in proptest::collection::vec(any::<u8>(), 24..64)
    ) {
        run_case(&choices, SubmitMode::PerCall);
    }

    #[test]
    fn ring_metrics_reconcile_under_faulted_threaded_traffic(
        choices in proptest::collection::vec(any::<u8>(), 24..64)
    ) {
        run_case(&choices, SubmitMode::Ring);
    }
}
