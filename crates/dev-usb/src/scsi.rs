//! SCSI command set and the backing disk of the USB flash drive.
//!
//! The USB mass-storage class driver translates block requests into SCSI
//! commands; the paper notes that the full Linux driver selects among five
//! READ/WRITE command variants and picks READ(10)/WRITE(10) as "just long
//! enough to encode the requested LBA addresses" (§7.2.3). The disk model
//! implements the command subset a Linux-class stack needs plus the FTL-ish
//! behaviour (4 KiB program granularity) that motivates the driver's
//! read-modify-write of sub-page writes.

use std::collections::HashMap;

use crate::{USB_BLOCK_SIZE, USB_FTL_PAGE};

/// SCSI operation codes understood by the disk.
pub mod opcode {
    /// TEST UNIT READY.
    pub const TEST_UNIT_READY: u8 = 0x00;
    /// REQUEST SENSE.
    pub const REQUEST_SENSE: u8 = 0x03;
    /// INQUIRY.
    pub const INQUIRY: u8 = 0x12;
    /// MODE SENSE (6).
    pub const MODE_SENSE_6: u8 = 0x1a;
    /// READ CAPACITY (10).
    pub const READ_CAPACITY_10: u8 = 0x25;
    /// READ (10).
    pub const READ_10: u8 = 0x28;
    /// WRITE (10).
    pub const WRITE_10: u8 = 0x2a;
    /// READ (6) — defined but unused by the gold driver (it picks READ(10)).
    pub const READ_6: u8 = 0x08;
    /// WRITE (6) — defined but unused by the gold driver.
    pub const WRITE_6: u8 = 0x0a;
    /// READ (16) — defined but unused by the gold driver.
    pub const READ_16: u8 = 0x88;
    /// WRITE (16) — defined but unused by the gold driver.
    pub const WRITE_16: u8 = 0x8a;
    /// SYNCHRONIZE CACHE (10).
    pub const SYNCHRONIZE_CACHE: u8 = 0x35;
}

/// Outcome of executing a SCSI command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScsiResponse {
    /// Command succeeded and produced `data` for the host (data-in phase).
    DataIn(Vec<u8>),
    /// Command succeeded and expects `len` bytes from the host (data-out).
    NeedsDataOut(usize),
    /// Command succeeded with no data phase.
    Good,
    /// Command failed; sense data describes why (CHECK CONDITION).
    CheckCondition {
        /// Sense key.
        key: u8,
        /// Additional sense code.
        asc: u8,
    },
}

/// A parsed command descriptor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cdb {
    /// Operation code.
    pub opcode: u8,
    /// Logical block address (for READ/WRITE).
    pub lba: u64,
    /// Number of blocks (for READ/WRITE) or allocation length otherwise.
    pub blocks: u32,
}

impl Cdb {
    /// Parse a raw CDB (6/10/16-byte forms of the commands we support).
    pub fn parse(raw: &[u8]) -> Option<Cdb> {
        if raw.is_empty() {
            return None;
        }
        let opcode = raw[0];
        match opcode {
            opcode::READ_10 | opcode::WRITE_10 => {
                if raw.len() < 10 {
                    return None;
                }
                let lba = u32::from_be_bytes([raw[2], raw[3], raw[4], raw[5]]) as u64;
                let blocks = u16::from_be_bytes([raw[7], raw[8]]) as u32;
                Some(Cdb { opcode, lba, blocks })
            }
            opcode::READ_6 | opcode::WRITE_6 => {
                if raw.len() < 6 {
                    return None;
                }
                let lba =
                    (u64::from(raw[1] & 0x1f) << 16) | (u64::from(raw[2]) << 8) | u64::from(raw[3]);
                let blocks = if raw[4] == 0 { 256 } else { u32::from(raw[4]) };
                Some(Cdb { opcode, lba, blocks })
            }
            opcode::READ_16 | opcode::WRITE_16 => {
                if raw.len() < 16 {
                    return None;
                }
                let lba = u64::from_be_bytes([
                    raw[2], raw[3], raw[4], raw[5], raw[6], raw[7], raw[8], raw[9],
                ]);
                let blocks = u32::from_be_bytes([raw[10], raw[11], raw[12], raw[13]]);
                Some(Cdb { opcode, lba, blocks })
            }
            opcode::INQUIRY | opcode::MODE_SENSE_6 | opcode::REQUEST_SENSE => {
                let alloc = raw.get(4).copied().unwrap_or(0);
                Some(Cdb { opcode, lba: 0, blocks: u32::from(alloc) })
            }
            _ => Some(Cdb { opcode, lba: 0, blocks: 0 }),
        }
    }

    /// Encode a READ(10) or WRITE(10) CDB for the given LBA/length — the
    /// variant the gold driver selects.
    pub fn encode_rw10(write: bool, lba: u32, blocks: u16) -> [u8; 10] {
        let mut cdb = [0u8; 10];
        cdb[0] = if write { opcode::WRITE_10 } else { opcode::READ_10 };
        cdb[2..6].copy_from_slice(&lba.to_be_bytes());
        cdb[7..9].copy_from_slice(&blocks.to_be_bytes());
        cdb
    }
}

/// Sense keys.
pub mod sense {
    /// No sense: everything fine.
    pub const NO_SENSE: u8 = 0x0;
    /// Not ready (e.g. medium removed).
    pub const NOT_READY: u8 = 0x2;
    /// Illegal request (bad opcode / LBA out of range).
    pub const ILLEGAL_REQUEST: u8 = 0x5;
}

/// The flash disk behind the SCSI interface.
#[derive(Debug, Clone)]
pub struct ScsiDisk {
    blocks: HashMap<u64, Vec<u8>>,
    total_blocks: u64,
    removed: bool,
    sense_key: u8,
    sense_asc: u8,
    reads: u64,
    writes: u64,
    /// Count of 4 KiB FTL pages programmed (write amplification statistic).
    pages_programmed: u64,
    distinct_opcodes: HashMap<u8, u64>,
}

impl ScsiDisk {
    /// A blank disk with `total_blocks` 512-byte logical blocks.
    pub fn new(total_blocks: u64) -> Self {
        ScsiDisk {
            blocks: HashMap::new(),
            total_blocks,
            removed: false,
            sense_key: sense::NO_SENSE,
            sense_asc: 0,
            reads: 0,
            writes: 0,
            pages_programmed: 0,
            distinct_opcodes: HashMap::new(),
        }
    }

    /// Number of logical blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Whether the medium is removed.
    pub fn is_removed(&self) -> bool {
        self.removed
    }

    /// Unplug the stick (fault injection).
    pub fn remove(&mut self) {
        self.removed = true;
    }

    /// Plug the stick back in.
    pub fn reinsert(&mut self) {
        self.removed = false;
        self.sense_key = sense::NO_SENSE;
    }

    /// Blocks read so far.
    pub fn blocks_read(&self) -> u64 {
        self.reads
    }

    /// Blocks written so far.
    pub fn blocks_written(&self) -> u64 {
        self.writes
    }

    /// FTL pages programmed so far.
    pub fn pages_programmed(&self) -> u64 {
        self.pages_programmed
    }

    /// Distinct SCSI opcodes seen (Table 7 "CMDs" population).
    pub fn distinct_opcodes_seen(&self) -> usize {
        self.distinct_opcodes.len()
    }

    /// Peek a block for validation (zero if never written).
    pub fn peek_block(&self, lba: u64) -> Vec<u8> {
        self.blocks.get(&lba).cloned().unwrap_or_else(|| vec![0u8; USB_BLOCK_SIZE])
    }

    /// Poke a block for fixtures.
    pub fn poke_block(&mut self, lba: u64, data: &[u8]) {
        let mut b = vec![0u8; USB_BLOCK_SIZE];
        let n = data.len().min(USB_BLOCK_SIZE);
        b[..n].copy_from_slice(&data[..n]);
        self.blocks.insert(lba, b);
    }

    fn set_sense(&mut self, key: u8, asc: u8) {
        self.sense_key = key;
        self.sense_asc = asc;
    }

    /// Execute the command phase of a SCSI command. For WRITEs the caller
    /// must follow up with [`ScsiDisk::write_data`] once the data-out phase
    /// delivered the payload.
    pub fn execute(&mut self, cdb: &Cdb) -> ScsiResponse {
        *self.distinct_opcodes.entry(cdb.opcode).or_insert(0) += 1;
        if self.removed && cdb.opcode != opcode::REQUEST_SENSE && cdb.opcode != opcode::INQUIRY {
            self.set_sense(sense::NOT_READY, 0x3a);
            return ScsiResponse::CheckCondition { key: sense::NOT_READY, asc: 0x3a };
        }
        match cdb.opcode {
            opcode::TEST_UNIT_READY | opcode::SYNCHRONIZE_CACHE => {
                self.set_sense(sense::NO_SENSE, 0);
                ScsiResponse::Good
            }
            opcode::INQUIRY => {
                let mut data = vec![0u8; 36];
                data[0] = 0x00; // direct-access block device
                data[1] = 0x80; // removable
                data[2] = 0x04; // SPC-2
                data[4] = 31; // additional length
                data[8..16].copy_from_slice(b"Intenso ");
                data[16..32].copy_from_slice(b"Micro Line 8GB  ");
                data[32..36].copy_from_slice(b"1.00");
                data.truncate((cdb.blocks as usize).clamp(5, 36));
                ScsiResponse::DataIn(data)
            }
            opcode::REQUEST_SENSE => {
                let mut data = vec![0u8; 18];
                data[0] = 0x70;
                data[2] = self.sense_key;
                data[7] = 10;
                data[12] = self.sense_asc;
                ScsiResponse::DataIn(data)
            }
            opcode::MODE_SENSE_6 => {
                // Minimal mode parameter header: not write protected.
                ScsiResponse::DataIn(vec![3, 0, 0, 0])
            }
            opcode::READ_CAPACITY_10 => {
                let last = (self.total_blocks - 1) as u32;
                let mut data = Vec::with_capacity(8);
                data.extend_from_slice(&last.to_be_bytes());
                data.extend_from_slice(&(USB_BLOCK_SIZE as u32).to_be_bytes());
                ScsiResponse::DataIn(data)
            }
            opcode::READ_10 | opcode::READ_6 | opcode::READ_16 => {
                if cdb.lba + u64::from(cdb.blocks) > self.total_blocks {
                    self.set_sense(sense::ILLEGAL_REQUEST, 0x21);
                    return ScsiResponse::CheckCondition { key: sense::ILLEGAL_REQUEST, asc: 0x21 };
                }
                let mut out = Vec::with_capacity(cdb.blocks as usize * USB_BLOCK_SIZE);
                for i in 0..u64::from(cdb.blocks) {
                    out.extend_from_slice(&self.peek_block(cdb.lba + i));
                }
                self.reads += u64::from(cdb.blocks);
                self.set_sense(sense::NO_SENSE, 0);
                ScsiResponse::DataIn(out)
            }
            opcode::WRITE_10 | opcode::WRITE_6 | opcode::WRITE_16 => {
                if cdb.lba + u64::from(cdb.blocks) > self.total_blocks {
                    self.set_sense(sense::ILLEGAL_REQUEST, 0x21);
                    return ScsiResponse::CheckCondition { key: sense::ILLEGAL_REQUEST, asc: 0x21 };
                }
                self.set_sense(sense::NO_SENSE, 0);
                ScsiResponse::NeedsDataOut(cdb.blocks as usize * USB_BLOCK_SIZE)
            }
            _ => {
                self.set_sense(sense::ILLEGAL_REQUEST, 0x20);
                ScsiResponse::CheckCondition { key: sense::ILLEGAL_REQUEST, asc: 0x20 }
            }
        }
    }

    /// Commit the data-out payload of a WRITE command.
    pub fn write_data(&mut self, lba: u64, data: &[u8]) -> bool {
        if self.removed || !data.len().is_multiple_of(USB_BLOCK_SIZE) {
            return false;
        }
        let count = (data.len() / USB_BLOCK_SIZE) as u64;
        if lba + count > self.total_blocks {
            return false;
        }
        for i in 0..count {
            let start = (i as usize) * USB_BLOCK_SIZE;
            self.blocks.insert(lba + i, data[start..start + USB_BLOCK_SIZE].to_vec());
        }
        self.writes += count;
        // FTL programs whole 4 KiB pages regardless of how few blocks change.
        let blocks_per_page = (USB_FTL_PAGE / USB_BLOCK_SIZE) as u64;
        let first_page = lba / blocks_per_page;
        let last_page = (lba + count - 1) / blocks_per_page;
        self.pages_programmed += last_page - first_page + 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdb_rw10_round_trip() {
        let raw = Cdb::encode_rw10(false, 0x1234_5678, 64);
        let cdb = Cdb::parse(&raw).unwrap();
        assert_eq!(cdb.opcode, opcode::READ_10);
        assert_eq!(cdb.lba, 0x1234_5678);
        assert_eq!(cdb.blocks, 64);

        let raw = Cdb::encode_rw10(true, 7, 1);
        let cdb = Cdb::parse(&raw).unwrap();
        assert_eq!(cdb.opcode, opcode::WRITE_10);
        assert_eq!(cdb.lba, 7);
        assert_eq!(cdb.blocks, 1);
    }

    #[test]
    fn cdb_read6_and_read16_forms() {
        let cdb = Cdb::parse(&[opcode::READ_6, 0x01, 0x02, 0x03, 0, 0]).unwrap();
        assert_eq!(cdb.lba, 0x010203);
        assert_eq!(cdb.blocks, 256, "a zero length field means 256 blocks in READ(6)");
        let mut raw16 = [0u8; 16];
        raw16[0] = opcode::WRITE_16;
        raw16[2..10].copy_from_slice(&0x1_0000_0000u64.to_be_bytes());
        raw16[10..14].copy_from_slice(&8u32.to_be_bytes());
        let cdb = Cdb::parse(&raw16).unwrap();
        assert_eq!(cdb.lba, 0x1_0000_0000);
        assert_eq!(cdb.blocks, 8);
    }

    #[test]
    fn inquiry_and_capacity() {
        let mut d = ScsiDisk::new(1000);
        match d.execute(&Cdb { opcode: opcode::INQUIRY, lba: 0, blocks: 36 }) {
            ScsiResponse::DataIn(data) => {
                assert_eq!(data.len(), 36);
                assert_eq!(&data[8..16], b"Intenso ");
            }
            other => panic!("unexpected {other:?}"),
        }
        match d.execute(&Cdb { opcode: opcode::READ_CAPACITY_10, lba: 0, blocks: 0 }) {
            ScsiResponse::DataIn(data) => {
                let last = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
                let bs = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
                assert_eq!(last, 999);
                assert_eq!(bs, 512);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = ScsiDisk::new(1000);
        let payload: Vec<u8> = (0..1024).map(|i| (i % 7) as u8).collect();
        match d.execute(&Cdb { opcode: opcode::WRITE_10, lba: 10, blocks: 2 }) {
            ScsiResponse::NeedsDataOut(n) => assert_eq!(n, 1024),
            other => panic!("unexpected {other:?}"),
        }
        assert!(d.write_data(10, &payload));
        match d.execute(&Cdb { opcode: opcode::READ_10, lba: 10, blocks: 2 }) {
            ScsiResponse::DataIn(data) => assert_eq!(data, payload),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.blocks_written(), 2);
        assert_eq!(d.blocks_read(), 2);
    }

    #[test]
    fn out_of_range_access_sets_sense() {
        let mut d = ScsiDisk::new(100);
        match d.execute(&Cdb { opcode: opcode::READ_10, lba: 99, blocks: 2 }) {
            ScsiResponse::CheckCondition { key, .. } => assert_eq!(key, sense::ILLEGAL_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
        // REQUEST SENSE reports it.
        match d.execute(&Cdb { opcode: opcode::REQUEST_SENSE, lba: 0, blocks: 18 }) {
            ScsiResponse::DataIn(data) => assert_eq!(data[2], sense::ILLEGAL_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn removed_medium_reports_not_ready() {
        let mut d = ScsiDisk::new(100);
        d.remove();
        match d.execute(&Cdb { opcode: opcode::TEST_UNIT_READY, lba: 0, blocks: 0 }) {
            ScsiResponse::CheckCondition { key, .. } => assert_eq!(key, sense::NOT_READY),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!d.write_data(0, &vec![0u8; 512]));
        d.reinsert();
        assert!(matches!(
            d.execute(&Cdb { opcode: opcode::TEST_UNIT_READY, lba: 0, blocks: 0 }),
            ScsiResponse::Good
        ));
    }

    #[test]
    fn ftl_page_accounting_shows_write_amplification() {
        let mut d = ScsiDisk::new(1000);
        // One 512-byte block still programs one whole 4 KiB page.
        d.execute(&Cdb { opcode: opcode::WRITE_10, lba: 0, blocks: 1 });
        assert!(d.write_data(0, &vec![1u8; 512]));
        assert_eq!(d.pages_programmed(), 1);
        // Eight contiguous blocks on one page boundary -> one page.
        d.execute(&Cdb { opcode: opcode::WRITE_10, lba: 8, blocks: 8 });
        assert!(d.write_data(8, &vec![1u8; 4096]));
        assert_eq!(d.pages_programmed(), 2);
        // A straddling write programs two pages.
        d.execute(&Cdb { opcode: opcode::WRITE_10, lba: 6, blocks: 4 });
        assert!(d.write_data(6, &vec![1u8; 2048]));
        assert_eq!(d.pages_programmed(), 4);
    }

    #[test]
    fn unknown_opcode_is_illegal_request() {
        let mut d = ScsiDisk::new(10);
        match d.execute(&Cdb { opcode: 0xff, lba: 0, blocks: 0 }) {
            ScsiResponse::CheckCondition { key, asc } => {
                assert_eq!(key, sense::ILLEGAL_REQUEST);
                assert_eq!(asc, 0x20);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
