//! Driverlet packaging: signed bundles of templates plus coverage reports.
//!
//! The recorder signs the templates at the end of a record campaign; they are
//! "thereafter immutable" (§4). The replayer verifies the signature before
//! accepting a bundle (§5, self security hardening). The signature here is a
//! keyed digest over the canonical *binary* encoding ([`crate::codec`]) — a
//! stand-in for the developer signature of the paper (which similarly only
//! needs to bind the bundle to a key held outside the TEE's attack surface);
//! it is not intended to be cryptographically strong and DESIGN.md documents
//! the substitution. Both the JSON document form and the binary form carry
//! the same signature, since both decode to the same canonical payload.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::template::Template;

/// Per-parameter cumulative coverage across a record campaign (§4: the
/// recorder "reports a cumulative coverage of the input space").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CoverageReport {
    /// One entry per replay-entry parameter.
    pub entries: Vec<CoverageEntry>,
}

/// Coverage of a single parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageEntry {
    /// Parameter name.
    pub param: String,
    /// Union of the constraints covered by the bundled templates.
    pub covered: Constraint,
}

impl CoverageReport {
    /// Build the report by unioning the parameter constraints of `templates`.
    pub fn from_templates(templates: &[Template]) -> Self {
        let mut map: Vec<(String, Constraint)> = Vec::new();
        for t in templates {
            for p in &t.params {
                match map.iter_mut().find(|(n, _)| *n == p.name) {
                    Some((_, c)) => *c = c.union(&p.constraint),
                    None => map.push((p.name.clone(), p.constraint.clone())),
                }
            }
        }
        CoverageReport {
            entries: map
                .into_iter()
                .map(|(param, covered)| CoverageEntry { param, covered })
                .collect(),
        }
    }

    /// Whether a concrete argument set falls inside the covered input space.
    pub fn covers(&self, args: &HashMap<String, u64>) -> bool {
        let env = crate::expr::EvalEnv::with_params(args.clone());
        self.entries.iter().all(|e| match args.get(&e.param) {
            Some(v) => e.covered.check(*v, &env),
            None => true,
        })
    }

    /// Human-readable report, e.g. `blkcnt: 0x1 || 0x8 || 0x20 ...`.
    pub fn describe(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{}: {}", e.param, e.covered.describe()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Errors from signature verification or deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignError {
    /// The bundle carries no signature.
    Unsigned,
    /// The signature does not match the contents (tampering or wrong key).
    BadSignature,
    /// The JSON could not be parsed.
    Malformed(String),
}

impl std::fmt::Display for SignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignError::Unsigned => write!(f, "driverlet bundle is unsigned"),
            SignError::BadSignature => write!(f, "driverlet signature verification failed"),
            SignError::Malformed(e) => write!(f, "malformed driverlet bundle: {e}"),
        }
    }
}

impl std::error::Error for SignError {}

/// A keyed digest over the bundle contents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Digest algorithm identifier.
    pub algo: String,
    /// The 64-bit keyed digest.
    pub mac: u64,
}

fn fnv1a(data: &[u8], mut state: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in data {
        state ^= u64::from(*b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

fn keyed_digest(key: &[u8], payload: &[u8]) -> u64 {
    // digest(key || payload || key), seeded with the FNV offset basis.
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    state = fnv1a(key, state);
    state = fnv1a(payload, state);
    state = fnv1a(key, state);
    state
}

/// A signed bundle of interaction templates for one device: the driverlet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Driverlet {
    /// Bus device name the templates drive (e.g. `sdhost`).
    pub device: String,
    /// Replay entry the bundle exports (e.g. `replay_mmc`).
    pub entry: String,
    /// The templates.
    pub templates: Vec<Template>,
    /// Cumulative input-space coverage.
    pub coverage: CoverageReport,
    /// Developer signature (present once the campaign is concluded).
    pub signature: Option<Signature>,
}

impl Driverlet {
    /// Bundle templates and compute the coverage report (unsigned).
    pub fn new(device: &str, entry: &str, templates: Vec<Template>) -> Self {
        let coverage = CoverageReport::from_templates(&templates);
        Driverlet {
            device: device.to_string(),
            entry: entry.to_string(),
            templates,
            coverage,
            signature: None,
        }
    }

    /// The signed bytes: the compact binary encoding of the bundle with the
    /// signature record omitted. Binding the signature to the deployment
    /// (binary) encoding means verification digests exactly the bytes the
    /// TEE loaded; the JSON document form round-trips the same signature.
    fn canonical_payload(&self) -> Vec<u8> {
        crate::codec::signing_payload(self)
    }

    /// Sign the bundle with the developer key. Signing freezes the contents:
    /// any later mutation makes verification fail.
    pub fn sign(&mut self, key: &[u8]) {
        let mac = keyed_digest(key, &self.canonical_payload());
        self.signature = Some(Signature { algo: "fnv1a-keyed-64".to_string(), mac });
    }

    /// Verify the bundle against the developer key.
    pub fn verify(&self, key: &[u8]) -> Result<(), SignError> {
        let sig = self.signature.as_ref().ok_or(SignError::Unsigned)?;
        let expect = keyed_digest(key, &self.canonical_payload());
        if sig.mac == expect {
            Ok(())
        } else {
            Err(SignError::BadSignature)
        }
    }

    /// Select the unique template matching `args`. By construction no two
    /// templates can match simultaneously (the recorder merges templates that
    /// share a state-transition path, §5); if several match, the first is
    /// returned and the anomaly is the recorder's bug, not the trustlet's.
    pub fn select(&self, args: &HashMap<String, u64>) -> Option<&Template> {
        self.templates.iter().find(|t| t.matches(args))
    }

    /// Serialise to the human-readable JSON document form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("driverlet serialisation cannot fail")
    }

    /// Parse a bundle from JSON.
    pub fn from_json(json: &str) -> Result<Self, SignError> {
        serde_json::from_str(json).map_err(|e| SignError::Malformed(e.to_string()))
    }

    /// Serialise to the compact binary bundle form (§8.3.4).
    pub fn to_binary(&self) -> Vec<u8> {
        crate::codec::encode(self)
    }

    /// Parse a bundle from the compact binary form. Truncated or corrupted
    /// inputs yield [`SignError::Malformed`]; the decoder never panics.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, SignError> {
        crate::codec::decode(bytes)
    }

    /// Size in bytes of the compact binary encoding.
    pub fn binary_size(&self) -> usize {
        self.to_binary().len()
    }

    /// Size in bytes of the serialised bundle (the §8.3.4 memory-overhead
    /// figure).
    pub fn serialized_size(&self) -> usize {
        self.to_json().len()
    }

    /// Size in bytes of a compact (non-pretty) encoding — the paper notes a
    /// binary form would shrink the templates further; the compact JSON is
    /// our nearest equivalent.
    pub fn compact_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Total number of events across all templates.
    pub fn total_events(&self) -> usize {
        self.templates.iter().map(|t| t.breakdown().total()).sum()
    }

    /// Run static vetting on every template.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.templates {
            t.validate().map_err(|e| format!("{}: {e}", t.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DataDirection, Event, Iface, RecordedEvent};
    use crate::expr::SymExpr;
    use crate::template::{ParamSpec, TemplateMeta};

    fn tiny_template(name: &str, blkcnt_max: u64) -> Template {
        Template {
            name: name.to_string(),
            entry: "replay_mmc".into(),
            device: "sdhost".into(),
            params: vec![
                ParamSpec {
                    name: "blkcnt".into(),
                    constraint: Constraint::InRange { min: 1, max: blkcnt_max },
                },
                ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(0) },
            ],
            direction: DataDirection::DeviceToUser,
            data_len: SymExpr::Param("blkcnt".into()).shl(9),
            irq_line: Some(56),
            events: vec![RecordedEvent::bare(Event::Write {
                iface: Iface::Reg { addr: 0x3f20_2004, name: "SDARG".into() },
                value: SymExpr::Param("blkcnt".into()),
            })],
            meta: TemplateMeta::default(),
        }
    }

    fn args(blkcnt: u64, rw: u64) -> HashMap<String, u64> {
        [("blkcnt".to_string(), blkcnt), ("rw".to_string(), rw)].into_iter().collect()
    }

    #[test]
    fn coverage_unions_across_templates() {
        let d = Driverlet::new(
            "sdhost",
            "replay_mmc",
            vec![tiny_template("rd_8", 8), tiny_template("rd_32", 32)],
        );
        assert!(d.coverage.covers(&args(5, 0)));
        assert!(d.coverage.covers(&args(20, 0)));
        assert!(!d.coverage.covers(&args(99, 0)));
        assert!(d.coverage.describe().contains("blkcnt"));
    }

    #[test]
    fn selection_picks_the_matching_template() {
        let d = Driverlet::new(
            "sdhost",
            "replay_mmc",
            vec![tiny_template("rd_8", 8), tiny_template("rd_32", 32)],
        );
        assert_eq!(d.select(&args(4, 0)).unwrap().name, "rd_8");
        assert_eq!(d.select(&args(16, 0)).unwrap().name, "rd_32");
        assert!(d.select(&args(64, 0)).is_none(), "out of coverage");
        assert!(d.select(&args(4, 1)).is_none(), "write requests have no template here");
    }

    #[test]
    fn sign_verify_and_tamper_detection() {
        let mut d = Driverlet::new("sdhost", "replay_mmc", vec![tiny_template("rd_8", 8)]);
        assert_eq!(d.verify(b"devkey"), Err(SignError::Unsigned));
        d.sign(b"devkey");
        assert!(d.verify(b"devkey").is_ok());
        assert_eq!(d.verify(b"wrongkey"), Err(SignError::BadSignature));
        // Any post-signing mutation is detected.
        d.templates[0].name = "rd_8_tampered".into();
        assert_eq!(d.verify(b"devkey"), Err(SignError::BadSignature));
    }

    #[test]
    fn json_round_trip_preserves_the_signature() {
        let mut d = Driverlet::new("sdhost", "replay_mmc", vec![tiny_template("rd_8", 8)]);
        d.sign(b"devkey");
        let json = d.to_json();
        let back = Driverlet::from_json(&json).unwrap();
        assert_eq!(back, d);
        assert!(back.verify(b"devkey").is_ok());
        assert!(Driverlet::from_json("{not json").is_err());
    }

    #[test]
    fn sizes_are_reported() {
        let d = Driverlet::new(
            "sdhost",
            "replay_mmc",
            vec![tiny_template("rd_8", 8), tiny_template("rd_32", 32)],
        );
        assert!(d.serialized_size() > 0);
        assert!(d.compact_size() > 0);
        assert!(d.compact_size() <= d.serialized_size());
        assert_eq!(d.total_events(), 2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn keyed_digest_depends_on_key_and_payload() {
        assert_ne!(keyed_digest(b"a", b"payload"), keyed_digest(b"b", b"payload"));
        assert_ne!(keyed_digest(b"a", b"payload"), keyed_digest(b"a", b"payloae"));
        assert_eq!(keyed_digest(b"a", b"payload"), keyed_digest(b"a", b"payload"));
    }
}
