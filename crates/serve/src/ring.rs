//! io_uring-style submission/completion rings in normal-world shared
//! memory.
//!
//! The ring submit path replaces "one SMC per operation" with two bounded
//! single-producer/single-consumer rings that both worlds can see:
//!
//! * a per-lane **submission ring** ([`SubmissionRing`]) the client fills
//!   without entering the TEE — only the **doorbell** SMC that follows a
//!   batch of enqueues crosses the world boundary, and it admits every
//!   staged entry at once;
//! * a per-session **completion ring** ([`CompletionRing`]) the service
//!   posts into and the client reaps without any SMC at all. When the ring
//!   is full the service never drops a completion: it spills to a
//!   kernel-side overflow list (io_uring's `CQ_OVERFLOW` behaviour), and
//!   flushing that list back costs the reader one world switch.
//!
//! Since the lane-threading refactor both rings sit on the genuinely
//! concurrent lock-free SPSC core in [`crate::spsc`]: monotone `AtomicU64`
//! head/tail indices with acquire/release publication and cache-line
//! padding, exactly the protocol a mapped io_uring SQ/CQ pair uses. A
//! [`SubmissionRing`]'s producing endpoint can be **detached**
//! ([`SubmissionRing::take_producer`]) and moved to another thread — that
//! is how [`crate::service::LaneSubmitter`] stages entries concurrently
//! with the front-end draining doorbells — while the consuming endpoint
//! stays with the service front-end. The per-session [`CompletionRing`]
//! keeps both endpoints (the front-end demultiplexes lane completions into
//! it and the same thread reaps it), plus the unbounded never-drop
//! overflow list that cannot live inside a fixed ring.

use std::collections::VecDeque;

use crate::spsc::{self, SpscConsumer, SpscProducer};
use crate::{Completion, Request, RequestId, SessionId};

/// One staged submission-ring slot: everything the gate trustlet needs to
/// admit the request at doorbell time.
#[derive(Debug, Clone)]
pub struct SqEntry {
    /// Request id assigned at enqueue (ids are handed out in enqueue
    /// order, exactly like the per-call path hands them out per SMC).
    pub id: RequestId,
    /// Session that staged the entry.
    pub session: SessionId,
    /// The request itself.
    pub req: Request,
    /// Normal-world (control-clock) time at which the client staged the
    /// entry — the stamp client-observed latency is measured from.
    pub enqueued_ns: u64,
}

/// A bounded submission ring (one per device lane).
#[derive(Debug)]
pub struct SubmissionRing {
    /// `None` once detached to a [`crate::service::LaneSubmitter`] living
    /// on another thread.
    producer: Option<SpscProducer<SqEntry>>,
    consumer: SpscConsumer<SqEntry>,
}

impl SubmissionRing {
    /// An empty ring with `depth` slots.
    pub fn new(depth: usize) -> Self {
        let (producer, consumer) = spsc::channel(depth.max(1));
        SubmissionRing { producer: Some(producer), consumer }
    }

    /// Entries currently staged (tail - head).
    pub fn len(&self) -> usize {
        self.consumer.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.consumer.is_empty()
    }

    /// Whether every slot is in use (the producer must ring the doorbell
    /// — or back off — before staging more).
    pub fn is_full(&self) -> bool {
        self.len() >= self.depth()
    }

    /// The ring bound.
    pub fn depth(&self) -> usize {
        self.consumer.capacity()
    }

    /// Deepest the ring has been (occupancy high-water mark).
    pub fn high_water(&self) -> usize {
        self.consumer.high_water()
    }

    /// Whether the producing endpoint is still attached (it moves out via
    /// [`SubmissionRing::take_producer`]).
    pub fn producer_attached(&self) -> bool {
        self.producer.is_some()
    }

    /// Detach the producing endpoint so another thread can stage entries
    /// concurrently with the front-end's doorbell drain. Returns `None` if
    /// it was already taken.
    pub fn take_producer(&mut self) -> Option<SpscProducer<SqEntry>> {
        self.producer.take()
    }

    /// Stage one entry. When the ring is full the entry is handed back —
    /// never dropped — together with the occupancy observed at rejection
    /// time (one coherent snapshot for the typed `QueueFull` error).
    ///
    /// # Panics
    ///
    /// Panics if the producing endpoint was detached; callers staging
    /// through the service check [`SubmissionRing::producer_attached`].
    pub fn try_push(&mut self, entry: SqEntry) -> Result<(), (SqEntry, usize)> {
        let producer = self.producer.as_mut().expect("submission-ring producer detached");
        producer.try_push(entry).map(|_| ())
    }

    /// Consume up to `n` staged entries in enqueue order (the gate's drain
    /// at doorbell time). The bound matters under a concurrent producer:
    /// the doorbell charges for the staged count it snapshotted, so it
    /// must admit exactly that many even if more entries land mid-drain.
    pub fn take_staged(&mut self, n: usize) -> Vec<SqEntry> {
        let mut out = Vec::with_capacity(n.min(self.len()));
        for _ in 0..n {
            match self.consumer.try_pop() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    /// Consume every currently staged entry in enqueue order. Besides
    /// full doorbell drains, this is the quarantine path's SQ rescue:
    /// entries staged on a lane the watchdog just quarantined are pulled
    /// off here and re-staged on available sibling rings, so they are
    /// not admitted onto the sick lane by the next doorbell.
    pub fn drain_staged(&mut self) -> Vec<SqEntry> {
        let visible = self.len();
        self.take_staged(visible)
    }
}

/// A bounded completion ring (one per session) with a never-drop overflow
/// list.
#[derive(Debug)]
pub struct CompletionRing {
    producer: SpscProducer<Completion>,
    consumer: SpscConsumer<Completion>,
    overflow: VecDeque<Completion>,
}

impl CompletionRing {
    /// An empty ring with `depth` reapable slots.
    pub fn new(depth: usize) -> Self {
        let (producer, consumer) = spsc::channel(depth.max(1));
        CompletionRing { producer, consumer, overflow: VecDeque::new() }
    }

    /// Completions waiting to be reaped (ring plus overflow list).
    pub fn len(&self) -> usize {
        self.consumer.len() + self.overflow.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post one completion. Returns `true` when the ring was full and the
    /// completion went to the overflow list instead (the reader's next
    /// reap must enter the kernel to flush it) — the service aggregates
    /// these into `ServeStats::cq_overflows`.
    pub fn post(&mut self, completion: Completion) -> bool {
        match self.producer.try_push(completion) {
            Ok(_) => false,
            Err((completion, _)) => {
                self.overflow.push_back(completion);
                true
            }
        }
    }

    /// Reap everything in post order. The boolean is `true` when the
    /// overflow list had to be flushed (which costs the ring-mode reader a
    /// world switch; in-ring entries are free to read).
    pub fn take_all(&mut self) -> (Vec<Completion>, bool) {
        let mut taken = self.consumer.drain();
        let flushed = !self.overflow.is_empty();
        taken.extend(self.overflow.drain(..));
        (taken, flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, ServeError};

    fn entry(id: RequestId) -> SqEntry {
        SqEntry {
            id,
            session: 1,
            req: Request::Read { device: Device::Mmc, blkid: id as u32, blkcnt: 1 },
            enqueued_ns: id,
        }
    }

    fn completion(id: RequestId) -> Completion {
        Completion {
            id,
            session: 1,
            device: Device::Mmc,
            result: Err(ServeError::Invalid("test".into())),
            submitted_ns: 0,
            completed_ns: id,
            coalesced: false,
        }
    }

    #[test]
    fn sq_bounds_and_preserves_enqueue_order() {
        let mut sq = SubmissionRing::new(2);
        sq.try_push(entry(1)).unwrap();
        sq.try_push(entry(2)).unwrap();
        let (rejected, observed) = sq.try_push(entry(3)).unwrap_err();
        assert_eq!(rejected.id, 3, "a full ring hands the entry back, never drops it");
        assert_eq!(observed, 2, "rejection snapshots the occupancy it saw");
        assert!(sq.is_full());
        assert_eq!(sq.high_water(), 2);
        let drained = sq.drain_staged();
        assert_eq!(drained.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 2]);
        assert!(sq.is_empty());
        // Indices keep rising across drain cycles (io_uring-style
        // monotone head/tail, never reset).
        sq.try_push(entry(4)).unwrap();
        assert_eq!(sq.len(), 1);
        assert_eq!(sq.drain_staged().len(), 1);
    }

    #[test]
    fn sq_take_staged_respects_the_doorbell_snapshot_bound() {
        let mut sq = SubmissionRing::new(8);
        for id in 1..=5 {
            sq.try_push(entry(id)).unwrap();
        }
        let first = sq.take_staged(3);
        assert_eq!(first.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(sq.len(), 2, "entries beyond the snapshot wait for the next doorbell");
        assert_eq!(sq.drain_staged().len(), 2);
    }

    #[test]
    fn sq_producer_detaches_for_cross_thread_staging() {
        let mut sq = SubmissionRing::new(4);
        let mut producer = sq.take_producer().expect("first take succeeds");
        assert!(!sq.producer_attached());
        assert!(sq.take_producer().is_none());
        let worker = std::thread::spawn(move || {
            for id in 1..=4 {
                producer.try_push(entry(id)).unwrap();
            }
        });
        worker.join().unwrap();
        assert_eq!(sq.drain_staged().iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cq_overflow_spills_without_dropping_and_flags_the_flush() {
        let mut cq = CompletionRing::new(2);
        assert!(!cq.post(completion(1)));
        assert!(!cq.post(completion(2)));
        assert!(cq.post(completion(3)), "the third post overflows a depth-2 ring");
        assert_eq!(cq.len(), 3);
        let (taken, flushed) = cq.take_all();
        assert!(flushed, "reaping past an overflow costs the reader a kernel entry");
        assert_eq!(taken.iter().map(|c| c.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(cq.is_empty());
        // In-ring reaps after the flush are free again.
        assert!(!cq.post(completion(4)));
        let (taken, flushed) = cq.take_all();
        assert_eq!(taken.len(), 1);
        assert!(!flushed);
    }
}
