//! Plane 2: the metrics registry.
//!
//! Allocation-free on the hot path: every series is a plain atomic — a
//! counter, a gauge, or one of 64 fixed log₂ [`Histogram`] buckets — and
//! recording is a single `fetch_add`/`fetch_max` with relaxed ordering.
//! Series are keyed structurally (one [`LaneMetrics`] per lane, one
//! [`SmcMetrics`] array slot per [`SmcKind`], one [`SessionMetrics`] per
//! open session); the only lock in the plane guards the session map, which
//! is touched on open/close and snapshot, never per-request by the lanes.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] — a serde-serialisable value the bench artifacts
//! (`BENCH_obs.json`), the `report -- obs` pretty-printer and the
//! Prometheus-style [`prometheus_text`] encoder all consume.
//!
//! The **reconciliation invariant** (property-tested in the serve suite):
//! for every lane, `admitted == completed + diverged + failed + in_queue`.
//! The four counters are bumped at *independent* instrumentation sites
//! (admission in the front-end's reserve, terminal classification in the
//! lane worker's completion post), so the invariant genuinely checks that
//! the instrumentation is consistent — it cannot hold by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::trace::SmcKind;

/// Number of log₂ buckets: bucket `i` counts values whose bit length is
/// `i` (bucket 0 holds the value 0), so the upper bound of bucket `i > 0`
/// is `2^i − 1` and 64 buckets cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram: 64 atomic counters, no allocation and no
/// locking to record.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Index of the bucket covering `value`: its bit length, clamped into
    /// the table.
    pub fn bucket_index(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Count one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A frozen [`Histogram`]: the per-bucket counts, serialisable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// One count per log₂ bucket (see [`HISTOGRAM_BUCKETS`]).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Upper bound (inclusive) of bucket `i`: the largest value the bucket
    /// can hold.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// observation (`q` in `[0, 1]`), or `None` when empty. Log₂ buckets
    /// make this an upper estimate within 2x — the resolution the p50/p99
    /// acceptance summaries need without per-sample storage.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(HistogramSnapshot::bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

/// Per-lane counters and gauges. The core lifecycle counters are cheap
/// enough to run unconditionally (they also back [`LaneMetrics`] consumers
/// like `LaneHealth` and the `QueueFull` high-water report); the latency
/// histogram is only recorded when the registry is enabled.
#[derive(Debug)]
pub struct LaneMetrics {
    device: String,
    admitted: AtomicU64,
    completed: AtomicU64,
    diverged: AtomicU64,
    failed: AtomicU64,
    in_queue: AtomicU64,
    occupancy_high_water: AtomicU64,
    replays: AtomicU64,
    coalesced_requests: AtomicU64,
    doorbell_batches: AtomicU64,
    last_event_host_ns: AtomicU64,
    /// Supervision state gauge (see [`LANE_STATE_HEALTHY`] and friends).
    state: AtomicU64,
    latency_ns: Histogram,
}

/// [`LaneMetrics`] state gauge value: the lane is serving normally.
pub const LANE_STATE_HEALTHY: u64 = 0;
/// [`LaneMetrics`] state gauge value: the supervisor quarantined the lane.
pub const LANE_STATE_QUARANTINED: u64 = 1;
/// [`LaneMetrics`] state gauge value: the lane is on probation after a
/// soft reset, serving again but still watched.
pub const LANE_STATE_PROBATION: u64 = 2;

impl LaneMetrics {
    /// A zeroed series set for one lane over `device`.
    pub fn new(device: impl Into<String>) -> LaneMetrics {
        LaneMetrics {
            device: device.into(),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            diverged: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            in_queue: AtomicU64::new(0),
            occupancy_high_water: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
            doorbell_batches: AtomicU64::new(0),
            last_event_host_ns: AtomicU64::new(0),
            state: AtomicU64::new(LANE_STATE_HEALTHY),
            latency_ns: Histogram::new(),
        }
    }

    /// The device this lane serves.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Admission: the front-end accepted a request at queue `depth`.
    pub fn on_admit(&self, depth: u64, host_ns: u64) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.in_queue.fetch_add(1, Ordering::Relaxed);
        self.occupancy_high_water.fetch_max(depth, Ordering::Relaxed);
        self.touch(host_ns);
    }

    /// Terminal classification: success. `latency_ns` is the request's
    /// virtual submit→complete latency; pass `record_latency = false` when
    /// the registry is off to skip the histogram.
    pub fn on_complete(&self, latency_ns: u64, host_ns: u64, record_latency: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.in_queue.fetch_sub(1, Ordering::Relaxed);
        if record_latency {
            self.latency_ns.record(latency_ns);
        }
        self.touch(host_ns);
    }

    /// Terminal classification: replay divergence.
    pub fn on_diverge(&self, host_ns: u64) {
        self.diverged.fetch_add(1, Ordering::Relaxed);
        self.in_queue.fetch_sub(1, Ordering::Relaxed);
        self.touch(host_ns);
    }

    /// Terminal classification: any other error.
    pub fn on_fail(&self, host_ns: u64) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.in_queue.fetch_sub(1, Ordering::Relaxed);
        self.touch(host_ns);
    }

    /// Un-admit: the request left this lane *without* a terminal outcome
    /// here — a quarantine eviction or a failover retry moved it to a
    /// sibling, whose own [`LaneMetrics::on_admit`] counts it next. Rolls
    /// back both sides of the admission so the reconciliation invariant
    /// (`admitted == completed + diverged + failed + in_queue`) holds
    /// per lane, not just fleet-wide.
    pub fn on_requeue(&self, host_ns: u64) {
        self.admitted.fetch_sub(1, Ordering::Relaxed);
        self.in_queue.fetch_sub(1, Ordering::Relaxed);
        self.touch(host_ns);
    }

    /// Set the supervision state gauge (one of [`LANE_STATE_HEALTHY`],
    /// [`LANE_STATE_QUARANTINED`], [`LANE_STATE_PROBATION`]).
    pub fn set_state(&self, state: u64, host_ns: u64) {
        self.state.store(state, Ordering::Relaxed);
        self.touch(host_ns);
    }

    /// Current supervision state gauge value.
    pub fn state(&self) -> u64 {
        self.state.load(Ordering::Relaxed)
    }

    /// One replay batch executed, folding `merged` requests into it.
    pub fn on_replay(&self, merged: u64) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.coalesced_requests.fetch_add(merged, Ordering::Relaxed);
    }

    /// One doorbell batch flushed on this lane.
    pub fn on_doorbell(&self) {
        self.doorbell_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Refresh the last-activity stamp without counting anything.
    pub fn touch(&self, host_ns: u64) {
        self.last_event_host_ns.fetch_max(host_ns, Ordering::Relaxed);
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests completed successfully.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests that ended in a replay divergence.
    pub fn diverged(&self) -> u64 {
        self.diverged.load(Ordering::Relaxed)
    }

    /// Requests that ended in a non-divergence error.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Requests admitted but not yet terminally classified.
    pub fn in_queue(&self) -> u64 {
        self.in_queue.load(Ordering::Relaxed)
    }

    /// Deepest admission-time queue occupancy ever observed.
    pub fn occupancy_high_water(&self) -> u64 {
        self.occupancy_high_water.load(Ordering::Relaxed)
    }

    /// Host-monotonic stamp of the lane's most recent recorded event.
    pub fn last_event_host_ns(&self) -> u64 {
        self.last_event_host_ns.load(Ordering::Relaxed)
    }

    /// Freeze this lane's series, labelling it `lane`.
    pub fn snapshot(&self, lane: usize) -> LaneSnapshot {
        let replays = self.replays.load(Ordering::Relaxed);
        let coalesced = self.coalesced_requests.load(Ordering::Relaxed);
        LaneSnapshot {
            lane,
            device: self.device.clone(),
            admitted: self.admitted(),
            completed: self.completed(),
            diverged: self.diverged(),
            failed: self.failed(),
            in_queue: self.in_queue(),
            occupancy_high_water: self.occupancy_high_water(),
            replays,
            coalesced_requests: coalesced,
            coalesce_ratio: if replays == 0 { 0.0 } else { coalesced as f64 / replays as f64 },
            doorbell_batches: self.doorbell_batches.load(Ordering::Relaxed),
            last_event_host_ns: self.last_event_host_ns(),
            state: self.state(),
            latency_ns: self.latency_ns.snapshot(),
        }
    }
}

/// A frozen [`LaneMetrics`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaneSnapshot {
    /// Lane index within the service.
    pub lane: usize,
    /// Device the lane serves.
    pub device: String,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests ending in replay divergence.
    pub diverged: u64,
    /// Requests ending in a non-divergence error.
    pub failed: u64,
    /// Requests still queued or in flight at snapshot time.
    pub in_queue: u64,
    /// Deepest admission-time queue occupancy observed.
    pub occupancy_high_water: u64,
    /// Replay batches executed.
    pub replays: u64,
    /// Requests folded into those batches.
    pub coalesced_requests: u64,
    /// Mean requests merged per replay (`coalesced_requests / replays`).
    pub coalesce_ratio: f64,
    /// Doorbell batches flushed on this lane.
    pub doorbell_batches: u64,
    /// Host stamp of the lane's most recent event.
    pub last_event_host_ns: u64,
    /// Supervision state gauge: [`LANE_STATE_HEALTHY`] (0),
    /// [`LANE_STATE_QUARANTINED`] (1) or [`LANE_STATE_PROBATION`] (2).
    pub state: u64,
    /// Virtual submit→complete latency histogram.
    pub latency_ns: HistogramSnapshot,
}

impl LaneSnapshot {
    /// Median virtual completion latency (log₂ bucket upper bound), µs.
    pub fn p50_us(&self) -> Option<u64> {
        self.latency_ns.quantile(0.50).map(|ns| ns / 1_000)
    }

    /// 99th-percentile virtual completion latency, µs.
    pub fn p99_us(&self) -> Option<u64> {
        self.latency_ns.quantile(0.99).map(|ns| ns / 1_000)
    }
}

/// SMC accounting by [`SmcKind`], plus the doorbell batch-size histogram.
#[derive(Debug, Default)]
pub struct SmcMetrics {
    by_kind: [AtomicU64; SmcKind::COUNT],
    doorbell_batch: Histogram,
}

impl SmcMetrics {
    /// A zeroed series set.
    pub fn new() -> SmcMetrics {
        SmcMetrics { by_kind: Default::default(), doorbell_batch: Histogram::new() }
    }

    /// Count one world switch of `kind`.
    pub fn record(&self, kind: SmcKind) {
        self.by_kind[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one doorbell flushing `batch` staged entries.
    pub fn record_doorbell_batch(&self, batch: u64) {
        self.doorbell_batch.record(batch);
    }

    /// Calls of `kind` so far.
    pub fn calls(&self, kind: SmcKind) -> u64 {
        self.by_kind[kind as usize].load(Ordering::Relaxed)
    }

    /// Total world switches across all kinds.
    pub fn total(&self) -> u64 {
        self.by_kind.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Per-session lifecycle counters (written by the front-end only).
#[derive(Debug, Default)]
pub struct SessionMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    diverged: AtomicU64,
    throttled: AtomicU64,
}

impl SessionMetrics {
    /// Count one submission.
    pub fn on_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful completion reaped by this session.
    pub fn on_complete(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one divergence reaped by this session.
    pub fn on_diverge(&self) {
        self.diverged.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one submit rejected at admission by QoS throttling.
    pub fn on_throttle(&self) {
        self.throttled.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fleet-wide robustness counters: admission throttling, replica
/// failover, lane quarantine and the orphan aggregate (terminal outcomes
/// whose session closed before the completion was reaped — counted here
/// instead of resurrecting a dead per-session series).
#[derive(Debug, Default)]
pub struct RobustnessMetrics {
    throttled: AtomicU64,
    failovers: AtomicU64,
    failover_exhausted: AtomicU64,
    quarantines: AtomicU64,
    lane_restores: AtomicU64,
    orphan_outcomes: AtomicU64,
    retired_outcomes: AtomicU64,
}

impl RobustnessMetrics {
    /// Count one submit rejected at admission by QoS throttling.
    pub fn on_throttle(&self) {
        self.throttled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one failover retry dispatched to a sibling replica.
    pub fn on_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request whose retry budget ran out.
    pub fn on_exhausted(&self) {
        self.failover_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one lane tripping into quarantine.
    pub fn on_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one quarantined lane passing probation back to healthy.
    pub fn on_lane_restore(&self) {
        self.lane_restores.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one terminal outcome delivered after its session closed.
    pub fn on_orphan_outcome(&self) {
        self.orphan_outcomes.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold `outcomes` terminal outcomes from a retired per-session
    /// series into the aggregate, so dropping the series on session close
    /// does not lose its history from fleet-wide conservation
    /// (`Σ session terminal + orphans + retired == Σ lane terminal`).
    pub fn on_session_retired(&self, outcomes: u64) {
        self.retired_outcomes.fetch_add(outcomes, Ordering::Relaxed);
    }

    /// Freeze the counters.
    pub fn snapshot(&self) -> RobustnessSnapshot {
        RobustnessSnapshot {
            throttled: self.throttled.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            failover_exhausted: self.failover_exhausted.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            lane_restores: self.lane_restores.load(Ordering::Relaxed),
            orphan_outcomes: self.orphan_outcomes.load(Ordering::Relaxed),
            retired_outcomes: self.retired_outcomes.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`RobustnessMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessSnapshot {
    /// Submits rejected at admission by QoS throttling.
    pub throttled: u64,
    /// Failover retries dispatched to sibling replicas.
    pub failovers: u64,
    /// Requests whose retry budget ran out.
    pub failover_exhausted: u64,
    /// Lane quarantine trips.
    pub quarantines: u64,
    /// Lanes restored to healthy after probation.
    pub lane_restores: u64,
    /// Terminal outcomes delivered after their session closed.
    pub orphan_outcomes: u64,
    /// Terminal outcomes folded in from per-session series retired on
    /// session close (closed sessions drop their series; their counted
    /// history moves here so fleet-wide conservation still holds).
    pub retired_outcomes: u64,
}

/// Fleet-routing counters (written by the serve layer's front-end
/// router only): placement decisions, saturated-home spills and stripe
/// fan-outs across replica lanes.
#[derive(Debug, Default)]
pub struct RouteMetrics {
    decisions: AtomicU64,
    spills: AtomicU64,
    stripe_fanouts: AtomicU64,
    stripe_parts: AtomicU64,
}

impl RouteMetrics {
    /// Count one routed submit planned into `parts` parts, `spilled` of
    /// which were shed off their saturated home lane.
    pub fn on_plan(&self, parts: u64, spilled: u64) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        self.spills.fetch_add(spilled, Ordering::Relaxed);
        if parts > 1 {
            self.stripe_fanouts.fetch_add(1, Ordering::Relaxed);
            self.stripe_parts.fetch_add(parts, Ordering::Relaxed);
        }
    }
}

/// A frozen [`RouteMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteSnapshot {
    /// Routed submits planned (route decisions).
    pub decisions: u64,
    /// Route parts shed off a saturated home lane to a sibling replica.
    pub spills: u64,
    /// Routed submits split across two or more replicas.
    pub stripe_fanouts: u64,
    /// Total parts those fan-outs produced.
    pub stripe_parts: u64,
}

/// A frozen [`SessionMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session id.
    pub session: u32,
    /// Requests submitted by the session.
    pub submitted: u64,
    /// Successful completions reaped.
    pub completed: u64,
    /// Divergences reaped.
    pub diverged: u64,
    /// Submits rejected at admission by QoS throttling.
    pub throttled: u64,
}

/// One SMC kind's call count, labelled for the JSON/Prometheus exports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmcKindCount {
    /// [`SmcKind::name`] label.
    pub kind: String,
    /// World switches of this kind.
    pub calls: u64,
}

/// The whole metrics plane, frozen and serialisable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-lane series.
    pub lanes: Vec<LaneSnapshot>,
    /// World switches by kind.
    pub smc_by_kind: Vec<SmcKindCount>,
    /// Doorbell batch-size histogram.
    pub doorbell_batch: HistogramSnapshot,
    /// Per-session series, sorted by session id.
    pub sessions: Vec<SessionSnapshot>,
    /// Fleet-routing counters. Snapshots persisted before the shard
    /// router existed fail to parse (the workspace serde stand-in has no
    /// field defaulting); consumers treat that as a stale artifact and
    /// regenerate, like every other schema extension here.
    pub route: RouteSnapshot,
    /// Robustness-plane counters (throttle/failover/quarantine), a schema
    /// extension under the same stale-artifact rule as `route`.
    pub robustness: RobustnessSnapshot,
}

impl MetricsSnapshot {
    /// Total world switches across all kinds.
    pub fn smc_total(&self) -> u64 {
        self.smc_by_kind.iter().map(|k| k.calls).sum()
    }
}

/// The registry: owns the per-lane, SMC and per-session series and freezes
/// them into [`MetricsSnapshot`]s.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    epoch: Instant,
    lanes: Mutex<Vec<Arc<LaneMetrics>>>,
    smc: Arc<SmcMetrics>,
    route: Arc<RouteMetrics>,
    robustness: Arc<RobustnessMetrics>,
    sessions: Mutex<HashMap<u32, Arc<SessionMetrics>>>,
}

impl MetricsRegistry {
    /// A registry. When `enabled` is false the structure still exists (the
    /// lane series double as `LaneHealth`/`QueueFull` inputs) but
    /// histogram and session recording is skipped by the callers.
    pub fn new(enabled: bool) -> MetricsRegistry {
        MetricsRegistry::with_epoch(enabled, Instant::now())
    }

    /// [`MetricsRegistry::new`] with an explicit host epoch, shared with
    /// the flight recorder so `last_event_host_ns` and trace stamps live
    /// in one domain.
    pub fn with_epoch(enabled: bool, epoch: Instant) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            epoch,
            lanes: Mutex::new(Vec::new()),
            smc: Arc::new(SmcMetrics::new()),
            route: Arc::new(RouteMetrics::default()),
            robustness: Arc::new(RobustnessMetrics::default()),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// Whether full recording (histograms, sessions, SMC kinds) is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Host-monotonic nanoseconds since the registry was built (the stamp
    /// domain of `last_event_host_ns`).
    pub fn host_now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The registry's host-monotonic epoch, shared with callers that stamp
    /// into the same domain off-registry (e.g. the serve layer's lanes).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Add a lane series and return its shared handle. Lane indices are
    /// assigned in registration order.
    pub fn register_lane(&self, device: impl Into<String>) -> Arc<LaneMetrics> {
        let lane = Arc::new(LaneMetrics::new(device));
        self.lanes.lock().expect("metrics lane registry poisoned").push(Arc::clone(&lane));
        lane
    }

    /// The shared SMC series.
    pub fn smc(&self) -> Arc<SmcMetrics> {
        Arc::clone(&self.smc)
    }

    /// The shared fleet-routing series.
    pub fn route(&self) -> Arc<RouteMetrics> {
        Arc::clone(&self.route)
    }

    /// The shared robustness-plane series.
    pub fn robustness(&self) -> Arc<RobustnessMetrics> {
        Arc::clone(&self.robustness)
    }

    /// The series for `session`, created on first use.
    pub fn session(&self, session: u32) -> Arc<SessionMetrics> {
        Arc::clone(
            self.sessions
                .lock()
                .expect("metrics session registry poisoned")
                .entry(session)
                .or_default(),
        )
    }

    /// Drop `session`'s series. Called on session close so thousands of
    /// open/close cycles do not grow the registry without bound; a
    /// completion that lands after the drop is counted in the robustness
    /// orphan aggregate instead of resurrecting the series.
    pub fn forget_session(&self, session: u32) {
        let removed =
            self.sessions.lock().expect("metrics session registry poisoned").remove(&session);
        if let Some(m) = removed {
            let terminal = m.completed.load(Ordering::Relaxed) + m.diverged.load(Ordering::Relaxed);
            if terminal > 0 {
                self.robustness.on_session_retired(terminal);
            }
        }
    }

    /// Number of live per-session series (the churn suites assert this
    /// returns to baseline after open/close storms).
    pub fn session_series_count(&self) -> usize {
        self.sessions.lock().expect("metrics session registry poisoned").len()
    }

    /// Freeze every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let lanes = self
            .lanes
            .lock()
            .expect("metrics lane registry poisoned")
            .iter()
            .enumerate()
            .map(|(i, lane)| lane.snapshot(i))
            .collect();
        let smc_by_kind = SmcKind::ALL
            .iter()
            .map(|&kind| SmcKindCount {
                kind: kind.name().to_string(),
                calls: self.smc.calls(kind),
            })
            .collect();
        let mut sessions: Vec<SessionSnapshot> = self
            .sessions
            .lock()
            .expect("metrics session registry poisoned")
            .iter()
            .map(|(&session, m)| SessionSnapshot {
                session,
                submitted: m.submitted.load(Ordering::Relaxed),
                completed: m.completed.load(Ordering::Relaxed),
                diverged: m.diverged.load(Ordering::Relaxed),
                throttled: m.throttled.load(Ordering::Relaxed),
            })
            .collect();
        sessions.sort_by_key(|s| s.session);
        MetricsSnapshot {
            lanes,
            smc_by_kind,
            doorbell_batch: self.smc.doorbell_batch.snapshot(),
            sessions,
            route: RouteSnapshot {
                decisions: self.route.decisions.load(Ordering::Relaxed),
                spills: self.route.spills.load(Ordering::Relaxed),
                stripe_fanouts: self.route.stripe_fanouts.load(Ordering::Relaxed),
                stripe_parts: self.route.stripe_parts.load(Ordering::Relaxed),
            },
            robustness: self.robustness.snapshot(),
        }
    }
}

/// A Prometheus metric family: name, help text, and the per-lane
/// field it exposes.
type LaneFamily = (&'static str, &'static str, fn(&LaneSnapshot) -> u64);

/// Encode a snapshot in the Prometheus text exposition format (one
/// `# TYPE` header per family, structural keys as labels).
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counter_families: [LaneFamily; 6] = [
        ("dlt_lane_admitted_total", "Requests admitted to the lane queue", |l| l.admitted),
        ("dlt_lane_completed_total", "Requests completed successfully", |l| l.completed),
        ("dlt_lane_diverged_total", "Requests ending in replay divergence", |l| l.diverged),
        ("dlt_lane_failed_total", "Requests ending in a non-divergence error", |l| l.failed),
        ("dlt_lane_replays_total", "Replay batches executed", |l| l.replays),
        ("dlt_lane_coalesced_requests_total", "Requests folded into replay batches", |l| {
            l.coalesced_requests
        }),
    ];
    for (name, help, get) in counter_families {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for lane in &snapshot.lanes {
            out.push_str(&format!(
                "{name}{{lane=\"{}\",device=\"{}\"}} {}\n",
                lane.lane,
                lane.device,
                get(lane)
            ));
        }
    }
    let gauge_families: [LaneFamily; 3] = [
        ("dlt_lane_in_queue", "Requests admitted but not yet terminal", |l| l.in_queue),
        ("dlt_lane_occupancy_high_water", "Deepest queue occupancy observed", |l| {
            l.occupancy_high_water
        }),
        ("dlt_lane_state", "Supervision state (0 healthy, 1 quarantined, 2 probation)", |l| {
            l.state
        }),
    ];
    for (name, help, get) in gauge_families {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        for lane in &snapshot.lanes {
            out.push_str(&format!(
                "{name}{{lane=\"{}\",device=\"{}\"}} {}\n",
                lane.lane,
                lane.device,
                get(lane)
            ));
        }
    }
    out.push_str(
        "# HELP dlt_smc_calls_total Secure-world switches by kind\n# TYPE dlt_smc_calls_total counter\n",
    );
    for kind in &snapshot.smc_by_kind {
        out.push_str(&format!("dlt_smc_calls_total{{kind=\"{}\"}} {}\n", kind.kind, kind.calls));
    }
    let route_families: [(&str, &str, u64); 4] = [
        ("dlt_route_decisions_total", "Routed submits planned", snapshot.route.decisions),
        ("dlt_route_spills_total", "Route parts shed to a sibling replica", snapshot.route.spills),
        (
            "dlt_route_stripe_fanouts_total",
            "Routed submits split across replicas",
            snapshot.route.stripe_fanouts,
        ),
        (
            "dlt_route_stripe_parts_total",
            "Parts produced by stripe fan-outs",
            snapshot.route.stripe_parts,
        ),
    ];
    for (name, help, value) in route_families {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
    }
    let robustness_families: [(&str, &str, u64); 7] = [
        ("dlt_throttled_total", "Submits rejected by admission QoS", snapshot.robustness.throttled),
        (
            "dlt_failovers_total",
            "Failover retries dispatched to sibling replicas",
            snapshot.robustness.failovers,
        ),
        (
            "dlt_failover_exhausted_total",
            "Requests whose retry budget ran out",
            snapshot.robustness.failover_exhausted,
        ),
        ("dlt_quarantines_total", "Lane quarantine trips", snapshot.robustness.quarantines),
        (
            "dlt_lane_restores_total",
            "Lanes restored to healthy after probation",
            snapshot.robustness.lane_restores,
        ),
        (
            "dlt_orphan_outcomes_total",
            "Terminal outcomes delivered after their session closed",
            snapshot.robustness.orphan_outcomes,
        ),
        (
            "dlt_retired_outcomes_total",
            "Terminal outcomes folded in from series retired on session close",
            snapshot.robustness.retired_outcomes,
        ),
    ];
    for (name, help, value) in robustness_families {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
    }
    out.push_str(
        "# HELP dlt_lane_latency_ns Virtual submit-to-complete latency (log2 buckets)\n# TYPE dlt_lane_latency_ns histogram\n",
    );
    for lane in &snapshot.lanes {
        let mut cumulative = 0u64;
        for (i, count) in lane.latency_ns.counts.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            cumulative += count;
            out.push_str(&format!(
                "dlt_lane_latency_ns_bucket{{lane=\"{}\",device=\"{}\",le=\"{}\"}} {cumulative}\n",
                lane.lane,
                lane.device,
                HistogramSnapshot::bucket_upper_bound(i)
            ));
        }
        out.push_str(&format!(
            "dlt_lane_latency_ns_bucket{{lane=\"{}\",device=\"{}\",le=\"+Inf\"}} {}\n",
            lane.lane,
            lane.device,
            lane.latency_ns.total()
        ));
        out.push_str(&format!(
            "dlt_lane_latency_ns_count{{lane=\"{}\",device=\"{}\"}} {}\n",
            lane.lane,
            lane.device,
            lane.latency_ns.total()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::new();
        for v in [0, 3, 3, 900, 900, 900, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total(), 7);
        // Rank 4 of 7 lands in the 900 bucket: upper bound 2^10 - 1.
        assert_eq!(snap.quantile(0.5), Some(1023));
        assert_eq!(snap.quantile(0.99), Some(131_071));
        assert_eq!(snap.quantile(0.0), Some(0));
        assert_eq!(HistogramSnapshot { counts: vec![0; HISTOGRAM_BUCKETS] }.quantile(0.5), None);
    }

    #[test]
    fn lane_metrics_reconcile_and_snapshot() {
        let lane = LaneMetrics::new("mmc");
        lane.on_admit(1, 10);
        lane.on_admit(2, 20);
        lane.on_admit(2, 30);
        lane.on_complete(1_500, 40, true);
        lane.on_diverge(50);
        assert_eq!(lane.admitted(), 3);
        assert_eq!(lane.completed() + lane.diverged() + lane.failed() + lane.in_queue(), 3);
        assert_eq!(lane.occupancy_high_water(), 2);
        assert_eq!(lane.last_event_host_ns(), 50);
        lane.on_replay(4);
        let snap = lane.snapshot(0);
        assert_eq!(snap.device, "mmc");
        assert_eq!(snap.in_queue, 1);
        assert_eq!(snap.coalesce_ratio, 4.0);
        assert_eq!(snap.latency_ns.total(), 1);
        assert_eq!(snap.p50_us(), Some(2047 / 1_000));
    }

    #[test]
    fn registry_snapshot_serialises_and_round_trips() {
        let registry = MetricsRegistry::new(true);
        let lane = registry.register_lane("usb");
        lane.on_admit(1, 5);
        lane.on_complete(2_000, 9, registry.is_enabled());
        registry.smc().record(SmcKind::Invoke);
        registry.smc().record(SmcKind::Doorbell);
        registry.smc().record_doorbell_batch(16);
        registry.session(3).on_submit();
        registry.session(3).on_complete();

        let snap = registry.snapshot();
        assert_eq!(snap.lanes.len(), 1);
        assert_eq!(snap.smc_total(), 2);
        assert_eq!(
            snap.sessions,
            vec![SessionSnapshot {
                session: 3,
                submitted: 1,
                completed: 1,
                diverged: 0,
                throttled: 0
            }]
        );

        let json = serde_json::to_string(&snap).expect("snapshot serialises");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(back.lanes[0].admitted, 1);
        assert_eq!(back.smc_total(), 2);
        assert_eq!(back.doorbell_batch.total(), 1);
    }

    #[test]
    fn forget_session_bounds_the_registry_and_orphans_aggregate() {
        let registry = MetricsRegistry::new(true);
        for id in 1..=100u32 {
            registry.session(id).on_submit();
        }
        assert_eq!(registry.session_series_count(), 100);
        for id in 1..=100u32 {
            registry.forget_session(id);
        }
        assert_eq!(registry.session_series_count(), 0);
        // A straggler completion after close lands in the orphan aggregate,
        // not a resurrected per-session series.
        registry.robustness().on_orphan_outcome();
        assert_eq!(registry.session_series_count(), 0);
        assert_eq!(registry.snapshot().robustness.orphan_outcomes, 1);
    }

    #[test]
    fn lane_state_and_requeue_keep_the_reconciliation_invariant() {
        let lane = LaneMetrics::new("mmc");
        lane.on_admit(1, 10);
        lane.on_admit(2, 20);
        // Quarantine evicts one queued request back to the router.
        lane.set_state(LANE_STATE_QUARANTINED, 30);
        lane.on_requeue(30);
        assert_eq!(lane.admitted(), 1);
        assert_eq!(lane.completed() + lane.diverged() + lane.failed() + lane.in_queue(), 1);
        lane.set_state(LANE_STATE_PROBATION, 40);
        lane.on_complete(500, 50, false);
        lane.set_state(LANE_STATE_HEALTHY, 60);
        let snap = lane.snapshot(0);
        assert_eq!(snap.state, LANE_STATE_HEALTHY);
        assert_eq!(snap.admitted, snap.completed + snap.diverged + snap.failed + snap.in_queue);
    }

    #[test]
    fn prometheus_text_carries_every_family() {
        let registry = MetricsRegistry::new(true);
        let lane = registry.register_lane("mmc");
        lane.on_admit(1, 1);
        lane.on_complete(900, 2, true);
        registry.smc().record(SmcKind::Yield);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("dlt_lane_admitted_total{lane=\"0\",device=\"mmc\"} 1"));
        assert!(text.contains("dlt_smc_calls_total{kind=\"yield\"} 1"));
        assert!(text.contains("dlt_lane_latency_ns_bucket"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.lines().filter(|l| l.starts_with("# TYPE")).count() >= 10);
    }
}
