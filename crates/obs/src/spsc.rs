//! A lock-free single-producer/single-consumer bounded ring.
//!
//! This is the concurrency primitive under the serve layer's shared-memory
//! rings (`dlt_serve::ring`), the per-lane channels that connect the
//! service front-end to its lane threads, and this crate's per-thread
//! trace rings ([`crate::trace`]) — it lives here, at the bottom of the
//! dependency graph, so every layer above (tee, core, serve) can ride the
//! same core. The protocol is the classic Lamport SPSC queue with
//! io_uring-flavoured monotone indices:
//!
//! * `head` and `tail` are monotonically increasing [`AtomicU64`]s; the
//!   occupied span is `tail - head`, and slot `i` lives at `i % capacity`.
//! * The **producer** owns `tail`: it reads `head` with `Acquire` (to
//!   learn how far the consumer has drained), writes the slot, then
//!   publishes the new `tail` with `Release` — the slot write
//!   happens-before any consumer that observes the new tail.
//! * The **consumer** owns `head`: it reads `tail` with `Acquire` (so the
//!   producer's slot write is visible), takes the slot, then publishes the
//!   new `head` with `Release` — the slot is provably vacated before any
//!   producer that observes the new head reuses it.
//!
//! Single ownership of each index is enforced **statically**: [`channel`]
//! returns exactly one [`SpscProducer`] and one [`SpscConsumer`], neither
//! of which is `Clone`, and the mutating operations take `&mut self`. That
//! is what makes the two `unsafe` slot accesses below sound — at any
//! instant a slot is reachable by at most one side, and the acquire/release
//! pair on the index transfers it.
//!
//! The head/tail indices are cache-line padded (`CachePadded`) so the
//! producer and consumer do not false-share a line: each side spins only
//! on the line the other side writes at most once per operation.

// The crate denies `unsafe_code`; this module is the single, carefully
// argued exception (see the soundness notes above and on each block).
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads (and aligns) a value to a 64-byte cache line so two adjacent
/// atomics never share a line (the producer's `tail` store would otherwise
/// invalidate the consumer's `head` line on every push, and vice versa).
#[derive(Debug, Default)]
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    capacity: u64,
    /// Consumer index: everything below `head` has been popped.
    head: CachePadded<AtomicU64>,
    /// Producer index: everything below `tail` has been pushed.
    tail: CachePadded<AtomicU64>,
    /// Deepest occupancy ever observed by the producer.
    high_water: AtomicUsize,
}

// SAFETY: the ring moves `T` values between the producer and the consumer
// thread; the index protocol above guarantees each slot is accessed by one
// side at a time, so `T: Send` is exactly the bound required (the same
// bound a mutex-based channel would need). No `&T` is ever shared across
// threads, so no `T: Sync` requirement.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // By the time `Inner` drops, both handles are gone: no concurrent
        // access. Drop every still-occupied slot.
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        for i in head..tail {
            let slot = &self.slots[(i % self.capacity) as usize];
            // SAFETY: slots in [head, tail) were written by the producer
            // and never popped; we have exclusive access in drop.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

impl<T> Inner<T> {
    fn len_from(&self, head: u64, tail: u64) -> usize {
        (tail - head) as usize
    }
}

/// Create a bounded SPSC ring with `capacity` slots (minimum 1), returning
/// the two single-owner endpoints.
pub fn channel<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let capacity = capacity.max(1);
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let inner = Arc::new(Inner {
        slots,
        capacity: capacity as u64,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        high_water: AtomicUsize::new(0),
    });
    (
        SpscProducer { inner: Arc::clone(&inner), cached_head: 0, local_high: 0 },
        SpscConsumer { inner },
    )
}

/// The producing endpoint of an SPSC ring (not `Clone`: single producer).
pub struct SpscProducer<T> {
    inner: Arc<Inner<T>>,
    /// The consumer's `head` as last observed. The push fast path checks
    /// capacity against this cache and only re-reads the shared `head`
    /// (an `Acquire` load of a line the consumer writes — a cross-core
    /// miss under load) when the ring *appears* full; a drained ring is
    /// then re-checked exactly. This is Lamport's classic SPSC
    /// optimisation: one shared-index read per wraparound, not per push.
    cached_head: u64,
    /// Producer-local mirror of the shared high-water mark, so the fast
    /// path skips the atomic read-before-max.
    local_high: usize,
}

impl<T> std::fmt::Debug for SpscProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscProducer").field("len", &self.len()).finish()
    }
}

impl<T> SpscProducer<T> {
    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.inner.capacity as usize
    }

    /// Occupancy as the producer sees it (exact for the producer: only the
    /// consumer can concurrently shrink it).
    pub fn len(&self) -> usize {
        let head = self.inner.head.0.load(Ordering::Acquire);
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        self.inner.len_from(head, tail)
    }

    /// Whether the ring is empty from the producer's side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring is full from the producer's side.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Deepest occupancy the producer has ever observed.
    pub fn high_water(&self) -> usize {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Push one value. On success returns the occupancy *after* the push
    /// as the producer sees it (computed against the cached consumer
    /// index, so it is an upper bound — the consumer may have drained
    /// since — but never exceeds `capacity`); when the ring is full, the
    /// shared `head` is re-read and the value handed back together with
    /// the *exact* occupancy observed at rejection time — one coherent
    /// snapshot, so a `QueueFull` error raced against a draining consumer
    /// still reports a `depth <= capacity` that was true at the rejection
    /// instant.
    pub fn try_push(&mut self, value: T) -> Result<usize, (T, usize)> {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        if self.inner.len_from(self.cached_head, tail) >= self.capacity() {
            self.cached_head = self.inner.head.0.load(Ordering::Acquire);
            let occupied = self.inner.len_from(self.cached_head, tail);
            if occupied >= self.capacity() {
                return Err((value, occupied));
            }
        }
        let slot = &self.inner.slots[(tail % self.inner.capacity) as usize];
        // SAFETY: `tail - cached_head < capacity` means slot
        // `tail % capacity` is vacant: `cached_head` was Acquire-read from
        // the consumer's `head` publication (here or on an earlier push),
        // `head` only grows, and the producer owns `tail` exclusively
        // (`&mut self`, non-Clone handle) — so the consumer finished with
        // this slot and nobody else can write it.
        unsafe { (*slot.get()).write(value) };
        self.inner.tail.0.store(tail + 1, Ordering::Release);
        let depth = self.inner.len_from(self.cached_head, tail + 1);
        if depth > self.local_high {
            self.local_high = depth;
            self.inner.high_water.store(depth, Ordering::Relaxed);
        }
        Ok(depth)
    }
}

/// The consuming endpoint of an SPSC ring (not `Clone`: single consumer).
pub struct SpscConsumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for SpscConsumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscConsumer").field("len", &self.len()).finish()
    }
}

impl<T> SpscConsumer<T> {
    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.inner.capacity as usize
    }

    /// Occupancy as the consumer sees it (exact for the consumer: only the
    /// producer can concurrently grow it).
    pub fn len(&self) -> usize {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        self.inner.len_from(head, tail)
    }

    /// Whether nothing is currently poppable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest occupancy the producer has ever observed (shared with the
    /// producing endpoint — the consumer reads it for observability).
    pub fn high_water(&self) -> usize {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Pop the oldest value, if any.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.inner.slots[(head % self.inner.capacity) as usize];
        // SAFETY: `head < tail` and the Acquire load of `tail` make the
        // producer's write of this slot visible; the producer will not
        // reuse the slot until it observes the `head` store below, and no
        // other consumer exists (`&mut self`, non-Clone handle).
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.inner.head.0.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Pop everything currently visible, in push order.
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Pop everything currently visible into `out`, in push order, with
    /// one index publication for the whole batch (a per-event `try_pop`
    /// loop would pay an `Acquire`/`Release` pair per element; a bulk
    /// drain of an N-event ring pays one).
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        out.reserve((tail - head) as usize);
        for i in head..tail {
            let slot = &self.inner.slots[(i % self.inner.capacity) as usize];
            // SAFETY: `i < tail` and the Acquire load of `tail` make the
            // producer's writes of every slot in `[head, tail)` visible;
            // the producer will not reuse any of them until it observes
            // the single `head` store below, and no other consumer exists
            // (`&mut self`, non-Clone handle).
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        self.inner.head.0.store(tail, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_preserves_order_and_bounds() {
        let (mut tx, mut rx) = channel::<u32>(2);
        assert_eq!(tx.try_push(1), Ok(1));
        assert_eq!(tx.try_push(2), Ok(2));
        let (back, depth) = tx.try_push(3).unwrap_err();
        assert_eq!((back, depth), (3, 2), "rejection reports the full depth it observed");
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(tx.try_push(3), Ok(2), "a pop frees exactly one slot");
        assert_eq!(rx.drain(), vec![2, 3]);
        assert_eq!(rx.try_pop(), None);
        assert_eq!(tx.high_water(), 2);
    }

    #[test]
    fn wraps_around_many_times_with_a_tiny_capacity() {
        let (mut tx, mut rx) = channel::<u64>(3);
        for i in 0..1_000u64 {
            tx.try_push(i).unwrap();
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn dropping_a_non_empty_ring_drops_the_values() {
        let value = Arc::new(());
        let (mut tx, rx) = channel::<Arc<()>>(4);
        tx.try_push(Arc::clone(&value)).unwrap();
        tx.try_push(Arc::clone(&value)).unwrap();
        assert_eq!(Arc::strong_count(&value), 3);
        drop((tx, rx));
        assert_eq!(Arc::strong_count(&value), 1, "queued values must not leak");
    }
}
