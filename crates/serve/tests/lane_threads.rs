//! Targeted tests for [`dlt_serve::ExecMode::Threaded`]: lane threads
//! executing concurrently with the front-end.
//!
//! * control-plane operations (`inject_fault`, `clear_fault`,
//!   `lane_health_check`) applied **mid-flight** against a lane thread
//!   actively draining its queue — the worker handles control messages
//!   strictly between batches, so these must never tear a replay;
//! * threaded execution is byte-identical to sequential execution of the
//!   same program (batching may differ; payloads and device state may not);
//! * replica lanes: the same device standing up twice, each replica with
//!   its own TEE core and thread.

use std::collections::HashMap;

use dlt_core::{FaultPlan, ReplayError};
use dlt_recorder::campaign::record_mmc_driverlet_subset;
use dlt_serve::{
    Completion, Device, DriverletService, ExecMode, Payload, Request, RouteConfig, ServeConfig,
    ServeError, SubmitMode,
};
use dlt_template::Driverlet;

const GRANULARITIES: [u32; 2] = [1, 8];

fn mmc_bundle() -> Driverlet {
    record_mmc_driverlet_subset(&GRANULARITIES).expect("record mmc")
}

fn config(exec_mode: ExecMode) -> ServeConfig {
    ServeConfig { exec_mode, block_granularities: GRANULARITIES.to_vec(), ..ServeConfig::default() }
}

/// Satellite 6: inject a sticky read fault while the lane thread is actively
/// draining a deep backlog, then clear it and health-check — all mid-flight.
/// Every submitted request surfaces exactly once (Ok or typed Diverged,
/// never a panic, a hang, or a loss), and the lane stays serviceable.
#[test]
fn fault_injection_is_safe_against_a_running_lane_thread() {
    let bundle = mmc_bundle();
    let cfg = ServeConfig {
        submit_mode: SubmitMode::Ring,
        sq_depth: 256,
        queue_capacity: 256,
        // Disable anticipation so the lane starts chewing immediately.
        hold_budget_ns: 0,
        ..config(ExecMode::Threaded)
    };
    let mut service =
        DriverletService::with_driverlets(&[(Device::Mmc, bundle)], cfg).expect("build service");
    let session = service.open_session().unwrap();

    // Stage a deep backlog and ring one doorbell so the lane thread starts
    // draining ~200 reads while this thread races control operations at it.
    const N: usize = 200;
    for i in 0..N {
        service
            .submit(
                session,
                Request::Read { device: Device::Mmc, blkid: (i % 48) as u32, blkcnt: 1 },
            )
            .expect("stage");
    }
    service.ring_doorbell().expect("doorbell");

    // Mid-flight: install a sticky read fault. The worker applies it at its
    // next batch boundary; the call blocks until the hand-off happened.
    let outcome = service
        .inject_fault(
            Device::Mmc,
            FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
        )
        .expect("inject mid-flight");

    let completions = service.drain_all();
    assert_eq!(completions.len(), N, "every request surfaces exactly once");
    let mut ok = 0usize;
    let mut diverged = 0usize;
    for c in &completions {
        match &c.result {
            Ok(_) => ok += 1,
            Err(ServeError::Replay(ReplayError::Diverged(_))) => diverged += 1,
            other => panic!("request {} must complete or diverge typed, got {other:?}", c.id),
        }
    }
    assert_eq!(ok + diverged, N, "completed + diverged == submitted");
    // How much of the backlog the injection caught is a scheduling race
    // (the lane thread may drain arbitrarily far before the control
    // message lands) — mid-flight *safety* is what the assertions above
    // pin. Engagement is asserted deterministically here instead: the
    // sticky fault is still installed, so a fresh batch must diverge.
    let mut engaged = 0usize;
    for i in 0..8 {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid: i % 16, blkcnt: 1 })
            .expect("stage under sticky fault");
    }
    service.ring_doorbell().expect("doorbell");
    for c in service.drain_all() {
        match c.result {
            Err(ServeError::Replay(ReplayError::Diverged(_))) => engaged += 1,
            other => panic!("request {} must diverge under the sticky fault, got {other:?}", c.id),
        }
    }
    assert_eq!(engaged, 8, "a sticky read fault engages every post-injection read");
    assert!(outcome.lock().unwrap().engaged_invocations > 0);

    // Mid-flight recovery: clear the fault and health-check while new work
    // is in flight behind the control messages.
    for i in 0..20 {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid: i % 16, blkcnt: 1 })
            .expect("stage post-fault");
    }
    service.ring_doorbell().expect("doorbell");
    service.clear_fault(Device::Mmc).expect("clear mid-flight");
    service.lane_health_check(Device::Mmc).expect("lane healthy after clear");
    let tail = service.drain_all();
    assert_eq!(tail.len(), 20);
    // Requests admitted before the clear may still have met the sticky
    // fault; each must surface typed either way, and after quiescence the
    // lane serves cleanly.
    for c in &tail {
        assert!(
            matches!(c.result, Ok(_) | Err(ServeError::Replay(ReplayError::Diverged(_)))),
            "request {} must complete or diverge typed",
            c.id
        );
    }
    let probe = service
        .submit(session, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 1 })
        .expect("probe");
    let done = service.drain_all();
    assert!(
        done.iter().any(|c| c.id == probe && c.result.is_ok()),
        "a fresh read after clear_fault must succeed"
    );
}

/// Run one mixed read/write program and return the payload of every
/// completion keyed by a stable per-request tag, plus a full readback of the
/// hot range.
fn run_program(exec_mode: ExecMode, bundle: Driverlet) -> (HashMap<u64, Vec<u8>>, Vec<u8>) {
    let mut service =
        DriverletService::with_driverlets(&[(Device::Mmc, bundle)], config(exec_mode))
            .expect("build service");
    let session = service.open_session().unwrap();
    let mut tag_of = HashMap::new();
    for i in 0..40u64 {
        let blkid = 64 + (i * 7 % 48) as u32;
        let req = if i % 3 == 0 {
            let data: Vec<u8> = (0..512).map(|b| (i as u8).wrapping_mul(31) ^ b as u8).collect();
            Request::Write { device: Device::Mmc, blkid, data }
        } else {
            Request::Read { device: Device::Mmc, blkid, blkcnt: 1 + (i % 4) as u32 }
        };
        let id = service.submit(session, req).expect("submit");
        tag_of.insert(id, i);
    }
    let completions = service.drain_all();
    assert_eq!(completions.len(), 40);
    let mut payloads = HashMap::new();
    for c in &completions {
        let bytes = match c.result.as_ref().expect("request succeeds") {
            Payload::Read(b) => b.clone(),
            Payload::Written { blocks } => vec![*blocks as u8],
            Payload::Image { data } => data.clone(),
        };
        payloads.insert(tag_of[&c.id], bytes);
    }
    let id = service
        .submit(session, Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 56 })
        .expect("readback");
    let state = service
        .drain_all()
        .into_iter()
        .find(|c| c.id == id)
        .and_then(|c| match c.result {
            Ok(Payload::Read(b)) => Some(b),
            _ => None,
        })
        .expect("readback payload");
    (payloads, state)
}

/// Threaded execution must be byte-identical to sequential execution of the
/// same single-session program: batching may differ across modes, payloads
/// and final device state may not. (Single session ⇒ per-session ordering
/// pins the write order, so even the read payloads are fully determined.)
#[test]
fn threaded_execution_is_byte_identical_to_sequential() {
    let bundle = mmc_bundle();
    let (seq_payloads, seq_state) = run_program(ExecMode::Sequential, bundle.clone());
    let (thr_payloads, thr_state) = run_program(ExecMode::Threaded, bundle);
    assert_eq!(seq_payloads.len(), thr_payloads.len());
    for (tag, seq_bytes) in &seq_payloads {
        assert_eq!(
            seq_bytes, &thr_payloads[tag],
            "request tag {tag}: threaded payload differs from sequential"
        );
    }
    assert_eq!(seq_state, thr_state, "final device state differs across exec modes");
}

/// Replica lanes: the same device stood up twice, each replica its own TEE
/// core on its own thread. Requests route per lane; both replicas serve
/// their own (independent) device simulation.
#[test]
fn replica_lanes_serve_the_same_device_independently() {
    let bundle = mmc_bundle();
    let cfg = config(ExecMode::Threaded);
    let mut service = DriverletService::with_driverlets(
        &[(Device::Mmc, bundle.clone()), (Device::Mmc, bundle)],
        cfg,
    )
    .expect("build replica service");
    assert_eq!(service.lane_count(), 2);
    assert_eq!(service.lane_device(0), Some(Device::Mmc));
    assert_eq!(service.lane_device(1), Some(Device::Mmc));
    let session = service.open_session().unwrap();

    // Write a distinct pattern through each replica lane, then read both
    // back: each replica's device state reflects only its own writes.
    let mut ids: Vec<(usize, u64)> = Vec::new();
    for lane in 0..2usize {
        let data = vec![0xA0u8 | lane as u8; 512];
        let id = service
            .submit_to_lane(lane, session, Request::Write { device: Device::Mmc, blkid: 64, data })
            .expect("replica write");
        ids.push((lane, id));
    }
    service.drain_all();
    let mut readbacks: Vec<(usize, u64)> = Vec::new();
    for lane in 0..2usize {
        let id = service
            .submit_to_lane(
                lane,
                session,
                Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 1 },
            )
            .expect("replica read");
        readbacks.push((lane, id));
    }
    let completions: Vec<Completion> = service.drain_all();
    for (lane, id) in readbacks {
        let c = completions.iter().find(|c| c.id == id).expect("replica readback");
        let Ok(Payload::Read(bytes)) = &c.result else {
            panic!("replica {lane} readback failed: {:?}", c.result);
        };
        assert!(
            bytes.iter().all(|&b| b == 0xA0 | lane as u8),
            "replica {lane} must see exactly its own write"
        );
    }

    // Device-addressed submits ride the shard router: the block's
    // deterministic home replica (and only it, absent saturation) executes.
    let home = RouteConfig::default().policy.replica_for(64, 2);
    let before: Vec<u64> = service.lane_status().iter().map(|l| l.busy_ns).collect();
    service
        .submit(session, Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 1 })
        .expect("device-routed submit");
    service.drain_all();
    let after: Vec<u64> = service.lane_status().iter().map(|l| l.busy_ns).collect();
    assert!(after[home] > before[home], "the home replica executes the routed read");
    assert_eq!(after[1 - home], before[1 - home], "an unsaturated sibling is never involved");
    assert_eq!(service.stats().routed, 1, "the default submit path rides the router");
}
