//! Replay-throughput measurement and the `BENCH_replay.json` emitter.
//!
//! The figures in the paper are virtual-time numbers; this module instead
//! measures the **host CPU cost of the replay engine itself** — the thing
//! the compiled-program refactor targets. Both engines charge identical
//! virtual-time costs (asserted by the differential tests in `dlt-core`),
//! so wall-clock events/sec on the same fig7 micro path isolates the
//! execution strategy: tree-walking interpretation with `HashMap` symbol
//! resolution versus the flat branch-on-opcode replay program.
//!
//! `emit_report` persists the numbers to `BENCH_replay.json` so the speedup
//! and the §8.3.4 bundle-size ratio are tracked trajectory values (CI
//! uploads the file as an artifact).

use std::time::Instant;

use dlt_core::{replay_mmc, ReplayConfig, ReplayMode, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{record_mmc_driverlet_subset, DEV_KEY};
use dlt_tee::{SecureIo, TeeKernel};
use dlt_template::Driverlet;
use serde::Serialize;

/// Wall-clock throughput of one engine on the fig7 micro path.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputSample {
    /// Engine that ran (`"compiled"` / `"interpreted"`).
    pub mode: String,
    /// Replay invocations performed.
    pub invocations: u64,
    /// Template events executed (poll iterations count as one event).
    pub events: u64,
    /// Wall-clock nanoseconds summed over all measurement rounds.
    pub wall_ns: u64,
    /// Events per wall-clock second — the headline metric; the peak of the
    /// interleaved measurement rounds (least-disturbed observation).
    pub events_per_sec: f64,
    /// Invocations per wall-clock second (mean over all rounds).
    pub invocations_per_sec: f64,
}

/// Serialised bundle sizes for one device (§8.3.4).
#[derive(Debug, Clone, Serialize)]
pub struct BundleSizeSample {
    /// Device label.
    pub device: String,
    /// Pretty-printed JSON document bytes.
    pub pretty_json: usize,
    /// Compact (non-pretty) JSON bytes — the canonical JSON encoding.
    pub compact_json: usize,
    /// Compact binary bundle bytes.
    pub binary: usize,
    /// `compact_json / binary` — the headline shrink factor.
    pub ratio: f64,
}

/// The persisted `BENCH_replay.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayBenchReport {
    /// Workload description.
    pub workload: String,
    /// Compiled-engine sample.
    pub compiled: ThroughputSample,
    /// Interpreted-engine sample.
    pub interpreted: ThroughputSample,
    /// `compiled.events_per_sec / interpreted.events_per_sec`.
    pub speedup: f64,
    /// Bundle-size comparison per device.
    pub bundle_sizes: Vec<BundleSizeSample>,
}

/// Build the fig7 micro rig (secure MMC + replayer) for one engine. The
/// record campaign runs once per rig and stays outside the measured window.
fn build_rig(mode: ReplayMode, granularity: u32) -> (Platform, Replayer) {
    let driverlet = record_mmc_driverlet_subset(&[granularity]).expect("record mmc");
    let platform = Platform::new();
    MmcSubsystem::attach(&platform).expect("attach mmc");
    TeeKernel::install(&platform, &["sdhost", "dma"]).expect("install tee");
    let mut replayer = Replayer::with_config(
        SecureIo::new(platform.bus.clone()),
        ReplayConfig { mode, ..ReplayConfig::default() },
    );
    replayer.load_driverlet(driverlet, DEV_KEY).expect("load driverlet");
    (platform, replayer)
}

/// Number of interleaved measurement rounds per engine. Rounds alternate
/// between the engines and the best (peak) round is reported, which rejects
/// scheduler / frequency-scaling noise the two engines would otherwise
/// absorb unevenly.
const ROUNDS: u64 = 5;

struct Rig {
    _platform: Platform,
    replayer: Replayer,
    buf: Vec<u8>,
    granularity: u32,
    /// Per-round (events, wall_ns).
    rounds: Vec<(u64, u64)>,
}

impl Rig {
    fn new(mode: ReplayMode, granularity: u32) -> Self {
        let (_platform, mut replayer) = build_rig(mode, granularity);
        let mut buf = vec![0u8; granularity as usize * 512];
        // Warm-up: fault in code paths and size the scratch arena.
        for i in 0..8u32 {
            replay_mmc(&mut replayer, 0x1, granularity, i * granularity, 0, &mut buf)
                .expect("warm-up read");
        }
        Rig { _platform, replayer, buf, granularity, rounds: Vec::new() }
    }

    fn round(&mut self, invocations: u64) {
        let ev0 = self.replayer.stats().events_executed;
        let start = Instant::now();
        for i in 0..invocations {
            let blkid = ((i * u64::from(self.granularity)) % 100_000) as u32;
            replay_mmc(&mut self.replayer, 0x1, self.granularity, blkid, 0, &mut self.buf)
                .expect("measured read");
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        self.rounds.push((self.replayer.stats().events_executed - ev0, wall_ns));
    }

    fn sample(&self, mode: &str, invocations_per_round: u64) -> ThroughputSample {
        let events: u64 = self.rounds.iter().map(|r| r.0).sum();
        let wall_ns: u64 = self.rounds.iter().map(|r| r.1).sum();
        // Peak round rate: the least-disturbed observation of the engine.
        let peak = self
            .rounds
            .iter()
            .map(|(ev, ns)| *ev as f64 / (*ns as f64 / 1e9).max(1e-12))
            .fold(0.0f64, f64::max);
        let total_secs = (wall_ns as f64 / 1e9).max(1e-12);
        ThroughputSample {
            mode: mode.to_string(),
            invocations: invocations_per_round * self.rounds.len() as u64,
            events,
            wall_ns,
            events_per_sec: peak,
            invocations_per_sec: (invocations_per_round * self.rounds.len() as u64) as f64
                / total_secs,
        }
    }
}

/// Bundle-size sample for one driverlet.
pub fn bundle_size_sample(device: &str, d: &Driverlet) -> BundleSizeSample {
    let binary = d.binary_size();
    let compact = d.compact_size();
    BundleSizeSample {
        device: device.to_string(),
        pretty_json: d.serialized_size(),
        compact_json: compact,
        binary,
        ratio: compact as f64 / binary.max(1) as f64,
    }
}

/// Run the full measurement: both engines on the same workload plus bundle
/// sizes for the supplied driverlets.
pub fn run_replay_bench(
    granularity: u32,
    invocations: u64,
    bundles: &[(&str, &Driverlet)],
) -> ReplayBenchReport {
    // Interleave the engines round by round so both see the same host
    // conditions; report each engine's peak round.
    let mut interp = Rig::new(ReplayMode::Interpreted, granularity);
    let mut comp = Rig::new(ReplayMode::Compiled, granularity);
    let per_round = (invocations / ROUNDS).max(1);
    for _ in 0..ROUNDS {
        interp.round(per_round);
        comp.round(per_round);
    }
    let interpreted = interp.sample("interpreted", per_round);
    let compiled = comp.sample("compiled", per_round);
    let speedup = compiled.events_per_sec / interpreted.events_per_sec.max(1e-12);
    ReplayBenchReport {
        workload: format!("fig7 micro path: MMC read, {granularity} blocks x {invocations}"),
        compiled,
        interpreted,
        speedup,
        bundle_sizes: bundles.iter().map(|(n, d)| bundle_size_sample(n, d)).collect(),
    }
}

/// Serialise the report as pretty JSON.
pub fn report_json(report: &ReplayBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialisation cannot fail")
}

/// Write the report to `path` (default artifact name: `BENCH_replay.json`).
pub fn emit_report(report: &ReplayBenchReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// Render the human-readable summary the bench prints.
pub fn describe(report: &ReplayBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("workload: {}\n", report.workload));
    for s in [&report.interpreted, &report.compiled] {
        out.push_str(&format!(
            "{:<12} {:>12.0} events/s {:>12.0} invocations/s ({} events in {:.1} ms)\n",
            s.mode,
            s.events_per_sec,
            s.invocations_per_sec,
            s.events,
            s.wall_ns as f64 / 1e6
        ));
    }
    out.push_str(&format!("speedup (compiled / interpreted): {:.2}x\n", report.speedup));
    for b in &report.bundle_sizes {
        out.push_str(&format!(
            "bundle {:<8} {:>9} B binary {:>9} B compact JSON {:>9} B pretty ({:.1}x smaller)\n",
            b.device, b.binary, b.compact_json, b.pretty_json, b.ratio
        ));
    }
    out
}

/// One-line CSV-ish record for log scraping.
pub fn summary_line(report: &ReplayBenchReport) -> String {
    format!(
        "replay_throughput compiled={:.0} interpreted={:.0} speedup={:.2}",
        report.compiled.events_per_sec, report.interpreted.events_per_sec, report.speedup
    )
}

/// Convenience used by tests and the quick CI path: a throughput report
/// without any bundle-size section.
pub fn run_throughput_only(granularity: u32, invocations: u64) -> ReplayBenchReport {
    run_replay_bench(granularity, invocations, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_measures_both_engines() {
        let report = run_throughput_only(1, 40);
        assert_eq!(report.compiled.invocations, 40);
        assert_eq!(report.interpreted.invocations, 40);
        assert!(report.compiled.events > 0);
        assert_eq!(
            report.compiled.events, report.interpreted.events,
            "both engines must execute identical event counts"
        );
        assert!(report.speedup > 0.0);
        let json = report_json(&report);
        assert!(json.contains("events_per_sec"));
        assert!(describe(&report).contains("speedup"));
        assert!(summary_line(&report).starts_with("replay_throughput"));
    }
}
