//! # dlt-bench — harness that regenerates every table and figure of the paper
//!
//! The `report` binary prints paper-vs-measured numbers for Tables 3-9 and
//! Figures 5-7 plus the §8.3.4 memory-overhead numbers; the Criterion benches
//! under `benches/` provide wall-clock measurements of the same paths and an
//! ablation over the cost-model knobs. See EXPERIMENTS.md for the recorded
//! outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod obs_bench;
pub mod replay_bench;
pub mod serve_bench;

use std::collections::HashMap;

use dlt_recorder::campaign::{record_camera_driverlet, record_mmc_driverlet, record_usb_driverlet};
use dlt_template::Driverlet;
use dlt_workloads::block::{StorageKind, StoragePath};
use dlt_workloads::suite::{run_benchmark, SqliteBenchmark};

/// Render a driverlet's per-template event breakdown (Tables 3 and 5).
pub fn breakdown_table(driverlet: &Driverlet) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>8} {:>8} {:>8} {:>8}\n",
        "template", "input", "output", "meta", "total"
    ));
    for t in &driverlet.templates {
        let b = t.breakdown();
        out.push_str(&format!(
            "{:<20} {:>8} {:>8} {:>8} {:>8}\n",
            t.name,
            b.input,
            b.output,
            b.meta,
            b.total()
        ));
    }
    out
}

/// Render a driverlet's parameter constraints and taint sinks (Tables 4 / 6):
/// for every template, the parameter constraints plus each symbolic output
/// event (the discovered taint sinks).
pub fn constraints_table(driverlet: &Driverlet, template: &str) -> String {
    let mut out = String::new();
    let Some(t) = driverlet.templates.iter().find(|t| t.name == template) else {
        return format!("no template named {template}\n");
    };
    out.push_str(&format!("template {}\n", t.name));
    out.push_str("  parameter constraints:\n");
    for p in &t.params {
        out.push_str(&format!("    {:<12} {}\n", p.name, p.constraint.describe()));
    }
    out.push_str("  symbolic taint sinks (parameterised outputs):\n");
    for re in &t.events {
        if let dlt_template::Event::Write { iface, value } = &re.event {
            if value.is_symbolic() {
                out.push_str(&format!("    {:<24} = {}\n", iface.describe(), value.describe()));
            }
        }
    }
    out.push_str("  captured device-assigned inputs:\n");
    for re in &t.events {
        if let dlt_template::Event::Read {
            iface,
            sink: dlt_template::ReadSink::Capture(name),
            ..
        } = &re.event
        {
            out.push_str(&format!("    {:<24} -> ${}\n", iface.describe(), name));
        }
    }
    out
}

/// Record all three driverlets once (used by several reports).
pub fn record_all() -> (Driverlet, Driverlet, Driverlet) {
    let mmc = record_mmc_driverlet().expect("record mmc driverlet");
    let usb = record_usb_driverlet().expect("record usb driverlet");
    let cam = record_camera_driverlet().expect("record camera driverlet");
    (mmc, usb, cam)
}

/// One Figure-5 panel: IOPS per benchmark per path.
pub fn figure5_panel(kind: StorageKind, queries: u64) -> Vec<(String, HashMap<&'static str, f64>)> {
    let mut rows = Vec::new();
    for bench in SqliteBenchmark::all() {
        let mut row = HashMap::new();
        for (label, path) in [
            ("native", StoragePath::Native),
            ("native-sync", StoragePath::NativeSync),
            ("ours", StoragePath::Driverlet),
        ] {
            let r = run_benchmark(bench, kind, path, queries).expect("benchmark run");
            row.insert(label, r.iops);
        }
        rows.push((bench.name().to_string(), row));
    }
    rows
}

/// Memory-overhead report (§8.3.4): serialised driverlet sizes in the JSON
/// document forms and the compact binary deployment encoding, with the
/// shrink ratio of binary versus the canonical (compact) JSON.
pub fn memory_report(mmc: &Driverlet, usb: &Driverlet, cam: &Driverlet) -> String {
    let mut out = String::new();
    out.push_str("driverlet bundle sizes (serialised templates)\n");
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>14} {:>8} {:>10}\n",
        "device", "pretty bytes", "compact bytes", "binary bytes", "ratio", "events"
    ));
    for (name, d) in [("MMC", mmc), ("USB", usb), ("VCHIQ", cam)] {
        let s = replay_bench::bundle_size_sample(name, d);
        out.push_str(&format!(
            "{:<8} {:>14} {:>14} {:>14} {:>7.1}x {:>10}\n",
            name,
            s.pretty_json,
            s.compact_json,
            s.binary,
            s.ratio,
            d.total_events()
        ));
    }
    out.push_str("ratio = compact JSON / binary (paper's binary executables: MMC 6 KB, USB 26 KB, VCHIQ 19 KB)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_recorder::campaign::record_mmc_driverlet_subset;

    #[test]
    fn tables_render_for_a_small_campaign() {
        let d = record_mmc_driverlet_subset(&[1]).unwrap();
        let t3 = breakdown_table(&d);
        assert!(t3.contains("mmc_rd_1"));
        assert!(t3.contains("input"));
        let t4 = constraints_table(&d, "mmc_rd_1");
        assert!(t4.contains("blkid"));
        assert!(t4.contains("SDARG") || t4.contains("taint"));
        let mem = memory_report(&d, &d, &d);
        assert!(mem.contains("MMC"));
        assert!(mem.contains("binary bytes"));
    }

    #[test]
    fn binary_bundles_beat_canonical_json_by_5x() {
        // The §8.3.4 acceptance bar, checked on a reduced campaign (the
        // report binary prints the same ratio for the full ones).
        let d = record_mmc_driverlet_subset(&[1]).unwrap();
        let s = replay_bench::bundle_size_sample("MMC", &d);
        assert!(
            s.ratio >= 5.0,
            "binary must be >= 5x smaller than canonical JSON, got {:.2}x",
            s.ratio
        );
        assert!(s.binary < s.compact_json && s.compact_json < s.pretty_json);
    }
}
