//! Heterogeneous open-loop arrival generation for the serve benches.
//!
//! The earlier serve benches filled every lane with homogeneous stripes of
//! closed-loop reads; this module generates the traffic mix a loaded
//! multi-tenant TEE actually sees, as **one deterministic schedule** that
//! can feed *both* submission paths (per-call SMCs and shared-memory
//! rings) so ring-vs-legacy comparisons measure the submission spine, not
//! workload noise:
//!
//! * **Per-session Poisson processes**: each block session draws
//!   exponential inter-arrival gaps from its own seeded stream (inverse
//!   CDF over a xorshift generator), so aggregate traffic has the bursts
//!   and lulls of independent open-loop tenants instead of lockstep
//!   stripes.
//! * **Hot-range readers and sequential streamers**: readers hammer a
//!   small hot extent (superblock/bitmap-style blocks — heavy overlap, the
//!   coalescer's best case), streamers walk a private sequential range
//!   (adjacency without overlap), and a configurable fraction of writes
//!   keeps direction changes in the mix.
//! * **Bursty camera sessions**: a camera tenant submits short bursts of
//!   captures separated by long idle gaps — the paper's §8.3.2 workload
//!   shape — rather than a constant frame rate.
//!
//! The generator emits relative *gaps* (virtual nanoseconds of
//! normal-world think time between submissions); the driver advances the
//! service's control clock by each gap before submitting, which makes the
//! schedule independent of what the submission path itself charges.

use dlt_serve::{Device, Request, BLOCK};

/// What one generated session does.
#[derive(Debug, Clone)]
pub enum TrafficKind {
    /// Poisson reads (plus a write fraction) over a small shared hot
    /// range on one block device.
    HotReader {
        /// Target block device.
        device: Device,
        /// First block of the shared hot range.
        hot_base: u32,
        /// Length of the hot range in blocks.
        hot_len: u32,
        /// One write per `write_every` requests (0 = read-only).
        write_every: u32,
    },
    /// Poisson sequential reads walking a private range (adjacent,
    /// non-overlapping — merges with its own stream only).
    Streamer {
        /// Target block device.
        device: Device,
        /// First block of the private range.
        base: u32,
        /// Blocks per request.
        blkcnt: u32,
    },
    /// Bursts of single-frame captures separated by long idle gaps.
    BurstyCamera {
        /// Captures per burst.
        burst: u32,
        /// Idle gap between bursts in nanoseconds.
        gap_ns: u64,
        /// Capture resolution code (720/1080/1440).
        resolution: u32,
    },
}

/// One generated session: its traffic shape plus its mean Poisson
/// inter-arrival time (ignored by [`TrafficKind::BurstyCamera`], which
/// paces itself by bursts).
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Traffic shape.
    pub kind: TrafficKind,
    /// Mean inter-arrival gap in nanoseconds (the Poisson rate is its
    /// reciprocal).
    pub mean_gap_ns: u64,
    /// Requests this session submits over the run.
    pub requests: u32,
}

/// One event of the merged schedule.
#[derive(Debug, Clone)]
pub struct ArrivalEvent {
    /// Normal-world think time since the previous event in the merged
    /// schedule (what the driver feeds to `client_think_ns`).
    pub gap_ns: u64,
    /// Index into the spec list (maps to an open session).
    pub session_idx: usize,
    /// The request to submit.
    pub req: Request,
}

/// Deterministic xorshift64* stream (the one PRNG every serve bench
/// draws from).
pub(crate) struct Rng(u64);

impl Rng {
    /// A stream seeded at `seed`.
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next 64 pseudo-random bits.
    pub(crate) fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Exponentially distributed gap with the given mean, by inverse CDF.
    /// Rounded to 64 ns so the schedule is robust to last-ulp `ln`
    /// differences across platforms.
    fn exp_gap(&mut self, mean_ns: u64) -> u64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let gap = -(mean_ns as f64) * (1.0 - u).ln();
        ((gap / 64.0).round() as u64).saturating_mul(64)
    }
}

/// Generate the merged, time-ordered schedule for `specs`, seeded
/// deterministically. Each session gets an independent stream (seeded from
/// `seed` and its index), arrival times are accumulated per session, and
/// the merged schedule is sorted by absolute arrival time and re-encoded
/// as successive gaps.
pub fn heterogeneous_schedule(specs: &[SessionSpec], seed: u64) -> Vec<ArrivalEvent> {
    let mut events: Vec<(u64, usize, Request)> = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        let mut rng = Rng::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1)));
        let mut at_ns = 0u64;
        let mut seq = 0u32;
        for n in 0..spec.requests {
            let req = match &spec.kind {
                TrafficKind::HotReader { device, hot_base, hot_len, write_every } => {
                    at_ns += rng.exp_gap(spec.mean_gap_ns);
                    let r = rng.next();
                    let blkcnt = [1u32, 1, 1, 2][(r >> 8) as usize % 4];
                    let blkid = hot_base + (r % u64::from(*hot_len)) as u32;
                    if *write_every != 0 && n % *write_every == *write_every - 1 {
                        Request::Write {
                            device: *device,
                            blkid,
                            data: vec![(r >> 16) as u8; blkcnt as usize * BLOCK],
                        }
                    } else {
                        Request::Read { device: *device, blkid, blkcnt }
                    }
                }
                TrafficKind::Streamer { device, base, blkcnt } => {
                    at_ns += rng.exp_gap(spec.mean_gap_ns);
                    let blkid = base + seq * blkcnt;
                    seq += 1;
                    Request::Read { device: *device, blkid, blkcnt: *blkcnt }
                }
                TrafficKind::BurstyCamera { burst, gap_ns, resolution } => {
                    // A long idle gap opens each burst; frames within a
                    // burst follow back-to-back (small jittered spacing).
                    if n % burst == 0 {
                        at_ns += gap_ns;
                    } else {
                        at_ns += rng.exp_gap(spec.mean_gap_ns.max(1));
                    }
                    Request::Capture { frames: 1, resolution: *resolution }
                }
            };
            events.push((at_ns, idx, req));
        }
    }
    // Merge: stable sort by arrival time keeps each session's stream in
    // order, then re-encode as gaps.
    events.sort_by_key(|(at, _, _)| *at);
    let mut out = Vec::with_capacity(events.len());
    let mut prev = 0u64;
    for (at, session_idx, req) in events {
        out.push(ArrivalEvent { gap_ns: at - prev, session_idx, req });
        prev = at;
    }
    out
}

/// The mixed MMC+USB+VCHIQ tenant population the ring-vs-legacy bench
/// serves: hot-range readers and streamers on both block devices (with a
/// write fraction) plus one bursty camera tenant. `requests_per_session`
/// scales the run; `mean_gap_ns` is the per-session Poisson mean.
pub fn mixed_tenant_specs(requests_per_session: u32, mean_gap_ns: u64) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    for device in [Device::Mmc, Device::Usb] {
        // Six hot-range readers per device share one 8-block hot extent
        // (metadata blocks: overlap-heavy, the coalescer's best case — one
        // recorded rd_8 span serves a whole drained batch). The mix is
        // read-only by design: a write costs 130 µs+ of flash program
        // time per block on *any* submission path and fences every read
        // run it lands in, so it would measure the medium, not the
        // submission spine (the mixed and scaling benches exercise
        // writes).
        for _ in 0..6u32 {
            specs.push(SessionSpec {
                kind: TrafficKind::HotReader { device, hot_base: 1024, hot_len: 8, write_every: 0 },
                mean_gap_ns,
                requests: requests_per_session,
            });
        }
        // One sequential streamer per device walks a private range (a log
        // scanner: adjacency without overlap).
        specs.push(SessionSpec {
            kind: TrafficKind::Streamer { device, base: 4096, blkcnt: 1 },
            mean_gap_ns,
            requests: requests_per_session / 4,
        });
    }
    // One bursty camera tenant: a burst of captures early in the run,
    // paced so its *submissions* land inside the block arrival span (the
    // captures themselves take seconds of camera-lane time regardless).
    specs.push(SessionSpec {
        kind: TrafficKind::BurstyCamera { burst: 2, gap_ns: 2_000_000, resolution: 720 },
        mean_gap_ns: 200_000,
        requests: 2,
    });
    specs
}

/// The replica-fleet weak-scaling tenant population: `groups` independent
/// tenant groups of read-only MMC traffic, one group's worth of load per
/// replica lane, so the offered load scales with the fleet while the
/// per-lane load stays fixed. Each group is one hot-range reader over its
/// own 256-block route chunk (consecutive chunks, so `Stripe` placement
/// round-robins the groups exactly one per replica) plus two sequential
/// 8-block streamers walking private multi-chunk ranges (the streams
/// stripe across the fleet and occasionally straddle a chunk boundary,
/// exercising fan-out). Read-only by design: never-written chunks are
/// byte-identical on every replica, so the router is free to place *and*
/// spill — the regime the scaling curve wants to measure.
pub fn replica_fleet_specs(groups: usize, requests_per_session: u32) -> Vec<SessionSpec> {
    let mean_gap_ns = 30_000;
    let mut specs = Vec::new();
    for g in 0..groups as u32 {
        // Hot chunk `4 + g`: consecutive chunks starting clear of the
        // benches' scratch extents.
        specs.push(SessionSpec {
            kind: TrafficKind::HotReader {
                device: Device::Mmc,
                hot_base: (4 + g) * 256,
                hot_len: 8,
                write_every: 0,
            },
            mean_gap_ns,
            requests: requests_per_session,
        });
        // Two streamers per group: an 8-block stream (aligned — never
        // straddles a 256-block chunk) and a 12-block stream whose walk
        // periodically crosses a chunk boundary, so the routed run
        // exercises stripe fan-out and reassembly, not just placement.
        for (lane_stream, blkcnt) in [(0u32, 8u32), (1, 12)] {
            specs.push(SessionSpec {
                kind: TrafficKind::Streamer {
                    device: Device::Mmc,
                    base: 65_536 + (g * 2 + lane_stream) * 4_096,
                    blkcnt,
                },
                mean_gap_ns,
                requests: requests_per_session,
            });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_time_ordered() {
        let specs = mixed_tenant_specs(40, 120_000);
        let a = heterogeneous_schedule(&specs, 7);
        let b = heterogeneous_schedule(&specs, 7);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.gap_ns, y.gap_ns);
            assert_eq!(x.session_idx, y.session_idx);
            assert_eq!(x.req, y.req);
        }
        // Per-session streams stay in submission order after the merge
        // (stable sort on arrival time).
        let total: u32 = specs.iter().map(|s| s.requests).sum();
        assert_eq!(a.len(), total as usize);
    }

    #[test]
    fn poisson_gaps_average_near_the_mean() {
        let specs = vec![SessionSpec {
            kind: TrafficKind::Streamer { device: Device::Mmc, base: 0, blkcnt: 1 },
            mean_gap_ns: 100_000,
            requests: 2_000,
        }];
        let schedule = heterogeneous_schedule(&specs, 11);
        let total: u64 = schedule.iter().map(|e| e.gap_ns).sum();
        let mean = total as f64 / schedule.len() as f64;
        assert!(
            (60_000.0..140_000.0).contains(&mean),
            "exponential gaps must average near the configured mean, got {mean:.0} ns"
        );
        // Heterogeneity: an exponential stream is not a fixed stripe.
        let distinct: std::collections::HashSet<u64> = schedule.iter().map(|e| e.gap_ns).collect();
        assert!(distinct.len() > schedule.len() / 4, "gaps must actually vary");
    }

    #[test]
    fn replica_fleet_specs_scale_read_only_load_with_the_group_count() {
        let specs = replica_fleet_specs(4, 16);
        assert_eq!(specs.len(), 12, "three sessions per group");
        assert!(
            specs.iter().all(|s| matches!(
                s.kind,
                TrafficKind::HotReader { device: Device::Mmc, write_every: 0, .. }
                    | TrafficKind::Streamer { device: Device::Mmc, .. }
            )),
            "fleet traffic is read-only MMC so the router may place and spill freely"
        );
        let schedule = heterogeneous_schedule(&specs, 1);
        assert_eq!(schedule.len(), 12 * 16);
        assert!(schedule.iter().all(|e| matches!(e.req, Request::Read { .. })));
    }

    #[test]
    fn camera_sessions_burst_then_idle() {
        let specs = vec![SessionSpec {
            kind: TrafficKind::BurstyCamera { burst: 2, gap_ns: 50_000_000, resolution: 720 },
            mean_gap_ns: 1_000_000,
            requests: 4,
        }];
        let schedule = heterogeneous_schedule(&specs, 3);
        assert_eq!(schedule.len(), 4);
        assert!(schedule[0].gap_ns >= 50_000_000, "a long gap opens each burst");
        assert!(schedule[1].gap_ns < 50_000_000, "frames within a burst follow closely");
        assert!(schedule[2].gap_ns >= 50_000_000);
        assert!(matches!(schedule[0].req, Request::Capture { .. }));
    }
}
