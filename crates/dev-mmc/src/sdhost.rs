//! BCM2835-SDHOST-style MMC controller model.
//!
//! The controller sits between the driver-visible register file and the
//! [`crate::card::SdCard`]. Data moves through a FIFO which is either drained
//! by PIO accesses to `SDDATA` or by the system DMA engine
//! ([`crate::dma::DmaEngine`]) via the shared [`crate::fifo::FifoLink`].
//!
//! The model reproduces the behaviours the paper's templates depend on:
//!
//! * command execution is signalled by the `NEW_FLAG` bit in `SDCMD`
//!   clearing (the full driver polls for this — the polling loop the recorder
//!   lifts into a `poll` meta event),
//! * block/busy completion raises `SDHSTS` bits and, when enabled in
//!   `SDHCFG`, the MMC interrupt line,
//! * on the read path the last three words of a transfer are only available
//!   through `SDDATA` PIO (the SoC quirk from §7.1.3),
//! * `SDEDM` exposes the internal FSM state and FIFO occupancy — the register
//!   the paper's fault-injection experiment sees diverge when the medium is
//!   unplugged (§8.2.1).

use dlt_hw::device::{MmioDevice, RegBank};
use dlt_hw::irq::lines;
use dlt_hw::{CostModel, IrqController, Shared};

use crate::card::{CmdResult, SdCard};
use crate::fifo::{FifoDir, FifoLink};
use crate::regs::{self, sdcmd, sdedm, sdhcfg, sdhsts};
use crate::{BLOCK_SIZE, SDHOST_BASE, SDHOST_LEN};

/// An in-flight data operation.
#[derive(Debug, Clone)]
struct DataOp {
    read: bool,
    lba: u32,
    blocks: u32,
    block_size: usize,
    /// Virtual time when the card finishes the media access.
    media_deadline_ns: u64,
    /// Whether completion status/interrupt has been posted.
    completed: bool,
    /// Write path: whether the host data has been committed to the card.
    committed: bool,
}

/// The SDHOST controller with its SD card.
pub struct SdHost {
    regs: RegBank,
    card: SdCard,
    fifo: Shared<FifoLink>,
    irqs: Shared<IrqController>,
    cost: CostModel,
    /// Deadline at which the currently issued command's NEW_FLAG clears.
    cmd_done_ns: Option<u64>,
    op: Option<DataOp>,
    powered: bool,
    commands_issued: u64,
    irqs_raised: u64,
}

impl SdHost {
    /// Create a controller wrapping `card`.
    pub fn new(
        card: SdCard,
        fifo: Shared<FifoLink>,
        irqs: Shared<IrqController>,
        cost: CostModel,
    ) -> Self {
        let mut regs = RegBank::new();
        for (off, _) in regs::SDHOST_REGISTERS {
            regs.define(*off, 0);
        }
        regs.define(regs::SDVER, 0x2835_0001);
        regs.define(regs::SDEDM, sdedm::FSM_IDENTMODE);
        SdHost {
            regs,
            card,
            fifo,
            irqs,
            cost,
            cmd_done_ns: None,
            op: None,
            powered: false,
            commands_issued: 0,
            irqs_raised: 0,
        }
    }

    /// Immutable access to the card (validation scripts).
    pub fn card(&self) -> &SdCard {
        &self.card
    }

    /// Mutable access to the card (fault injection, fixture preparation).
    pub fn card_mut(&mut self) -> &mut SdCard {
        &mut self.card
    }

    /// Number of commands issued since creation.
    pub fn commands_issued(&self) -> u64 {
        self.commands_issued
    }

    /// Number of interrupts raised since creation.
    pub fn irqs_raised(&self) -> u64 {
        self.irqs_raised
    }

    fn raise_irq(&mut self, deadline_ns: u64) {
        self.irqs.lock().assert_at(lines::MMC, deadline_ns);
        self.irqs_raised += 1;
    }

    fn irq_enabled_for(&self, sts_bits: u32) -> bool {
        let cfg = self.regs.get(regs::SDHCFG);
        (sts_bits & sdhsts::BLOCK_IRPT != 0 && cfg & sdhcfg::BLOCK_IRPT_EN != 0)
            || (sts_bits & sdhsts::BUSY_IRPT != 0 && cfg & sdhcfg::BUSY_IRPT_EN != 0)
            || (sts_bits & sdhsts::SDIO_IRPT != 0 && cfg & sdhcfg::SDIO_IRPT_EN != 0)
    }

    fn post_status(&mut self, bits: u32, now_ns: u64) {
        self.regs.set_bits(regs::SDHSTS, bits);
        if self.irq_enabled_for(bits) {
            self.raise_irq(now_ns + self.cost.irq_delivery_ns);
        }
    }

    fn set_fsm(&mut self, fsm: u32) {
        let level = self.fifo.lock().level_words() as u32;
        let edm = (fsm & sdedm::FSM_MASK)
            | ((level.min(sdedm::FIFO_LEVEL_MASK)) << sdedm::FIFO_LEVEL_SHIFT);
        self.regs.set(regs::SDEDM, edm);
    }

    fn issue_command(&mut self, cmdreg: u32, now_ns: u64) {
        self.commands_issued += 1;
        let index = (cmdreg & sdcmd::INDEX_MASK) as u8;
        let arg = self.regs.get(regs::SDARG);
        let result = if self.powered { self.card.execute(index, arg) } else { CmdResult::Timeout };

        // Responses land in SDRSP0..3.
        match &result {
            CmdResult::R1(v)
            | CmdResult::R1Busy(v)
            | CmdResult::R3(v)
            | CmdResult::R6(v)
            | CmdResult::R7(v) => {
                self.regs.set(regs::SDRSP0, *v);
            }
            CmdResult::R2(words) => {
                self.regs.set(regs::SDRSP0, words[3]);
                self.regs.set(regs::SDRSP1, words[2]);
                self.regs.set(regs::SDRSP2, words[1]);
                self.regs.set(regs::SDRSP3, words[0]);
            }
            CmdResult::NoResponse => {}
            CmdResult::Timeout => {}
        }

        let mut newcmd = cmdreg;
        if matches!(result, CmdResult::Timeout) {
            newcmd |= sdcmd::FAIL_FLAG;
            self.post_status(sdhsts::CMD_TIME_OUT, now_ns);
            // The command never really executes; NEW clears after the timeout
            // interval so the polling driver observes the failure.
            self.cmd_done_ns = Some(now_ns + self.cost.sd_cmd_ns);
            self.regs.set(regs::SDCMD, newcmd);
            self.set_fsm(sdedm::FSM_IDENTMODE);
            return;
        }

        self.regs.set(regs::SDCMD, newcmd);
        self.cmd_done_ns = Some(now_ns + self.cost.sd_cmd_ns);

        let is_read = cmdreg & sdcmd::READ_CMD != 0;
        let is_write = cmdreg & sdcmd::WRITE_CMD != 0;
        if is_read || is_write {
            let blocks = self.regs.get(regs::SDHBLC).max(1);
            let block_size = (self.regs.get(regs::SDHBCT) as usize).max(BLOCK_SIZE);
            let media_ns = if is_read {
                self.cost.sd_transaction_overhead_ns
                    + u64::from(blocks) * self.cost.sd_read_block_ns
            } else {
                self.cost.sd_transaction_overhead_ns
                    + u64::from(blocks) * self.cost.sd_write_block_ns
            };
            let media_deadline_ns = now_ns + self.cost.sd_cmd_ns + media_ns;

            if is_read {
                // Pull the data out of the card now; it becomes visible to the
                // FIFO consumers only once the media deadline passes.
                let data = self.card.read_blocks(u64::from(arg), blocks);
                let mut fifo = self.fifo.lock();
                fifo.begin(FifoDir::CardToHost, media_deadline_ns);
                if let Some(bytes) = data {
                    fifo.push_bytes(&bytes);
                }
                drop(fifo);
                self.set_fsm(sdedm::FSM_READDATA);
            } else {
                self.fifo.lock().begin(FifoDir::HostToCard, now_ns);
                self.set_fsm(sdedm::FSM_WRITEDATA);
            }

            self.op = Some(DataOp {
                read: is_read,
                lba: arg,
                blocks,
                block_size,
                media_deadline_ns,
                completed: false,
                committed: false,
            });
        } else {
            self.set_fsm(sdedm::FSM_DATAMODE);
        }
    }

    fn progress(&mut self, now_ns: u64) {
        // Command-done: clear NEW_FLAG so pollers observe completion.
        if let Some(done) = self.cmd_done_ns {
            if now_ns >= done {
                let v = self.regs.get(regs::SDCMD) & !sdcmd::NEW_FLAG;
                self.regs.set(regs::SDCMD, v);
                self.cmd_done_ns = None;
            }
        }

        let Some(mut op) = self.op.take() else { return };

        if op.read {
            if !op.completed && now_ns >= op.media_deadline_ns {
                op.completed = true;
                self.post_status(sdhsts::DATA_FLAG | sdhsts::BLOCK_IRPT, now_ns);
                self.set_fsm(sdedm::FSM_READDATA);
            }
            // The read op retires once the FIFO has been fully drained.
            if op.completed && self.fifo.lock().level() == 0 {
                self.fifo.lock().finish();
                self.set_fsm(sdedm::FSM_DATAMODE);
                self.op = None;
                return;
            }
        } else {
            let expected = op.blocks as usize * op.block_size;
            if !op.committed {
                let level = self.fifo.lock().level();
                if level >= expected
                    && now_ns
                        >= op
                            .media_deadline_ns
                            .saturating_sub(u64::from(op.blocks) * self.cost.sd_write_block_ns)
                {
                    let data = self.fifo.lock().pop_bytes(expected);
                    let ok = self.card.write_blocks(u64::from(op.lba), &data);
                    op.committed = true;
                    if !ok {
                        self.post_status(sdhsts::REW_TIME_OUT, now_ns);
                        self.set_fsm(sdedm::FSM_IDENTMODE);
                        self.fifo.lock().finish();
                        self.op = None;
                        return;
                    }
                    self.set_fsm(sdedm::FSM_WRITEWAIT1);
                }
            }
            if op.committed && !op.completed && now_ns >= op.media_deadline_ns {
                self.post_status(sdhsts::BUSY_IRPT | sdhsts::BLOCK_IRPT, now_ns);
                self.fifo.lock().finish();
                self.set_fsm(sdedm::FSM_DATAMODE);
                self.op = None;
                return;
            }
        }
        self.op = Some(op);
    }
}

impl MmioDevice for SdHost {
    fn name(&self) -> &'static str {
        "sdhost"
    }

    fn mmio_base(&self) -> u64 {
        SDHOST_BASE
    }

    fn mmio_len(&self) -> u64 {
        SDHOST_LEN
    }

    fn read32(&mut self, offset: u64, now_ns: u64) -> u32 {
        self.progress(now_ns);
        match offset {
            regs::SDDATA => {
                let ready = {
                    let f = self.fifo.lock();
                    f.data_ready(now_ns) && f.level() > 0
                };
                if ready {
                    let w = self.fifo.lock().pop_word();
                    self.progress(now_ns);
                    w
                } else {
                    self.regs.set_bits(regs::SDHSTS, sdhsts::FIFO_ERROR);
                    0
                }
            }
            regs::SDEDM => {
                // Recompute the FIFO level field on every read: this is the
                // "time-dependent, not state-changing" input the paper uses
                // as its motivating example for constraint discovery (§4.2).
                let fsm = self.regs.get(regs::SDEDM) & sdedm::FSM_MASK;
                self.set_fsm(fsm);
                self.regs.get(regs::SDEDM)
            }
            _ => self.regs.get(offset),
        }
    }

    fn write32(&mut self, offset: u64, val: u32, now_ns: u64) {
        self.progress(now_ns);
        match offset {
            regs::SDVDD => {
                self.powered = val & 1 != 0;
                self.regs.set(regs::SDVDD, val);
            }
            regs::SDHSTS => {
                // Write-1-to-clear.
                let cur = self.regs.get(regs::SDHSTS);
                self.regs.set(regs::SDHSTS, cur & !val);
                if val != 0 {
                    self.irqs.lock().clear(lines::MMC);
                }
            }
            regs::SDCMD => {
                if val & sdcmd::NEW_FLAG != 0 {
                    self.issue_command(val, now_ns);
                } else {
                    self.regs.set(regs::SDCMD, val);
                }
            }
            regs::SDDATA => {
                self.fifo.lock().push_word(val);
                self.progress(now_ns);
            }
            _ => self.regs.set(offset, val),
        }
        self.progress(now_ns);
    }

    fn tick(&mut self, now_ns: u64) {
        self.progress(now_ns);
    }

    fn soft_reset(&mut self, _now_ns: u64) {
        self.regs.reset();
        self.regs.set(regs::SDVER, 0x2835_0001);
        self.fifo.lock().finish();
        self.cmd_done_ns = None;
        self.op = None;
        self.powered = true;
        self.card.fast_init();
        self.set_fsm(sdedm::FSM_DATAMODE);
    }

    fn irq_line(&self) -> Option<u32> {
        Some(lines::MMC)
    }

    fn register_map(&self) -> Vec<(u64, &'static str)> {
        regs::SDHOST_REGISTERS.iter().map(|(o, n)| (*o, *n)).collect()
    }

    fn is_idle(&self) -> bool {
        self.op.is_none() && self.cmd_done_ns.is_none()
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        // Command completion and media latency are the host's only
        // time-driven transitions; FIFO drain is event-driven (the DMA
        // engine reports its own deadline).
        let media = self.op.as_ref().filter(|op| !op.completed).map(|op| op.media_deadline_ns);
        match (self.cmd_done_ns, media) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_hw::shared;

    fn fixture() -> (SdHost, Shared<FifoLink>, Shared<IrqController>) {
        let fifo = shared(FifoLink::new());
        let irqs = shared(IrqController::new());
        let card = SdCard::formatted(4096);
        let host = SdHost::new(card, fifo.clone(), irqs.clone(), CostModel::default());
        (host, fifo, irqs)
    }

    /// Bring the controller+card to the transfer state the way the full
    /// driver's probe path would, but condensed (the gold driver in
    /// dlt-gold-drivers performs the full sequence; here we only need the
    /// card usable).
    fn power_and_init(host: &mut SdHost) {
        host.write32(regs::SDVDD, 1, 0);
        host.write32(regs::SDHCFG, sdhcfg::BLOCK_IRPT_EN | sdhcfg::BUSY_IRPT_EN, 0);
        host.write32(regs::SDHBCT, BLOCK_SIZE as u32, 0);
        host.card_mut().fast_init();
    }

    fn issue(host: &mut SdHost, index: u8, arg: u32, flags: u32, now: u64) {
        host.write32(regs::SDARG, arg, now);
        host.write32(regs::SDCMD, sdcmd::NEW_FLAG | flags | u32::from(index), now);
    }

    #[test]
    fn command_new_flag_clears_after_latency() {
        let (mut host, _f, _i) = fixture();
        power_and_init(&mut host);
        issue(&mut host, 13, 0x4567 << 16, 0, 1_000);
        assert!(host.read32(regs::SDCMD, 1_000) & sdcmd::NEW_FLAG != 0);
        let done = 1_000 + CostModel::default().sd_cmd_ns + 1;
        assert!(host.read32(regs::SDCMD, done) & sdcmd::NEW_FLAG == 0);
    }

    #[test]
    fn unpowered_controller_times_out_commands() {
        let (mut host, _f, _i) = fixture();
        issue(&mut host, 13, 0, 0, 0);
        assert!(host.read32(regs::SDCMD, 0) & sdcmd::FAIL_FLAG != 0);
        assert!(host.read32(regs::SDHSTS, 0) & sdhsts::CMD_TIME_OUT != 0);
    }

    #[test]
    fn pio_read_of_one_block() {
        let (mut host, _f, _i) = fixture();
        power_and_init(&mut host);
        host.card_mut().poke_block(3, &[0x5a; BLOCK_SIZE]);
        host.write32(regs::SDHBLC, 1, 0);
        issue(&mut host, 17, 3, sdcmd::READ_CMD, 0);
        // Data is not ready before the media deadline.
        assert_eq!(host.read32(regs::SDDATA, 1_000), 0);
        assert!(host.read32(regs::SDHSTS, 1_000) & sdhsts::FIFO_ERROR != 0);
        host.write32(regs::SDHSTS, sdhsts::FIFO_ERROR, 1_000);
        // After the deadline, BLOCK_IRPT is posted and data flows.
        let cost = CostModel::default();
        let t = cost.sd_cmd_ns + cost.sd_transaction_overhead_ns + cost.sd_read_block_ns + 10;
        host.tick(t);
        assert!(host.read32(regs::SDHSTS, t) & sdhsts::BLOCK_IRPT != 0);
        let mut words = Vec::new();
        for _ in 0..BLOCK_SIZE / 4 {
            words.push(host.read32(regs::SDDATA, t));
        }
        assert!(words.iter().all(|w| *w == 0x5a5a_5a5a));
        assert!(host.is_idle());
    }

    #[test]
    fn pio_write_of_one_block_reaches_the_card() {
        let (mut host, _f, irqs) = fixture();
        power_and_init(&mut host);
        host.write32(regs::SDHBLC, 1, 0);
        issue(&mut host, 24, 9, sdcmd::WRITE_CMD, 0);
        for i in 0..BLOCK_SIZE as u32 / 4 {
            host.write32(regs::SDDATA, 0x0101_0101u32.wrapping_mul(i % 3 + 1), 10);
        }
        let cost = CostModel::default();
        let t = cost.sd_cmd_ns + cost.sd_transaction_overhead_ns + cost.sd_write_block_ns + 10;
        host.tick(t);
        assert!(host.read32(regs::SDHSTS, t) & sdhsts::BUSY_IRPT != 0);
        let blk = host.card().peek_block(9);
        assert_eq!(&blk[0..4], &[1, 1, 1, 1]);
        assert!(host.card().blocks_written() == 1);
        assert!(irqs.lock().assert_count() > 0);
        assert!(host.is_idle());
    }

    #[test]
    fn block_irq_asserts_only_when_enabled() {
        let (mut host, _f, irqs) = fixture();
        power_and_init(&mut host);
        // Disable interrupts.
        host.write32(regs::SDHCFG, 0, 0);
        host.write32(regs::SDHBLC, 1, 0);
        issue(&mut host, 17, 0, sdcmd::READ_CMD, 0);
        host.tick(10_000_000);
        assert_eq!(irqs.lock().assert_count(), 0);
        // Status bit is still visible for polling drivers.
        assert!(host.read32(regs::SDHSTS, 10_000_000) & sdhsts::BLOCK_IRPT != 0);
    }

    #[test]
    fn sdedm_reports_fsm_and_fifo_level() {
        let (mut host, _f, _i) = fixture();
        power_and_init(&mut host);
        host.card_mut().poke_block(0, &[1; BLOCK_SIZE]);
        host.write32(regs::SDHBLC, 1, 0);
        issue(&mut host, 17, 0, sdcmd::READ_CMD, 0);
        let edm = host.read32(regs::SDEDM, 100);
        assert_eq!(edm & sdedm::FSM_MASK, sdedm::FSM_READDATA);
        let level = (edm >> sdedm::FIFO_LEVEL_SHIFT) & sdedm::FIFO_LEVEL_MASK;
        assert!(level > 0, "FIFO level field should be non-zero during a read");
    }

    #[test]
    fn removing_the_card_mid_sequence_shows_up_in_status() {
        let (mut host, _f, _i) = fixture();
        power_and_init(&mut host);
        host.card_mut().remove();
        issue(&mut host, 17, 0, sdcmd::READ_CMD, 0);
        assert!(host.read32(regs::SDCMD, 0) & sdcmd::FAIL_FLAG != 0);
        assert!(host.read32(regs::SDHSTS, 0) & sdhsts::CMD_TIME_OUT != 0);
    }

    #[test]
    fn soft_reset_restores_a_clean_initialised_state() {
        let (mut host, fifo, _i) = fixture();
        power_and_init(&mut host);
        host.write32(regs::SDHBLC, 4, 0);
        issue(&mut host, 18, 0, sdcmd::READ_CMD, 0);
        assert!(!host.is_idle());
        host.soft_reset(1);
        assert!(host.is_idle());
        assert_eq!(fifo.lock().level(), 0);
        assert_eq!(host.read32(regs::SDHSTS, 1), 0);
        // The card is usable again without a full re-init.
        host.write32(regs::SDVDD, 1, 1);
        host.write32(regs::SDHBLC, 1, 1);
        issue(&mut host, 17, 0, sdcmd::READ_CMD, 1);
        assert!(host.read32(regs::SDCMD, 1) & sdcmd::FAIL_FLAG == 0);
    }

    #[test]
    fn status_write_one_to_clear() {
        let (mut host, _f, _i) = fixture();
        power_and_init(&mut host);
        host.write32(regs::SDHBLC, 1, 0);
        issue(&mut host, 17, 0, sdcmd::READ_CMD, 0);
        host.tick(10_000_000);
        let sts = host.read32(regs::SDHSTS, 10_000_000);
        assert!(sts & sdhsts::BLOCK_IRPT != 0);
        host.write32(regs::SDHSTS, sdhsts::BLOCK_IRPT, 10_000_000);
        assert_eq!(host.read32(regs::SDHSTS, 10_000_000) & sdhsts::BLOCK_IRPT, 0);
    }

    #[test]
    fn register_map_is_complete() {
        let (host, _f, _i) = fixture();
        assert_eq!(host.register_map().len(), 24);
    }
}
