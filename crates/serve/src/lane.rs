//! Per-lane execution engine: the worker that owns one device lane's TEE
//! core (platform, virtual clock, replayer) and queue, plus the shared
//! state that connects it to the service front-end.
//!
//! The same [`LaneWorker`] runs in **both** execution modes
//! ([`crate::service::ExecMode`]):
//!
//! * **Sequential** — the front-end keeps the worker inline and steps it
//!   from the single-threaded event loop, preserving the exact virtual-time
//!   behaviour of the pre-threading service (every PR 3–6 gate replays
//!   bit-identically).
//! * **Threaded** — the worker is moved onto its own OS thread (one host
//!   thread per TEE core, the paper's one-core-per-lane model made
//!   physical). The front-end talks to it only through lock-free SPSC
//!   rings ([`crate::spsc`]) and a control mailbox; the worker parks when
//!   idle and is unparked by doorbells, per-call admissions, control
//!   messages and shutdown.
//!
//! # Channels and counters
//!
//! Per lane there are three queues and a handful of atomics:
//!
//! * `admit` (front-end → worker, SPSC): requests the TEE admitted
//!   (per-call SMC or doorbell), already stamped with `arrived_ns`.
//!   Capacity reservation happens **front-end side** on
//!   [`LaneShared::reserve`] before the push, so the push itself can never
//!   exceed the lane bound and `QueueFull` always carries one coherent
//!   depth snapshot.
//! * `cq` (worker → front-end, SPSC): completions in execution order. The
//!   worker never blocks on a full ring: it spills worker-side
//!   ([`LaneWorker::cq_spill`]) and flushes opportunistically, with
//!   [`LaneShared::cq_backlog`] telling the front-end there is more to
//!   reap than the ring shows.
//! * `ctrl` (front-end → worker, mpsc): fault injection, health checks,
//!   stop. Handled strictly **between batches**, never mid-replay — that
//!   is the mid-flight safety contract `dlt-explore` relies on.
//!
//! [`LaneShared::inflight`] counts admitted-but-not-yet-posted requests;
//! the quiescence protocol (`drain_all`) is "every lane's `inflight` and
//! `cq_backlog` are zero, then reap the rings". The worker publishes its
//! clock through the lock-free [`ClockCell`], so the front-end's
//! pointwise-max `now_ns()` join never takes a lane lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use dlt_core::{replay_cam, ReplayError, Replayer, ResponseMutator};
use dlt_hw::{ClockCell, Platform};
use dlt_obs::metrics::LaneMetrics;
use dlt_obs::trace::{EventKind, TraceHandle};
use dlt_obs::{obs_event, obs_event_at};

use crate::coalesce::{self, plan_dispatch, Dispatch, DispatchReason, ExecPlan};
use crate::sched::{Lane, Pending, Policy};
use crate::spsc::{SpscConsumer, SpscProducer};
use crate::{Completion, Device, LaneHealth, Payload, Request, ServeError, SessionId, BLOCK};

/// First block of the scratch extent `lane_health_check` overwrites on
/// block lanes (it stays clear of the low extents the tests and workloads
/// address).
pub(crate) const HEALTH_PROBE_BLKID: u32 = 1024;

pub(crate) fn block_args(rw: u64, blkcnt: u32, blkid: u32) -> [(&'static str, u64); 4] {
    [("rw", rw), ("blkcnt", u64::from(blkcnt)), ("blkid", u64::from(blkid)), ("flag", 0)]
}

/// Cumulative service counters as atomics, shared by the front-end, every
/// lane worker and every detached [`crate::service::LaneSubmitter`]. All
/// updates are `Relaxed` — they are metrics, and the quiescence protocol's
/// acquire/release edges make post-drain snapshots exact.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    pub replays: AtomicU64,
    pub coalesced_requests: AtomicU64,
    pub blocks_moved: AtomicU64,
    pub holds: AtomicU64,
    pub early_unplugs: AtomicU64,
    pub doorbells: AtomicU64,
    pub doorbell_entries: AtomicU64,
    pub cq_overflows: AtomicU64,
    /// Requests that went through the shard router's placement.
    pub routed: AtomicU64,
    /// Route parts shed off a saturated home lane to a sibling.
    pub route_spills: AtomicU64,
    /// Routed requests split across two or more replicas.
    pub stripe_fanouts: AtomicU64,
    /// Total parts those fan-outs produced.
    pub stripe_parts: AtomicU64,
    /// Submits rejected at admission by per-tenant QoS.
    pub throttled: AtomicU64,
    /// Failover retries dispatched to sibling replicas.
    pub failovers: AtomicU64,
    /// Requests whose failover retry budget ran out.
    pub failover_exhausted: AtomicU64,
    /// Lane quarantine trips.
    pub quarantines: AtomicU64,
    /// Lanes restored to healthy after probation.
    pub lane_restores: AtomicU64,
}

impl SharedStats {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }
}

/// The epoch/condvar pair `drain_all` sleeps on while lane threads chew:
/// workers bump it whenever they make progress (a batch executed, spill
/// flushed, control handled), so the front-end wakes promptly instead of
/// spinning — important on single-core hosts, where a spinning front-end
/// would starve the very lane threads it waits for.
#[derive(Debug, Default)]
pub(crate) struct Quiesce {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Quiesce {
    pub fn bump(&self) {
        let mut epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        *epoch += 1;
        drop(epoch);
        self.cv.notify_all();
    }

    /// Wait until a worker signals progress or `timeout` passes (the
    /// timeout makes the wait robust to missed wakeups: the caller
    /// re-checks its quiescence predicate either way).
    pub fn wait_for_progress(&self, timeout: Duration) {
        let epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        match self.cv.wait_timeout(epoch, timeout) {
            Ok((guard, _timed_out)) => drop(guard),
            Err(poisoned) => drop(poisoned.into_inner()),
        }
    }
}

/// Lane state both sides read: admission bound, quiescence counters, the
/// lane clock's lock-free cell, and the worker thread's unpark handle.
#[derive(Debug)]
pub(crate) struct LaneShared {
    pub device: Device,
    /// The lane queue bound ([`crate::service::ServeConfig::queue_capacity`]).
    pub capacity: usize,
    /// Requests admitted by the TEE whose completion has not yet been
    /// posted. Incremented front-end side (single admitter) on
    /// [`LaneShared::reserve`]; decremented by the worker with `Release`
    /// as each completion is posted, so a front-end `Acquire` load of 0
    /// proves every completion is visible in the cq ring/spill.
    pub inflight: AtomicU64,
    /// Mirror of the worker's local queue depth (observability only).
    pub queued: AtomicUsize,
    /// Mirror of the worker queue's high-water mark.
    pub queue_high_water: AtomicUsize,
    /// Completions spilled worker-side because the cq ring was full; the
    /// front-end treats `> 0` as "keep reaping".
    pub cq_backlog: AtomicUsize,
    /// The lane virtual clock's lock-free published view.
    pub clock: Arc<ClockCell>,
    /// The worker thread's handle, set once after spawn (threaded mode
    /// only); [`LaneShared::unpark`] is a no-op before it is set and in
    /// sequential mode.
    pub thread: OnceLock<std::thread::Thread>,
    /// Service-wide progress signal.
    pub quiesce: Arc<Quiesce>,
    /// The metrics plane's per-lane series. The lifecycle counters run
    /// unconditionally (they back [`LaneHealth`] and the `QueueFull`
    /// high-water report); histogram recording follows `metrics_enabled`.
    pub metrics: Arc<LaneMetrics>,
    /// Whether full metrics recording (latency histograms) is on.
    pub metrics_enabled: bool,
    /// The host-monotonic epoch `last_event_host_ns` stamps count from
    /// (shared with the recorder/registry so all host stamps align).
    pub obs_epoch: Instant,
}

impl LaneShared {
    pub fn new(
        device: Device,
        capacity: usize,
        clock: Arc<ClockCell>,
        quiesce: Arc<Quiesce>,
        metrics: Arc<LaneMetrics>,
        metrics_enabled: bool,
        obs_epoch: Instant,
    ) -> Self {
        LaneShared {
            device,
            capacity,
            inflight: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            cq_backlog: AtomicUsize::new(0),
            clock,
            thread: OnceLock::new(),
            quiesce,
            metrics,
            metrics_enabled,
            obs_epoch,
        }
    }

    /// Host-monotonic nanoseconds since the observability epoch.
    pub fn host_now_ns(&self) -> u64 {
        self.obs_epoch.elapsed().as_nanos() as u64
    }

    /// Wake the lane thread (no-op inline/sequential).
    pub fn unpark(&self) {
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }

    /// Reserve one admission slot, or reject with a **single-snapshot**
    /// [`ServeError::QueueFull`]: the reported depth is the one atomic
    /// load the rejection decision was made on — never a second racy
    /// re-read — so a rejection raced against a draining worker still
    /// reports `depth <= capacity` consistently.
    pub fn reserve(&self) -> Result<(), ServeError> {
        let depth = self.inflight.load(Ordering::Acquire);
        if depth >= self.capacity as u64 {
            return Err(ServeError::QueueFull {
                device: self.device,
                depth: depth as usize,
                capacity: self.capacity,
                high_water: self.metrics.occupancy_high_water() as usize,
                fleet: Vec::new(),
            });
        }
        // Only the front-end thread reserves, so load-then-add cannot
        // overshoot: concurrent worker decrements only free slots.
        self.inflight.fetch_add(1, Ordering::AcqRel);
        self.metrics.on_admit(depth + 1, self.host_now_ns());
        Ok(())
    }

    /// Whether every admitted request's completion has been posted and the
    /// worker has nothing spilled outside the cq ring.
    pub fn quiescent(&self) -> bool {
        self.inflight.load(Ordering::Acquire) == 0 && self.cq_backlog.load(Ordering::Acquire) == 0
    }
}

/// The worker-relevant slice of the service configuration.
#[derive(Debug, Clone)]
pub(crate) struct LaneConfig {
    pub policy: Policy,
    pub coalesce: bool,
    pub coalesce_window: usize,
    pub hold_budget_ns: u64,
    pub block_granularities: Vec<u32>,
    pub camera_bursts: Vec<u32>,
}

/// Control-plane requests delivered to the worker between batches.
pub(crate) enum CtrlReq {
    /// Install (`Some`) or clear (`None`) a response mutator on the lane
    /// replayer — fault injection's entry point.
    SetMutator(Option<Box<dyn ResponseMutator>>),
    /// Run the lane health probe.
    HealthCheck,
    /// Drop a closed session's scheduler bookkeeping (DRR rotation slot).
    /// Queued requests still execute; their completions are dropped at
    /// post time by the front-end.
    ForgetSession(SessionId),
    /// Quarantine drain: hand every queued (not yet dispatched) request
    /// back to the front-end for re-routing. The evicted requests keep
    /// their front-end reservations — the supervisor settles the
    /// in-flight accounting as it re-places each one.
    Evict,
    /// Exit the worker loop (threaded mode shutdown).
    Stop,
}

/// What a successful control request returns.
pub(crate) enum CtrlReply {
    /// The request had no payload to report.
    Done,
    /// [`CtrlReq::HealthCheck`]'s structured report.
    Health(LaneHealth),
    /// [`CtrlReq::Evict`]'s drained queue, in queue order.
    Evicted(Vec<Pending>),
}

pub(crate) struct CtrlMsg {
    pub req: CtrlReq,
    pub reply: mpsc::Sender<Result<CtrlReply, ServeError>>,
}

/// One device lane's execution engine (see the module docs).
pub(crate) struct LaneWorker {
    pub device: Device,
    pub lane: Lane,
    /// The lane's own TEE core: a full platform whose clock is the lane
    /// timeline every replay charges into.
    pub platform: Platform,
    pub replayer: Replayer,
    pub entry: &'static str,
    pub admit_rx: SpscConsumer<Pending>,
    pub cq_tx: SpscProducer<Completion>,
    /// Worker-side never-drop spill for when the cq ring is full.
    pub cq_spill: VecDeque<Completion>,
    pub ctrl_rx: mpsc::Receiver<CtrlMsg>,
    pub shared: Arc<LaneShared>,
    pub stats: Arc<SharedStats>,
    pub config: LaneConfig,
    /// Flight-recorder channel for this lane thread (`None` unless
    /// [`dlt_obs::ObsConfig::Full`]).
    pub tracer: Option<TraceHandle>,
}

impl LaneWorker {
    /// Lane-local time, read through the replayer: the replayer executes
    /// against its own core's clock, so both views are the same timeline.
    pub fn now_ns(&self) -> u64 {
        self.replayer.now_ns()
    }

    /// The anticipatory-hold budget effective for this lane (holding is an
    /// optimisation of coalescing, so it follows the coalesce gates).
    fn hold_budget(&self) -> u64 {
        if self.config.coalesce && self.device != Device::Vchiq {
            self.config.hold_budget_ns
        } else {
            0
        }
    }

    fn publish_queue_depth(&self) {
        self.shared.queued.store(self.lane.len(), Ordering::Release);
        self.shared.queue_high_water.store(self.lane.high_water(), Ordering::Release);
    }

    /// Move every admitted request from the SPSC ring into the local
    /// queue. Returns how many were moved. The front-end's reservation
    /// bounds in-flight work at the lane capacity, so the local push
    /// cannot overflow; a failure here would be an accounting bug, and the
    /// request still completes — with the typed error — rather than
    /// disappearing.
    pub fn pump_admissions(&mut self) -> usize {
        let mut moved = 0;
        while let Some(p) = self.admit_rx.try_pop() {
            moved += 1;
            if let Err(err) = self.lane.push(p.clone(), self.device) {
                debug_assert!(false, "reservation should bound the lane queue: {err}");
                let completion = Completion {
                    id: p.id,
                    session: p.session,
                    device: self.device,
                    result: Err(err),
                    submitted_ns: p.submitted_ns,
                    completed_ns: self.now_ns(),
                    coalesced: false,
                };
                self.post(completion);
            }
        }
        if moved > 0 {
            self.publish_queue_depth();
        }
        moved
    }

    /// When this lane would next dispatch a batch, and why then.
    pub fn next_dispatch(&self) -> Option<Dispatch> {
        if self.lane.is_empty() {
            return None;
        }
        // The plug's fill cap is the smaller of the queue bound and the
        // dispatch window: once a batch's worth of requests has arrived,
        // holding longer cannot merge anything more into *this* dispatch.
        let fill_cap = self.lane.capacity().min(self.config.coalesce_window);
        Some(plan_dispatch(self.lane.arrivals(), self.now_ns(), self.hold_budget(), fill_cap))
    }

    /// Fast-forward to the dispatch instant, drain one arrival-gated batch
    /// and execute it. Returns the number of completions posted (0 when
    /// DRR deficits are still accumulating — the caller retries, exactly
    /// like the sequential event loop always has).
    pub fn run_one_batch(&mut self, dispatch: Dispatch) -> usize {
        // The core fast-forwards over its idle gap to the dispatch instant
        // (arrival or plug deadline)...
        self.platform.clock.lock().advance_idle_to(dispatch.at_ns);
        // ...then unplugs and batches everything that arrived by then.
        let batch =
            self.lane.next_batch(self.config.policy, self.config.coalesce_window, dispatch.at_ns);
        self.publish_queue_depth();
        if batch.is_empty() {
            return 0;
        }
        // One host stamp covers the whole dispatch cluster (plug marks plus
        // one `Dispatched` per request): the events are back-to-back and the
        // clock read is the dominant emit cost.
        let host_ns = self.tracer.is_some().then(|| self.shared.host_now_ns());
        if dispatch.held() {
            SharedStats::bump(&self.stats.holds);
            let expired = dispatch.reason == DispatchReason::HoldExpired;
            if !expired {
                SharedStats::bump(&self.stats.early_unplugs);
            }
            if let Some(host_ns) = host_ns {
                obs_event_at!(
                    self.tracer,
                    host_ns,
                    EventKind::Plug,
                    dispatch.at_ns,
                    0,
                    0,
                    batch.len() as u64
                );
                obs_event_at!(
                    self.tracer,
                    host_ns,
                    EventKind::Unplug,
                    dispatch.at_ns,
                    0,
                    0,
                    u64::from(expired)
                );
            }
        }
        if let Some(host_ns) = host_ns {
            for p in &batch {
                obs_event_at!(
                    self.tracer,
                    host_ns,
                    EventKind::Dispatched,
                    dispatch.at_ns,
                    p.session,
                    p.id,
                    batch.len() as u64
                );
            }
        }
        let completions = self.execute_batch(&batch);
        let n = completions.len();
        for c in completions {
            self.post(c);
        }
        n
    }

    /// Post one completion towards the front-end: cq ring first, spill on
    /// a full ring (never dropped, never blocking), then release the
    /// in-flight reservation with `Release` so quiescence observers see
    /// the completion before the count.
    fn post(&mut self, completion: Completion) {
        // Terminal metrics classification — deliberately at a different
        // site than admission (the front-end's reserve), so the snapshot
        // reconciliation invariant checks real instrumentation consistency.
        // The metrics stamp and the recorder share one epoch (see
        // `DriverletService::with_driverlets`), so the same read serves
        // both planes — the terminal trace event rides the metrics stamp
        // instead of paying a second clock read.
        let host_ns = self.shared.host_now_ns();
        match &completion.result {
            Ok(_) => {
                obs_event_at!(
                    self.tracer,
                    host_ns,
                    EventKind::Completed,
                    completion.completed_ns,
                    completion.session,
                    completion.id,
                    u64::from(completion.coalesced)
                );
                self.shared.metrics.on_complete(
                    completion.latency_ns(),
                    host_ns,
                    self.shared.metrics_enabled,
                );
            }
            Err(ServeError::Replay(ReplayError::Diverged(_))) => {
                obs_event_at!(
                    self.tracer,
                    host_ns,
                    EventKind::Diverged,
                    completion.completed_ns,
                    completion.session,
                    completion.id,
                    0
                );
                self.shared.metrics.on_diverge(host_ns);
            }
            Err(_) => {
                // Terminal but neither success nor divergence: still a
                // `Completed` span endpoint, tagged failed via the arg.
                obs_event_at!(
                    self.tracer,
                    host_ns,
                    EventKind::Completed,
                    completion.completed_ns,
                    completion.session,
                    completion.id,
                    2
                );
                self.shared.metrics.on_fail(host_ns);
            }
        }
        match self.cq_tx.try_push(completion) {
            Ok(_) => {}
            Err((completion, _)) => {
                self.cq_spill.push_back(completion);
                self.shared.cq_backlog.store(self.cq_spill.len(), Ordering::Release);
            }
        }
        self.shared.inflight.fetch_sub(1, Ordering::Release);
    }

    /// Move spilled completions into the cq ring as space frees up.
    /// Returns how many moved.
    pub fn flush_cq_spill(&mut self) -> usize {
        let mut moved = 0;
        while let Some(c) = self.cq_spill.pop_front() {
            match self.cq_tx.try_push(c) {
                Ok(_) => moved += 1,
                Err((c, _)) => {
                    self.cq_spill.push_front(c);
                    break;
                }
            }
        }
        if moved > 0 {
            self.shared.cq_backlog.store(self.cq_spill.len(), Ordering::Release);
        }
        moved
    }

    /// Handle one control request. Returns `false` on [`CtrlReq::Stop`].
    pub fn handle_ctrl(&mut self, msg: CtrlMsg) -> bool {
        let (result, keep_running) = match msg.req {
            CtrlReq::SetMutator(Some(mutator)) => {
                let now = self.now_ns();
                obs_event!(self.tracer, EventKind::FaultInject, now, 0, 0, 0);
                self.replayer.set_response_mutator(mutator);
                (Ok(CtrlReply::Done), true)
            }
            CtrlReq::SetMutator(None) => {
                let now = self.now_ns();
                obs_event!(self.tracer, EventKind::FaultClear, now, 0, 0, 0);
                self.replayer.clear_response_mutator();
                (Ok(CtrlReply::Done), true)
            }
            CtrlReq::HealthCheck => (self.health_check().map(CtrlReply::Health), true),
            CtrlReq::ForgetSession(session) => {
                self.lane.forget_session(session);
                (Ok(CtrlReply::Done), true)
            }
            CtrlReq::Evict => {
                // Pull everything the TEE already admitted into the local
                // queue first, so the eviction is complete — nothing stays
                // hidden in the admit ring to execute after the drain.
                self.pump_admissions();
                let evicted = self.lane.evict_all();
                self.publish_queue_depth();
                (Ok(CtrlReply::Evicted(evicted)), true)
            }
            CtrlReq::Stop => (Ok(CtrlReply::Done), false),
        };
        // A dropped reply receiver is fine (e.g. the service gave up).
        let _ = msg.reply.send(result);
        keep_running
    }

    /// The lane thread's event loop (threaded mode). Parks when there is
    /// no admitted work, no spill to flush and no control traffic; every
    /// producer unparks it after making new work visible.
    pub fn run(mut self) {
        // Park/unpark are traced per idle *episode*, not per timed-out
        // park, so an idle lane does not fill its trace ring.
        let mut parked = false;
        loop {
            let mut progress = 0usize;
            while let Ok(msg) = self.ctrl_rx.try_recv() {
                let keep_running = self.handle_ctrl(msg);
                self.shared.quiesce.bump();
                if !keep_running {
                    return;
                }
                progress += 1;
            }
            progress += self.flush_cq_spill();
            progress += self.pump_admissions();
            if parked && progress > 0 {
                parked = false;
                let now = self.now_ns();
                obs_event!(self.tracer, EventKind::Unpark, now, 0, 0, 0);
            }
            match self.next_dispatch() {
                Some(dispatch) => {
                    if parked {
                        parked = false;
                        let now = self.now_ns();
                        obs_event!(self.tracer, EventKind::Unpark, now, 0, 0, 0);
                    }
                    // An empty batch still advanced DRR deficits; loop and
                    // re-plan (terminates exactly as in sequential mode).
                    self.run_one_batch(dispatch);
                    self.shared.quiesce.bump();
                }
                None => {
                    if progress > 0 {
                        self.shared.quiesce.bump();
                        continue;
                    }
                    if !parked {
                        parked = true;
                        let now = self.now_ns();
                        obs_event!(self.tracer, EventKind::Park, now, 0, 0, 0);
                    }
                    if !self.cq_spill.is_empty() {
                        // The cq ring is full and the front-end has not
                        // reaped yet: retry shortly rather than spin.
                        std::thread::park_timeout(Duration::from_micros(50));
                    } else if self.admit_rx.is_empty() {
                        // Idle. The unpark token protocol makes this
                        // race-free: any producer that pushed after the
                        // checks above also unparks us, which either wakes
                        // the park below or pre-pays its token. The
                        // timeout is a belt-and-braces liveness floor.
                        std::thread::park_timeout(Duration::from_millis(1));
                    }
                }
            }
        }
    }

    fn execute_batch(&mut self, batch: &[Pending]) -> Vec<Completion> {
        let reqs: Vec<Request> = batch.iter().map(|p| p.req.clone()).collect();
        let coalesce = self.config.coalesce && self.device != Device::Vchiq;
        let plans = coalesce::plan(&reqs, coalesce);
        let mut out = Vec::new();
        for plan in &plans {
            match plan {
                ExecPlan::Single(i) => {
                    self.shared.metrics.on_replay(1);
                    let result = self.execute_single(&batch[*i].req);
                    out.push(self.complete(&batch[*i], result, false));
                }
                ExecPlan::MergedRead { blkid, blkcnt, members } => {
                    let coalesced = plan.is_coalesced();
                    self.shared.metrics.on_replay(members.len() as u64);
                    match self.execute_read(*blkid, *blkcnt) {
                        Ok(bytes) => {
                            for &m in members {
                                let p = &batch[m];
                                let Request::Read { blkid: rb, blkcnt: rc, .. } = p.req else {
                                    unreachable!("merged read members are reads");
                                };
                                let off = (rb - blkid) as usize * BLOCK;
                                let payload =
                                    Payload::Read(bytes[off..off + rc as usize * BLOCK].to_vec());
                                if coalesced {
                                    SharedStats::bump(&self.stats.coalesced_requests);
                                }
                                out.push(self.complete(p, Ok(payload), coalesced));
                            }
                        }
                        Err(_) if coalesced => {
                            // The merged span failed (e.g. one member is out
                            // of recorded coverage). Fall back to member-
                            // by-member execution so every request gets
                            // exactly the outcome the serial order would
                            // have produced.
                            for &m in members {
                                let result = self.execute_single(&batch[m].req);
                                out.push(self.complete(&batch[m], result, false));
                            }
                        }
                        Err(e) => {
                            out.push(self.complete(&batch[members[0]], Err(e), false));
                        }
                    }
                }
                ExecPlan::BatchedWrite { blkid, members } => {
                    let coalesced = plan.is_coalesced();
                    self.shared.metrics.on_replay(members.len() as u64);
                    let mut data = Vec::new();
                    for &m in members {
                        let Request::Write { data: d, .. } = &batch[m].req else {
                            unreachable!("batched write members are writes");
                        };
                        data.extend_from_slice(d);
                    }
                    match self.execute_write(*blkid, &mut data) {
                        Ok(()) => {
                            for &m in members {
                                let p = &batch[m];
                                let Request::Write { data: d, .. } = &p.req else {
                                    unreachable!("batched write members are writes");
                                };
                                let blocks = (d.len() / BLOCK) as u32;
                                if coalesced {
                                    SharedStats::bump(&self.stats.coalesced_requests);
                                }
                                out.push(self.complete(
                                    p,
                                    Ok(Payload::Written { blocks }),
                                    coalesced,
                                ));
                            }
                        }
                        Err(_) if coalesced => {
                            // Same serial-equivalence fallback as merged
                            // reads. A partially-executed batched write is
                            // re-issued per member in order, which matches
                            // the serial outcome because writes are
                            // idempotent per extent.
                            for &m in members {
                                let result = self.execute_single(&batch[m].req);
                                out.push(self.complete(&batch[m], result, false));
                            }
                        }
                        Err(e) => {
                            out.push(self.complete(&batch[members[0]], Err(e), false));
                        }
                    }
                }
            }
        }
        out
    }

    fn complete(
        &mut self,
        p: &Pending,
        result: Result<Payload, ServeError>,
        coalesced: bool,
    ) -> Completion {
        SharedStats::bump(&self.stats.completed);
        Completion {
            id: p.id,
            session: p.session,
            device: self.device,
            result,
            submitted_ns: p.submitted_ns,
            // Lane-local completion time: the request finished on its own
            // core's timeline (>= submitted_ns, because the lane never
            // dispatches a request before it arrived).
            completed_ns: self.now_ns(),
            coalesced,
        }
    }

    fn execute_single(&mut self, req: &Request) -> Result<Payload, ServeError> {
        match req {
            Request::Read { blkid, blkcnt, .. } => {
                self.execute_read(*blkid, *blkcnt).map(Payload::Read)
            }
            Request::Write { blkid, data, .. } => {
                let mut scratch = data.clone();
                self.execute_write(*blkid, &mut scratch)
                    .map(|()| Payload::Written { blocks: (data.len() / BLOCK) as u32 })
            }
            Request::Capture { frames, resolution } => {
                let mut buf = vec![0u8; 2 << 20];
                let size = replay_cam(&mut self.replayer, *frames, *resolution, &mut buf)?;
                SharedStats::bump(&self.stats.replays);
                buf.truncate(size as usize);
                Ok(Payload::Image { data: buf })
            }
        }
    }

    /// One (possibly merged) read span, decomposed over the recorded
    /// granularities.
    fn execute_read(&mut self, blkid: u32, blkcnt: u32) -> Result<Vec<u8>, ServeError> {
        let mut buf = vec![0u8; blkcnt as usize * BLOCK];
        let mut done = 0u32;
        for part in coalesce::decompose(blkcnt, &self.config.block_granularities) {
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            self.replayer.invoke_args(
                self.entry,
                &block_args(0x1, part, blkid + done),
                &mut buf[start..end],
            )?;
            SharedStats::bump(&self.stats.replays);
            SharedStats::add(&self.stats.blocks_moved, u64::from(part));
            done += part;
        }
        Ok(buf)
    }

    /// One (possibly batched) write span.
    fn execute_write(&mut self, blkid: u32, data: &mut [u8]) -> Result<(), ServeError> {
        let blkcnt = (data.len() / BLOCK) as u32;
        let mut done = 0u32;
        for part in coalesce::decompose(blkcnt, &self.config.block_granularities) {
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            self.replayer.invoke_args(
                self.entry,
                &block_args(0x10, part, blkid + done),
                &mut data[start..end],
            )?;
            SharedStats::bump(&self.stats.replays);
            SharedStats::add(&self.stats.blocks_moved, u64::from(part));
            done += part;
        }
        Ok(())
    }

    /// The lane health probe (see
    /// [`crate::service::DriverletService::lane_health_check`]): the
    /// active write/read-back (or capture) probe, then a structured
    /// [`LaneHealth`] report built from the metrics plane.
    pub fn health_check(&mut self) -> Result<LaneHealth, ServeError> {
        let gran = self.config.block_granularities.iter().copied().min().unwrap_or(1);
        let frames = self.config.camera_bursts.first().copied().unwrap_or(1);
        match self.device {
            Device::Mmc | Device::Usb => {
                let pattern: Vec<u8> =
                    (0..gran as usize * BLOCK).map(|i| (i as u8) ^ 0xA5).collect();
                let mut buf = pattern.clone();
                self.replayer.invoke_args(
                    self.entry,
                    &block_args(0x10, gran, HEALTH_PROBE_BLKID),
                    &mut buf,
                )?;
                let mut readback = vec![0u8; gran as usize * BLOCK];
                self.replayer.invoke_args(
                    self.entry,
                    &block_args(0x1, gran, HEALTH_PROBE_BLKID),
                    &mut readback,
                )?;
                if readback != pattern {
                    return Err(ServeError::Invalid(format!(
                        "lane {} failed its health probe: read-back differs from the \
                         written pattern",
                        self.device
                    )));
                }
            }
            Device::Vchiq => {
                let mut buf = vec![0u8; 2 << 20];
                let size = replay_cam(&mut self.replayer, frames, 720, &mut buf)?;
                if size == 0 {
                    return Err(ServeError::Invalid(
                        "lane vchiq failed its health probe: empty capture".into(),
                    ));
                }
            }
        }
        let metrics = &self.shared.metrics;
        metrics.touch(self.shared.host_now_ns());
        Ok(LaneHealth {
            device: self.device,
            state: crate::LaneState::from_gauge(metrics.state()),
            queued: self.lane.len() as u64,
            inflight: self.shared.inflight.load(Ordering::Acquire),
            completed: metrics.completed(),
            diverged: metrics.diverged(),
            last_event_host_ns: metrics.last_event_host_ns(),
        })
    }
}
