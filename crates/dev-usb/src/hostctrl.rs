//! DWC2-style USB host controller model.
//!
//! The controller exposes the core/host/channel registers the full driver
//! programs, executes one transaction per channel enable, moves data between
//! physical memory (`HCDMA`) and the attached [`UsbMassStorage`] device, and
//! raises the USB interrupt on channel completion, port events and
//! disconnects.

use dlt_hw::device::{MmioDevice, RegBank};
use dlt_hw::irq::lines;
use dlt_hw::{CostModel, IrqController, PhysMem, Shared};

use crate::device::UsbMassStorage;
use crate::regs::{self, gahbcfg, gintsts, grstctl, hcchar, hcint, hctsiz, hprt};
use crate::{USB_BASE, USB_LEN};

/// A transaction scheduled on the (single modelled) host channel.
#[derive(Debug, Clone)]
struct PendingXfer {
    /// Completion deadline in virtual time.
    done_ns: u64,
    /// HCINT bits to post at completion.
    int_bits: u32,
}

/// The host controller with its attached mass-storage device.
pub struct UsbHostController {
    regs: RegBank,
    device: UsbMassStorage,
    mem: Shared<PhysMem>,
    irqs: Shared<IrqController>,
    cost: CostModel,
    /// Pending SETUP data-in stage bytes (from the last control SETUP).
    control_data: Vec<u8>,
    pending: Option<PendingXfer>,
    device_present: bool,
    /// Statistics.
    transactions: u64,
    irqs_raised: u64,
}

impl UsbHostController {
    /// Create the controller with `device` attached to the root port.
    pub fn new(
        device: UsbMassStorage,
        mem: Shared<PhysMem>,
        irqs: Shared<IrqController>,
        cost: CostModel,
    ) -> Self {
        let mut regs = RegBank::new();
        for (off, _) in regs::USB_REGISTERS {
            regs.define(*off, 0);
        }
        regs.define(regs::GHWCFG2, (regs::NUM_CHANNELS as u32 - 1) << 14);
        regs.define(regs::GHWCFG3, 0x0ff0_0020);
        regs.define(regs::GRSTCTL, grstctl::AHB_IDLE);
        let mut this = UsbHostController {
            regs,
            device,
            mem,
            irqs,
            cost,
            control_data: Vec::new(),
            pending: None,
            device_present: true,
            transactions: 0,
            irqs_raised: 0,
        };
        this.update_port_status(true);
        this
    }

    /// The attached device (validation / fault injection).
    pub fn device(&self) -> &UsbMassStorage {
        &self.device
    }

    /// Mutable handle to the attached device.
    pub fn device_mut(&mut self) -> &mut UsbMassStorage {
        &mut self.device
    }

    /// Number of channel transactions executed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Number of interrupts raised.
    pub fn irqs_raised(&self) -> u64 {
        self.irqs_raised
    }

    /// Unplug the stick: the port drops, `GINTSTS.DISCINT` is raised and any
    /// in-flight transaction fails (§8.2.1 fault injection).
    pub fn unplug(&mut self, now_ns: u64) {
        self.device_present = false;
        self.device.disk_mut().remove();
        self.update_port_status(false);
        self.regs.set_bits(regs::GINTSTS, gintsts::DISCINT | gintsts::PRTINT);
        if let Some(p) = &mut self.pending {
            p.int_bits = hcint::XACTERR | hcint::CHHLTD;
        }
        self.maybe_raise_irq(now_ns);
    }

    /// Plug the stick back in (re-enumeration required on the real bus; the
    /// model keeps the device in its fast-init state).
    pub fn replug(&mut self, now_ns: u64) {
        self.device_present = true;
        self.device.disk_mut().reinsert();
        self.update_port_status(true);
        self.regs.set_bits(regs::GINTSTS, gintsts::PRTINT);
        self.maybe_raise_irq(now_ns);
    }

    fn update_port_status(&mut self, connected: bool) {
        let mut v = hprt::PWR | hprt::SPD_HIGH;
        if connected {
            v |= hprt::CONN_STS | hprt::CONN_DET | hprt::ENA;
        }
        self.regs.set(regs::HPRT, v);
    }

    fn irq_enabled(&self, bits: u32) -> bool {
        self.regs.get(regs::GAHBCFG) & gahbcfg::GLBL_INTR_EN != 0
            && self.regs.get(regs::GINTMSK) & bits != 0
    }

    fn maybe_raise_irq(&mut self, now_ns: u64) {
        let sts = self.regs.get(regs::GINTSTS);
        if self.irq_enabled(sts) {
            self.irqs.lock().assert_at(lines::USB, now_ns + self.cost.irq_delivery_ns);
            self.irqs_raised += 1;
        }
    }

    fn start_channel(&mut self, charval: u32, now_ns: u64) {
        self.transactions += 1;
        let ch = regs::CHANNEL;
        let tsiz = self.regs.get(regs::hctsiz(ch));
        let xfersize = (tsiz & hctsiz::XFERSIZE_MASK) as usize;
        let pid = tsiz & (3 << hctsiz::PID_SHIFT);
        let dma_addr = u64::from(self.regs.get(regs::hcdma(ch)));
        let is_in = charval & hcchar::EPDIR_IN != 0;
        let eptype = (charval >> hcchar::EPTYPE_SHIFT) & 0x3;

        if !self.device_present {
            self.pending = Some(PendingXfer {
                done_ns: now_ns + self.cost.usb_control_ns,
                int_bits: hcint::XACTERR | hcint::CHHLTD,
            });
            return;
        }

        let mut extra_ns = 0u64;
        let mut int_bits = hcint::XFERCOMPL | hcint::CHHLTD;

        if eptype == 0 {
            // Control transfer.
            if pid == hctsiz::PID_SETUP {
                let mut setup = [0u8; 8];
                let _ = self.mem.lock().read_bytes(dma_addr, &mut setup);
                self.control_data = self.device.handle_control(&setup);
            } else if is_in {
                let n = xfersize.min(self.control_data.len());
                let data: Vec<u8> = self.control_data.drain(..n).collect();
                let _ = self.mem.lock().write_bytes(dma_addr, &data);
            }
            extra_ns += self.cost.usb_control_ns;
        } else {
            // Bulk transfer.
            if is_in {
                let data = self.device.bulk_in(xfersize);
                if data.is_empty() {
                    int_bits = hcint::NAK | hcint::CHHLTD;
                } else {
                    let _ = self.mem.lock().write_bytes(dma_addr, &data);
                }
                extra_ns += self.bulk_cost(xfersize);
            } else {
                let mut buf = vec![0u8; xfersize];
                let _ = self.mem.lock().read_bytes(dma_addr, &mut buf);
                extra_ns += self.bulk_cost(xfersize);
                extra_ns += self.device.bulk_out(&buf, self.cost.usb_lba_program_ns);
            }
        }

        self.pending = Some(PendingXfer { done_ns: now_ns + extra_ns, int_bits });
    }

    fn bulk_cost(&self, len: usize) -> u64 {
        let blocks = (len as u64).div_ceil(512).max(1);
        self.cost.usb_bot_overhead_ns / 4 + blocks * self.cost.usb_bulk_block_ns
    }

    fn progress(&mut self, now_ns: u64) {
        if let Some(p) = &self.pending {
            if now_ns >= p.done_ns {
                let bits = p.int_bits;
                self.pending = None;
                let ch = regs::CHANNEL;
                self.regs.set_bits(regs::hcint(ch), bits);
                self.regs.set_bits(regs::HAINT, 1 << ch);
                self.regs.set_bits(regs::GINTSTS, gintsts::HCHINT);
                // Channel enable clears on halt.
                let charval = self.regs.get(regs::hcchar(ch)) & !hcchar::CHENA;
                self.regs.set(regs::hcchar(ch), charval);
                self.maybe_raise_irq(now_ns);
            }
        }
    }
}

impl MmioDevice for UsbHostController {
    fn name(&self) -> &'static str {
        "dwc2"
    }

    fn mmio_base(&self) -> u64 {
        USB_BASE
    }

    fn mmio_len(&self) -> u64 {
        USB_LEN
    }

    fn read32(&mut self, offset: u64, now_ns: u64) -> u32 {
        self.progress(now_ns);
        match offset {
            regs::HFNUM => {
                // Micro-frame counter: 125 us per micro-frame, 14 bits.
                ((now_ns / 125_000) & 0x3fff) as u32 | 0x7fff_0000
            }
            regs::GINTSTS => self.regs.get(regs::GINTSTS) | gintsts::CURMOD_HOST,
            _ => self.regs.get(offset),
        }
    }

    fn write32(&mut self, offset: u64, val: u32, now_ns: u64) {
        self.progress(now_ns);
        match offset {
            regs::GRSTCTL => {
                if val & grstctl::CSFT_RST != 0 {
                    // Core soft reset: self-clearing, drops pending work.
                    self.pending = None;
                    self.control_data.clear();
                    self.regs.set(regs::GRSTCTL, grstctl::AHB_IDLE);
                } else {
                    self.regs.set(regs::GRSTCTL, val | grstctl::AHB_IDLE);
                }
            }
            regs::GINTSTS => {
                // Write-1-to-clear.
                let cur = self.regs.get(regs::GINTSTS);
                self.regs.set(regs::GINTSTS, cur & !val);
                if val != 0 {
                    self.irqs.lock().clear(lines::USB);
                }
            }
            regs::HPRT => {
                let mut cur = self.regs.get(regs::HPRT);
                // CONN_DET is write-1-to-clear; RST bit toggled by software.
                if val & hprt::CONN_DET != 0 {
                    cur &= !hprt::CONN_DET;
                }
                if val & hprt::RST != 0 {
                    cur |= hprt::RST;
                } else {
                    cur &= !hprt::RST;
                    if self.device_present {
                        cur |= hprt::ENA;
                    }
                }
                cur |= val & hprt::PWR;
                self.regs.set(regs::HPRT, cur);
            }
            o if o == regs::hcint(regs::CHANNEL) => {
                let cur = self.regs.get(o);
                self.regs.set(o, cur & !val);
                if val != 0 {
                    // Clearing all channel interrupts also drops HAINT/HCHINT.
                    if self.regs.get(o) == 0 {
                        self.regs.clear_bits(regs::HAINT, 1 << regs::CHANNEL);
                        self.regs.clear_bits(regs::GINTSTS, gintsts::HCHINT);
                    }
                    self.irqs.lock().clear(lines::USB);
                }
            }
            o if o == regs::hcchar(regs::CHANNEL) => {
                self.regs.set(o, val);
                if val & hcchar::CHENA != 0 && val & hcchar::CHDIS == 0 {
                    self.start_channel(val, now_ns);
                }
            }
            _ => self.regs.set(offset, val),
        }
        self.progress(now_ns);
    }

    fn tick(&mut self, now_ns: u64) {
        self.progress(now_ns);
    }

    fn soft_reset(&mut self, _now_ns: u64) {
        self.regs.reset();
        self.regs.set(regs::GRSTCTL, grstctl::AHB_IDLE);
        self.pending = None;
        self.control_data.clear();
        self.update_port_status(self.device_present);
        if self.device_present {
            self.device.fast_init();
        }
    }

    fn irq_line(&self) -> Option<u32> {
        Some(lines::USB)
    }

    fn register_map(&self) -> Vec<(u64, &'static str)> {
        regs::USB_REGISTERS.iter().map(|(o, n)| (*o, *n)).collect()
    }

    fn is_idle(&self) -> bool {
        self.pending.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Cbw, BULK_IN_EP, BULK_OUT_EP, CSW_LEN};
    use crate::scsi::{Cdb, ScsiDisk};
    use dlt_hw::shared;

    const CBW_BUF: u64 = 0x1000;
    const DATA_BUF: u64 = 0x2000;
    const CSW_BUF: u64 = 0x8000;

    struct Rig {
        hc: UsbHostController,
        mem: Shared<PhysMem>,
        irqs: Shared<IrqController>,
        now: u64,
    }

    impl Rig {
        fn new() -> Self {
            let mem = shared(PhysMem::new(0, 1 << 20));
            let irqs = shared(IrqController::new());
            let mut device = UsbMassStorage::new(ScsiDisk::new(4096));
            device.fast_init();
            let hc =
                UsbHostController::new(device, mem.clone(), irqs.clone(), CostModel::default());
            Rig { hc, mem, irqs, now: 0 }
        }

        fn enable_irqs(&mut self) {
            self.hc.write32(regs::GAHBCFG, gahbcfg::GLBL_INTR_EN | gahbcfg::DMA_EN, self.now);
            self.hc.write32(regs::GINTMSK, gintsts::HCHINT | gintsts::DISCINT, self.now);
        }

        /// Run one bulk transaction and wait for its completion.
        fn bulk(&mut self, ep: u32, dir_in: bool, buf: u64, len: usize) {
            let ch = regs::CHANNEL;
            self.hc.write32(regs::hctsiz(ch), len as u32 | (1 << hctsiz::PKTCNT_SHIFT), self.now);
            self.hc.write32(regs::hcdma(ch), buf as u32, self.now);
            let mut charval = 512
                | (ep << hcchar::EPNUM_SHIFT)
                | hcchar::EPTYPE_BULK
                | (1 << hcchar::DEVADDR_SHIFT)
                | hcchar::CHENA;
            if dir_in {
                charval |= hcchar::EPDIR_IN;
            }
            self.hc.write32(regs::hcchar(ch), charval, self.now);
            // Advance time until the channel halts.
            for _ in 0..10_000 {
                self.now += 100_000;
                self.hc.tick(self.now);
                if self.hc.read32(regs::hcint(ch), self.now) & hcint::CHHLTD != 0 {
                    break;
                }
            }
            assert!(
                self.hc.read32(regs::hcint(ch), self.now) & hcint::CHHLTD != 0,
                "channel never halted"
            );
            self.hc.write32(regs::hcint(ch), 0xffff_ffff, self.now);
        }

        fn scsi_read(&mut self, lba: u32, blocks: u16, tag: u32) -> Vec<u8> {
            let cdb = Cdb::encode_rw10(false, lba, blocks);
            let cbw = Cbw::encode(tag, u32::from(blocks) * 512, true, &cdb);
            self.mem.lock().write_bytes(CBW_BUF, &cbw).unwrap();
            self.bulk(BULK_OUT_EP, false, CBW_BUF, cbw.len());
            self.bulk(BULK_IN_EP, true, DATA_BUF, blocks as usize * 512);
            self.bulk(BULK_IN_EP, true, CSW_BUF, CSW_LEN);
            let mut csw = [0u8; CSW_LEN];
            self.mem.lock().read_bytes(CSW_BUF, &mut csw).unwrap();
            assert_eq!(csw[12], 0);
            let mut data = vec![0u8; blocks as usize * 512];
            self.mem.lock().read_bytes(DATA_BUF, &mut data).unwrap();
            data
        }

        fn scsi_write(&mut self, lba: u32, payload: &[u8], tag: u32) -> u8 {
            let blocks = (payload.len() / 512) as u16;
            let cdb = Cdb::encode_rw10(true, lba, blocks);
            let cbw = Cbw::encode(tag, payload.len() as u32, false, &cdb);
            self.mem.lock().write_bytes(CBW_BUF, &cbw).unwrap();
            self.mem.lock().write_bytes(DATA_BUF, payload).unwrap();
            self.bulk(BULK_OUT_EP, false, CBW_BUF, cbw.len());
            self.bulk(BULK_OUT_EP, false, DATA_BUF, payload.len());
            self.bulk(BULK_IN_EP, true, CSW_BUF, CSW_LEN);
            let mut csw = [0u8; CSW_LEN];
            self.mem.lock().read_bytes(CSW_BUF, &mut csw).unwrap();
            csw[12]
        }
    }

    #[test]
    fn port_reports_a_connected_device() {
        let mut rig = Rig::new();
        let p = rig.hc.read32(regs::HPRT, 0);
        assert!(p & hprt::CONN_STS != 0);
        assert!(p & hprt::CONN_DET != 0);
        rig.hc.write32(regs::HPRT, hprt::CONN_DET, 0);
        assert!(rig.hc.read32(regs::HPRT, 0) & hprt::CONN_DET == 0);
    }

    #[test]
    fn core_soft_reset_is_self_clearing() {
        let mut rig = Rig::new();
        rig.hc.write32(regs::GRSTCTL, grstctl::CSFT_RST, 0);
        let v = rig.hc.read32(regs::GRSTCTL, 0);
        assert_eq!(v & grstctl::CSFT_RST, 0);
        assert!(v & grstctl::AHB_IDLE != 0);
    }

    #[test]
    fn hfnum_is_time_dependent_and_not_sticky() {
        let mut rig = Rig::new();
        let a = rig.hc.read32(regs::HFNUM, 0) & 0x3fff;
        let b = rig.hc.read32(regs::HFNUM, 125_000 * 10) & 0x3fff;
        assert_ne!(a, b, "frame number must advance with time");
    }

    #[test]
    fn full_scsi_write_read_round_trip_through_dma() {
        let mut rig = Rig::new();
        rig.enable_irqs();
        let payload: Vec<u8> = (0..2048).map(|i| (i % 13) as u8).collect();
        assert_eq!(rig.scsi_write(20, &payload, 1), 0);
        let back = rig.scsi_read(20, 4, 2);
        assert_eq!(back, payload);
        assert!(rig.hc.transactions() >= 6);
        assert!(rig.irqs.lock().assert_count() > 0);
        assert_eq!(rig.hc.device().disk().blocks_written(), 4);
    }

    #[test]
    fn irq_requires_global_enable_and_mask() {
        let mut rig = Rig::new();
        // No GAHBCFG/GINTMSK programming: completion must not interrupt.
        let payload = vec![3u8; 512];
        rig.scsi_write(0, &payload, 5);
        assert_eq!(rig.irqs.lock().assert_count(), 0);
    }

    #[test]
    fn unplug_mid_everything_raises_disconnect_and_fails_transfers() {
        let mut rig = Rig::new();
        rig.enable_irqs();
        rig.hc.unplug(0);
        assert!(rig.hc.read32(regs::GINTSTS, 0) & gintsts::DISCINT != 0);
        assert!(rig.hc.read32(regs::HPRT, 0) & hprt::CONN_STS == 0);
        // A transaction attempted now fails with XACTERR instead of XFERCOMPL.
        let ch = regs::CHANNEL;
        rig.hc.write32(regs::hctsiz(ch), 31 | (1 << hctsiz::PKTCNT_SHIFT), 0);
        rig.hc.write32(regs::hcdma(ch), CBW_BUF as u32, 0);
        rig.hc.write32(
            regs::hcchar(ch),
            512 | (BULK_OUT_EP << hcchar::EPNUM_SHIFT) | hcchar::EPTYPE_BULK | hcchar::CHENA,
            0,
        );
        rig.hc.tick(10_000_000_000);
        let int = rig.hc.read32(regs::hcint(ch), 10_000_000_000);
        assert!(int & hcint::XACTERR != 0);
        assert!(int & hcint::XFERCOMPL == 0);
    }

    #[test]
    fn replug_restores_the_port() {
        let mut rig = Rig::new();
        rig.hc.unplug(0);
        rig.hc.replug(1_000);
        assert!(rig.hc.read32(regs::HPRT, 1_000) & hprt::CONN_STS != 0);
        let data = rig.scsi_read(0, 1, 77);
        assert_eq!(data.len(), 512);
    }

    #[test]
    fn soft_reset_returns_to_enumerated_state() {
        let mut rig = Rig::new();
        rig.hc.soft_reset(0);
        assert!(rig.hc.device().is_configured());
        assert!(rig.hc.is_idle());
        let data = rig.scsi_read(1, 1, 3);
        assert_eq!(data.len(), 512);
    }

    #[test]
    fn register_map_covers_the_paper_population() {
        let rig = Rig::new();
        assert!(rig.hc.register_map().len() >= 20);
    }
}
