//! # driverlets — reproduction of "Minimum Viable Device Drivers for ARM TrustZone" (EuroSys '22)
//!
//! This meta-crate re-exports the whole workspace so downstream users (and
//! the integration tests and examples in this repository) can depend on a
//! single crate. See the README for the architecture overview and DESIGN.md
//! for the per-experiment index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dlt_core as core;
pub use dlt_dev_mmc as dev_mmc;
pub use dlt_dev_usb as dev_usb;
pub use dlt_dev_vchiq as dev_vchiq;
pub use dlt_explore as explore;
pub use dlt_gold_drivers as gold_drivers;
pub use dlt_hw as hw;
pub use dlt_recorder as recorder;
pub use dlt_serve as serve;
pub use dlt_tee as tee;
pub use dlt_template as template;
pub use dlt_trustlets as trustlets;
pub use dlt_workloads as workloads;
