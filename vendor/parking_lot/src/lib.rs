//! Workspace-local minimal stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's panic-free lock
//! signatures (`lock()` returns the guard directly). Poisoning is translated
//! into a panic, which matches parking_lot's behaviour of not poisoning at
//! all: a lock held across a panic is a bug either way in this workspace.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive, `std::sync::Mutex` with parking_lot's API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|_| panic!("mutex poisoned by a panicking holder"))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|_| panic!("mutex poisoned by a panicking holder"))
    }
}

/// Reader-writer lock, `std::sync::RwLock` with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|_| panic!("rwlock poisoned by a panicking holder"))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|_| panic!("rwlock poisoned by a panicking holder"))
    }
}
