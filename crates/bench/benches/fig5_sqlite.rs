//! Criterion bench for the Figure 5 workload paths (wall-clock time of the
//! simulation; the figure itself is produced from virtual time by the
//! `report` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlt_workloads::block::{StorageKind, StoragePath};
use dlt_workloads::suite::{run_benchmark, SqliteBenchmark};

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_sqlite_mmc");
    group.sample_size(10);
    for path in [StoragePath::Native, StoragePath::NativeSync, StoragePath::Driverlet] {
        group.bench_with_input(
            BenchmarkId::new("insert3", format!("{path:?}")),
            &path,
            |b, path| {
                b.iter(|| {
                    run_benchmark(SqliteBenchmark::Insert3, StorageKind::Mmc, *path, 10)
                        .unwrap()
                        .iops
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
