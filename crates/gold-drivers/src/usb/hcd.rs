//! DWC2 host-controller driver: core init, port reset, channel transfers.
//!
//! The full Linux counterpart implements dynamic channel scheduling across
//! many endpoints and devices; this driver keeps that structure (a channel
//! submission API with NAK retry and per-transfer interrupt handling) while
//! serving the single mass-storage device the platform exposes.

use dlt_dev_usb::regs::{self, gahbcfg, gintsts, grstctl, hcchar, hcint, hctsiz, hprt};
use dlt_dev_usb::USB_BASE;
use dlt_hw::irq::lines;
use dlt_hw::DmaRegion;

use crate::kenv::{DriverError, HwIo};

const fn reg(offset: u64) -> u64 {
    USB_BASE + offset
}

/// Endpoint type for a channel submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpType {
    /// Control endpoint (endpoint 0).
    Control,
    /// Bulk endpoint.
    Bulk,
}

/// Statistics for the Table 8 effort analysis and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HcdStats {
    /// Channel submissions.
    pub transfers: u64,
    /// NAK retries performed.
    pub nak_retries: u64,
    /// Transaction errors observed.
    pub xact_errors: u64,
}

/// The host-controller driver.
pub struct UsbHcd<I: HwIo> {
    io: I,
    device_address: u8,
    initialized: bool,
    stats: HcdStats,
}

impl<I: HwIo> UsbHcd<I> {
    /// Wrap an IO environment.
    pub fn new(io: I) -> Self {
        UsbHcd { io, device_address: 0, initialized: false, stats: HcdStats::default() }
    }

    /// Access the underlying IO environment.
    pub fn io_mut(&mut self) -> &mut I {
        &mut self.io
    }

    /// Statistics.
    pub fn stats(&self) -> HcdStats {
        self.stats
    }

    /// Whether core init and enumeration have completed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Address assigned to the mass-storage device during enumeration.
    pub fn device_address(&self) -> u8 {
        self.device_address
    }

    /// Reset and configure the controller core.
    pub fn core_init(&mut self) -> Result<(), DriverError> {
        self.io.writel(reg(regs::GRSTCTL), grstctl::CSFT_RST);
        self.io.readl_poll(
            reg(regs::GRSTCTL),
            grstctl::AHB_IDLE,
            grstctl::AHB_IDLE,
            10,
            100_000,
        )?;
        self.io.writel(reg(regs::GAHBCFG), gahbcfg::GLBL_INTR_EN | gahbcfg::DMA_EN);
        self.io.writel(reg(regs::GINTMSK), gintsts::HCHINT | gintsts::DISCINT | gintsts::PRTINT);
        self.io.writel(reg(regs::HCFG), 0);
        self.io.writel(reg(regs::HFIR), 0xea60);
        Ok(())
    }

    /// Reset the root port and confirm a device is attached.
    pub fn port_init(&mut self) -> Result<(), DriverError> {
        let p = self.io.readl(reg(regs::HPRT));
        if p & hprt::CONN_STS == 0 {
            return Err(DriverError::NoMedium);
        }
        // Power + reset pulse.
        self.io.writel(reg(regs::HPRT), p | hprt::PWR | hprt::RST);
        self.io.delay_us(50_000);
        self.io.writel(reg(regs::HPRT), (p | hprt::PWR) & !hprt::RST);
        self.io.delay_us(10_000);
        // Clear the connect-detected latch.
        self.io.writel(reg(regs::HPRT), hprt::CONN_DET | hprt::PWR);
        self.io.readl_poll(reg(regs::HPRT), hprt::ENA, hprt::ENA, 100, 100_000)?;
        Ok(())
    }

    /// (Re)program the interrupt routing for a request. Mirrors the per-URB
    /// preparation of the full driver and makes every recorded template
    /// self-contained with respect to a soft-reset controller.
    pub fn prepare_request(&mut self) {
        self.io.writel(reg(regs::GAHBCFG), gahbcfg::GLBL_INTR_EN | gahbcfg::DMA_EN);
        self.io.writel(reg(regs::GINTMSK), gintsts::HCHINT | gintsts::DISCINT | gintsts::PRTINT);
        self.io.writel(reg(regs::hcintmsk(regs::CHANNEL)), 0xffff_ffff);
    }

    /// Submit one transfer on the reserved channel and wait for completion.
    ///
    /// `pid_setup` marks the SETUP stage of a control transfer.
    pub fn submit(
        &mut self,
        ep_type: EpType,
        ep_num: u32,
        dir_in: bool,
        buf: DmaRegion,
        len: usize,
        pid_setup: bool,
    ) -> Result<(), DriverError> {
        let ch = regs::CHANNEL;
        for attempt in 0..4 {
            self.stats.transfers += 1;
            let mut tsiz = (len as u32) & hctsiz::XFERSIZE_MASK;
            tsiz |= 1 << hctsiz::PKTCNT_SHIFT;
            tsiz |= if pid_setup { hctsiz::PID_SETUP } else { hctsiz::PID_DATA1 };
            self.io.writel(reg(regs::hctsiz(ch)), tsiz);
            self.io.writel(reg(regs::hcdma(ch)), buf.base as u32);
            let mut charval = 512
                | (ep_num << hcchar::EPNUM_SHIFT)
                | (u32::from(self.device_address) << hcchar::DEVADDR_SHIFT)
                | hcchar::CHENA;
            charval |= match ep_type {
                EpType::Control => hcchar::EPTYPE_CONTROL,
                EpType::Bulk => hcchar::EPTYPE_BULK,
            };
            if dir_in {
                charval |= hcchar::EPDIR_IN;
            }
            self.io.writel(reg(regs::hcchar(ch)), charval);

            self.io.wait_for_irq(lines::USB, 2_000_000)?;
            let gint = self.io.readl(reg(regs::GINTSTS));
            if gint & gintsts::DISCINT != 0 {
                self.io.writel(reg(regs::GINTSTS), gintsts::DISCINT);
                return Err(DriverError::NoMedium);
            }
            let hci = self.io.readl(reg(regs::hcint(ch)));
            self.io.writel(reg(regs::hcint(ch)), hci);
            self.io.writel(reg(regs::GINTSTS), gintsts::HCHINT);
            if hci & hcint::XFERCOMPL != 0 {
                return Ok(());
            }
            if hci & hcint::XACTERR != 0 {
                self.stats.xact_errors += 1;
                return Err(DriverError::Device("USB transaction error".into()));
            }
            if hci & hcint::NAK != 0 {
                self.stats.nak_retries += 1;
                self.io.delay_us(100 * (attempt + 1));
                continue;
            }
            return Err(DriverError::Device(format!("unexpected HCINT {hci:#x}")));
        }
        Err(DriverError::Timeout("channel NAKed too many times".into()))
    }

    /// Perform a complete control transfer (SETUP / optional DATA-IN /
    /// STATUS). Returns the data-stage bytes.
    pub fn control(&mut self, setup: [u8; 8], data_in_len: usize) -> Result<Vec<u8>, DriverError> {
        let setup_buf = self.io.dma_alloc(8)?;
        self.io.copy_to_dma(setup_buf, 0, &setup);
        self.submit(EpType::Control, 0, false, setup_buf, 8, true)?;
        let mut data = Vec::new();
        if data_in_len > 0 {
            let data_buf = self.io.dma_alloc(data_in_len.max(64))?;
            self.submit(EpType::Control, 0, true, data_buf, data_in_len, false)?;
            data = vec![0u8; data_in_len];
            self.io.copy_from_dma(data_buf, 0, &mut data);
        }
        // Status stage (zero-length, opposite direction).
        let status_buf = self.io.dma_alloc(4)?;
        self.submit(EpType::Control, 0, data_in_len == 0, status_buf, 0, false)?;
        Ok(data)
    }

    /// Enumerate the attached device: descriptors, address, configuration.
    pub fn enumerate(&mut self) -> Result<(), DriverError> {
        // GET_DESCRIPTOR(device) at address 0.
        let dev_desc = self.control([0x80, 6, 0, 1, 0, 0, 18, 0], 18)?;
        if dev_desc.len() < 18 || dev_desc[1] != 1 {
            return Err(DriverError::Device("bad device descriptor".into()));
        }
        // SET_ADDRESS(1).
        self.control([0x00, 5, 1, 0, 0, 0, 0, 0], 0)?;
        self.device_address = 1;
        // GET_DESCRIPTOR(configuration).
        let cfg = self.control([0x80, 6, 0, 2, 0, 0, 64, 0], 32)?;
        if cfg.len() < 9 || cfg[1] != 2 {
            return Err(DriverError::Device("bad configuration descriptor".into()));
        }
        // SET_CONFIGURATION(1).
        self.control([0x00, 9, 1, 0, 0, 0, 0, 0], 0)?;
        self.initialized = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kenv::BusIo;
    use dlt_dev_usb::UsbSubsystem;
    use dlt_hw::Platform;

    fn rig() -> (Platform, UsbSubsystem, UsbHcd<BusIo>) {
        let p = Platform::new();
        let sys = UsbSubsystem::attach(&p).unwrap();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x200_0000, 0x100_0000));
        let hcd = UsbHcd::new(io);
        (p, sys, hcd)
    }

    #[test]
    fn core_and_port_init_then_enumeration() {
        let (_p, sys, mut hcd) = rig();
        hcd.core_init().unwrap();
        hcd.port_init().unwrap();
        hcd.enumerate().unwrap();
        assert!(hcd.is_initialized());
        assert_eq!(hcd.device_address(), 1);
        assert!(sys.hostctrl.lock().device().is_configured());
        assert!(hcd.stats().transfers >= 8);
    }

    #[test]
    fn port_init_fails_with_no_device() {
        let (_p, sys, mut hcd) = rig();
        hcd.core_init().unwrap();
        sys.hostctrl.lock().unplug(0);
        assert!(matches!(hcd.port_init(), Err(DriverError::NoMedium)));
    }

    #[test]
    fn unplug_mid_enumeration_is_detected() {
        let (_p, sys, mut hcd) = rig();
        hcd.core_init().unwrap();
        hcd.port_init().unwrap();
        sys.hostctrl.lock().unplug(0);
        let err = hcd.enumerate().unwrap_err();
        assert!(matches!(err, DriverError::NoMedium | DriverError::Device(_)));
    }
}
