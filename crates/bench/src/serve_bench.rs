//! Service-layer throughput measurement and the `BENCH_serve.json` emitter.
//!
//! Two experiments over `dlt-serve` (all numbers are **virtual time**, so
//! reruns reproduce them exactly):
//!
//! 1. **Coalescing speedup** — 8 concurrent sessions issue striped
//!    single-block reads over one MMC device. The coalesced arm drains
//!    them through the scheduler (adjacent reads merge into 8-block
//!    replays); the serial arm issues the same requests one at a time with
//!    coalescing disabled. The acceptance bar is coalesced ≥ 2x the serial
//!    requests/s.
//! 2. **Mixed traffic** — many sessions drive MMC + USB + VCHIQ
//!    concurrently with a deterministic read/write/capture mix; reports
//!    requests/s, p50/p99 completion latency and the coalescing ratio.

use std::collections::HashMap;

use dlt_serve::{Completion, Device, DriverletService, Policy, Request, ServeConfig, BLOCK};
use serde::Serialize;

/// Result of the 8-session coalescing experiment (the acceptance metric).
#[derive(Debug, Clone, Serialize)]
pub struct CoalescingSample {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Requests issued per arm.
    pub requests: u64,
    /// Requests per second of virtual time, serial uncoalesced arm.
    pub serial_rps: f64,
    /// Requests per second of virtual time, coalesced scheduler arm.
    pub coalesced_rps: f64,
    /// `coalesced_rps / serial_rps` — must be ≥ 2.0.
    pub speedup: f64,
    /// Mean requests folded into one replay on the coalesced arm.
    pub coalescing_ratio: f64,
}

/// Latency percentiles of one mixed-traffic run (virtual microseconds).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySample {
    /// Median completion latency.
    pub p50_us: u64,
    /// 99th-percentile completion latency.
    pub p99_us: u64,
    /// Worst completion latency.
    pub max_us: u64,
}

/// Result of the mixed-traffic experiment.
#[derive(Debug, Clone, Serialize)]
pub struct MixedTrafficSample {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Requests per second of virtual time.
    pub rps: f64,
    /// Completion-latency percentiles.
    pub latency: LatencySample,
    /// Mean requests folded into one replay.
    pub coalescing_ratio: f64,
    /// Completions per device.
    pub per_device: HashMap<String, u64>,
    /// Submits rejected by queue-full backpressure (retried).
    pub backpressure_rejections: u64,
}

/// The persisted `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Workload description.
    pub workload: String,
    /// The 8-session coalescing acceptance experiment.
    pub coalescing: CoalescingSample,
    /// The mixed-traffic experiment.
    pub mixed: MixedTrafficSample,
}

fn mmc_config(coalesce: bool) -> ServeConfig {
    ServeConfig {
        coalesce,
        policy: Policy::Fifo,
        block_granularities: vec![1, 8, 32],
        ..ServeConfig::default()
    }
}

/// The coalescing experiment: `sessions` clients read a striped sequential
/// range (session i reads block `base + round*sessions + i`), `rounds`
/// times.
pub fn run_coalescing_bench(sessions: usize, rounds: u32) -> CoalescingSample {
    // Coalesced arm: all sessions submit, then one drain per round merges
    // the stripe into a single multi-block replay.
    let mut service =
        DriverletService::new(&[Device::Mmc], mmc_config(true)).expect("build coalesced service");
    let ids: Vec<u32> = (0..sessions).map(|_| service.open_session().unwrap()).collect();
    let t0 = service.now_ns();
    let mut completed = 0u64;
    for round in 0..rounds {
        for (i, session) in ids.iter().enumerate() {
            let blkid = 1024 + round * sessions as u32 + i as u32;
            service
                .submit(*session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                .expect("submit");
        }
        completed += service.drain().len() as u64;
    }
    let coalesced_elapsed = service.now_ns() - t0;
    let coalescing_ratio = service.stats().coalescing_ratio();

    // Serial arm: the same requests, one submit + drain at a time, no
    // coalescing — each read pays its own replay.
    let mut service =
        DriverletService::new(&[Device::Mmc], mmc_config(false)).expect("build serial service");
    let ids: Vec<u32> = (0..sessions).map(|_| service.open_session().unwrap()).collect();
    let t0 = service.now_ns();
    let mut serial_completed = 0u64;
    for round in 0..rounds {
        for (i, session) in ids.iter().enumerate() {
            let blkid = 1024 + round * sessions as u32 + i as u32;
            service
                .submit(*session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                .expect("submit");
            serial_completed += service.drain().len() as u64;
        }
    }
    let serial_elapsed = service.now_ns() - t0;

    assert_eq!(completed, serial_completed, "both arms must serve every request");
    let secs = |ns: u64| (ns as f64 / 1e9).max(1e-12);
    let coalesced_rps = completed as f64 / secs(coalesced_elapsed);
    let serial_rps = serial_completed as f64 / secs(serial_elapsed);
    CoalescingSample {
        sessions,
        requests: completed,
        serial_rps,
        coalesced_rps,
        speedup: coalesced_rps / serial_rps.max(1e-12),
        coalescing_ratio,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// The mixed-traffic experiment: block sessions on MMC and USB plus camera
/// sessions on VCHIQ, all multiplexed through one service under deficit
/// round-robin.
pub fn run_mixed_bench(rounds: u32, captures: u32) -> MixedTrafficSample {
    let config = ServeConfig {
        policy: Policy::DeficitRoundRobin { quantum_blocks: 64 },
        block_granularities: vec![1, 8, 32],
        camera_bursts: vec![1],
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let mut service = DriverletService::new(&[Device::Mmc, Device::Usb, Device::Vchiq], config)
        .expect("build mixed service");

    // 4 MMC + 4 USB block sessions and 2 camera sessions.
    let mmc: Vec<u32> = (0..4).map(|_| service.open_session().unwrap()).collect();
    let usb: Vec<u32> = (0..4).map(|_| service.open_session().unwrap()).collect();
    let cam: Vec<u32> = (0..2).map(|_| service.open_session().unwrap()).collect();

    let mut latencies_us: Vec<u64> = Vec::new();
    let mut per_device: HashMap<String, u64> = HashMap::new();
    let mut completed = 0u64;
    let record = |completions: &[Completion],
                  latencies_us: &mut Vec<u64>,
                  per_device: &mut HashMap<String, u64>| {
        for c in completions {
            c.result.as_ref().expect("mixed traffic stays in coverage");
            latencies_us.push(c.latency_ns() / 1_000);
            *per_device.entry(c.device.to_string()).or_insert(0) += 1;
        }
    };

    let t0 = service.now_ns();
    // A deterministic xorshift stream decides each session's next request.
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for round in 0..rounds {
        for (lane, sessions) in [(Device::Mmc, &mmc), (Device::Usb, &usb)] {
            for (i, session) in sessions.iter().enumerate() {
                let r = next();
                // Hot range per session with frequent adjacency.
                let blkid = 2048 + (i as u32) * 64 + (r % 48) as u32;
                let blkcnt = [1u32, 1, 8, 8, 32][(r >> 8) as usize % 5];
                let req = if r % 4 == 0 {
                    Request::Write {
                        device: lane,
                        blkid,
                        data: vec![(r >> 16) as u8; blkcnt as usize * BLOCK],
                    }
                } else {
                    Request::Read { device: lane, blkid, blkcnt }
                };
                // Backpressure: drain and retry once if the lane is full.
                if let Err(dlt_serve::ServeError::QueueFull { .. }) =
                    service.submit(*session, req.clone())
                {
                    let done = service.drain();
                    record(&done, &mut latencies_us, &mut per_device);
                    completed += done.len() as u64;
                    service.submit(*session, req).expect("submit after drain");
                }
            }
        }
        if round < captures {
            for session in &cam {
                service
                    .submit(*session, Request::Capture { frames: 1, resolution: 720 })
                    .expect("submit capture");
            }
        }
        let done = service.drain();
        record(&done, &mut latencies_us, &mut per_device);
        completed += done.len() as u64;
    }
    let elapsed = service.now_ns() - t0;

    latencies_us.sort_unstable();
    MixedTrafficSample {
        sessions: mmc.len() + usb.len() + cam.len(),
        requests: completed,
        rps: completed as f64 / (elapsed as f64 / 1e9).max(1e-12),
        latency: LatencySample {
            p50_us: percentile(&latencies_us, 0.50),
            p99_us: percentile(&latencies_us, 0.99),
            max_us: latencies_us.last().copied().unwrap_or(0),
        },
        coalescing_ratio: service.stats().coalescing_ratio(),
        per_device,
        backpressure_rejections: service.stats().rejected,
    }
}

/// Run both experiments.
pub fn run_serve_bench(quick: bool) -> ServeBenchReport {
    let (rounds, mixed_rounds, captures) = if quick { (6, 4, 1) } else { (24, 12, 3) };
    let coalescing = run_coalescing_bench(8, rounds);
    let mixed = run_mixed_bench(mixed_rounds, captures);
    ServeBenchReport {
        workload: format!(
            "serve layer: 8-session striped reads x {rounds} rounds (MMC); \
             10-session mixed MMC+USB+VCHIQ x {mixed_rounds} rounds"
        ),
        coalescing,
        mixed,
    }
}

/// Serialise the report as pretty JSON.
pub fn report_json(report: &ServeBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialisation cannot fail")
}

/// Write the report to `path` (default artifact name: `BENCH_serve.json`).
pub fn emit_report(report: &ServeBenchReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// Render the human-readable summary the bench prints.
pub fn describe(report: &ServeBenchReport) -> String {
    let c = &report.coalescing;
    let m = &report.mixed;
    let mut out = String::new();
    out.push_str(&format!("workload: {}\n", report.workload));
    out.push_str(&format!(
        "coalescing: {} sessions, {} requests: {:.0} req/s serial -> {:.0} req/s coalesced \
         ({:.2}x, {:.2} requests/replay)\n",
        c.sessions, c.requests, c.serial_rps, c.coalesced_rps, c.speedup, c.coalescing_ratio
    ));
    out.push_str(&format!(
        "mixed: {} sessions, {} requests, {:.0} req/s, p50 {} us, p99 {} us (max {} us), \
         {:.2} requests/replay, {} backpressure rejections\n",
        m.sessions,
        m.requests,
        m.rps,
        m.latency.p50_us,
        m.latency.p99_us,
        m.latency.max_us,
        m.coalescing_ratio,
        m.backpressure_rejections
    ));
    out
}

/// One-line record for log scraping.
pub fn summary_line(report: &ServeBenchReport) -> String {
    format!(
        "serve_throughput coalesced={:.0} serial={:.0} speedup={:.2} mixed_rps={:.0} p99_us={}",
        report.coalescing.coalesced_rps,
        report.coalescing.serial_rps,
        report.coalescing.speedup,
        report.mixed.rps,
        report.mixed.latency.p99_us
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_coalesced_sessions_double_the_serial_request_rate() {
        // The tentpole acceptance bar: 8 concurrent sessions over one MMC
        // device reach ≥ 2x the requests/s of the same sessions issuing
        // serially without coalescing.
        let sample = run_coalescing_bench(8, 4);
        assert_eq!(sample.requests, 32);
        assert!(
            sample.speedup >= 2.0,
            "coalesced {:.0} req/s vs serial {:.0} req/s is only {:.2}x",
            sample.coalesced_rps,
            sample.serial_rps,
            sample.speedup
        );
        assert!(sample.coalescing_ratio > 4.0, "stripes of 8 should fold into few replays");
    }

    #[test]
    fn mixed_traffic_reports_latency_and_ratio() {
        let m = run_mixed_bench(2, 1);
        assert!(m.requests > 0);
        assert!(m.latency.p99_us >= m.latency.p50_us);
        assert!(m.per_device.contains_key("mmc"));
        assert!(m.per_device.contains_key("usb"));
        assert!(m.per_device.contains_key("vchiq"));
        let json = report_json(&run_serve_bench(true));
        assert!(json.contains("coalescing"));
        assert!(json.contains("p99_us"));
    }
}
