//! The reference tree-walking interpreter.
//!
//! This is the pre-compilation execution path: it walks the
//! [`Template`] event tree directly, resolving parameter and capture names
//! through the [`EvalEnv`] hash maps and recursively evaluating
//! `SymExpr`/`Constraint` trees per event. It allocates on every invocation
//! (argument-map clone, capture inserts, per-copy temporaries).
//!
//! The production path is the compiled one (`dlt_template::program` +
//! [`crate::replayer`]); this interpreter is retained as
//! [`crate::replayer::ReplayMode::Interpreted`] because it is the living
//! baseline: the `replay_throughput` bench measures the compiled speedup
//! against it, and the differential tests in `replayer.rs` hold the two
//! executions to identical outcomes and identical virtual-time cost.

use std::collections::HashMap;

use dlt_hw::{DmaRegion, HwError};
use dlt_tee::{SecureIo, TeeError};
use dlt_template::{EvalEnv, Event, Iface, ReadSink, Template};

use crate::replayer::{DivergenceEvent, ExecFailure, ReplayOutcome, ReplayStats};

fn env_fault(reason: &str) -> TeeError {
    TeeError::Hw(HwError::DeviceError { device: "env".into(), reason: reason.into() })
}

fn missing_dma(alloc: usize) -> TeeError {
    TeeError::Hw(HwError::DeviceError {
        device: "dma".into(),
        reason: format!("dma[{alloc}] not allocated"),
    })
}

fn read_iface(
    io: &mut SecureIo,
    iface: &Iface,
    allocations: &[DmaRegion],
) -> Result<u32, TeeError> {
    match iface {
        Iface::Reg { addr, .. } => io.readl(*addr),
        Iface::Shm { alloc, offset } => {
            let region = allocations.get(*alloc).copied().ok_or_else(|| missing_dma(*alloc))?;
            io.shm_read32(region, *offset)
        }
        Iface::Env(_) => Err(env_fault("environment interfaces are not readable")),
    }
}

fn write_iface(
    io: &mut SecureIo,
    iface: &Iface,
    value: u32,
    allocations: &[DmaRegion],
) -> Result<(), TeeError> {
    match iface {
        Iface::Reg { addr, .. } => io.writel(*addr, value),
        Iface::Shm { alloc, offset } => {
            let region = allocations.get(*alloc).copied().ok_or_else(|| missing_dma(*alloc))?;
            io.shm_write32(region, *offset, value)
        }
        Iface::Env(_) => Err(env_fault("environment interfaces are not writable")),
    }
}

/// Execute one template attempt by walking the event tree.
pub(crate) fn execute_once(
    io: &mut SecureIo,
    stats: &mut ReplayStats,
    template: &Template,
    args: &HashMap<String, u64>,
    buf: &mut [u8],
) -> Result<ReplayOutcome, ExecFailure> {
    let dispatch_ns = io.replay_dispatch_cost_ns();
    let mut env = EvalEnv::with_params(args.clone());
    let mut allocations: Vec<DmaRegion> = Vec::new();
    let mut payload_bytes = 0u64;

    let diverge =
        |idx: usize, re: &dlt_template::RecordedEvent, observed: Option<u64>, reason: String| {
            ExecFailure::Divergence(
                DivergenceEvent {
                    event_index: idx,
                    site: re.site.clone(),
                    event: re.event.describe(),
                    observed,
                    reason,
                },
                idx,
            )
        };

    for (idx, re) in template.events.iter().enumerate() {
        stats.events_executed += 1;
        // Polls charge per iteration below; everything else is one dispatch.
        if !matches!(re.event, Event::Poll { .. }) {
            io.charge_ns(dispatch_ns);
        }
        match &re.event {
            Event::Read { iface, constraint, sink, .. } => {
                let value = read_iface(io, iface, &allocations).map_err(ExecFailure::Tee)? as u64;
                if !constraint.check(value, &env) {
                    return Err(diverge(
                        idx,
                        re,
                        Some(value),
                        format!("constraint \"{}\" violated", constraint.describe()),
                    ));
                }
                match sink {
                    ReadSink::Discard => {}
                    ReadSink::Capture(name) => {
                        env.captured.insert(name.clone(), value);
                    }
                    ReadSink::UserData { offset } => {
                        let off = *offset as usize;
                        if off + 4 > buf.len() {
                            return Err(diverge(
                                idx,
                                re,
                                Some(value),
                                "user-data sink outside the trustlet buffer".into(),
                            ));
                        }
                        buf[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes());
                        payload_bytes += 4;
                    }
                }
            }
            Event::Write { iface, value } => {
                let v = value.eval(&env).ok_or_else(|| {
                    diverge(idx, re, None, "output expression references an unbound symbol".into())
                })?;
                write_iface(io, iface, v as u32, &allocations).map_err(ExecFailure::Tee)?;
            }
            Event::DmaAlloc { len, .. } => {
                let n = len.eval(&env).ok_or_else(|| {
                    diverge(idx, re, None, "allocation size references an unbound symbol".into())
                })? as usize;
                let region = io.dma_alloc(n).map_err(ExecFailure::Tee)?;
                env.dma_bases.push(region.base);
                allocations.push(region);
            }
            Event::GetRandBytes { len, .. } => {
                let mut tmp = vec![0u8; *len as usize];
                io.fill_rand_bytes(&mut tmp).map_err(ExecFailure::Tee)?;
            }
            Event::GetTs { sink, .. } => {
                let v = io.get_ts_rpc();
                if let ReadSink::Capture(name) = sink {
                    env.captured.insert(name.clone(), v);
                }
            }
            Event::WaitForIrq { line, timeout_us } => {
                stats.irq_waits += 1;
                // Templates wait for every individual interrupt; the gold
                // driver would have coalesced them (§8.3.2). Charge the
                // per-IRQ handling overhead the native path avoids.
                let irq_overhead = io.irq_wait_overhead_ns();
                io.charge_ns(irq_overhead);
                if io.wait_for_irq(*line, *timeout_us).is_err() {
                    return Err(diverge(
                        idx,
                        re,
                        None,
                        format!("interrupt {line} did not arrive within {timeout_us} us"),
                    ));
                }
            }
            Event::Delay { us } => io.delay_us(*us),
            Event::Poll { iface, cond, delay_us, max_iters, body } => {
                // Each iteration is one register read from the TEE and pays
                // one dispatch (constraint check + binding); the cost is
                // accumulated and charged when the poll concludes so the
                // reads keep the recorded delay cadence (see the compiled
                // engine in `replayer.rs`).
                let mut reads = 0u64;
                let mut iters = 0u64;
                loop {
                    reads += 1;
                    let value =
                        read_iface(io, iface, &allocations).map_err(ExecFailure::Tee)? as u64;
                    if cond.check(value, &env) {
                        break;
                    }
                    iters += 1;
                    if iters > *max_iters {
                        io.charge_ns(dispatch_ns * reads);
                        return Err(diverge(
                            idx,
                            re,
                            Some(value),
                            format!(
                                "poll condition \"{}\" not met after {max_iters} iterations",
                                cond.describe()
                            ),
                        ));
                    }
                    for inner in body {
                        if let Event::Delay { us } = inner {
                            io.delay_us(*us);
                        }
                    }
                    io.delay_us((*delay_us).max(1));
                }
                io.charge_ns(dispatch_ns * reads);
            }
            Event::CopyUserToDma { alloc, offset, user_offset, len } => {
                let n = len.eval(&env).ok_or_else(|| {
                    diverge(idx, re, None, "copy length references an unbound symbol".into())
                })? as usize;
                let uo = *user_offset as usize;
                if uo + n > buf.len() {
                    return Err(diverge(
                        idx,
                        re,
                        None,
                        "copy source outside the trustlet buffer".into(),
                    ));
                }
                let region = *allocations
                    .get(*alloc)
                    .ok_or_else(|| diverge(idx, re, None, format!("dma[{alloc}] not allocated")))?;
                io.copy_to_dma(region, *offset, &buf[uo..uo + n]).map_err(ExecFailure::Tee)?;
                payload_bytes += n as u64;
            }
            Event::CopyDmaToUser { alloc, offset, user_offset, len } => {
                let n = len.eval(&env).ok_or_else(|| {
                    diverge(idx, re, None, "copy length references an unbound symbol".into())
                })? as usize;
                let uo = *user_offset as usize;
                if uo + n > buf.len() {
                    return Err(diverge(
                        idx,
                        re,
                        None,
                        "copy target outside the trustlet buffer".into(),
                    ));
                }
                let region = *allocations
                    .get(*alloc)
                    .ok_or_else(|| diverge(idx, re, None, format!("dma[{alloc}] not allocated")))?;
                io.copy_from_dma(region, *offset, &mut buf[uo..uo + n])
                    .map_err(ExecFailure::Tee)?;
                payload_bytes += n as u64;
            }
        }
    }

    Ok(ReplayOutcome {
        payload_bytes,
        captured: env.captured,
        events: template.events.len(),
        recovered_divergence: false,
    })
}
