//! Single-request latency microbenchmarks (Figure 7).

use crate::block::{DriverletDev, NativeDev, StorageKind, StoragePath, BLOCK};
use crate::BlockDev;

/// Result of one microbenchmark point.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Storage device.
    pub kind: StorageKind,
    /// True for writes, false for reads.
    pub write: bool,
    /// Request size in blocks.
    pub blkcnt: u32,
    /// Native (synchronous full driver) latency in nanoseconds.
    pub native_ns: u64,
    /// Driverlet latency in nanoseconds.
    pub driverlet_ns: u64,
}

impl MicroResult {
    /// Driverlet latency relative to native (1.0 = equal).
    pub fn relative(&self) -> f64 {
        self.driverlet_ns as f64 / self.native_ns.max(1) as f64
    }
}

fn one_native(kind: StorageKind, write: bool, blkcnt: u32) -> u64 {
    // Figure 7 measures the full synchronous request path of the native
    // driver (block layer + driver + medium).
    let mut dev = NativeDev::new(kind, StoragePath::NativeSync);
    let mut buf = vec![0xa5u8; blkcnt as usize * BLOCK];
    let start = dev.now_ns();
    if write {
        dev.write_blocks(1024, &buf).expect("native write");
    } else {
        dev.read_blocks(1024, blkcnt, &mut buf).expect("native read");
    }
    dev.now_ns() - start
}

/// Run the Figure 7 sweep for one device over the recorded granularities.
/// Building the driverlet rig once keeps the (expensive) record campaign out
/// of the measured path.
pub fn run_micro_sweep(kind: StorageKind, granularities: &[u32]) -> Vec<MicroResult> {
    let mut driverlet = DriverletDev::new(kind);
    let mut out = Vec::new();
    for &blkcnt in granularities {
        for write in [false, true] {
            let mut buf = vec![0x5au8; blkcnt as usize * BLOCK];
            let start = driverlet.now_ns();
            if write {
                driverlet.write_blocks(2048, &buf).expect("driverlet write");
            } else {
                driverlet.read_blocks(2048, blkcnt, &mut buf).expect("driverlet read");
            }
            let driverlet_ns = driverlet.now_ns() - start;
            let native_ns = one_native(kind, write, blkcnt);
            out.push(MicroResult { kind, write, blkcnt, native_ns, driverlet_ns });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_shape_driverlet_latency_is_near_native() {
        let results = run_micro_sweep(StorageKind::Mmc, &[1, 32]);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                r.relative() < 1.6,
                "driverlet {}-block {} latency {:.2}x native is too far off",
                r.blkcnt,
                if r.write { "write" } else { "read" },
                r.relative()
            );
            assert!(r.driverlet_ns > 0 && r.native_ns > 0);
        }
        // Larger requests take longer on both paths.
        let small = results.iter().find(|r| r.blkcnt == 1 && !r.write).unwrap();
        let large = results.iter().find(|r| r.blkcnt == 32 && !r.write).unwrap();
        assert!(large.native_ns > small.native_ns);
        assert!(large.driverlet_ns > small.driverlet_ns);
    }
}
